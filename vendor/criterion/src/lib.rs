//! Minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API used by the
//! `vbi-bench` benches: `criterion_group!` / `criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched_ref`], [`BatchSize`], and
//! [`black_box`]. Instead of criterion's statistical sampling it runs a
//! short warm-up plus a fixed measurement loop and prints the mean
//! ns/iter — enough to exercise every bench body and spot gross
//! regressions, without any external dependencies.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup cost relates to the routine (accepted, ignored).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness state, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honour the CLI filter cargo-bench passes through (`cargo bench foo`),
        // and swallow harness flags like `--bench`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { sample_size: 100, filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: None }
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(id.into(), sample_size, &mut f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, sample_size: usize, f: &mut F) {
        if !self.matches(&id) {
            return;
        }
        let mut bencher =
            Bencher { iters: sample_size as u64, elapsed: Duration::ZERO, performed: 0 };
        f(&mut bencher);
        let ns = bencher.elapsed.as_nanos() as f64 / bencher.performed.max(1) as f64;
        println!("bench: {:<40} {:>14.1} ns/iter ({} iters)", id, ns, bencher.performed);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(full, sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Timing loop handed to each benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    performed: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up outside the timed region.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.performed += self.iters;
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut input = setup();
        black_box(routine(&mut input));
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.elapsed += start.elapsed();
            self.performed += 1;
            drop(input);
        }
    }
}

/// Mirrors `criterion::criterion_group!`: builds a function that runs
/// every listed target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_bodies() {
        let mut c = Criterion { sample_size: 4, filter: None };
        let mut hits = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2).bench_function("f", |b| {
                b.iter(|| {
                    hits += 1;
                })
            });
            group.finish();
        }
        // 1 warm-up + 2 timed iterations.
        assert_eq!(hits, 3);
    }

    #[test]
    fn iter_batched_ref_gets_fresh_input() {
        let mut c = Criterion { sample_size: 3, filter: None };
        c.bench_function("batched", |b| {
            b.iter_batched_ref(
                || vec![0u8; 4],
                |v| {
                    assert_eq!(v[0], 0);
                    v[0] = 1;
                },
                BatchSize::SmallInput,
            )
        });
    }
}
