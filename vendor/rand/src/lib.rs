//! Minimal, deterministic stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements exactly the subset of the rand 0.8 API the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::{gen, gen_bool, gen_range}`](Rng). The generator is xorshift64*
//! seeded through splitmix64 — fast, and good enough for synthetic
//! workload generation (not cryptographic).

use core::ops::{Range, RangeInclusive};

pub mod rngs {
    /// A small, fast, deterministic RNG (xorshift64* state).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) state: u64,
    }
}

use rngs::SmallRng;

impl SmallRng {
    /// Deterministic per-thread generator: stream `stream` of the generator
    /// family seeded by `seed`. Each `(seed, stream)` pair yields an
    /// independent, reproducible sequence, so N worker threads can each own
    /// `SmallRng::stream(seed, thread_index)` with no shared lock and no
    /// cross-thread correlation. (`SmallRng` is a plain `u64` of state, so
    /// it is `Send` and can be constructed inside `thread::scope` workers.)
    pub fn stream(seed: u64, stream: u64) -> Self {
        // Run the stream index through its own splitmix64 round before
        // folding it into the seed, so streams 0, 1, 2, ... land far apart.
        let mut z = stream.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self::seed_from_u64(seed ^ z)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 spreads low-entropy seeds; `| 1` avoids the zero state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SmallRng { state: z | 1 }
    }
}

/// Raw 64-bit output, mirroring `rand::RngCore`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values samplable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Uniform in [0, 1) with 53 bits of precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by `gen_range`, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + (rng.next_u64() % (span + 1)) as $ty
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// The user-facing sampling trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_seeds() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(1..=5);
            assert!((1..=5).contains(&w));
        }
    }

    #[test]
    fn streams_are_deterministic_independent_and_send() {
        fn assert_send<T: Send>(_: &T) {}
        let mut a = SmallRng::stream(42, 0);
        let mut a2 = SmallRng::stream(42, 0);
        let mut b = SmallRng::stream(42, 1);
        assert_send(&a);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let xs2: Vec<u64> = (0..32).map(|_| a2.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, xs2, "same (seed, stream) reproduces");
        assert_ne!(xs, ys, "streams of one seed are decorrelated");
        // Usable from real threads without a shared lock.
        let handles: Vec<_> = (0..4u64)
            .map(|t| std::thread::spawn(move || SmallRng::stream(7, t).next_u64()))
            .collect();
        let firsts: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut unique = firsts.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), firsts.len());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
