//! Minimal, offline stand-in for the `proptest` property-testing crate.
//!
//! Implements the subset of the proptest 1.x API used by
//! `tests/proptests.rs`: the [`proptest!`] macro (with
//! `#![proptest_config(..)]`), [`any::<T>()`](any), integer-range and
//! tuple strategies, `prop::collection::{vec, hash_set}`, the
//! `prop_assert*` / `prop_assume!` macros, and
//! [`ProptestConfig::with_cases`]. Cases are sampled from a
//! deterministic per-test RNG; there is **no shrinking** — a failing
//! case panics with the formatted assertion message and the case index.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// Everything a `use proptest::prelude::*;` caller expects in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Namespace mirror so `prop::collection::vec(..)` resolves.
pub mod prop {
    pub use crate::collection;
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Rejected (`prop_assume!`) samples tolerated before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65536 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip the sample without counting it as a case.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic xorshift64* generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test's name so every test gets a stable, distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut z: u64 = 0x9E37_79B9_7F4A_7C15;
        for b in name.bytes() {
            z = (z ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        TestRng { state: (z ^ (z >> 31)) | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A generator of values, mirroring `proptest::strategy::Strategy`
/// (minus shrinking).
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// Types with a canonical whole-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

/// Whole-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `HashSet` with a target element count drawn from `size`.
    /// Duplicate samples are retried a bounded number of times, so the
    /// resulting set can be smaller than the target if the element
    /// domain is nearly exhausted.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.generate(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(16) + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Mirrors `proptest::proptest!`: wraps each `fn name(pat in strategy, ..)`
/// into a `#[test]` that samples `config.cases` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut rejects: u32 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => case += 1,
                    Err($crate::TestCaseError::Reject) => {
                        rejects += 1;
                        if rejects > config.max_global_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejects ({})",
                                stringify!($name), rejects
                            );
                        }
                    }
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed at case {}: {}", stringify!($name), case, msg);
                    }
                }
            }
        }
        $crate::__proptest_fns!(@cfg($cfg) $($rest)*);
    };
}

/// Mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(
                format!("assertion failed: `{:?} == {:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(
                format!("assertion failed: `{:?} == {:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::Fail(
                format!("assertion failed: `{:?} != {:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::Fail(
                format!("assertion failed: `{:?} != {:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Mirrors `proptest::prop_assume!`: skip samples that don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0u8..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(any::<u8>(), 1..9),
            s in prop::collection::hash_set(0u64..1000, 1..9),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(!s.is_empty() && s.len() < 9);
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        let mut a = TestRng::deterministic("seed");
        let mut b = TestRng::deterministic("seed");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
