//! Smoke tests of the figure harness paths at miniature scale: every
//! experiment binary's code path runs end to end and produces sane tables.

use vbi::hetero::memory::{HeteroKind, Policy};
use vbi::sim::engine::{run, EngineConfig};
use vbi::sim::hetero_run::run_hetero;
use vbi::sim::multicore::{run_alone_native, run_bundle};
use vbi::sim::report::SpeedupTable;
use vbi::sim::systems::SystemKind;
use vbi::workloads::bundles::{bundle, bundle_names};
use vbi::workloads::spec::{benchmark, FIG6_BENCHMARKS, HETERO_BENCHMARKS};

fn tiny() -> EngineConfig {
    EngineConfig { accesses: 2_000, warmup: 200, seed: 2020, phys_frames: 1 << 19 }
}

#[test]
fn figure6_path_produces_a_full_table() {
    let systems = vec![SystemKind::Virtual, SystemKind::Vbi2, SystemKind::PerfectTlb];
    let mut results = Vec::new();
    for name in FIG6_BENCHMARKS.into_iter().take(3) {
        let spec = benchmark(name).unwrap();
        results.push(run(SystemKind::Native, &spec, &tiny()));
        for &s in &systems {
            results.push(run(s, &spec, &tiny()));
        }
    }
    let table = SpeedupTable::from_runs(SystemKind::Native, systems, &results);
    assert_eq!(table.rows.len(), 3);
    let rendered = table.render_with_exclusion("Figure 6 smoke", "mcf");
    assert!(rendered.contains("AVG"));
    for (_, speedups) in &table.rows {
        for s in speedups {
            assert!(s.is_finite() && *s > 0.0);
        }
    }
}

#[test]
fn figure7_systems_all_run() {
    let spec = benchmark("GemsFDTD").unwrap();
    for kind in [SystemKind::Native2M, SystemKind::Virtual2M, SystemKind::EnigmaHw2M] {
        let r = run(kind, &spec, &tiny());
        assert!(r.cycles > 0 && r.ipc() > 0.0, "{}", kind.label());
    }
}

#[test]
fn figure8_bundles_resolve_and_run() {
    assert_eq!(bundle_names().len(), 6);
    let apps = bundle("wl6").unwrap();
    let alone = run_alone_native(&apps, &tiny());
    let shared = run_bundle("wl6", SystemKind::VbiFull, &apps, &tiny());
    let ws = shared.weighted_speedup(&alone);
    assert!(ws.is_finite() && ws > 0.0);
    assert_eq!(shared.apps.len(), 4);
}

#[test]
fn figure9_and_10_policies_all_run() {
    let spec = benchmark(HETERO_BENCHMARKS[0]).unwrap();
    for kind in [HeteroKind::PcmDram, HeteroKind::TlDram] {
        for policy in [Policy::Unaware, Policy::VbiHotness, Policy::Ideal] {
            let r = run_hetero(kind, policy, &spec, &tiny());
            assert!(r.cycles > 0, "{kind:?} {policy:?}");
            assert!((0.0..=1.0).contains(&r.fast_fraction));
        }
    }
}

#[test]
fn every_benchmark_runs_on_every_system_briefly() {
    // The full matrix at miniature scale: no panics, no degenerate results.
    let cfg = EngineConfig { accesses: 400, warmup: 50, seed: 7, phys_frames: 1 << 19 };
    for name in FIG6_BENCHMARKS {
        let spec = benchmark(name).unwrap();
        for kind in SystemKind::ALL {
            let r = run(kind, &spec, &cfg);
            assert!(r.cycles > 0 && r.instructions > 0, "{name} on {}", kind.label());
        }
    }
}

#[test]
fn determinism_across_systems_shares_the_trace() {
    // The same seed must produce identical instruction counts on every
    // system (the trace is system-independent).
    let spec = benchmark("bzip2").unwrap();
    let a = run(SystemKind::Native, &spec, &tiny());
    let b = run(SystemKind::VbiFull, &spec, &tiny());
    assert_eq!(a.instructions, b.instructions);
}
