//! Equivalence proof for the magazine frame cache: a cache-fronted MTL
//! and a buddy-only MTL driven with the same random allocate/free/reclaim
//! traffic agree on *every* outcome — op-for-op success/failure, the
//! `free_frames()` gauge after every single op (the cache is part of the
//! free pool, not a leak of it), and every MTL counter except the cache's
//! own bookkeeping. The cache may only change *where* free frames wait
//! and how fast they turn around, never what the machine does.
//!
//! The workload runs the paper's VBI-2 variant (delayed allocation, no
//! early reservation) over 128 KiB VBs against a deliberately small
//! machine, so the sequences continuously cross the
//! allocate → evict → reclaim boundary where a stale gauge or a stranded
//! cached frame would change an outcome.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use vbi_core::client::VirtualAddress;
use vbi_core::ops::{Op, OpOutput, VbHandle};
use vbi_core::{MtlStats, Rwx, System, VbProperties, VbiConfig};

/// Pages of one 128 KiB VB.
const VB_PAGES: u64 = 32;

/// Zeroes the frame-cache counters so the *allocation behavior* of the
/// two variants can be compared exactly: the cache is allowed its own
/// bookkeeping and nothing else.
fn scrub(mut stats: MtlStats) -> MtlStats {
    stats.frame_cache_hits = 0;
    stats.frame_cache_misses = 0;
    stats.frame_cache_refills = 0;
    stats.frame_cache_flushes = 0;
    stats.frame_cache_batch_frees = 0;
    stats
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cache_fronted_mtl_matches_buddy_only(seed in any::<u64>(), len in 1usize..250) {
        // 256 frames against 32-page VBs: a handful of live VBs exhausts
        // the machine, so reclaim runs constantly.
        let base = VbiConfig { phys_frames: 256, ..VbiConfig::vbi_2() };
        let cached = System::new(VbiConfig { frame_cache: true, ..base.clone() });
        let buddy = System::new(VbiConfig { frame_cache: false, ..base });

        let client = match cached.execute(Op::CreateClient) {
            Ok(OpOutput::Client(id)) => id,
            other => panic!("create failed: {other:?}"),
        };
        prop_assert_eq!(buddy.execute(Op::CreateClient), Ok(OpOutput::Client(client)));

        let mut rng = SmallRng::seed_from_u64(seed);
        let mut live: Vec<VbHandle> = Vec::new();
        for step in 0..len {
            let roll: u32 = rng.gen_range(0..10);
            let op = if live.is_empty() || roll <= 2 {
                Op::RequestVb {
                    client,
                    bytes: 128 << 10,
                    props: VbProperties::NONE,
                    perms: Rwx::READ_WRITE,
                }
            } else {
                let vb = live[rng.gen_range(0..live.len())];
                let va = VirtualAddress::new(vb.cvt_index, rng.gen_range(0..VB_PAGES) * 4096);
                match roll {
                    3..=6 => Op::StoreU64 { client, va, value: rng.gen() },
                    7..=8 => Op::LoadU64 { client, va },
                    _ => {
                        let index = rng.gen_range(0..live.len());
                        let vb = live.swap_remove(index);
                        Op::ReleaseVb { client, index: vb.cvt_index }
                    }
                }
            };

            let want = buddy.execute(op.clone());
            let got = cached.execute(op.clone());
            prop_assert_eq!(&want, &got,
                "outcome diverged at step {} (seed {}, op {:?})", step, seed, op);
            if let Ok(OpOutput::Handle(handle)) = &got {
                live.push(*handle);
            }
            prop_assert_eq!(
                cached.mtl().free_frames(), buddy.mtl().free_frames(),
                "free-frame gauge diverged at step {} (seed {})", step, seed);
        }

        prop_assert_eq!(scrub(cached.mtl().stats()), scrub(buddy.mtl().stats()),
            "MTL counters diverged beyond the cache's own bookkeeping (seed {})", seed);

        // Flushing is conservation-neutral: the gauge already counted the
        // cached frames, and a second flush finds nothing left.
        let gauge = cached.mtl().free_frames();
        cached.mtl_mut().flush_frame_cache();
        prop_assert_eq!(cached.mtl().free_frames(), gauge,
            "flush changed the free-frame gauge (seed {})", seed);
        prop_assert_eq!(cached.mtl_mut().flush_frame_cache(), 0u64,
            "a second flush must find an empty cache (seed {})", seed);
        prop_assert_eq!(cached.mtl().free_frames(), buddy.mtl().free_frames());
    }
}
