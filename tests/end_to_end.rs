//! End-to-end integration tests spanning the whole workspace: OS model on
//! top of the System on top of the MTL, with data integrity verified
//! through every optimization path — all access through session handles.

use vbi::core::os::{BinaryImage, LibraryImage, Os, Section, SectionKind};
use vbi::{Rwx, SizeClass, System, VbProperties, VbiConfig, VbiError, VirtualAddress};

fn full_config() -> VbiConfig {
    VbiConfig { phys_frames: 1 << 16, ..VbiConfig::vbi_full() } // 256 MiB
}

#[test]
fn data_survives_every_optimization_combination() {
    for config in [VbiConfig::vbi_1(), VbiConfig::vbi_2(), VbiConfig::vbi_full()] {
        let config = VbiConfig { phys_frames: 1 << 16, ..config };
        let system = System::new(config);
        let client = system.create_client().unwrap();
        let vb = client.request_vb(8 << 20, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        // Scattered writes across the 8 MiB structure.
        for i in 0..256u64 {
            let offset = (i * 77_773) % (8 << 20);
            client.store_u64(vb.at(offset & !7), i).unwrap();
        }
        for i in 0..256u64 {
            let offset = (i * 77_773) % (8 << 20);
            assert_eq!(client.load_u64(vb.at(offset & !7)).unwrap(), i);
        }
    }
}

#[test]
fn fork_chains_preserve_isolation() {
    let mut os = Os::new(full_config());
    let image = BinaryImage {
        name: "chain".into(),
        sections: vec![Section { kind: SectionKind::Data, contents: vec![1; 64] }],
    };
    let gen0 = os.create_process(&image).unwrap();
    let heap = os.create_heap(gen0, 64 << 10, VbProperties::NONE).unwrap();
    let s0 = os.process(gen0).unwrap().session().clone();
    s0.store_u64(heap.at(0), 100).unwrap();

    // Three generations of forks, each mutating the same address.
    let gen1 = os.fork(gen0).unwrap();
    let s1 = os.process(gen1).unwrap().session().clone();
    s1.store_u64(heap.at(0), 101).unwrap();

    let gen2 = os.fork(gen1).unwrap();
    let s2 = os.process(gen2).unwrap().session().clone();
    s2.store_u64(heap.at(0), 102).unwrap();

    assert_eq!(s0.load_u64(heap.at(0)).unwrap(), 100);
    assert_eq!(s1.load_u64(heap.at(0)).unwrap(), 101);
    assert_eq!(s2.load_u64(heap.at(0)).unwrap(), 102);

    os.destroy_process(gen2).unwrap();
    os.destroy_process(gen1).unwrap();
    assert_eq!(s0.load_u64(heap.at(0)).unwrap(), 100);
}

#[test]
fn promotion_chain_walks_all_the_way_up() {
    let system = System::new(full_config());
    let client = system.create_client().unwrap();
    let vb = client.request_vb(4 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
    client.store_u64(vb.at(0), 4242).unwrap();

    // 4 KiB -> 128 KiB -> 4 MiB.
    let p1 = client.promote(vb.cvt_index).unwrap();
    assert_eq!(p1.vbuid.size_class(), SizeClass::Kib128);
    let p2 = client.promote(vb.cvt_index).unwrap();
    assert_eq!(p2.vbuid.size_class(), SizeClass::Mib4);

    assert_eq!(client.load_u64(vb.at(0)).unwrap(), 4242);
    // The whole 4 MiB is now usable via the original CVT index.
    client.store_u64(vb.at((4 << 20) - 8), 1).unwrap();
}

#[test]
fn swap_pressure_across_many_processes_loses_nothing() {
    // ~7 MiB of physical memory; 4 processes write 2 MiB each = pressure.
    let config = VbiConfig { phys_frames: 1800, ..VbiConfig::vbi_2() };
    let system = System::new(config);
    let mut handles = Vec::new();
    for p in 0..4u64 {
        let client = system.create_client().unwrap();
        let vb = client.request_vb(8 << 20, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        for page in 0..512u64 {
            client.store_u64(vb.at(page * 4096), p * 10_000 + page).unwrap();
        }
        handles.push((client, vb));
    }
    assert!(system.mtl().stats().pages_swapped_out > 0, "pressure must trigger swap");
    for (p, (client, vb)) in handles.iter().enumerate() {
        for page in 0..512u64 {
            assert_eq!(client.load_u64(vb.at(page * 4096)).unwrap(), p as u64 * 10_000 + page);
        }
    }
}

#[test]
fn shared_library_data_stays_private_across_forks() {
    let mut os = Os::new(full_config());
    os.register_library(LibraryImage {
        name: "libx".into(),
        code: vec![0x90; 128],
        static_data: vec![7; 64],
    })
    .unwrap();
    let image = BinaryImage {
        name: "app".into(),
        sections: vec![Section { kind: SectionKind::Code, contents: vec![0xc3; 64] }],
    };
    let a = os.create_process(&image).unwrap();
    let lib_a = os.link_library(a, "libx").unwrap();
    let b = os.create_process(&image).unwrap();
    let lib_b = os.link_library(b, "libx").unwrap();

    // Same code VB, different data VBs reached by +1 addressing.
    assert_eq!(lib_a.vbuid, lib_b.vbuid);
    let sa = os.process(a).unwrap().session().clone();
    let sb = os.process(b).unwrap().session().clone();
    let data_a = lib_a.at(0).cvt_relative(1);
    let data_b = lib_b.at(0).cvt_relative(1);
    sa.store_u8(data_a, 0xA1).unwrap();
    sb.store_u8(data_b, 0xB2).unwrap();
    assert_eq!(sa.load_u8(data_a).unwrap(), 0xA1);
    assert_eq!(sb.load_u8(data_b).unwrap(), 0xB2);
    // The template value is intact in untouched bytes.
    assert_eq!(sa.load_u8(data_a.offset_by(1)).unwrap(), 7);
}

#[test]
fn disable_frees_exactly_what_enable_consumed() {
    let system = System::new(full_config());
    let client = system.create_client().unwrap();
    let before = system.mtl().free_frames();
    for round in 0..3 {
        let vb = client.request_vb(2 << 20, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        for page in (0..512u64).step_by(7) {
            client.store_u64(vb.at(page * 4096), round).unwrap();
        }
        client.release_vb(vb.cvt_index).unwrap();
        assert_eq!(system.mtl().free_frames(), before, "round {round} leaked");
    }
}

#[test]
fn kernel_vbs_are_unreachable_without_attachment() {
    let system = System::new(full_config());
    let kernel = system.create_client().unwrap();
    let user = system.create_client().unwrap();
    let secret = kernel.request_vb(4096, VbProperties::KERNEL, Rwx::READ_WRITE).unwrap();
    kernel.store_u64(secret.at(0), 0xdead).unwrap();

    // The user client has an empty CVT: no index reaches the kernel VB.
    for index in 0..4 {
        assert!(matches!(
            user.load_u64(VirtualAddress::new(index, 0)),
            Err(VbiError::InvalidCvtIndex { .. })
        ));
    }
}

#[test]
fn mixed_size_classes_coexist() {
    let system = System::new(full_config());
    let client = system.create_client().unwrap();
    let sizes: [u64; 4] = [1 << 10, 100 << 10, 2 << 20, 64 << 20];
    let mut handles = Vec::new();
    for (i, bytes) in sizes.iter().enumerate() {
        let vb = client.request_vb(*bytes, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        client.store_u64(vb.at(bytes - 8), i as u64).unwrap();
        handles.push(vb);
    }
    let classes: Vec<SizeClass> = handles.iter().map(|h| h.vbuid.size_class()).collect();
    assert_eq!(
        classes,
        vec![SizeClass::Kib4, SizeClass::Kib128, SizeClass::Mib4, SizeClass::Mib128]
    );
    for (i, (vb, bytes)) in handles.iter().zip(sizes).enumerate() {
        assert_eq!(client.load_u64(vb.at(bytes - 8)).unwrap(), i as u64);
    }
}
