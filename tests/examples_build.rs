//! Smoke check: every example in the workspace must keep compiling.
//!
//! The walkthroughs under `examples/` (plus the diagnostic examples in
//! `crates/sim/examples/`) are documentation as much as code, and nothing
//! else in `cargo test` would catch them bit-rotting. This test shells out
//! to the same cargo that is running the tests and builds them all.

use std::process::Command;

#[test]
fn all_examples_compile() {
    let cargo = std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = Command::new(cargo)
        .args(["build", "--examples", "--workspace"])
        .current_dir(manifest_dir)
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "`cargo build --examples --workspace` failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}
