//! Integration tests for the system-architecture extensions: virtual
//! machines (§6.1) and multi-node MTLs (§6.2), exercised together with the
//! rest of the stack.

use vbi::core::multinode::{MultiNodeSystem, NodeId};
use vbi::core::vm::{VirtualMachine, VmId, VmPartition};
use vbi::{Rwx, SizeClass, System, VbProperties, VbiConfig, VirtualAddress};

#[test]
fn thirty_one_guests_coexist() {
    let system =
        System::new(VbiConfig { phys_frames: 1 << 16, vm_id_bits: 5, ..VbiConfig::vbi_full() });
    let partition = VmPartition::new(5);
    let mut vms: Vec<VirtualMachine> =
        (1..=31).map(|i| VirtualMachine::new(VmId(i), partition)).collect();

    let mut handles = Vec::new();
    for vm in &mut vms {
        let guest = vm.create_guest_client(&system).unwrap();
        let vb = vm.find_free_vb(&system, SizeClass::Kib4).unwrap();
        system.mtl_mut().enable_vb(vb, VbProperties::NONE).unwrap();
        let idx = guest.attach(vb, Rwx::READ_WRITE).unwrap();
        guest.store_u64(VirtualAddress::new(idx, 0), vm.id().0 as u64).unwrap();
        handles.push((guest, idx, vm.id().0 as u64));
    }
    // Every guest reads back its own value: full isolation.
    for (guest, idx, want) in handles {
        assert_eq!(guest.load_u64(VirtualAddress::new(idx, 0)).unwrap(), want);
    }
}

#[test]
fn guest_and_host_vbs_never_collide() {
    let partition = VmPartition::new(5);
    let mut seen = std::collections::HashSet::new();
    for vm in 0..32u8 {
        for local in 0..8u64 {
            let vb = partition.vbuid(VmId(vm), SizeClass::Mib4, local).unwrap();
            assert!(seen.insert(vb), "collision at vm {vm} local {local}");
        }
    }
}

#[test]
fn multinode_machine_places_and_migrates() {
    let mut machine =
        MultiNodeSystem::new(4, VbiConfig { phys_frames: 4096, ..VbiConfig::vbi_full() });

    // A "process" on node 1 gets a local VB and fills it.
    let vb = machine.enable_vb_on(NodeId(1), SizeClass::Kib128, VbProperties::NONE).unwrap();
    for page in 0..32u64 {
        machine.write_u64(vb.address(page << 12).unwrap(), page * 3).unwrap();
    }

    // Phase change: the process moves to node 2; the OS migrates the VB.
    let moved = machine.migrate_vb(vb, NodeId(2)).unwrap();
    machine.mtl_mut(NodeId(1)).disable_vb(vb).unwrap();
    for page in 0..32u64 {
        assert_eq!(machine.read_u64(moved.address(page << 12).unwrap()).unwrap(), page * 3);
    }

    // Node 1's memory is fully reclaimed; node 2 now holds the data.
    assert_eq!(machine.mtl(NodeId(1)).free_frames(), 4096);
    assert!(machine.mtl(NodeId(2)).free_frames() < 4096);
}

#[test]
fn multinode_vbs_are_globally_unique() {
    let machine = MultiNodeSystem::new(8, VbiConfig::vbi_full());
    let mut seen = std::collections::HashSet::new();
    for node in 0..8u8 {
        for local in 0..16u64 {
            let vb = machine.vbuid_on(NodeId(node), SizeClass::Gib4, local).unwrap();
            assert_eq!(machine.home_of(vb), NodeId(node));
            assert!(seen.insert(vb));
        }
    }
}
