//! Failure-injection tests: exhaust each resource and verify the system
//! degrades with clean errors and intact data, never corruption.

use vbi::core::os::{BinaryImage, Os, Section, SectionKind};
use vbi::hetero::memory::HeteroKind;
use vbi::hetero::SlowTierBackend;
use vbi::{Rwx, SizeClass, System, VbProperties, VbiConfig, VbiError};

#[test]
fn cvt_exhaustion_is_a_clean_error() {
    let system =
        System::new(VbiConfig { phys_frames: 1 << 14, cvt_capacity: 4, ..VbiConfig::vbi_full() });
    let client = system.create_client().unwrap();
    for _ in 0..4 {
        client.request_vb(4096, VbProperties::NONE, Rwx::READ).unwrap();
    }
    let err = client.request_vb(4096, VbProperties::NONE, Rwx::READ);
    assert!(matches!(err, Err(VbiError::CvtFull(_))));
    // The failed request must not leak an enabled VB: the next release and
    // re-request cycle still works.
    client.release_vb(0).unwrap();
    client.request_vb(4096, VbProperties::NONE, Rwx::READ).unwrap();
}

#[test]
fn client_id_exhaustion_and_recycling() {
    let system = System::new(VbiConfig { phys_frames: 1 << 12, ..VbiConfig::vbi_full() });
    // Client IDs recycle through destruction.
    let a = system.create_client().unwrap();
    let a_id = a.id();
    a.destroy().unwrap();
    let b = system.create_client().unwrap();
    assert_eq!(a_id, b.id(), "released IDs are reused");
}

#[test]
fn oom_during_write_leaves_prior_data_intact() {
    // With a zero-capacity backing store the pressure path cannot spill, so
    // exhausting physical memory must still surface a clean OOM.
    let system = System::new(VbiConfig { phys_frames: 24, ..VbiConfig::vbi_1() });
    system
        .mtl_mut()
        .set_backing(SlowTierBackend::new(HeteroKind::PcmDram, Some(0)).boxed())
        .unwrap();
    let client = system.create_client().unwrap();
    let vb = client.request_vb(128 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
    let mut written = Vec::new();
    for page in 0..32u64 {
        match client.store_u64(vb.at(page << 12), page + 1) {
            Ok(()) => written.push(page),
            Err(VbiError::OutOfPhysicalMemory) => break,
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert!(!written.is_empty(), "some writes must succeed");
    assert!(written.len() < 32, "memory must run out");
    for page in written {
        assert_eq!(client.load_u64(vb.at(page << 12)).unwrap(), page + 1);
    }
}

#[test]
fn same_workload_succeeds_when_the_backing_store_can_absorb_it() {
    // The counterpart of `oom_during_write_leaves_prior_data_intact`: with
    // the default (unbounded) backing store, the engine's pressure path
    // self-evicts and the oversubscribed working set completes byte-exactly.
    let system = System::new(VbiConfig { phys_frames: 24, ..VbiConfig::vbi_1() });
    let client = system.create_client().unwrap();
    let vb = client.request_vb(128 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
    for page in 0..32u64 {
        client.store_u64(vb.at(page << 12), page + 1).unwrap();
    }
    for page in 0..32u64 {
        assert_eq!(client.load_u64(vb.at(page << 12)).unwrap(), page + 1);
    }
    let stats = system.mtl().stats();
    assert!(stats.evictions > 0, "32 pages cannot fit 24 frames: {stats:?}");
    assert!(stats.faults_in > 0, "{stats:?}");
}

#[test]
fn double_enable_and_double_disable_are_rejected() {
    let system = System::new(VbiConfig { phys_frames: 1 << 12, ..VbiConfig::vbi_full() });
    let vb = system.mtl().find_free_vb(SizeClass::Kib4).unwrap();
    system.mtl_mut().enable_vb(vb, VbProperties::NONE).unwrap();
    assert!(matches!(
        system.mtl_mut().enable_vb(vb, VbProperties::NONE),
        Err(VbiError::VbAlreadyEnabled(_))
    ));
    system.mtl_mut().disable_vb(vb).unwrap();
    assert!(matches!(system.mtl_mut().disable_vb(vb), Err(VbiError::VbNotEnabled(_))));
}

#[test]
fn detach_of_unattached_vb_fails_without_corruption() {
    let system = System::new(VbiConfig { phys_frames: 1 << 12, ..VbiConfig::vbi_full() });
    let a = system.create_client().unwrap();
    let b = system.create_client().unwrap();
    let vb = a.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
    // b never attached: detaching must fail and leave a's access intact.
    assert!(b.detach(vb.vbuid).is_err());
    a.store_u64(vb.at(0), 5).unwrap();
    assert_eq!(a.load_u64(vb.at(0)).unwrap(), 5);
}

#[test]
fn promotion_at_the_top_class_is_rejected() {
    let system = System::new(VbiConfig { phys_frames: 1 << 12, ..VbiConfig::vbi_full() });
    let vb = system.mtl().find_free_vb(SizeClass::Tib128).unwrap();
    system.mtl_mut().enable_vb(vb, VbProperties::NONE).unwrap();
    let other = system.mtl().find_free_vb(SizeClass::Tib128).unwrap();
    system.mtl_mut().enable_vb(other, VbProperties::NONE).unwrap();
    assert!(matches!(
        system.mtl_mut().promote_vb(vb, other),
        Err(VbiError::PromoteNotLarger { .. })
    ));
}

#[test]
fn swap_thrash_under_extreme_pressure_preserves_data() {
    // Two VBs, each bigger than half of memory, accessed alternately: pages
    // ping-pong through the backing store.
    let system = System::new(VbiConfig { phys_frames: 28, ..VbiConfig::vbi_2() });
    let client = system.create_client().unwrap();
    let a = client.request_vb(128 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
    let b = client.request_vb(128 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
    for round in 0..3u64 {
        for page in 0..16u64 {
            client.store_u64(a.at(page << 12), round * 100 + page).unwrap();
            client.store_u64(b.at(page << 12), round * 200 + page).unwrap();
        }
    }
    for page in 0..16u64 {
        assert_eq!(client.load_u64(a.at(page << 12)).unwrap(), 200 + page);
        assert_eq!(client.load_u64(b.at(page << 12)).unwrap(), 400 + page);
    }
    assert!(system.mtl().stats().pages_swapped_out > 0);
}

#[test]
fn pinned_vbs_are_swapped_only_as_a_last_resort() {
    let system = System::new(VbiConfig { phys_frames: 48, ..VbiConfig::vbi_2() });
    let client = system.create_client().unwrap();
    let pinned = client.request_vb(64 << 10, VbProperties::PINNED, Rwx::READ_WRITE).unwrap();
    for page in 0..16u64 {
        client.store_u64(pinned.at(page << 12), page).unwrap();
    }
    let victim = client.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
    for page in 0..16u64 {
        client.store_u64(victim.at(page << 12), page).unwrap();
    }
    // Pressure from a third VB should prefer swapping the unpinned one.
    let third = client.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
    for page in 0..8u64 {
        client.store_u64(third.at(page << 12), page).unwrap();
    }
    // All data is intact regardless of who got swapped.
    for page in 0..16u64 {
        assert_eq!(client.load_u64(pinned.at(page << 12)).unwrap(), page);
        assert_eq!(client.load_u64(victim.at(page << 12)).unwrap(), page);
    }
}

#[test]
fn process_destruction_mid_pressure_releases_swap() {
    let mut os = Os::new(VbiConfig { phys_frames: 64, ..VbiConfig::vbi_2() });
    let image = BinaryImage {
        name: "hog".into(),
        sections: vec![Section { kind: SectionKind::Data, contents: vec![0; 64] }],
    };
    let p1 = os.create_process(&image).unwrap();
    let h1 = os.create_heap(p1, 128 << 10, VbProperties::NONE).unwrap();
    let s1 = os.process(p1).unwrap().session().clone();
    for page in 0..24u64 {
        s1.store_u64(h1.at(page << 12), page).unwrap();
    }
    let p2 = os.create_process(&image).unwrap();
    let h2 = os.create_heap(p2, 128 << 10, VbProperties::NONE).unwrap();
    let s2 = os.process(p2).unwrap().session().clone();
    for page in 0..24u64 {
        s2.store_u64(h2.at(page << 12), 100 + page).unwrap();
    }
    // Destroy the first process: its swap slots and frames are released.
    os.destroy_process(p1).unwrap();
    for page in 0..24u64 {
        assert_eq!(s2.load_u64(h2.at(page << 12)).unwrap(), 100 + page);
    }
}
