//! Small-scale checks of the paper's qualitative claims: who wins, and in
//! which direction each mechanism moves performance. These mirror the
//! figure harnesses at a size suitable for `cargo test`.

use vbi::sim::engine::{run, EngineConfig, RunResult};
use vbi::sim::systems::SystemKind;
use vbi::workloads::spec::benchmark;

fn cfg() -> EngineConfig {
    EngineConfig { accesses: 25_000, warmup: 2_500, seed: 2020, phys_frames: 1 << 20 }
}

fn speedup(kind: SystemKind, name: &str, baseline: &RunResult) -> f64 {
    run(kind, &benchmark(name).unwrap(), &cfg()).speedup_over(baseline)
}

#[test]
fn virtualization_costs_performance_on_conventional_systems() {
    // §7.2.1: Virtual significantly slows down applications vs Native.
    for name in ["mcf", "omnetpp-17", "Graph 500"] {
        let native = run(SystemKind::Native, &benchmark(name).unwrap(), &cfg());
        let virt = speedup(SystemKind::Virtual, name, &native);
        assert!(virt < 0.95, "{name}: Virtual at {virt}");
    }
}

#[test]
fn vbi_erases_the_virtualization_penalty() {
    // §3.5: once attached, a VM program's translation is identical to
    // native — so VBI beats Virtual by a wide margin.
    for name in ["mcf", "GemsFDTD"] {
        let spec = benchmark(name).unwrap();
        let virt = run(SystemKind::Virtual, &spec, &cfg());
        let vbi = run(SystemKind::Vbi2, &spec, &cfg());
        let ratio = vbi.ipc() / virt.ipc();
        assert!(ratio > 1.5, "{name}: VBI-2 over Virtual only {ratio}");
    }
}

#[test]
fn each_vbi_optimization_helps_on_tlb_hostile_workloads() {
    // Figure 6's ordering for mcf: VBI-1 < VBI-2 < VBI-Full.
    let spec = benchmark("mcf").unwrap();
    let v1 = run(SystemKind::Vbi1, &spec, &cfg());
    let v2 = run(SystemKind::Vbi2, &spec, &cfg());
    let vf = run(SystemKind::VbiFull, &spec, &cfg());
    assert!(v2.ipc() > v1.ipc(), "delayed allocation must help");
    assert!(vf.ipc() > v2.ipc(), "early reservation must help");
}

#[test]
fn vbi_full_can_beat_the_perfect_tlb() {
    // §7.2.2: VBI-Full outperforms even Perfect TLB by reducing the number
    // of DRAM accesses, not just translation costs.
    let spec = benchmark("mcf").unwrap();
    let perfect = run(SystemKind::PerfectTlb, &spec, &cfg());
    let vf = run(SystemKind::VbiFull, &spec, &cfg());
    assert!(vf.ipc() > perfect.ipc(), "VBI-Full {} vs Perfect TLB {}", vf.ipc(), perfect.ipc());
    assert!(
        vf.counters.dram_accesses < perfect.counters.dram_accesses,
        "the win must come from fewer DRAM accesses"
    );
}

#[test]
fn delayed_allocation_eliminates_dram_traffic() {
    // §5.1: zero-line returns avoid both translation and DRAM access.
    let spec = benchmark("deepsjeng-17").unwrap(); // sparse transposition table
    let v1 = run(SystemKind::Vbi1, &spec, &cfg());
    let v2 = run(SystemKind::Vbi2, &spec, &cfg());
    assert!(v2.counters.zero_lines > 0);
    assert!(v2.counters.dram_accesses < v1.counters.dram_accesses);
}

#[test]
fn early_reservation_eliminates_walks() {
    // §5.3: direct-mapped VBs need one whole-VB TLB entry and no walks.
    let spec = benchmark("milc").unwrap(); // 64 MiB chunks, all reservable
    let v2 = run(SystemKind::Vbi2, &spec, &cfg());
    let vf = run(SystemKind::VbiFull, &spec, &cfg());
    assert!(
        vf.counters.translation_accesses < v2.counters.translation_accesses / 4,
        "direct mapping should slash translation accesses: {} vs {}",
        vf.counters.translation_accesses,
        v2.counters.translation_accesses
    );
}

#[test]
fn large_pages_narrow_but_do_not_close_the_gap() {
    // Figure 7: Native-2M is much better than Native, yet VBI-Full still
    // wins on TLB-hostile workloads.
    let spec = benchmark("GemsFDTD").unwrap();
    let native = run(SystemKind::Native, &spec, &cfg());
    let native2m = run(SystemKind::Native2M, &spec, &cfg());
    let vf = run(SystemKind::VbiFull, &spec, &cfg());
    assert!(native2m.ipc() > native.ipc(), "large pages help conventional VM");
    assert!(vf.ipc() > native2m.ipc(), "VBI-Full still wins");
}

#[test]
fn cache_friendly_workloads_are_insensitive() {
    // Figure 6: namd's bars hover near 1.0 for every system.
    let spec = benchmark("namd").unwrap();
    let native = run(SystemKind::Native, &spec, &cfg());
    for kind in [SystemKind::Vivt, SystemKind::Vbi1, SystemKind::VbiFull, SystemKind::PerfectTlb] {
        let s = run(kind, &spec, &cfg()).speedup_over(&native);
        assert!((0.85..1.35).contains(&s), "{} at {s}", kind.label());
    }
}

#[test]
fn enigma_helps_but_less_than_vbi() {
    // Figure 7: Enigma-HW-2M sits between Native-2M and VBI-Full.
    let spec = benchmark("mcf").unwrap();
    let native2m = run(SystemKind::Native2M, &spec, &cfg());
    let enigma = run(SystemKind::EnigmaHw2M, &spec, &cfg());
    let vf = run(SystemKind::VbiFull, &spec, &cfg());
    assert!(enigma.ipc() >= native2m.ipc() * 0.98);
    assert!(vf.ipc() > enigma.ipc());
}
