//! Property-based tests on the workspace's core invariants.

use proptest::prelude::*;

use vbi::core::buddy::BuddyAllocator;
use vbi::core::phys::Frame;
use vbi::core::translate::{PageEntry, TranslationStructure};
use vbi::{Rwx, SizeClass, System, VbProperties, VbiConfig, Vbuid};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// VBI addresses round-trip: (class, vbid, offset) -> bits -> back.
    #[test]
    fn vbi_addresses_roundtrip(
        class_id in 0u8..8,
        vbid_seed in any::<u64>(),
        offset_seed in any::<u64>(),
    ) {
        let sc = SizeClass::from_id(class_id).unwrap();
        let vbid = vbid_seed % sc.vb_count();
        let offset = offset_seed % sc.bytes();
        let vb = Vbuid::new(sc, vbid);
        let addr = vb.address(offset).unwrap();
        prop_assert_eq!(addr.vbuid(), vb);
        prop_assert_eq!(addr.offset(), offset);
        prop_assert_eq!(addr.size_class(), sc);
        prop_assert_eq!(addr.page_index(), offset >> 12);
    }

    /// Distinct VBs never produce the same VBI address.
    #[test]
    fn distinct_vbs_never_alias(
        a_class in 0u8..8, a_vbid in 0u64..64, a_off in any::<u64>(),
        b_class in 0u8..8, b_vbid in 0u64..64, b_off in any::<u64>(),
    ) {
        let a = Vbuid::new(SizeClass::from_id(a_class).unwrap(), a_vbid);
        let b = Vbuid::new(SizeClass::from_id(b_class).unwrap(), b_vbid);
        prop_assume!(a != b);
        let addr_a = a.address(a_off % a.bytes()).unwrap();
        let addr_b = b.address(b_off % b.bytes()).unwrap();
        prop_assert_ne!(addr_a, addr_b);
    }

    /// The buddy allocator never double-allocates, never loses frames, and
    /// always merges back to full capacity.
    #[test]
    fn buddy_allocator_conserves_frames(
        total_exp in 6u32..12,
        ops in prop::collection::vec((0u32..4, any::<u8>()), 1..80),
    ) {
        let total = 1u64 << total_exp;
        let mut buddy = BuddyAllocator::new(total);
        let mut live: Vec<(Frame, u32)> = Vec::new();
        let mut covered: std::collections::HashSet<u64> = std::collections::HashSet::new();

        for (order, action) in ops {
            if action % 2 == 0 || live.is_empty() {
                if let Some(frame) = buddy.allocate(order) {
                    // Natural alignment and no overlap with live blocks.
                    prop_assert_eq!(frame.0 % (1 << order), 0);
                    for i in 0..(1u64 << order) {
                        prop_assert!(covered.insert(frame.0 + i), "double allocation");
                    }
                    live.push((frame, order));
                }
            } else {
                let idx = (action as usize) % live.len();
                let (frame, order) = live.swap_remove(idx);
                for i in 0..(1u64 << order) {
                    covered.remove(&(frame.0 + i));
                }
                buddy.free(frame, order);
            }
            prop_assert_eq!(buddy.free_frames(), total - covered.len() as u64);
        }
        for (frame, order) in live {
            buddy.free(frame, order);
        }
        prop_assert_eq!(buddy.free_frames(), total);
    }

    /// Translation structures map and walk consistently for any page set.
    #[test]
    fn translation_structures_are_consistent(
        pages in prop::collection::hash_set(0u64..32768, 1..40),
    ) {
        let mut buddy = BuddyAllocator::new(1 << 16);
        let mut ts = TranslationStructure::multi_level(SizeClass::Mib128, &mut buddy).unwrap();
        let mut expected = std::collections::HashMap::new();
        for (i, &page) in pages.iter().enumerate() {
            let frame = Frame(40_000 + i as u64);
            ts.set_entry(page, PageEntry::Mapped { frame, cow: false }, &mut buddy).unwrap();
            expected.insert(page, frame);
        }
        for page in 0..32768u64 {
            match (ts.entry(page), expected.get(&page)) {
                (PageEntry::Mapped { frame, .. }, Some(&want)) => prop_assert_eq!(frame, want),
                (PageEntry::Unmapped, None) => {}
                (got, want) => prop_assert!(false, "page {}: {:?} vs {:?}", page, got, want),
            }
        }
        // Walk accesses never exceed the structure's depth.
        for &page in &pages {
            let walk = ts.walk(page);
            prop_assert!(walk.table_accesses.len() as u32 <= ts.kind().walk_accesses());
        }
        ts.release_tables(&mut buddy);
    }

    /// Functional memory semantics: an arbitrary interleaving of writes and
    /// reads over multiple VBs behaves like a plain map.
    #[test]
    fn system_behaves_like_memory(
        ops in prop::collection::vec((0usize..3, 0u64..256, any::<u64>(), any::<bool>()), 1..60),
    ) {
        let system = System::new(VbiConfig { phys_frames: 1 << 14, ..VbiConfig::vbi_full() });
        let client = system.create_client().unwrap();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                client
                    .request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE)
                    .unwrap()
            })
            .collect();
        let mut model: std::collections::HashMap<(usize, u64), u64> =
            std::collections::HashMap::new();

        for (vb, slot, value, is_write) in ops {
            let addr = handles[vb].at(slot * 8);
            if is_write {
                client.store_u64(addr, value).unwrap();
                model.insert((vb, slot), value);
            } else {
                let got = client.load_u64(addr).unwrap();
                let want = model.get(&(vb, slot)).copied().unwrap_or(0);
                prop_assert_eq!(got, want, "vb {} slot {}", vb, slot);
            }
        }
    }

    /// Clone + write interleavings keep source and destination independent.
    #[test]
    fn cow_clones_are_independent(
        writes in prop::collection::vec((0u64..32, any::<u64>(), any::<bool>()), 1..40),
    ) {
        let system = System::new(VbiConfig { phys_frames: 1 << 14, ..VbiConfig::vbi_full() });
        let client = system.create_client().unwrap();
        let src = client
            .request_vb(128 << 10, VbProperties::NONE, Rwx::READ_WRITE)
            .unwrap();
        // Populate source.
        for page in 0..32u64 {
            client.store_u64(src.at(page * 4096), page).unwrap();
        }
        // Clone via the MTL and attach.
        let dst_vbuid = system.mtl().find_free_vb(src.vbuid.size_class()).unwrap();
        system.mtl_mut().enable_vb(dst_vbuid, VbProperties::NONE).unwrap();
        system.mtl_mut().clone_vb(src.vbuid, dst_vbuid).unwrap();
        let dst_index = client.attach(dst_vbuid, Rwx::READ_WRITE).unwrap();

        let mut src_model: Vec<u64> = (0..32).collect();
        let mut dst_model: Vec<u64> = (0..32).collect();
        for (page, value, to_src) in writes {
            if to_src {
                client.store_u64(src.at(page * 4096), value).unwrap();
                src_model[page as usize] = value;
            } else {
                let addr = vbi::VirtualAddress::new(dst_index, page * 4096);
                client.store_u64(addr, value).unwrap();
                dst_model[page as usize] = value;
            }
        }
        for page in 0..32u64 {
            prop_assert_eq!(
                client.load_u64(src.at(page * 4096)).unwrap(),
                src_model[page as usize]
            );
            let addr = vbi::VirtualAddress::new(dst_index, page * 4096);
            prop_assert_eq!(
                client.load_u64(addr).unwrap(),
                dst_model[page as usize]
            );
        }
    }
}

// --- telemetry histograms ---------------------------------------------------

use vbi::core::telemetry::{bucket_index, bucket_upper_bound, Histogram, HISTOGRAM_BUCKETS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging two histograms is exactly equivalent to recording both
    /// sample streams into one: same buckets, count, sum, max, and
    /// therefore same percentiles.
    #[test]
    fn histogram_merge_equals_combined_recording(
        a in prop::collection::vec(any::<u64>(), 0..200),
        b in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut combined = Histogram::new();
        for &v in &a {
            ha.record(v);
            combined.record(v);
        }
        for &v in &b {
            hb.record(v);
            combined.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), combined.count());
        prop_assert_eq!(ha.sum(), combined.sum());
        prop_assert_eq!(ha.max(), combined.max());
        for i in 0..HISTOGRAM_BUCKETS {
            prop_assert_eq!(ha.bucket(i), combined.bucket(i), "bucket {} diverged", i);
        }
        for p in [50.0, 90.0, 99.0, 99.9] {
            prop_assert_eq!(ha.percentile(p), combined.percentile(p));
        }
    }

    /// Percentile is monotone non-decreasing in p, bounded by the exact
    /// max, and 0 on an empty histogram.
    #[test]
    fn histogram_percentile_monotone_in_p(
        samples in prop::collection::vec(0u64..1 << 40, 0..300),
        // Per-mille points, sorted below: f64 strategies aren't in the
        // vendored proptest, so drive p through integers.
        ps_mille in prop::collection::vec(0u32..1001, 2..8),
    ) {
        let mut h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut ps_mille = ps_mille;
        ps_mille.sort_unstable();
        let mut prev = 0u64;
        for &pm in &ps_mille {
            let p = f64::from(pm) / 10.0;
            let q = h.percentile(p);
            prop_assert!(q >= prev, "percentile({}) = {} < {}", p, q, prev);
            prop_assert!(q <= h.max());
            prev = q;
        }
        if samples.is_empty() {
            prop_assert_eq!(h.percentile(50.0), 0);
        }
    }

    /// Log-bucket boundaries are exact at powers of two: bucket i covers
    /// [2^(i-1), 2^i - 1], so every 2^k starts a fresh bucket (2^k - 1
    /// lands one bucket lower) and the bucket's upper bound is 2^(k+1) - 1.
    /// A stream of identical power-of-two samples reports that power
    /// exactly at every percentile (the tail bucket reports the true max).
    #[test]
    fn histogram_bucket_boundaries_exact_at_powers_of_two(k in 0u32..40, n in 1u64..64) {
        let v = 1u64 << k;
        prop_assert_eq!(bucket_index(v), bucket_index(v - 1) + 1);
        prop_assert_eq!(bucket_upper_bound(bucket_index(v)), 2 * v - 1);
        if k >= 1 {
            prop_assert_eq!(bucket_index(v + 1), bucket_index(v));
        }
        let mut h = Histogram::new();
        for _ in 0..n {
            h.record(v);
        }
        prop_assert_eq!(h.bucket(bucket_index(v)), n);
        for p in [50.0, 99.0, 99.9, 100.0] {
            prop_assert_eq!(h.percentile(p), v);
        }
    }
}
