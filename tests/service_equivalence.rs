//! Equivalence proof for the concurrent service: one fixed workload trace
//! replayed through the single-owner [`vbi_core::System`] and through a
//! 1-shard [`vbi_service::VbiService`] driven by one thread yields
//! byte-identical loads and identical [`vbi_core::MtlStats`] — the
//! concurrency layer adds no observable behavior of its own.
//!
//! Beyond the fixed traces, a property-based test drives *random mixed op
//! sequences over the full [`Op`] surface* — client churn, VB
//! request/attach/detach/release, the remap family
//! (promote/clone/migrate), every load/store width, and deliberate error
//! ops — through `VbiService::submit` in one batch and through
//! `System::execute` sequentially, asserting response-for-response and
//! counter-for-counter identity. Both front ends route through the one
//! engine in `vbi_core::ops`, and this is the proof nothing diverges.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use vbi_core::ops::{Op, OpResult};
use vbi_core::system::VbHandle;
use vbi_core::{ClientId, Rwx, System, VbProperties, VbiConfig};
use vbi_service::{block_on, AsyncFront, AsyncSession, ServiceConfig, VbiService};
use vbi_sim::service_run::{replay_on_service, replay_on_system, trace_ops};
use vbi_workloads::spec::benchmark;

fn config() -> VbiConfig {
    VbiConfig { phys_frames: 1 << 16, ..VbiConfig::vbi_full() }
}

#[test]
fn system_and_single_shard_service_are_observably_identical() {
    for name in ["mcf", "sjeng", "GemsFDTD"] {
        let spec = benchmark(name).expect("known benchmark");
        let ops = trace_ops(&spec, 2020, 20_000);
        let (system_loads, system_stats) = replay_on_system(config(), &spec, &ops);
        let service = VbiService::new(ServiceConfig::single(config()));
        let (service_loads, service_stats) = replay_on_service(&service, &spec, &ops);
        assert_eq!(system_loads, service_loads, "{name}: loads must be byte-identical");
        assert_eq!(system_stats, service_stats, "{name}: MTL counters must be identical");
        assert!(system_stats.translation_requests > 0, "{name}: trace exercised the MTL");
    }
}

#[test]
fn equivalence_holds_across_config_variants() {
    // Delayed allocation off (VBI-1) and on (VBI-2/Full) take different
    // allocation paths; the service must shadow System on both.
    for variant in [VbiConfig::vbi_1, VbiConfig::vbi_2] {
        let spec = benchmark("mcf").expect("known benchmark");
        let ops = trace_ops(&spec, 77, 8_000);
        let cfg = VbiConfig { phys_frames: 1 << 16, ..variant() };
        let (system_loads, system_stats) = replay_on_system(cfg.clone(), &spec, &ops);
        let service = VbiService::new(ServiceConfig::single(cfg));
        let (service_loads, service_stats) = replay_on_service(&service, &spec, &ops);
        assert_eq!(system_loads, service_loads);
        assert_eq!(system_stats, service_stats);
    }
}

/// Generates a random but *self-consistent* op sequence over the full
/// surface: a scratch `System` executes each op as it is drawn, so the
/// generator knows which clients and VBs exist and can mix valid traffic
/// (most ops) with deliberate error ops (bad clients, bad indices,
/// out-of-range offsets, oversized requests). The recorded sequence is
/// deterministic in `seed` and replays identically on any engine front
/// end.
fn random_mixed_ops(seed: u64, len: usize, cfg: &VbiConfig) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let scratch = System::new(cfg.clone());
    // The model: live clients and the VB handles each one holds.
    let mut clients: Vec<(ClientId, Vec<VbHandle>)> = Vec::new();
    let mut ops = Vec::with_capacity(len);
    while ops.len() < len {
        let have_vb = clients.iter().any(|(_, vbs)| !vbs.is_empty());
        let roll = rng.gen_range(0u32..100);
        let op = if clients.is_empty() || roll < 5 {
            Op::CreateClient
        } else if roll < 12 {
            let client = clients[rng.gen_range(0..clients.len())].0;
            let bytes = if rng.gen_bool(0.05) {
                u64::MAX // RequestTooLarge path
            } else {
                rng.gen_range(1u64..(1 << 20))
            };
            Op::RequestVb { client, bytes, props: VbProperties::NONE, perms: Rwx::READ_WRITE }
        } else if roll < 16 && have_vb {
            // Attach a (possibly different) client to an existing VB.
            let (_, vbs) = &clients[rng.gen_range(0..clients.len())];
            if vbs.is_empty() {
                continue;
            }
            let vbuid = vbs[rng.gen_range(0..vbs.len())].vbuid;
            let client = clients[rng.gen_range(0..clients.len())].0;
            let perms = if rng.gen_bool(0.3) { Rwx::READ } else { Rwx::READ_WRITE };
            Op::Attach { client, vbuid, perms }
        } else if roll < 18 && have_vb {
            let idx = rng.gen_range(0..clients.len());
            let (client, vbs) = &clients[idx];
            if vbs.is_empty() {
                continue;
            }
            Op::Detach { client: *client, vbuid: vbs[rng.gen_range(0..vbs.len())].vbuid }
        } else if roll < 20 && have_vb {
            let idx = rng.gen_range(0..clients.len());
            let (client, vbs) = &clients[idx];
            if vbs.is_empty() {
                continue;
            }
            Op::ReleaseVb { client: *client, index: vbs[rng.gen_range(0..vbs.len())].cvt_index }
        } else if roll < 22 && clients.len() > 1 {
            Op::DestroyClient { client: clients[rng.gen_range(0..clients.len())].0 }
        } else if roll < 26 && have_vb {
            // The VB-remap family (engine promote/clone/migrate): same
            // engine path on every front end, so responses and counters
            // must stay identical through remaps too.
            let idx = rng.gen_range(0..clients.len());
            let (client, vbs) = &clients[idx];
            if vbs.is_empty() {
                continue;
            }
            let client = *client;
            let handle = vbs[rng.gen_range(0..vbs.len())];
            match rng.gen_range(0u32..3) {
                0 => Op::Promote { client, index: handle.cvt_index },
                1 => Op::CloneVb { client, index: handle.cvt_index },
                _ => {
                    // Keep migrations off the giant (promoted) classes:
                    // the copy walks every page of the class.
                    if handle.vbuid.size_class() > vbi_core::SizeClass::Mib4 {
                        continue;
                    }
                    // A 1-shard machine has exactly one valid destination;
                    // occasionally aim past it for the error path.
                    let to_shard = usize::from(rng.gen_bool(0.1));
                    Op::Migrate { client, index: handle.cvt_index, to_shard }
                }
            }
        } else if roll < 29 {
            // Deliberate error ops: ghost clients and bad indices.
            let client = if rng.gen_bool(0.5) { ClientId(60_000) } else { clients[0].0 };
            Op::LoadU64 { client, va: vbi_core::VirtualAddress::new(9_999, 0) }
        } else if have_vb {
            // Data plane on a random live (client, VB).
            let idx = rng.gen_range(0..clients.len());
            let (client, vbs) = &clients[idx];
            if vbs.is_empty() {
                continue;
            }
            let client = *client;
            let vb = vbs[rng.gen_range(0..vbs.len())];
            let span = vb.vbuid.bytes();
            // Mostly in range; occasionally off the end (error path).
            let offset = if rng.gen_bool(0.05) {
                span + rng.gen_range(0u64..64)
            } else {
                rng.gen_range(0..span.saturating_sub(8).max(1))
            };
            let va = vb.at(offset);
            match rng.gen_range(0u32..7) {
                0 => Op::LoadU64 { client, va },
                1 => Op::StoreU64 { client, va, value: rng.gen() },
                2 => Op::LoadU8 { client, va },
                3 => Op::StoreU8 { client, va, value: rng.gen() },
                4 => Op::LoadBytes { client, va, len: rng.gen_range(0usize..200) },
                5 => {
                    let n = rng.gen_range(0usize..200);
                    let data: Vec<u8> = (0..n).map(|_| rng.gen::<u8>()).collect();
                    Op::StoreBytes { client, va, data }
                }
                _ => Op::Access { client, va, kind: vbi_core::AccessKind::Read },
            }
        } else {
            continue;
        };
        // Execute on the scratch machine to keep the model truthful.
        let result = scratch.execute(op.clone());
        match (&op, &result) {
            (Op::CreateClient, Ok(out)) => {
                clients.push((out.as_client().expect("client op"), Vec::new()));
            }
            (Op::RequestVb { client, .. }, Ok(out)) => {
                let handle = out.as_handle().expect("handle op");
                let entry = clients.iter_mut().find(|(c, _)| c == client).expect("live");
                entry.1.push(handle);
            }
            (Op::Attach { client, vbuid, .. }, Ok(out)) => {
                let index = out.as_cvt_index().expect("index op");
                let entry = clients.iter_mut().find(|(c, _)| c == client).expect("live");
                entry.1.push(VbHandle { cvt_index: index, vbuid: *vbuid });
            }
            (Op::Detach { client, vbuid }, Ok(_)) => {
                let entry = clients.iter_mut().find(|(c, _)| c == client).expect("live");
                if let Some(pos) = entry.1.iter().position(|h| h.vbuid == *vbuid) {
                    entry.1.remove(pos);
                }
            }
            (Op::ReleaseVb { client, index }, Ok(_)) => {
                let entry = clients.iter_mut().find(|(c, _)| c == client).expect("live");
                entry.1.retain(|h| h.cvt_index != *index);
            }
            (Op::DestroyClient { client }, Ok(_)) => {
                clients.retain(|(c, _)| c != client);
            }
            (Op::Promote { client, index }, Ok(out))
            | (Op::Migrate { client, index, .. }, Ok(out)) => {
                // The remap redirected *every* CVT entry naming the old VB:
                // mirror it across all clients' handles in the model.
                let new = out.as_handle().expect("handle op").vbuid;
                let old = clients
                    .iter()
                    .find(|(c, _)| c == client)
                    .expect("live")
                    .1
                    .iter()
                    .find(|h| h.cvt_index == *index)
                    .map(|h| h.vbuid);
                if let Some(old) = old {
                    for (_, vbs) in clients.iter_mut() {
                        for h in vbs.iter_mut() {
                            if h.vbuid == old {
                                h.vbuid = new;
                            }
                        }
                    }
                }
            }
            (Op::CloneVb { client, .. }, Ok(out)) => {
                let handle = out.as_handle().expect("handle op");
                let entry = clients.iter_mut().find(|(c, _)| c == client).expect("live");
                entry.1.push(handle);
            }
            _ => {}
        }
        ops.push(op);
    }
    ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole property: a random mixed op sequence over the FULL
    /// surface produces identical responses and identical MtlStats whether
    /// it runs sequentially through `System::execute` or as one
    /// `VbiService::submit` batch on a 1-shard service.
    #[test]
    fn submit_over_full_surface_matches_system(seed in any::<u64>(), len in 1usize..150) {
        let cfg = VbiConfig { phys_frames: 1 << 16, ..VbiConfig::vbi_full() };
        let ops = random_mixed_ops(seed, len, &cfg);

        let system = System::new(cfg.clone());
        let system_responses: Vec<OpResult> =
            ops.iter().map(|op| system.execute(op.clone())).collect();

        let service = VbiService::new(ServiceConfig::single(cfg));
        let service_responses = service.submit(&ops);

        prop_assert_eq!(&system_responses, &service_responses,
            "responses diverged (seed {})", seed);
        prop_assert_eq!(system.mtl().stats(), service.stats(),
            "MTL counters diverged (seed {})", seed);
    }

    /// The same sequences, executed op-by-op through `VbiService::execute`
    /// (the queue workers' path) instead of one batch — the async front
    /// end's execution semantics equal the synchronous adapter's too.
    #[test]
    fn op_by_op_service_matches_system(seed in any::<u64>(), len in 1usize..100) {
        let cfg = VbiConfig { phys_frames: 1 << 16, ..VbiConfig::vbi_full() };
        let ops = random_mixed_ops(seed, len, &cfg);

        let system = System::new(cfg.clone());
        let service = VbiService::new(ServiceConfig::single(cfg));
        for op in &ops {
            let want = system.execute(op.clone());
            prop_assert_eq!(&want, &service.execute(op.clone()),
                "op {:?} diverged op-by-op (seed {})", op, seed);
        }
        prop_assert_eq!(system.mtl().stats(), service.stats());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The same random full-surface sequences, this time *awaited* through
    /// the waker-driven front end: every op carrying a client runs on that
    /// client's [`AsyncSession`] (minted on first use), the rest go through
    /// [`AsyncFront::execute`] — all sequentially under [`block_on`], so
    /// execution order matches the System replay. Responses and `MtlStats`
    /// must be identical: the async tag space, the waker registry, and the
    /// per-session budget add no observable behavior of their own.
    #[test]
    fn async_sessions_match_system(seed in any::<u64>(), len in 1usize..100) {
        use std::collections::HashMap;

        let cfg = VbiConfig { phys_frames: 1 << 16, ..VbiConfig::vbi_full() };
        let ops = random_mixed_ops(seed, len, &cfg);

        let system = System::new(cfg.clone());
        let front = AsyncFront::new(ServiceConfig::single(cfg));
        let mut sessions: HashMap<ClientId, AsyncSession> = HashMap::new();
        for op in &ops {
            let want = system.execute(op.clone());
            let got = match op.client() {
                // A tiny budget (2) on every session: the equivalence must
                // hold regardless of how tightly submissions are throttled.
                Some(client) => {
                    let session =
                        sessions.entry(client).or_insert_with(|| front.session_for(client, 2));
                    block_on(session.run(op.clone()))
                }
                None => block_on(front.execute(op.clone())),
            };
            prop_assert_eq!(&want, &got,
                "op {:?} diverged on the async front end (seed {})", op, seed);
        }
        prop_assert_eq!(system.mtl().stats(), front.service().stats(),
            "MTL counters diverged through AsyncSession (seed {})", seed);
        prop_assert_eq!(front.outstanding(), 0usize, "a waker entry leaked");
        prop_assert_eq!(front.queue().in_flight(), 0u64);
        prop_assert!(front.queue().try_reap().is_none(),
            "async completions must never reach the synchronous CQ");
    }

    /// The full-surface equivalence again, but with physical memory capped
    /// far below the traffic's working set so the sequences continuously
    /// run the evict/write-back/fault-in engine path. The pressure logic
    /// lives once in `vbi_core::ops`, so responses AND `MtlStats` —
    /// including `evictions`, `writebacks`, and `faults_in` — must stay
    /// identical between `System` and a 1-shard service.
    #[test]
    fn submit_under_pressure_matches_system(seed in any::<u64>(), len in 1usize..120) {
        let cfg = VbiConfig { phys_frames: 64, ..VbiConfig::vbi_full() };
        let ops = random_mixed_ops(seed, len, &cfg);

        let system = System::new(cfg.clone());
        let system_responses: Vec<OpResult> =
            ops.iter().map(|op| system.execute(op.clone())).collect();

        // A 1-shard service must shadow System under pressure (the
        // sibling-borrow fallback is multi-shard-only and must not fire).
        let service = VbiService::new(ServiceConfig::single(cfg));
        let service_responses = service.submit(&ops);

        prop_assert_eq!(&system_responses, &service_responses,
            "responses diverged under pressure (seed {})", seed);
        prop_assert_eq!(system.mtl().stats(), service.stats(),
            "pressure counters diverged (seed {})", seed);
        prop_assert_eq!(service.frames_borrowed(), 0u64,
            "a single-shard service must never borrow");
    }
}

#[test]
fn oversubscribed_sequence_evicts_identically_on_both_engines() {
    // A fixed sequence that demonstrably overruns the frame budget — four
    // VBs, 256 touched pages against 160 frames — must engage the
    // evict/fault-in machinery on both engines, return the exact values
    // written (ground truth, not just mutual agreement), and keep every
    // counter identical. An equivalence test that never evicts would prove
    // nothing about the pressure path.
    let cfg = VbiConfig { phys_frames: 160, ..VbiConfig::vbi_full() };
    let scratch = System::new(cfg.clone());
    let client = scratch.create_client().unwrap().id();

    let value = |round: u64, vb: u64, page: u64| (round << 32) | (vb << 16) | page;
    let mut ops = vec![Op::CreateClient];
    for _ in 0..4 {
        ops.push(Op::RequestVb {
            client,
            bytes: 256 << 10,
            props: VbProperties::NONE,
            perms: Rwx::READ_WRITE,
        });
    }
    for round in 0..2u64 {
        for vb in 0..4u64 {
            for page in 0..64u64 {
                ops.push(Op::StoreU64 {
                    client,
                    va: vbi_core::VirtualAddress::new(vb as usize, page << 12),
                    value: value(round, vb, page),
                });
            }
        }
    }
    let verify_from = ops.len();
    for vb in 0..4u64 {
        for page in 0..64u64 {
            ops.push(Op::LoadU64 {
                client,
                va: vbi_core::VirtualAddress::new(vb as usize, page << 12),
            });
        }
    }

    let system = System::new(cfg.clone());
    let system_responses: Vec<OpResult> = ops.iter().map(|op| system.execute(op.clone())).collect();

    let service = VbiService::new(ServiceConfig::single(cfg));
    let service_responses = service.submit(&ops);

    assert_eq!(system_responses, service_responses);
    for (i, response) in system_responses[verify_from..].iter().enumerate() {
        let (vb, page) = (i as u64 / 64, i as u64 % 64);
        assert_eq!(
            response.as_ref().ok().and_then(|out| out.as_u64()),
            Some(value(1, vb, page)),
            "vb {vb} page {page} lost its final write"
        );
    }
    let stats = system.mtl().stats();
    assert_eq!(stats, service.stats());
    assert!(stats.evictions > 0, "sequence must engage the pressure path: {stats:?}");
    assert!(stats.faults_in > 0, "swapped pages must fault back in: {stats:?}");
}

#[test]
fn sharding_changes_counters_but_never_bytes() {
    // A 4-shard service partitions VBs differently (per-shard VBID slices,
    // per-shard TLBs), so counters may legitimately differ from System —
    // but every loaded value must still be identical: sharding is invisible
    // to data.
    let spec = benchmark("mcf").expect("known benchmark");
    let ops = trace_ops(&spec, 2020, 20_000);
    let (system_loads, _) = replay_on_system(config(), &spec, &ops);
    let service = VbiService::new(ServiceConfig::new(4, config()));
    let (service_loads, stats) = replay_on_service(&service, &spec, &ops);
    assert_eq!(system_loads, service_loads, "sharding must not change data");
    assert!(stats.translation_requests > 0);
}

/// The unified snapshot reports identical op accounting no matter which
/// front end carried the traffic: the same mixed sequence run through
/// `System::execute`, one `VbiService::submit` batch, and tag-at-a-time
/// submissions on a `VbiQueue` yields the same per-kind op counts and
/// error counts and the same merged MTL counters — only the front-end
/// label (and the sampled latency distributions) may differ.
#[test]
fn snapshot_agrees_across_all_three_front_ends() {
    use vbi_core::telemetry::{OpKind, Snapshot};
    use vbi_service::VbiQueue;

    fn op_counts(snap: &Snapshot) -> Vec<(OpKind, u64, u64)> {
        snap.ops.iter().filter(|o| o.count > 0).map(|o| (o.kind, o.count, o.errors)).collect()
    }

    let cfg = config();
    let ops = random_mixed_ops(4242, 400, &cfg);

    let system = System::new(cfg.clone());
    for op in &ops {
        let _ = system.execute(op.clone());
    }

    let service = VbiService::new(ServiceConfig::single(cfg.clone()));
    let _ = service.submit(&ops);

    // One op in flight at a time keeps the async front end's execution
    // order — and therefore its error accounting — identical to the
    // sequential replays above.
    let queue = VbiQueue::new(ServiceConfig::single(cfg));
    for (tag, op) in ops.iter().enumerate() {
        queue.submit(tag as u64, op.clone());
        assert!(queue.reap().is_some(), "queue dropped a completion");
    }

    let sys = system.snapshot();
    let svc = service.snapshot();
    let q = queue.snapshot();
    assert_eq!(sys.front_end, "system");
    assert_eq!(svc.front_end, "service");
    assert_eq!(q.front_end, "queue");
    assert_eq!(sys.total_ops(), ops.len() as u64, "system records every op exactly once");
    assert_eq!(op_counts(&sys), op_counts(&svc), "system vs service snapshot accounting");
    assert_eq!(op_counts(&sys), op_counts(&q), "system vs queue snapshot accounting");
    assert_eq!(sys.mtl, svc.mtl, "merged MTL views diverged");
    assert_eq!(sys.mtl, q.mtl, "merged MTL views diverged");
    let activity = q.queue.expect("queue snapshot carries queue activity");
    assert_eq!(activity.completed, ops.len() as u64);
}
