//! Equivalence proof for the concurrent service (ISSUE 2 acceptance):
//! one fixed workload trace replayed through the single-owner
//! [`vbi_core::System`] and through a 1-shard [`vbi_service::VbiService`]
//! driven by one thread yields byte-identical loads and identical
//! [`vbi_core::MtlStats`] — the concurrency layer adds no observable
//! behavior of its own.

use vbi_core::VbiConfig;
use vbi_service::{ServiceConfig, VbiService};
use vbi_sim::service_run::{replay_on_service, replay_on_system, trace_ops};
use vbi_workloads::spec::benchmark;

fn config() -> VbiConfig {
    VbiConfig { phys_frames: 1 << 16, ..VbiConfig::vbi_full() }
}

#[test]
fn system_and_single_shard_service_are_observably_identical() {
    for name in ["mcf", "sjeng", "GemsFDTD"] {
        let spec = benchmark(name).expect("known benchmark");
        let ops = trace_ops(&spec, 2020, 20_000);
        let (system_loads, system_stats) = replay_on_system(config(), &spec, &ops);
        let service = VbiService::new(ServiceConfig::single(config()));
        let (service_loads, service_stats) = replay_on_service(&service, &spec, &ops);
        assert_eq!(system_loads, service_loads, "{name}: loads must be byte-identical");
        assert_eq!(system_stats, service_stats, "{name}: MTL counters must be identical");
        assert!(system_stats.translation_requests > 0, "{name}: trace exercised the MTL");
    }
}

#[test]
fn equivalence_holds_across_config_variants() {
    // Delayed allocation off (VBI-1) and on (VBI-2/Full) take different
    // allocation paths; the service must shadow System on both.
    for variant in [VbiConfig::vbi_1, VbiConfig::vbi_2] {
        let spec = benchmark("mcf").expect("known benchmark");
        let ops = trace_ops(&spec, 77, 8_000);
        let cfg = VbiConfig { phys_frames: 1 << 16, ..variant() };
        let (system_loads, system_stats) = replay_on_system(cfg.clone(), &spec, &ops);
        let service = VbiService::new(ServiceConfig::single(cfg));
        let (service_loads, service_stats) = replay_on_service(&service, &spec, &ops);
        assert_eq!(system_loads, service_loads);
        assert_eq!(system_stats, service_stats);
    }
}

#[test]
fn sharding_changes_counters_but_never_bytes() {
    // A 4-shard service partitions VBs differently (per-shard VBID slices,
    // per-shard TLBs), so counters may legitimately differ from System —
    // but every loaded value must still be identical: sharding is invisible
    // to data.
    let spec = benchmark("mcf").expect("known benchmark");
    let ops = trace_ops(&spec, 2020, 20_000);
    let (system_loads, _) = replay_on_system(config(), &spec, &ops);
    let service = VbiService::new(ServiceConfig::new(4, config()));
    let (service_loads, stats) = replay_on_service(&service, &spec, &ops);
    assert_eq!(system_loads, service_loads, "sharding must not change data");
    assert!(stats.translation_requests > 0);
}
