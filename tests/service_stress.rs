//! Concurrency stress suite for the sharded memory service: many threads
//! hammering disjoint and shared VBs through `ClientSession` handles.
//!
//! Run under `--release` in CI so real interleavings are exercised; the
//! assertions are strict (no lost writes, permissions enforced from every
//! thread, shard routing a pure function of the VBUID, epoch-validated
//! reads never stale, cache-hit reads take zero client locks) rather than
//! timing based, so the suite is deterministic in what it checks.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::thread;

use vbi::core::telemetry::OpKind;
use vbi::{AccessKind, Op, OpOutput, Rwx, VbProperties, VbiConfig, VbiError, VirtualAddress};
use vbi_service::{
    thread_shared_lock_acquisitions, AsyncFront, Cqe, Executor, ServiceConfig, VbiQueue, VbiService,
};

const THREADS: usize = 8;

fn service(shards: usize) -> VbiService {
    VbiService::new(ServiceConfig::new(
        shards,
        VbiConfig { phys_frames: 1 << 16, ..VbiConfig::vbi_full() },
    ))
}

/// Every thread owns a private client + VB and hammers it; no write may be
/// lost, and the data must still be there when the main thread attaches to
/// each VB afterwards.
#[test]
fn disjoint_vbs_lose_no_writes() {
    let svc = service(4);
    const WRITES: u64 = 400;
    let vbs: Vec<_> = thread::scope(|s| {
        let workers: Vec<_> = (0..THREADS as u64)
            .map(|t| {
                let svc = svc.clone();
                s.spawn(move || {
                    let client = svc.create_client().unwrap();
                    let vb =
                        client.request_vb(128 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
                    for i in 0..WRITES {
                        client.store_u64(vb.at(i * 8), t * 1_000_000 + i).unwrap();
                    }
                    for i in 0..WRITES {
                        assert_eq!(
                            client.load_u64(vb.at(i * 8)).unwrap(),
                            t * 1_000_000 + i,
                            "thread {t} lost write {i}"
                        );
                    }
                    vb.vbuid
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    // Cross-thread visibility: a fresh client attaches to every VB and
    // re-verifies the data written by the worker threads.
    let auditor = svc.create_client().unwrap();
    for (t, vbuid) in vbs.iter().enumerate() {
        let index = auditor.attach(*vbuid, Rwx::READ).unwrap();
        for i in [0, WRITES / 2, WRITES - 1] {
            assert_eq!(
                auditor.load_u64(VirtualAddress::new(index, i * 8)).unwrap(),
                t as u64 * 1_000_000 + i,
                "auditor saw stale data of thread {t}"
            );
        }
    }
}

/// All threads share ONE VB (true sharing, §3.4) and write disjoint
/// 8-byte slots of it; after a barrier every thread verifies every other
/// thread's slots.
#[test]
fn shared_vb_disjoint_slots_lose_no_writes() {
    let svc = service(4);
    const SLOTS: u64 = 256;
    let owner = svc.create_client().unwrap();
    let vb = owner
        .request_vb((THREADS as u64) * SLOTS * 8, VbProperties::NONE, Rwx::READ_WRITE)
        .unwrap();
    let barrier = Barrier::new(THREADS);
    thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let svc = svc.clone();
            let barrier = &barrier;
            s.spawn(move || {
                let client = svc.create_client().unwrap();
                let index = client.attach(vb.vbuid, Rwx::READ_WRITE).unwrap();
                let base = t * SLOTS * 8;
                for i in 0..SLOTS {
                    client
                        .store_u64(VirtualAddress::new(index, base + i * 8), t * 7_000 + i)
                        .unwrap();
                }
                barrier.wait();
                // Verify the whole VB, including every other thread's slots.
                for other in 0..THREADS as u64 {
                    for i in 0..SLOTS {
                        let va = VirtualAddress::new(index, other * SLOTS * 8 + i * 8);
                        assert_eq!(
                            client.load_u64(va).unwrap(),
                            other * 7_000 + i,
                            "thread {t} read a lost write of thread {other}"
                        );
                    }
                }
            });
        }
    });
}

/// Permission checks hold from every thread: read-only sharers can read
/// but never write, while the owner keeps writing concurrently.
#[test]
fn permissions_are_enforced_cross_thread() {
    let svc = service(2);
    let owner = svc.create_client().unwrap();
    let vb = owner.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
    owner.store_u64(vb.at(0), 42).unwrap();
    thread::scope(|s| {
        // Readers: loads succeed, stores are denied — every time.
        for _ in 0..THREADS {
            let svc = svc.clone();
            s.spawn(move || {
                let reader = svc.create_client().unwrap();
                let index = reader.attach(vb.vbuid, Rwx::READ).unwrap();
                let va = VirtualAddress::new(index, 0);
                for _ in 0..200 {
                    assert!(reader.load_u64(va).unwrap() >= 42);
                    match reader.store_u64(va, 0) {
                        Err(VbiError::PermissionDenied { .. }) => {}
                        other => panic!("read-only store must be denied, got {other:?}"),
                    }
                }
            });
        }
        // The owner keeps the cell monotonically increasing meanwhile.
        let writer = owner.clone();
        s.spawn(move || {
            for i in 0..200u64 {
                writer.store_u64(vb.at(0), 42 + i).unwrap();
            }
        });
    });
    // No denied store ever landed.
    assert!(owner.load_u64(vb.at(0)).unwrap() >= 42);
}

/// Shard routing is a pure function of the VBUID: every thread computes
/// the same home shard for the same VB, and traffic to a VB only ever
/// touches that shard's MTL.
#[test]
fn shard_routing_is_deterministic() {
    let svc = service(8);
    let client = svc.create_client().unwrap();
    let handles: Vec<_> = (0..16)
        .map(|_| client.request_vb(4 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap())
        .collect();
    let reference: Vec<usize> = handles.iter().map(|h| svc.shard_of(h.vbuid)).collect();
    thread::scope(|s| {
        for _ in 0..THREADS {
            let svc = svc.clone();
            let handles = &handles;
            let reference = &reference;
            s.spawn(move || {
                for (h, want) in handles.iter().zip(reference) {
                    for _ in 0..100 {
                        assert_eq!(svc.shard_of(h.vbuid), *want, "routing of {} flapped", h.vbuid);
                    }
                }
            });
        }
    });
    // Traffic isolation: touching one VB moves only its home shard's counters.
    svc.reset_stats();
    client.store_u64(handles[0].at(0), 1).unwrap();
    for (shard, stats) in svc.shard_stats().iter().enumerate() {
        if shard == reference[0] {
            assert!(stats.translation_requests > 0, "home shard idle");
        } else {
            assert_eq!(stats.translation_requests, 0, "shard {shard} saw foreign traffic");
        }
    }
}

/// The batched submit path under concurrency: threads fire batches at a
/// shared VB's disjoint slots and at private VBs simultaneously; responses
/// arrive in order and no write is lost.
#[test]
fn concurrent_batches_lose_no_writes() {
    let svc = service(4);
    const SLOTS: u64 = 128;
    let owner = svc.create_client().unwrap();
    let shared = owner
        .request_vb((THREADS as u64) * SLOTS * 8, VbProperties::NONE, Rwx::READ_WRITE)
        .unwrap();
    thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let svc = svc.clone();
            s.spawn(move || {
                let session = svc.create_client().unwrap();
                let client = session.id();
                let shared_index = session.attach(shared.vbuid, Rwx::READ_WRITE).unwrap();
                let private =
                    session.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
                let base = t * SLOTS * 8;
                let mut batch = Vec::new();
                for i in 0..SLOTS {
                    batch.push(Op::StoreU64 {
                        client,
                        va: VirtualAddress::new(shared_index, base + i * 8),
                        value: t << 32 | i,
                    });
                    batch.push(Op::StoreU64 { client, va: private.at(i * 8), value: !i });
                }
                for r in svc.submit(&batch) {
                    assert_eq!(r, Ok(OpOutput::Unit));
                }
                let reads: Vec<Op> = (0..SLOTS)
                    .flat_map(|i| {
                        [
                            Op::LoadU64 {
                                client,
                                va: VirtualAddress::new(shared_index, base + i * 8),
                            },
                            Op::LoadU64 { client, va: private.at(i * 8) },
                        ]
                    })
                    .collect();
                let responses = svc.submit(&reads);
                for (i, pair) in responses.chunks(2).enumerate() {
                    let i = i as u64;
                    assert_eq!(pair[0], Ok(OpOutput::U64(t << 32 | i)), "thread {t} slot {i}");
                    assert_eq!(pair[1], Ok(OpOutput::U64(!i)), "thread {t} private slot {i}");
                }
            });
        }
    });
}

/// The completion-queue front end under fire: many submitter threads
/// pipeline tagged mixed ops (data plane + client churn) through one
/// [`VbiQueue`] while per-shard workers execute and every thread reaps
/// concurrently. Exactly one completion must come back per submission —
/// no lost, duplicated, or cross-wired tags — and every op's outcome must
/// be the expected one.
#[test]
fn queue_loses_no_completions() {
    const OPS_PER_THREAD: u64 = 300;
    let queue = VbiQueue::new(ServiceConfig::new(
        4,
        VbiConfig { phys_frames: 1 << 16, ..VbiConfig::vbi_full() },
    ));
    let reaped: Vec<Vec<Cqe>> = thread::scope(|s| {
        let workers: Vec<_> = (0..THREADS as u64)
            .map(|t| {
                let queue = &queue;
                s.spawn(move || {
                    // Synchronous setup: pipelined ops must not depend on
                    // unreaped completions.
                    let session = queue.create_client().unwrap();
                    let client = session.id();
                    let vb =
                        session.request_vb(128 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
                    let mut mine = Vec::new();
                    for i in 0..OPS_PER_THREAD {
                        let tag = (t << 32) | i;
                        let op = match i % 4 {
                            0 => Op::StoreU64 { client, va: vb.at((i % 64) * 8), value: t + i },
                            1 => Op::LoadU64 { client, va: vb.at((i % 64) * 8) },
                            2 => Op::StoreU8 { client, va: vb.at(4096 + i), value: t as u8 },
                            // An invalid index: errors must flow back as
                            // completions too.
                            _ => Op::LoadU64 { client, va: VirtualAddress::new(5000, 0) },
                        };
                        queue.submit(tag, op);
                        // Reap opportunistically so the rings stay shallow;
                        // completions may belong to any thread.
                        if let Some(cqe) = queue.try_reap() {
                            mine.push(cqe);
                        }
                    }
                    mine
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    // Drain what nobody reaped, then account for every single tag.
    let mut all: Vec<Cqe> = reaped.into_iter().flatten().collect();
    all.extend(queue.drain());
    assert_eq!(all.len(), THREADS * OPS_PER_THREAD as usize, "completion count mismatch");
    let mut seen = HashSet::new();
    for cqe in &all {
        assert!(seen.insert(cqe.tag), "tag {} completed twice", cqe.tag);
        let i = cqe.tag & 0xffff_ffff;
        match i % 4 {
            0 | 2 => assert_eq!(cqe.result, Ok(OpOutput::Unit), "store {i} failed"),
            1 => assert!(matches!(cqe.result, Ok(OpOutput::U64(_))), "load {i} failed"),
            _ => assert!(
                matches!(cqe.result, Err(VbiError::InvalidCvtIndex { .. })),
                "bad-index op {i} must error"
            ),
        }
    }
    for t in 0..THREADS as u64 {
        for i in 0..OPS_PER_THREAD {
            assert!(seen.contains(&((t << 32) | i)), "tag {t}:{i} never completed");
        }
    }
}

/// Client and VB churn from many threads never leaks frames: after every
/// worker releases everything, the free-frame count returns to baseline.
#[test]
fn concurrent_churn_leaks_nothing() {
    let svc = service(4);
    let baseline = svc.free_frames();
    thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let svc = svc.clone();
            s.spawn(move || {
                for round in 0..20 {
                    let client = svc.create_client().unwrap();
                    let vb =
                        client.request_vb(128 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
                    for i in 0..16 {
                        client.store_u64(vb.at(i * 512), t * 100 + round + i).unwrap();
                    }
                    client.destroy().unwrap();
                }
            });
        }
    });
    assert_eq!(svc.free_frames(), baseline, "churn leaked physical frames");
    assert!(svc.stats().pages_allocated > 0);
}

/// The seqlock read path under attach/detach fire, seeded and byte-exact:
/// reader threads hammer `session.load_u64` through one shared session
/// while a writer thread detaches and re-attaches *different VBs at the
/// same CVT index*. Every read must observe exactly one of the two
/// epoch-consistent states — the X value, the Y value, or (in the gap
/// between detach and re-attach) a clean `InvalidCvtIndex` — never a torn
/// mix, never a value from a VB the entry no longer names.
#[test]
fn readers_never_observe_stale_translations_under_attach_detach() {
    const X_VALUE: u64 = 0xAAAA_AAAA_AAAA_AAAA;
    const Y_VALUE: u64 = 0xBBBB_BBBB_BBBB_BBBB;
    const READS_PER_THREAD: u64 = 30_000; // seeded, deterministic workload size
    const SWAPS: u64 = 2_000;

    let svc = service(4);
    let session = svc.create_client().unwrap();
    // Two VBs with distinct, constant contents.
    let x = session.request_vb(4 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
    let y = session.request_vb(4 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
    session.store_u64(x.at(0), X_VALUE).unwrap();
    session.store_u64(y.at(0), Y_VALUE).unwrap();
    // The contested entry: a dedicated index that the writer retargets
    // between X and Y for the whole run.
    let contested = session.attach(x.vbuid, Rwx::READ).unwrap();
    let va = VirtualAddress::new(contested, 0);

    let stop = AtomicBool::new(false);
    thread::scope(|s| {
        // Writer: detach the contested entry (by index — the original
        // read-write attachments keep both VBs referenced and alive) and
        // re-attach the other VB at the same index — each step bumps the
        // client's epoch and invalidates the published cache slot.
        let writer = session.clone();
        let stop_flag = &stop;
        s.spawn(move || {
            for swap in 0..SWAPS {
                writer.release_vb(contested).unwrap();
                let next = if swap % 2 == 0 { y.vbuid } else { x.vbuid };
                writer.attach_at(contested, next, Rwx::READ).unwrap();
            }
            stop_flag.store(true, Ordering::Release);
        });
        // Readers: every load must be byte-exact pre- or post-epoch state.
        for t in 0..4u64 {
            let reader = session.clone();
            let stop_flag = &stop;
            s.spawn(move || {
                let mut reads = 0u64;
                while reads < READS_PER_THREAD && !stop_flag.load(Ordering::Acquire) {
                    match reader.load_u64(va) {
                        Ok(value) => assert!(
                            value == X_VALUE || value == Y_VALUE,
                            "thread {t}: torn/stale read {value:#x}"
                        ),
                        // The gap between detach and re-attach.
                        Err(VbiError::InvalidCvtIndex { .. }) => {}
                        Err(other) => panic!("thread {t}: unexpected error {other}"),
                    }
                    reads += 1;
                }
            });
        }
    });
    // The contested entry still resolves after the dust settles.
    let final_value = session.load_u64(va).unwrap();
    assert!(final_value == X_VALUE || final_value == Y_VALUE);
}

/// The remap acceptance proof: a VB migrated between shards (and a second
/// VB promoted through size classes) under concurrent lock-free readers
/// loses no writes and never exposes a torn CVT entry. Readers assert
/// *byte-exact pre/post states only* — every load either observes the
/// pattern written before the churn or transiently raced the remap
/// handover (a clean `VbNotEnabled` in the drained source's disable
/// window, or its afterlife if the freed VBUID was re-placed), which a
/// bounded retry resolves; a value that stays wrong is a lost write and
/// fails the test. Each remap bumps the client's seqlock epoch, which the
/// cache-miss counter (the forced fallbacks) observes, alongside any torn
/// snapshots the rewrite races produce.
#[test]
fn migration_under_lockfree_readers_is_byte_exact() {
    const SLOTS: u64 = 32;
    const MIGRATIONS: usize = 120;
    const PROMOTIONS: usize = 3;
    const READERS: usize = 4;
    const READS_PER_THREAD: usize = 20_000;
    let pattern = |slot: u64| 0xFACE_0000_0000_0000u64 | (slot * 0x0101);

    let svc = service(4);
    let session = svc.create_client().unwrap();
    // The migrating VB: constant pattern, warm published cache.
    let vb = session.request_vb(128 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
    for slot in 0..SLOTS {
        session.store_u64(vb.at(slot * 8), pattern(slot)).unwrap();
    }
    // The promoting VB: grows a size class per churn round.
    let small = session.request_vb(4 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
    session.store_u64(small.at(0), 0xB00C_0000_0000_0001).unwrap();
    session.load_u64(vb.at(0)).unwrap();
    session.load_u64(small.at(0)).unwrap();
    let cache_before = session.cvt_cache_stats().unwrap();

    let homes = thread::scope(|s| {
        // Churn: migrate `vb` round-robin across all shards, interleaving a
        // few promotions of `small` — the whole remap family racing the
        // lock-free read path.
        let churn = {
            let session = session.clone();
            let svc = svc.clone();
            s.spawn(move || {
                let mut homes = HashSet::new();
                homes.insert(svc.shard_of(vb.vbuid));
                for m in 0..MIGRATIONS {
                    let moved = session.migrate(vb.cvt_index, m % svc.shards()).unwrap();
                    homes.insert(svc.shard_of(moved.vbuid));
                    if m < PROMOTIONS {
                        session.promote(small.cvt_index).unwrap();
                    }
                }
                homes
            })
        };
        for t in 0..READERS {
            let reader = session.clone();
            s.spawn(move || {
                for i in 0..READS_PER_THREAD {
                    let (va, want) = if i % 4 == 0 {
                        (small.at(0), 0xB00C_0000_0000_0001)
                    } else {
                        let slot = (i as u64).wrapping_mul(13) % SLOTS;
                        (vb.at(slot * 8), pattern(slot))
                    };
                    let mut attempts = 0;
                    loop {
                        match reader.load_u64(va) {
                            Ok(v) if v == want => break,
                            outcome => {
                                // Transient: the drained source's disable
                                // window, or a stale snapshot the epoch
                                // bump is about to invalidate. Must
                                // converge; anything persistent is a lost
                                // write or torn entry.
                                attempts += 1;
                                assert!(
                                    attempts < 10_000,
                                    "reader {t}: {va} stuck at {outcome:?}, want {want:#x}"
                                );
                                thread::yield_now();
                            }
                        }
                    }
                }
            });
        }
        churn.join().unwrap()
    });

    // The VB really moved between shards, and the post state is byte-exact
    // through the same (never-changing) CVT indices.
    assert!(homes.len() > 1, "migration never left the home shard: {homes:?}");
    for slot in 0..SLOTS {
        assert_eq!(session.load_u64(vb.at(slot * 8)).unwrap(), pattern(slot), "slot {slot}");
    }
    assert_eq!(session.load_u64(small.at(0)).unwrap(), 0xB00C_0000_0000_0001);
    let stats = svc.stats();
    assert_eq!(stats.vbs_migrated, MIGRATIONS as u64);
    assert_eq!(stats.promotions, PROMOTIONS as u64);
    // Epoch bumps were observed: every remap invalidates the published
    // slot, so readers demonstrably fell back to the authoritative path
    // (counted as misses; torn snapshots additionally as torn_retries).
    let cache_after = session.cvt_cache_stats().unwrap();
    assert!(
        cache_after.misses > cache_before.misses,
        "remaps must force epoch-bump fallbacks ({} -> {})",
        cache_before.misses,
        cache_after.misses
    );
    assert!(cache_after.lockfree_hits > cache_before.lockfree_hits, "readers ran lock-free");
    assert!(cache_after.torn_retries >= cache_before.torn_retries);

    // The unified snapshot agrees with the surfaces it unifies: per-kind op
    // counts are exact (latency is sampled; counters are not), the stripe
    // counts partition the op total, and the snapshot's merged MTL view
    // matches `stats()`.
    let snap = svc.snapshot();
    assert_eq!(snap.op(OpKind::Migrate).unwrap().count, MIGRATIONS as u64);
    assert_eq!(snap.op(OpKind::Promote).unwrap().count, PROMOTIONS as u64);
    assert_eq!(
        snap.ops_per_stripe.iter().sum::<u64>(),
        snap.total_ops(),
        "stripe counts must partition the op total"
    );
    assert_eq!(snap.mtl.vbs_migrated, stats.vbs_migrated);
    assert_eq!(snap.mtl.promotions, stats.promotions);
}

/// The acceptance-criterion proof: once the CVT cache is warm, reads
/// through `ClientSession` clones on many threads perform **zero**
/// client-mutex acquisitions — the client-lock counter does not move, and
/// every one of those reads is accounted as a lock-free hit.
#[test]
fn warm_cache_hit_reads_take_zero_client_locks() {
    const READERS: usize = 8;
    const READS_PER_THREAD: usize = 5_000;

    let svc = service(4);
    let session = svc.create_client().unwrap();
    let vbs: Vec<_> = (0..8)
        .map(|i| {
            let vb = session.request_vb(4 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
            session.store_u64(vb.at(0), i).unwrap();
            vb
        })
        .collect();
    // Warm: one read per index fills the published cache (locked fills).
    for vb in &vbs {
        session.load_u64(vb.at(0)).unwrap();
    }

    let locks_before = svc.client_lock_acquisitions(session.id()).unwrap();
    let hits_before = session.cvt_cache_stats().unwrap().lockfree_hits;
    thread::scope(|s| {
        for t in 0..READERS {
            let reader = session.clone();
            let vbs = &vbs;
            s.spawn(move || {
                for i in 0..READS_PER_THREAD {
                    let pick = (i + t) % vbs.len();
                    assert_eq!(reader.load_u64(vbs[pick].at(0)).unwrap(), pick as u64);
                }
            });
        }
    });
    let locks_after = svc.client_lock_acquisitions(session.id()).unwrap();
    let hits_after = session.cvt_cache_stats().unwrap().lockfree_hits;

    assert_eq!(
        locks_after, locks_before,
        "cache-hit reads must perform zero client-mutex acquisitions"
    );
    assert_eq!(
        hits_after - hits_before,
        (READERS * READS_PER_THREAD) as u64,
        "every read must be a lock-free hit"
    );
}

/// Memory pressure under concurrent lock-free readers, byte-exact: the
/// combined working set is several times the frame budget, so every shard
/// must continuously evict and fault pages while 8 threads write their own
/// VBs and read a shared one through the seqlock path. No write may be
/// lost, the fault counters must be consistent, and tearing everything
/// down must leak neither frames nor backing-store slots.
#[test]
fn pressure_under_lockfree_readers_is_byte_exact() {
    // 8 x 32 private pages + 16 shared pages ≈ 272 data pages against
    // 192 frames (96 per shard): sustained oversubscription.
    let svc = VbiService::new(ServiceConfig::new(
        2,
        VbiConfig { phys_frames: 192, ..VbiConfig::vbi_full() },
    ));
    let baseline = svc.free_frames();

    let owner = svc.create_client().unwrap();
    let shared = owner.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
    for page in 0..16u64 {
        owner.store_u64(shared.at(page << 12), 0xbeef_0000 + page).unwrap();
    }

    const ROUNDS: u64 = 6;
    // Workers hand their live sessions back instead of destroying them:
    // were each client torn down as its thread finished, a fully
    // serialized schedule would free every VB before the next one filled,
    // the footprint would never exceed the frame budget, and the eviction
    // assertions below would be timing-dependent. Keeping all 8 VBs alive
    // makes the oversubscription — and therefore the eviction — certain.
    let workers: Vec<_> = thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS as u64)
            .map(|t| {
                let svc = svc.clone();
                let shared_vbuid = shared.vbuid;
                s.spawn(move || {
                    let client = svc.create_client().unwrap();
                    let vb =
                        client.request_vb(128 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
                    let shared_idx = client.attach(shared_vbuid, Rwx::READ).unwrap();
                    for round in 0..ROUNDS {
                        for page in 0..32u64 {
                            let value = (t << 32) | (round << 16) | page;
                            client.store_u64(vb.at(page << 12), value).unwrap();
                        }
                        // Lock-free reads of the shared VB interleave with the
                        // pressure traffic; its pages may be swapped at any
                        // moment, so these reads exercise fault-in + the
                        // published-cache invalidation path.
                        for page in 0..16u64 {
                            assert_eq!(
                                client
                                    .load_u64(VirtualAddress::new(shared_idx, page << 12))
                                    .unwrap(),
                                0xbeef_0000 + page,
                                "thread {t} round {round} saw torn shared data"
                            );
                        }
                        for page in 0..32u64 {
                            let want = (t << 32) | (round << 16) | page;
                            assert_eq!(
                                client.load_u64(vb.at(page << 12)).unwrap(),
                                want,
                                "thread {t} round {round} lost page {page}"
                            );
                        }
                    }
                    (client, vb)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Shared data survived the storm.
    for page in 0..16u64 {
        assert_eq!(owner.load_u64(shared.at(page << 12)).unwrap(), 0xbeef_0000 + page);
    }
    // Every worker's final round is still byte-exact with the whole
    // 272-page working set alive against 192 frames.
    for (t, (client, vb)) in workers.iter().enumerate() {
        for page in 0..32u64 {
            let want = ((t as u64) << 32) | ((ROUNDS - 1) << 16) | page;
            assert_eq!(
                client.load_u64(vb.at(page << 12)).unwrap(),
                want,
                "thread {t} final state lost page {page}"
            );
        }
    }

    let stats = svc.stats();
    assert!(stats.evictions > 0, "oversubscription must evict: {stats:?}");
    assert!(stats.writebacks > 0, "dirty evictions must write back: {stats:?}");
    assert!(stats.faults_in > 0, "swapped pages must fault back in: {stats:?}");
    assert_eq!(
        stats.faults_in, stats.pages_swapped_in,
        "every fault-in is a swap-in and vice versa: {stats:?}"
    );
    assert!(
        stats.evictions <= stats.pages_swapped_out,
        "policy evictions are a subset of swap-outs: {stats:?}"
    );

    // Snapshot invariants under the storm: the unified snapshot's MTL view
    // matches `stats()`, the stripes partition the exact op total, and the
    // deterministic data-plane schedule is fully accounted — every store
    // (owner 16 + 8 workers x 6 rounds x 32 pages) and every load (in-round
    // 16 shared + 32 private per worker round, plus the 16 + 8 x 32
    // verification reads above) lands in the registry exactly once.
    let snap = svc.snapshot();
    assert_eq!(snap.mtl.faults_in, stats.faults_in, "snapshot MTL view must match stats()");
    assert_eq!(
        snap.ops_per_stripe.iter().sum::<u64>(),
        snap.total_ops(),
        "stripe counts must partition the op total"
    );
    let stores = 16 + (THREADS as u64) * ROUNDS * 32;
    let loads = (THREADS as u64) * ROUNDS * (16 + 32) + 16 + (THREADS as u64) * 32;
    assert_eq!(snap.op(OpKind::StoreU64).unwrap().count, stores, "stores under-counted");
    assert_eq!(snap.op(OpKind::LoadU64).unwrap().count, loads, "loads under-counted");

    // Teardown leaks nothing: all frames return and the backing store holds
    // only the owner's possibly-swapped shared pages until it too goes.
    for (client, _) in workers {
        client.destroy().unwrap();
    }
    owner.destroy().unwrap();
    assert_eq!(svc.free_frames(), baseline, "pressure traffic leaked frames");
    assert_eq!(svc.swap_occupancy(), 0, "teardown left orphan backing-store slots");
}

/// The tentpole acceptance proof: a CVT-cache-hit read takes **zero**
/// shared-lock acquisitions end to end — not just zero *client* locks,
/// but zero acquisitions of *any* counted service mutex (map shard,
/// client state, MTL shard, allocator) — even while other threads churn
/// clients through create/destroy on the same map shards. The per-thread
/// census in [`vbi_service::thread_shared_lock_acquisitions`] counts
/// every acquisition the calling thread makes through the service's one
/// counted-lock funnel, so a delta of exactly zero across a reader's
/// whole run is a machine-checked proof, not a sampling argument.
///
/// The readers use `access` (the protection check alone): a checked
/// access resolves the client through the epoch-validated published map,
/// probes the seqlock CVT cache inside the same generation window, and
/// never touches an MTL. Churn on *other* clients may force generation
/// retries — spins, never locks — which is exactly the property the
/// sharded map was built for.
#[test]
fn cache_hit_reads_take_zero_shared_locks_under_churn() {
    const READERS: usize = 8;
    const CHURNERS: u64 = 2;
    const READS_PER_THREAD: usize = 5_000;

    let svc = service(4);
    let session = svc.create_client().unwrap();
    let vb = session.request_vb(4 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
    session.store_u64(vb.at(0), 7).unwrap();
    // Warm: the store's own check filled the published cache; prove it.
    assert!(
        session.access(vb.at(0), AccessKind::Read).unwrap().cvt_cache_hit,
        "the published cache must be warm before the measured run"
    );

    let map_before = svc.client_map_stats();
    let stop = AtomicBool::new(false);
    thread::scope(|s| {
        // Churn: create/destroy clients (with a live VB each, so destroy
        // walks the full teardown) against the same 16 map shards the
        // reader's client lives in. Every insert and remove bumps a map
        // generation under the authoritative mutex.
        for t in 0..CHURNERS {
            let svc = svc.clone();
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let churn = svc.create_client().unwrap();
                    let cvb =
                        churn.request_vb(4 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
                    churn.store_u64(cvb.at(0), t).unwrap();
                    churn.destroy().unwrap();
                }
            });
        }
        // Readers: census delta over the whole run must be exactly zero.
        let readers: Vec<_> = (0..READERS)
            .map(|t| {
                let reader = session.clone();
                s.spawn(move || {
                    let before = thread_shared_lock_acquisitions();
                    for _ in 0..READS_PER_THREAD {
                        let checked = reader.access(vb.at(0), AccessKind::Read).unwrap();
                        assert!(checked.cvt_cache_hit, "reader {t} fell off the fast path");
                    }
                    let delta = thread_shared_lock_acquisitions() - before;
                    assert_eq!(
                        delta, 0,
                        "reader {t}: cache-hit reads took {delta} shared-lock acquisitions"
                    );
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Release);
    });

    // Every measured read resolved through the lock-free published table.
    let map_after = svc.client_map_stats();
    assert!(
        map_after.lockfree_hits - map_before.lockfree_hits >= (READERS * READS_PER_THREAD) as u64,
        "reads must be accounted as lock-free map hits ({} -> {})",
        map_before.lockfree_hits,
        map_after.lockfree_hits
    );
}

/// Destroy racing lock-free readers exposes only clean states: every read
/// of a client being destroyed returns either the pre-destroy value or a
/// clean post-destroy error (`VbNotEnabled` while the teardown disables
/// the VBs, `InvalidClient` once the client has left the map) — never a
/// torn value, never a dirty error, and never an `Ok` *after* that thread
/// has already observed the destruction. The map removal is destroy's
/// first step and bumps the shard generation before the slot index can be
/// recycled, so a reader that saw the teardown can never be served a
/// stale published entry again.
#[test]
fn destroy_racing_readers_observe_only_clean_states() {
    const ROUNDS: usize = 40;
    const READERS: usize = 4;

    let svc = service(2);
    for round in 0..ROUNDS {
        let victim = svc.create_client().unwrap();
        let vb = victim.request_vb(4 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        let value = 0xD00D_0000_0000_0000 | round as u64;
        victim.store_u64(vb.at(0), value).unwrap();
        victim.load_u64(vb.at(0)).unwrap(); // warm the published cache

        let barrier = Barrier::new(READERS + 1);
        thread::scope(|s| {
            for t in 0..READERS {
                let reader = victim.clone();
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    let mut destroyed = false;
                    let mut post = 0;
                    while post < 64 {
                        match reader.load_u64(vb.at(0)) {
                            Ok(v) => {
                                assert_eq!(v, value, "round {round} reader {t}: torn value");
                                assert!(
                                    !destroyed,
                                    "round {round} reader {t}: Ok after observing destroy"
                                );
                            }
                            Err(VbiError::VbNotEnabled(_) | VbiError::InvalidClient(_)) => {
                                destroyed = true;
                            }
                            Err(other) => {
                                panic!("round {round} reader {t}: dirty state {other}")
                            }
                        }
                        if destroyed {
                            post += 1;
                        }
                    }
                });
            }
            let destroyer = victim.clone();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                destroyer.destroy().unwrap();
            });
        });
    }
}

/// The regression proof for the `BENCH_pressure` setup flake (ROADMAP
/// item 6): when a store's home shard holds no reclaimable capacity —
/// every frame stranded in translation tables, no reserved slot left to
/// steal, no resident page left to evict — the engine borrows frames from
/// sibling shards instead of surfacing `OutOfPhysicalMemory`.
///
/// Construction: a 2-shard machine with 32 frames per shard and a 4 KiB
/// VB homed on shard 0. Each round strands more of shard 0 permanently:
/// cloning the VB forces table-based structures whose frames eviction can
/// never reclaim, a data store steals the last reserved-but-unused slot,
/// and `reclaim_vb_frames` swaps every resident page back out so the next
/// round's clones can strand the freed frames in tables too. The shard's
/// reclaimable capacity shrinks monotonically, so within a bounded number
/// of rounds some store finds *nothing* — free, stealable, or evictable —
/// and that store (the exact op that used to panic the pressure bench)
/// must succeed through the sibling-borrow path, never error.
#[test]
fn stranded_table_frames_borrow_capacity_from_sibling_shards() {
    let svc = VbiService::new(ServiceConfig::new(
        2,
        VbiConfig { phys_frames: 64, ..VbiConfig::vbi_full() },
    ));
    let session = svc.create_client().unwrap();

    // Home the victim VB on shard 0.
    let vb = loop {
        let vb = session.request_vb(4 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        if svc.shard_of(vb.vbuid) == 0 {
            break vb;
        }
        session.release_vb(vb.cvt_index).unwrap();
    };
    session.store_u64(vb.at(0), 0xFEED_0000_0000_0001).unwrap();
    svc.reclaim_vb_frames(session.id(), vb.cvt_index, 64).unwrap();

    let mut clones = Vec::new();
    let mut last_value = 0;
    for round in 0..64u64 {
        assert!(round < 63, "shard 0 never ran out of reclaimable capacity");
        // Strand every free frame in unreclaimable translation tables.
        loop {
            assert!(clones.len() < 200, "cloning never exhausted shard 0");
            match session.clone_vb(vb.cvt_index) {
                Ok(clone) => {
                    assert_eq!(svc.shard_of(clone.vbuid), 0, "clones share the home shard");
                    clones.push(clone);
                }
                Err(VbiError::OutOfPhysicalMemory) => break,
                Err(other) => panic!("unexpected clone failure: {other}"),
            }
        }
        assert!(!clones.is_empty(), "at least one clone must fit before exhaustion");
        // The write that used to panic `BENCH_pressure` setup. It must
        // NEVER error: it either steals/evicts shard 0's last reclaimable
        // frame (shrinking the pool for the next round) or — once nothing
        // is left — borrows from shard 1.
        last_value = 0xFEED_0000_0000_0000 | round;
        session.store_u64(clones[0].at(0), last_value).unwrap();
        if svc.frames_borrowed() > 0 {
            break;
        }
        // Swap every resident page out so the freed frames return to the
        // pool where the next round's clones strand them for good.
        svc.reclaim_vb_frames(session.id(), vb.cvt_index, 64).unwrap();
        for clone in &clones {
            svc.reclaim_vb_frames(session.id(), clone.cvt_index, 64).unwrap();
        }
    }
    assert!(svc.frames_borrowed() > 0, "the stranded store must borrow sibling capacity");
    assert_eq!(session.load_u64(clones[0].at(0)).unwrap(), last_value);
    // COW isolation: the source still reads its own (faulted-back) value.
    assert_eq!(session.load_u64(vb.at(0)).unwrap(), 0xFEED_0000_0000_0001);

    // The donor shard still serves traffic after giving frames away.
    let sibling = loop {
        let v = session.request_vb(4 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        if svc.shard_of(v.vbuid) == 1 {
            break v;
        }
        session.release_vb(v.cvt_index).unwrap();
    };
    session.store_u64(sibling.at(0), 0xD0_0D).unwrap();
    assert_eq!(session.load_u64(sibling.at(0)).unwrap(), 0xD0_0D);
}

/// The async front end's acceptance proof: 120 000 awaited ops across
/// 10 000 concurrent sessions (12 000 tasks — one fifth of the sessions
/// are shared by two tasks on a budget of 1, so backpressure *must*
/// engage) complete exactly once on a single executor thread over a
/// 4-shard queue. Exactly-once is checked three ways: the queue's
/// completion count equals submissions, every value read back is the one
/// this task last wrote (a cross-wired waker would surface another task's
/// response), and no waker-registry entry or in-flight op survives the
/// run. Depth stays bounded by the total budget, and the synchronous CQ
/// stays empty — async completions are dispatched to futures, never
/// posted.
#[test]
fn async_sessions_complete_exactly_once_under_load() {
    const SESSIONS: usize = 10_000;
    const TASKS: usize = 12_000;
    const OPS_PER_TASK: u64 = 10;

    let front = AsyncFront::new(ServiceConfig::new(
        4,
        VbiConfig { phys_frames: 1 << 16, ..VbiConfig::vbi_full() },
    ));
    let sessions: Vec<_> = (0..SESSIONS)
        .map(|_| {
            let owner = front.queue().create_client().unwrap();
            let vb = owner.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
            // Budget 1: a session shared by two tasks is permanently
            // contended, so the backpressure path runs for real.
            (front.session_for(owner.id(), 1), vb)
        })
        .collect();

    let mut executor = Executor::new();
    for task in 0..TASKS {
        let (session, vb) = &sessions[task % SESSIONS];
        let session = session.clone();
        let va = vb.at((task / SESSIONS) as u64 * 8);
        let task = task as u64;
        executor.spawn(async move {
            let mut last = 0u64;
            for i in 0..OPS_PER_TASK {
                if i % 2 == 0 {
                    last = (task << 16) | i;
                    session.store_u64(va, last).await.unwrap();
                } else {
                    let got = session.load_u64(va).await.unwrap();
                    assert_eq!(got, last, "task {task}: completion cross-wired or lost");
                }
            }
        });
    }
    executor.run();

    let total = (TASKS as u64) * OPS_PER_TASK;
    let queue = front.queue();
    assert_eq!(queue.completed(), total, "every awaited op completes exactly once");
    assert_eq!(front.outstanding(), 0, "a waker-registry entry leaked");
    assert_eq!(queue.in_flight(), 0, "an in-flight op leaked");
    assert!(queue.try_reap().is_none(), "async completions must never reach the CQ");
    assert!(queue.backpressure_waits() > 0, "shared sessions on budget 1 must park");
    assert!(
        queue.inflight_high_water() <= SESSIONS as u64,
        "in-flight depth {} exceeded the total session budget {}",
        queue.inflight_high_water(),
        SESSIONS
    );
    assert!(
        queue.depth().high_water <= SESSIONS,
        "ring occupancy {} exceeded the total session budget {}",
        queue.depth().high_water,
        SESSIONS
    );
}

/// Eight workers churn whole VBs (request → touch every page → release)
/// on a machine too small for their combined footprint, so frame
/// allocate/free traffic races eviction, sibling borrowing, and the
/// magazine frame cache simultaneously. A per-round barrier sits
/// between the stores and the release, so every round all eight
/// threads simultaneously hold a fully-populated persistent + churned
/// VB pair (8 × 64 = 512 data frames on a 448-frame machine): pages
/// leave residency only via eviction or the post-barrier release, so
/// eviction is forced by pigeonhole no matter how the scheduler
/// interleaves the threads. After every VB is released the free-frame
/// gauge must read *exactly* the machine's capacity: one stranded
/// magazine frame, one unreturned reservation, or one leaked table
/// frame fails the test.
#[test]
fn vb_churn_racing_eviction_leaks_no_frames() {
    const PHYS_FRAMES: u64 = 448;
    const ROUNDS: u64 = 40;
    let svc = VbiService::new(ServiceConfig::new(
        2,
        VbiConfig { phys_frames: PHYS_FRAMES, ..VbiConfig::vbi_full() },
    ));
    let gate = Barrier::new(THREADS);
    thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let svc = svc.clone();
            let gate = &gate;
            s.spawn(move || {
                let client = svc.create_client().unwrap();
                let persistent =
                    client.request_vb(128 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
                for round in 0..ROUNDS {
                    let vb =
                        client.request_vb(128 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
                    for page in 0..32u64 {
                        client
                            .store_u64(vb.at(page * 4096), (t << 32) | (round << 8) | page)
                            .unwrap();
                    }
                    // Keep the long-lived VB hot so eviction has to pick
                    // between it and the churned pages.
                    client
                        .store_u64(persistent.at((round % 32) * 4096), (t << 16) | round)
                        .unwrap();
                    for page in (0..32u64).step_by(7) {
                        assert_eq!(
                            client.load_u64(vb.at(page * 4096)).unwrap(),
                            (t << 32) | (round << 8) | page,
                            "thread {t} round {round} lost a churned write"
                        );
                    }
                    // All threads hold their full footprint here; only
                    // after everyone has stored does anyone release.
                    gate.wait();
                    client.release_vb(vb.cvt_index).unwrap();
                }
                client.release_vb(persistent.cvt_index).unwrap();
            });
        }
    });
    let stats = svc.stats();
    assert!(stats.evictions > 0, "the footprint must overrun physical memory");
    assert!(stats.frame_cache_hits > 0, "churn must exercise the magazines");
    assert_eq!(
        svc.free_frames(),
        PHYS_FRAMES,
        "every churned frame must return to the buddy or the magazines"
    );
}
