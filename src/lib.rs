//! # vbi — The Virtual Block Interface, reproduced in Rust
//!
//! A from-scratch reproduction of *"The Virtual Block Interface: A Flexible
//! Alternative to the Conventional Virtual Memory Framework"* (Hajinazar et
//! al., ISCA 2020), packaged as one workspace:
//!
//! * `core` ([`vbi_core`]) — the VBI framework itself: the global VBI address
//!   space and its eight size classes, virtual blocks, Client-VB Tables and
//!   CVT caches, VB Info Tables, and the hardware Memory Translation Layer
//!   with delayed allocation, flexible per-VB translation structures, and
//!   early reservation;
//! * `mem_sim` ([`vbi_mem_sim`]) — caches, DRAM/PCM/TL-DRAM timing, memory
//!   controllers (Table 1);
//! * `baselines` ([`vbi_baselines`]) — conventional x86-64 MMUs, nested (2D)
//!   page walks, and Enigma;
//! * `workloads` ([`vbi_workloads`]) — seeded synthetic SPEC / TailBench /
//!   Graph 500 stand-ins;
//! * `hetero` ([`vbi_hetero`]) — PCM-DRAM and TL-DRAM placement policies;
//! * `service` ([`vbi_service`]) — the concurrent, sharded MTL memory
//!   service: a `Send + Sync + Clone` handle over per-shard MTLs (§6.2's
//!   home-MTL partitioning) with a batched request path;
//! * `sim` ([`vbi_sim`]) — the end-to-end evaluation engine behind the
//!   `vbi-bench` figure binaries, plus the multi-threaded service traffic
//!   harness ([`mod@vbi_sim::service_run`]).
//!
//! ## Quick start
//!
//! ```
//! use vbi::{System, VbiConfig, VbProperties, Rwx};
//!
//! # fn main() -> Result<(), vbi::VbiError> {
//! let system = System::new(VbiConfig::vbi_full());
//! let client = system.create_client()?; // an owned ClientSession
//! let vb = client.request_vb(1 << 20, VbProperties::NONE, Rwx::READ_WRITE)?;
//! client.store_u64(vb.at(0), 2020)?;
//! assert_eq!(client.load_u64(vb.at(0))?, 2020);
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for runnable walkthroughs of the paper's
//! mechanisms and `cargo run -p vbi-bench --release --bin run_all` for the
//! full evaluation.

pub use vbi_baselines as baselines;
pub use vbi_core as core;
pub use vbi_hetero as hetero;
pub use vbi_mem_sim as mem_sim;
pub use vbi_service as service;
pub use vbi_sim as sim;
pub use vbi_workloads as workloads;

pub use vbi_core::{
    AccessKind, ClientId, ClientSession, Mtl, Op, OpOutput, OpResult, Result, Rwx, SessionHost,
    SizeClass, System, SystemSession, VbProperties, VbiAddress, VbiConfig, VbiError, Vbuid,
    VirtualAddress,
};
