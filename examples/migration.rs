//! Seamless VB remapping — promote, clone, and cross-shard migration —
//! while readers keep reading.
//!
//! The paper's headline flexibility claim (§4.2.2) is that the OS can
//! "seamlessly migrate/copy VBs by just updating the VBUID of the
//! corresponding CVT entry": a program addresses memory as `{CVT index,
//! offset}`, so the OS can move a VB's contents anywhere — a larger size
//! class, a copy-on-write clone, another MTL's shard — without relocating
//! a single pointer. In this reproduction the whole remap family executes
//! once, in the shared op engine, on every front end; this walkthrough
//! drives it through the concurrent sharded service while reader threads
//! hammer the VB mid-migration.
//!
//! Run with: `cargo run --release --example migration`

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

use vbi::{Rwx, VbProperties, VbiConfig, VbiError};
use vbi_service::{ServiceConfig, VbiService};

const SLOTS: u64 = 64;
const MIGRATIONS: usize = 32;

fn main() -> vbi::Result<()> {
    let service = VbiService::new(ServiceConfig::new(4, VbiConfig::vbi_full()));
    let session = service.create_client()?;

    // A VB with a recognizable pattern. Its CVT index is the program's
    // pointer — it will never change below, while the VBUID behind it does.
    let vb = session.request_vb(128 << 10, VbProperties::NONE, Rwx::READ_WRITE)?;
    for slot in 0..SLOTS {
        session.store_u64(vb.at(slot * 8), 0xC0DE_0000 + slot)?;
    }
    println!(
        "VB {} homed on shard {}, pointer = CVT index {}",
        vb.vbuid,
        service.shard_of(vb.vbuid),
        vb.cvt_index
    );

    // Promotion: same pointer, next larger size class.
    let promoted = session.promote(vb.cvt_index)?;
    assert_eq!(promoted.cvt_index, vb.cvt_index);
    session.store_u64(vb.at(200 << 10), 1)?; // room the old 128 KiB class lacked
    println!(
        "promoted to {} ({:?}) — old data intact: {}",
        promoted.vbuid,
        promoted.vbuid.size_class(),
        session.load_u64(vb.at(0))? == 0xC0DE_0000,
    );

    // Clone: a copy-on-write twin on the same shard; writes stay isolated.
    let clone = session.clone_vb(vb.cvt_index)?;
    session.store_u64(clone.at(0), 0xDEAD)?;
    assert_eq!(session.load_u64(vb.at(0))?, 0xC0DE_0000);
    println!("clone {} diverged without touching the source (COW)", clone.vbuid);

    // Cross-shard migration under concurrent readers: the churn loop moves
    // the VB shard to shard while readers verify every load byte-exact.
    let stop = AtomicBool::new(false);
    let mut homes = vec![service.shard_of(promoted.vbuid)];
    thread::scope(|s| {
        for t in 0..3 {
            let reader = session.clone();
            let stop = &stop;
            s.spawn(move || {
                let mut reads = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let slot = reads * 13 % SLOTS;
                    // A read that lands in the drained source's disable
                    // window errors or misses cleanly and resolves on
                    // retry; a value that stays wrong would be a lost
                    // write — that's the assertion.
                    let mut attempts = 0;
                    loop {
                        match reader.load_u64(vb.at(slot * 8)) {
                            Ok(v) if v == 0xC0DE_0000 + slot => break,
                            outcome @ (Ok(_) | Err(VbiError::VbNotEnabled(_))) => {
                                attempts += 1;
                                assert!(
                                    attempts < 1_000,
                                    "reader {t}: slot {slot} stuck at {outcome:?}"
                                );
                                thread::yield_now();
                            }
                            Err(e) => panic!("reader {t}: {e}"),
                        }
                    }
                    reads += 1;
                }
                reads
            });
        }
        for m in 0..MIGRATIONS {
            let to = m % service.shards();
            let moved = session.migrate(vb.cvt_index, to).expect("migration");
            homes.push(service.shard_of(moved.vbuid));
        }
        stop.store(true, Ordering::Release);
    });
    println!("{MIGRATIONS} migrations, home shard path: {:?}...", &homes[..homes.len().min(9)]);

    // The pointer never moved; the data never tore; the stats saw it all.
    for slot in 0..SLOTS {
        assert_eq!(session.load_u64(vb.at(slot * 8))?, 0xC0DE_0000 + slot);
    }
    let stats = service.stats();
    println!(
        "MtlStats: {} promotions, {} clones, {} migrations — all byte-exact",
        stats.promotions, stats.vbs_cloned, stats.vbs_migrated,
    );
    Ok(())
}
