//! Many reader threads sharing ONE client session — the lock-free read
//! path in action.
//!
//! The paper's key performance property is that a client caches its CVT
//! entries, so the common-case access check involves no MTL (and no OS)
//! at all. In this reproduction that becomes: a `ClientSession` over the
//! concurrent service publishes its CVT cache through a seqlock, so any
//! number of reader threads holding clones of the session can perform
//! protection-checked loads **without a single client-lock acquisition**
//! once the cache is warm. The service's per-client lock counter proves
//! it live.
//!
//! Run with: `cargo run --release --example session_readers`

use std::thread;

use vbi::{Rwx, VbProperties, VbiConfig};
use vbi_service::{ServiceConfig, VbiService};

const READERS: usize = 8;
const READS_PER_THREAD: usize = 20_000;

fn main() -> vbi::Result<()> {
    let service = VbiService::new(ServiceConfig::new(4, VbiConfig::vbi_full()));

    // One client; its session is the handle every thread will share.
    let session = service.create_client()?;
    let vbs: Vec<_> = (0..8)
        .map(|i| {
            let vb = session.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE)?;
            session.store_u64(vb.at(0), i)?;
            Ok(vb)
        })
        .collect::<vbi::Result<_>>()?;
    println!("one client, {} VBs across {} shards", vbs.len(), service.shards());

    // Warm the published CVT cache: the first read of each index fills it
    // under the client lock; every read after that is a lock-free hit.
    for vb in &vbs {
        session.load_u64(vb.at(0))?;
    }
    let locks_before = service.client_lock_acquisitions(session.id())?;

    thread::scope(|s| {
        for t in 0..READERS {
            let reader = session.clone(); // same client, new handle
            let vbs = &vbs;
            s.spawn(move || {
                for i in 0..READS_PER_THREAD {
                    let pick = (i + t) % vbs.len();
                    assert_eq!(reader.load_u64(vbs[pick].at(0)).unwrap(), pick as u64);
                }
            });
        }
    });

    let locks_after = service.client_lock_acquisitions(session.id())?;
    let stats = session.cvt_cache_stats()?;
    println!(
        "{} reads from {READERS} threads: {} client-lock acquisitions",
        READERS * READS_PER_THREAD,
        locks_after - locks_before,
    );
    println!(
        "CVT cache: {} lock-free hits, {} locked hits, {} misses, {} torn-read fallbacks",
        stats.lockfree_hits, stats.locked_hits, stats.misses, stats.torn_retries,
    );
    assert_eq!(locks_after, locks_before, "warm cache-hit reads take zero client locks");

    // Control-plane ops take the write side: one release bumps the epoch
    // and the counter moves again.
    session.release_vb(vbs[0].cvt_index)?;
    assert!(service.client_lock_acquisitions(session.id())? > locks_after);
    println!("control-plane release took the client lock, as it must");
    Ok(())
}
