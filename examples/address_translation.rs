//! Use case 1 (§7.2): address-translation overhead across system designs.
//!
//! Runs one TLB-hostile workload (mcf) and one cache-friendly workload
//! (namd) through all ten system configurations and prints speedups over
//! Native — a miniature Figure 6/7.
//!
//! Run with: `cargo run --release --example address_translation`

use vbi::sim::engine::{run, EngineConfig};
use vbi::sim::systems::SystemKind;
use vbi::workloads::spec::benchmark;

fn main() {
    let cfg = EngineConfig { accesses: 40_000, warmup: 4_000, seed: 2020, phys_frames: 1 << 20 };

    for name in ["mcf", "namd"] {
        let spec = benchmark(name).expect("known benchmark");
        println!(
            "\n{name}: footprint {} MiB across {} VBs",
            spec.footprint() >> 20,
            spec.region_count()
        );
        let native = run(SystemKind::Native, &spec, &cfg);
        println!("  {:14} {:>8}  {:>12} {:>12}", "system", "speedup", "TLB misses", "walk refs");
        for kind in SystemKind::ALL {
            let result =
                if kind == SystemKind::Native { native.clone() } else { run(kind, &spec, &cfg) };
            println!(
                "  {:14} {:>7.2}x {:>12} {:>12}",
                kind.label(),
                result.speedup_over(&native),
                result.counters.tlb_misses,
                result.counters.translation_accesses,
            );
        }
    }
    println!(
        "\nNote: mcf's sparse pointer-chased working set makes translation the\n\
         bottleneck — exactly the behaviour Figure 6 highlights; namd fits its\n\
         hot set in the caches and barely notices the virtual memory system."
    );
}
