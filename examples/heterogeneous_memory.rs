//! Use case 2 (§7.3): hotness-aware data placement in heterogeneous
//! memories. The MTL observes every main-memory access, ranks VBs by access
//! density, and migrates the hottest ones into the fast region — something
//! an OS cannot do at this granularity or rate.
//!
//! Run with: `cargo run --release --example heterogeneous_memory`

use vbi::hetero::memory::{HeteroKind, HeteroMemory, Policy, PAGE_BYTES};
use vbi::sim::engine::EngineConfig;
use vbi::sim::hetero_run::run_hetero;
use vbi::workloads::spec::benchmark;

fn main() {
    // First, the mechanism in isolation: a small hot VB and a large cold VB
    // over a PCM-DRAM hybrid with room for only one of them in DRAM.
    let mut memory =
        HeteroMemory::new(HeteroKind::PcmDram, 64 * PAGE_BYTES, Policy::VbiHotness, 500);
    memory.register_region(0, 32 * PAGE_BYTES); // hot: fits the fast region
    memory.register_region(1, 4096 * PAGE_BYTES); // cold: does not

    for round in 0..200u64 {
        for page in 0..32 {
            memory.access(0, page * PAGE_BYTES, false);
        }
        memory.access(1, (round * 131) % 4096 * PAGE_BYTES, false);
    }
    let stats = memory.stats();
    println!(
        "mechanism: hot VB selected = {}, fast-access fraction = {:.0}%, migrations = {}",
        memory.hot_regions().contains(&0),
        stats.fast_fraction() * 100.0,
        stats.pages_migrated
    );

    // Then the experiment shape of Figures 9 and 10 on one benchmark.
    let cfg = EngineConfig { accesses: 40_000, warmup: 4_000, seed: 2020, phys_frames: 1 << 20 };
    let spec = benchmark("sphinx3").expect("known benchmark");
    for kind in [HeteroKind::PcmDram, HeteroKind::TlDram] {
        let unaware = run_hetero(kind, Policy::Unaware, &spec, &cfg);
        let vbi = run_hetero(kind, Policy::VbiHotness, &spec, &cfg);
        let ideal = run_hetero(kind, Policy::Ideal, &spec, &cfg);
        println!(
            "{kind:?} on sphinx3: VBI {:.2}x, IDEAL {:.2}x over hotness-unaware \
             (fast fractions {:.0}% / {:.0}% / {:.0}%)",
            vbi.speedup_over(&unaware),
            ideal.speedup_over(&unaware),
            unaware.fast_fraction * 100.0,
            vbi.fast_fraction * 100.0,
            ideal.fast_fraction * 100.0,
        );
    }
}
