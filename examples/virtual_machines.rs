//! Virtual machines on VBI (§6.1): partitioning the global VBI address
//! space by VM ID so guest accesses need no nested translation.
//!
//! Run with: `cargo run --example virtual_machines`

use vbi::core::vm::{VirtualMachine, VmId, VmPartition};
use vbi::{Rwx, SizeClass, System, VbProperties, VbiConfig, VirtualAddress};

fn main() -> vbi::Result<()> {
    // Figure 5's layout: 5 VM-ID bits = 31 guests + the host.
    let partition = VmPartition::new(5);
    let system = System::new(VbiConfig { vm_id_bits: 5, ..VbiConfig::vbi_full() });

    println!(
        "partition: {} VMs, {} x 4 GiB VBs each",
        partition.vm_count(),
        partition.vbs_per_vm(SizeClass::Gib4)
    );

    let mut vm1 = VirtualMachine::new(VmId(1), partition);
    let mut vm2 = VirtualMachine::new(VmId(2), partition);

    // Each guest OS allocates clients and VBs inside its own slice without
    // coordinating with the host; guest processes get ordinary sessions.
    let guest1 = vm1.create_guest_client(&system)?;
    let guest2 = vm2.create_guest_client(&system)?;

    let vb1 = vm1.find_free_vb(&system, SizeClass::Kib128)?;
    system.mtl_mut().enable_vb(vb1, VbProperties::NONE)?;
    let vb2 = vm2.find_free_vb(&system, SizeClass::Kib128)?;
    system.mtl_mut().enable_vb(vb2, VbProperties::NONE)?;
    println!("vm1 allocated {vb1}; vm2 allocated {vb2}");
    assert!(vm1.owns(vb1) && !vm1.owns(vb2));

    // Guest memory accesses are plain VBI accesses: protection at the CVT,
    // translation at the memory controller. No two-dimensional page walk
    // exists anywhere in this path.
    let i1 = guest1.attach(vb1, Rwx::READ_WRITE)?;
    let i2 = guest2.attach(vb2, Rwx::READ_WRITE)?;
    guest1.store_u64(VirtualAddress::new(i1, 0), 0xAAAA)?;
    guest2.store_u64(VirtualAddress::new(i2, 0), 0xBBBB)?;
    assert_eq!(guest1.load_u64(VirtualAddress::new(i1, 0))?, 0xAAAA);
    assert_eq!(guest2.load_u64(VirtualAddress::new(i2, 0))?, 0xBBBB);
    println!("guest accesses translated once, directly — no 2D walks");

    // Isolation: guest 2 has no CVT entry for guest 1's VB.
    let stolen = guest2.load_u64(VirtualAddress::new(i2 + 1, 0));
    println!("guest2 probing beyond its CVT: {stolen:?}");
    assert!(stolen.is_err());

    // Compare with the conventional virtualized baseline: a cold guest
    // translation costs a two-dimensional walk of up to 24 accesses.
    let mut nested = vbi::baselines::NestedMmu::new(vbi::baselines::PageSize::Kb4, 1 << 20);
    let cold = nested.translate(0x7000_0000);
    println!(
        "for contrast, a cold 2D page walk in a conventional VM touched {} \
         page-table entries",
        cold.events.walk_accesses.len()
    );
    Ok(())
}
