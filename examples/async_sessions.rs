//! A million-client shape on a handful of threads: the waker-driven
//! async front end.
//!
//! `VbiQueue` already decouples submission from completion; `AsyncFront`
//! turns that into `async fn` verbs. Each awaited op submits a tagged SQE
//! and parks its future in a waker registry; the shard worker that
//! executes the op dispatches the completion straight to that future —
//! no completion queue to poll, no thread per client. This walkthrough
//! runs **10 000 concurrent sessions on a 2-shard queue** (2 worker
//! threads + 1 executor thread), two tasks sharing every session on an
//! in-flight budget of 1, so the budget's backpressure path — a parked
//! acquire, counted in `backpressure_waits` — engages for real.
//!
//! Run with: `cargo run --release --example async_sessions`

use std::time::Instant;

use vbi::{Rwx, VbProperties, VbiConfig};
use vbi_service::{AsyncFront, Executor, ServiceConfig};

const SESSIONS: usize = 10_000;
const TASKS_PER_SESSION: usize = 2;
const OPS_PER_TASK: u64 = 4;

fn main() -> vbi::Result<()> {
    // Two MTL shards — two worker threads — will carry all ten thousand
    // sessions. The whole run uses exactly three OS threads.
    let front = AsyncFront::new(ServiceConfig::new(2, VbiConfig::vbi_full()));

    // Setup stays synchronous (sessions must not await VBs they have not
    // been granted yet): one client + one small VB per session.
    let started = Instant::now();
    let sessions: Vec<_> = (0..SESSIONS)
        .map(|_| {
            let owner = front.queue().create_client()?;
            let vb = owner.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE)?;
            // Budget 1: with two tasks per session, one always parks.
            Ok((front.session_for(owner.id(), 1), vb))
        })
        .collect::<vbi::Result<_>>()?;
    println!("{SESSIONS} sessions created in {:?}", started.elapsed());

    // One executor thread drives every session concurrently. Each task is
    // an ordinary async block: awaits suspend the future (bytes on the
    // executor's heap, not a parked OS thread), and the completion wakes
    // it back onto the ready queue.
    let started = Instant::now();
    let mut executor = Executor::new();
    for (id, (session, vb)) in sessions.iter().enumerate() {
        for slot in 0..TASKS_PER_SESSION {
            let session = session.clone();
            let va = vb.at(slot as u64 * 8);
            let id = (id * TASKS_PER_SESSION + slot) as u64;
            executor.spawn(async move {
                for i in 0..OPS_PER_TASK / 2 {
                    let value = (id << 8) | i;
                    session.store_u64(va, value).await.expect("in-bounds store");
                    let got = session.load_u64(va).await.expect("in-bounds load");
                    assert_eq!(got, value, "task {id} read someone else's completion");
                }
            });
        }
    }
    executor.run();
    let elapsed = started.elapsed();

    let queue = front.queue();
    let total = (SESSIONS * TASKS_PER_SESSION) as u64 * OPS_PER_TASK;
    println!(
        "{} awaited ops across {SESSIONS} sessions in {elapsed:?} ({:.0} ops/sec)",
        queue.completed(),
        total as f64 / elapsed.as_secs_f64()
    );
    println!(
        "in-flight high water: {} ops; backpressure waits: {}; outstanding futures: {}",
        queue.inflight_high_water(),
        queue.backpressure_waits(),
        front.outstanding()
    );
    assert_eq!(queue.completed(), total, "every awaited op completed exactly once");
    assert_eq!(front.outstanding(), 0);
    assert!(queue.try_reap().is_none(), "async completions bypass the polled CQ");
    Ok(())
}
