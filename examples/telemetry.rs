//! One telemetry plane: counters, latency histograms, traces, exports.
//!
//! Every front end funnels through `vbi_core::ops::execute`, so the
//! engine records each op once — kind, latency, outcome, shard — into a
//! per-stripe registry that costs a handful of relaxed atomics when
//! metrics are on and a single relaxed load when they are off. This
//! walkthrough drives an oversubscribed sharded service with tracing
//! enabled, then:
//!
//! 1. reads the unified [`Snapshot`] — per-op counts and latency
//!    percentiles, per-shard MTL counters, contention, pressure — and
//!    prints its JSON and Prometheus expositions;
//! 2. drains the per-shard trace rings into Chrome `trace_event` JSON
//!    (`trace.json` — open it in `chrome://tracing` or Perfetto);
//! 3. writes the snapshot dump (`snapshot.json`) next to it.
//!
//! Run with: `cargo run --release --example telemetry`

use std::sync::atomic::{AtomicU64, Ordering};

use vbi::core::telemetry::{chrome_trace, OpKind};
use vbi::{Rwx, VbProperties, VbiConfig, VirtualAddress};
use vbi_service::{ServiceConfig, VbiService};

fn main() -> vbi::Result<()> {
    // Telemetry knobs live in `VbiConfig`: metrics default on, tracing
    // default off. Arm tracing here so the trace rings fill (tracing also
    // times *every* op instead of the metrics-only 1-in-16 latency
    // sample).
    let svc = VbiService::new(ServiceConfig::new(
        4,
        VbiConfig {
            phys_frames: 256, // small machine: the workload must evict
            telemetry_tracing: true,
            trace_capacity: 4096,
            ..VbiConfig::vbi_full()
        },
    ));

    // ── an oversubscribed multi-threaded workload ─────────────────────
    // 4 writers, each owning a 128-page VB (512 data pages against 256
    // frames), all also reading one shared VB through the lock-free path.
    let owner = svc.create_client()?;
    let shared = owner.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE)?;
    for page in 0..16u64 {
        owner.store_u64(shared.at(page << 12), 0xBEEF_0000 + page)?;
    }
    let ops_done = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let svc = svc.clone();
            let ops_done = &ops_done;
            let shared_vbuid = shared.vbuid;
            s.spawn(move || {
                let client = svc.create_client().unwrap();
                let vb = client.request_vb(512 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
                let shared_idx = client.attach(shared_vbuid, Rwx::READ).unwrap();
                for round in 0..4u64 {
                    for page in 0..128u64 {
                        client
                            .store_u64(vb.at(page << 12), (t << 32) | (round << 16) | page)
                            .unwrap();
                        ops_done.fetch_add(1, Ordering::Relaxed);
                    }
                    for page in 0..16u64 {
                        client.load_u64(VirtualAddress::new(shared_idx, page << 12)).unwrap();
                        ops_done.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    // ── 1. the unified snapshot ───────────────────────────────────────
    let snap = svc.snapshot();
    println!("front end: {}  |  ops recorded: {}", snap.front_end, snap.total_ops());
    for kind in [OpKind::StoreU64, OpKind::LoadU64] {
        let row = snap.op(kind).expect("workload ran this op");
        println!(
            "  {:>10}: {:>6} ops, {} errors, p50 {} ns, p99 {} ns (of {} timed)",
            kind.name(),
            row.count,
            row.errors,
            row.latency.percentile(50.0),
            row.latency.percentile(99.0),
            row.latency.count(),
        );
    }
    let pressure = &snap.mtl;
    println!(
        "  pressure: {} evictions, {} writebacks, {} faults in; {} frames free",
        pressure.evictions, pressure.writebacks, pressure.faults_in, snap.free_frames
    );
    for (shard, activity) in snap.shard_activity.iter().enumerate() {
        println!(
            "  shard {shard}: {} ops executed, {} contended acquisitions",
            activity.ops_executed, activity.contended
        );
    }

    // Both expositions render from the same snapshot: one JSON object
    // (keys sorted, schema-stable) and Prometheus text.
    std::fs::write("snapshot.json", snap.to_json()).expect("write snapshot.json");
    let prometheus = snap.to_prometheus();
    let sample_lines: Vec<&str> =
        prometheus.lines().filter(|l| l.starts_with("vbi_op_count")).take(3).collect();
    println!("\nsnapshot.json written; Prometheus exposition excerpt:");
    for line in sample_lines {
        println!("  {line}");
    }

    // ── 2. the trace rings, as Chrome trace_event JSON ────────────────
    // Each shard keeps a fixed-capacity lock-free ring of compact events;
    // draining is wait-free for writers and never blocks the hot path.
    let events = svc.telemetry().drain_trace();
    let dropped = svc.telemetry().trace_dropped();
    std::fs::write("trace.json", chrome_trace(&events)).expect("write trace.json");
    println!(
        "\ntrace.json written: {} events ({} dropped by ring wraparound) — open in \
         chrome://tracing or ui.perfetto.dev",
        events.len(),
        dropped
    );

    // The exact counters tie out against the workload regardless of
    // latency sampling: every submitted op is recorded exactly once.
    let data_ops = snap.op(OpKind::StoreU64).unwrap().count - 16 // owner's seed stores
        + snap.op(OpKind::LoadU64).unwrap().count;
    assert_eq!(data_ops, ops_done.load(Ordering::Relaxed), "every op recorded exactly once");
    Ok(())
}
