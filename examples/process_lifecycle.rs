//! Process lifecycle on VBI (§4.4): loading a binary, linking a shared
//! library with `+1` CVT-relative addressing, forking with copy-on-write
//! clones, heap growth with automatic VB promotion, and memory-mapped
//! files.
//!
//! Run with: `cargo run --example process_lifecycle`

use vbi::core::os::{BinaryImage, LibraryImage, Os, Section, SectionKind};
use vbi::{Rwx, VbProperties, VbiConfig};

fn main() -> vbi::Result<()> {
    let mut os = Os::new(VbiConfig::vbi_full());

    // A shared library: code is loaded once, system-wide.
    os.register_library(LibraryImage {
        name: "libmath".into(),
        code: vec![0xed; 4096],
        static_data: vec![0; 256],
    })?;

    // A binary with a code and a data section; the OS loads each into its
    // own VB with section-appropriate permissions.
    let image = BinaryImage {
        name: "demo".into(),
        sections: vec![
            Section { kind: SectionKind::Code, contents: vec![0xc3; 512] },
            Section { kind: SectionKind::Data, contents: (0..=255).collect() },
        ],
    };
    let parent = os.create_process(&image)?;
    let lib = os.link_library(parent, "libmath")?;
    println!(
        "process {:?}: code+data sections loaded, libmath at CVT index {}",
        parent, lib.cvt_index
    );

    // Library code reaches its per-process static data at `code index + 1`
    // without load-time relocation (§4.4). All memory access goes through
    // the process's session handle.
    let session = os.process(parent)?.session().clone();
    let lib_data = lib.at(0).cvt_relative(1);
    session.store_u8(lib_data, 42)?;

    // A heap; malloc/free manage offsets inside the VB.
    let heap = os.create_heap(parent, 4 << 10, VbProperties::NONE)?;
    let a = os.malloc(parent, heap.cvt_index, 1024)?;
    session.store_u64(a.address, 7777)?;

    // Growing past the 4 KiB VB transparently promotes it to 128 KiB; the
    // CVT index — and therefore every existing pointer — is unchanged.
    let b = os.malloc(parent, heap.cvt_index, 8192)?;
    println!(
        "heap grew: promoted = {:?}, old data still readable = {}",
        b.promoted.map(|h| h.vbuid.to_string()),
        session.load_u64(a.address)?
    );

    // Fork: the child sees identical pointers; writes are private (COW).
    let child = os.fork(parent)?;
    let child_session = os.process(child)?.session().clone();
    assert_eq!(child_session.load_u64(a.address)?, 7777);
    child_session.store_u64(a.address, 1111)?;
    assert_eq!(session.load_u64(a.address)?, 7777);
    println!(
        "forked: child wrote privately; cow copies so far = {}",
        os.system().mtl().stats().cow_copies
    );

    // Memory-mapped file: offsets map 1:1 to the file (§3.4).
    let file: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
    let mapped = os.mmap_file(parent, &file, Rwx::READ)?;
    assert_eq!(session.load_u8(mapped.at(9_999))?, file[9_999]);
    println!("mmap: byte 9999 reads {}", file[9_999]);

    // Destruction returns every frame.
    os.destroy_process(child)?;
    os.destroy_process(parent)?;
    println!("processes destroyed; swap occupancy {}", os.system().mtl().swap_occupancy());
    Ok(())
}
