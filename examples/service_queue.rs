//! The asynchronous front end: pipelined submission, out-of-order reaping.
//!
//! The paper's MTL is an asynchronous hardware agent (§4): cores hand it
//! work and keep executing, with translation and memory access resolved
//! off the critical path. `VbiQueue` is that shape in software — an
//! io_uring-style pair of per-shard submission rings and a shared
//! completion queue over the sharded `VbiService`. This walkthrough
//! pipelines a tagged batch, reaps completions as they arrive (not in
//! submission order!), and drives a whole client lifecycle through the
//! queue.
//!
//! Run with: `cargo run --example service_queue`

use vbi::{Op, OpOutput, Rwx, VbProperties, VbiConfig, VirtualAddress};
use vbi_service::{ServiceConfig, Sqe, VbiQueue};

fn main() -> vbi::Result<()> {
    // Four MTL shards, each with its own submission ring and worker
    // thread; completions land on one shared queue.
    let queue = VbiQueue::new(ServiceConfig::new(4, VbiConfig::vbi_full()));
    println!("queue over {} shards ({} worker threads)", 4, 4);

    // Setup is synchronous through a session — queued ops must not depend
    // on completions we have not reaped yet. Tagged submissions build raw
    // `Op`s with the session's client ID.
    let service = queue.service();
    let session = queue.create_client()?;
    let app = session.id();
    let vbs: Vec<_> = (0..4)
        .map(|_| session.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE))
        .collect::<vbi::Result<_>>()?;
    println!(
        "client {app} owns 4 VBs homed on shards {:?}",
        vbs.iter().map(|vb| service.shard_of(vb.vbuid)).collect::<Vec<_>>()
    );

    // Pipeline 64 tagged stores across all four VBs without waiting for
    // any of them: submission routes each op to its VB's home ring and
    // returns immediately — no shard lock is touched on this thread.
    queue.submit_all((0..64u64).map(|i| {
        let vb = &vbs[(i % 4) as usize];
        Sqe { tag: i, op: Op::StoreU64 { client: app, va: vb.at((i / 4) * 8), value: i * 100 } }
    }));
    println!("submitted 64 stores; queue depth high-water: {}", queue.depth().high_water);

    // Reap the 64 completions. Across shards they arrive out of
    // submission order; the tag says which op each one finishes.
    let mut tags = Vec::new();
    for _ in 0..64 {
        let cqe = queue.reap().expect("64 ops are in flight");
        assert_eq!(cqe.result, Ok(OpOutput::Unit));
        tags.push(cqe.tag);
    }
    let out_of_order = tags.windows(2).filter(|w| w[0] > w[1]).count();
    println!("reaped 64 completions, {out_of_order} tag inversions (completion order)");

    // Loads pipeline the same way; correlate results by tag.
    for i in 0..64u64 {
        let vb = &vbs[(i % 4) as usize];
        queue.submit(1000 + i, Op::LoadU64 { client: app, va: vb.at((i / 4) * 8) });
    }
    let mut loads = queue.drain();
    loads.sort_by_key(|cqe| cqe.tag);
    for (i, cqe) in loads.iter().enumerate() {
        assert_eq!(cqe.result, Ok(OpOutput::U64(i as u64 * 100)));
    }
    println!("all 64 pipelined loads returned the stored values");

    // The queue speaks the whole op surface, so even client lifecycles can
    // be queued — each dependent step reaps its predecessor first.
    queue.submit(1, Op::CreateClient);
    let guest = queue.reap().unwrap().result?.as_client().expect("client op");
    queue.submit(2, Op::Attach { client: guest, vbuid: vbs[0].vbuid, perms: Rwx::READ });
    let idx = queue.reap().unwrap().result?.as_cvt_index().expect("index op");
    queue.submit(3, Op::LoadU64 { client: guest, va: VirtualAddress::new(idx, 0) });
    let read = queue.reap().unwrap().result?;
    println!("queued lifecycle: {guest} attached read-only and loaded {read:?}");

    // Errors are completions too — a denied store comes back tagged, it
    // does not take the queue down.
    queue.submit(4, Op::StoreU64 { client: guest, va: VirtualAddress::new(idx, 0), value: 1 });
    let denied = queue.reap().unwrap();
    println!("denied store completed with: {:?}", denied.result.unwrap_err());

    // Dropping the queue closes the rings, finishes accepted work, and
    // joins the workers; `shutdown` also hands back unreaped completions.
    let leftovers = queue.shutdown();
    println!("shutdown; {} unreaped completions", leftovers.len());
    Ok(())
}
