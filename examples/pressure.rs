//! Memory pressure (§3.4): eviction, backing stores, and ballooning.
//!
//! VBI moves physical capacity management out of the OS and into the
//! memory translation layer: when a store needs a frame and none is free,
//! the MTL itself picks a victim (clock / second-chance), writes its bytes
//! back to a backing store, and faults them in transparently on the next
//! touch. This walkthrough oversubscribes a small machine three ways:
//!
//! 1. a single-owner `System` whose working set is 4x physical memory —
//!    the engine evicts and faults in, and every byte survives;
//! 2. the `reclaim_vb_frames` ballooning primitive — a client voluntarily
//!    gives frames back and watches its pages land in the backing store;
//! 3. a sharded `VbiService` whose shards write back to a *slow-tier*
//!    backing store modelled on PCM (`vbi-hetero`), so `backing_report`
//!    also bills the simulated cycles the swap traffic cost.
//!
//! Run with: `cargo run --release --example pressure`

use vbi::{Rwx, System, VbProperties, VbiConfig};
use vbi_hetero::{HeteroKind, SlowTierBackend};
use vbi_service::{PressureBackend, ServiceConfig, VbiService};

fn main() -> vbi::Result<()> {
    // ── 1. A System with 64 frames facing a 256-page working set ──────
    let system = System::new(VbiConfig { phys_frames: 64, ..VbiConfig::vbi_full() });
    let session = system.create_client()?;
    let vb = session.request_vb(1 << 20, VbProperties::NONE, Rwx::READ_WRITE)?; // 256 pages
    println!("machine: 64 frames; VB: 256 pages (4x oversubscribed)");

    for page in 0..256u64 {
        session.store_u64(vb.at(page << 12), 0xFEED_0000 + page)?;
    }
    let stats = system.mtl().stats();
    println!(
        "after writing every page: evictions {}, writebacks {}, resident frames left {}",
        stats.evictions,
        stats.writebacks,
        system.mtl().free_frames(),
    );

    // Read it all back: swapped pages fault in (evicting others to make
    // room) and the bytes are exactly what was written.
    for page in 0..256u64 {
        assert_eq!(session.load_u64(vb.at(page << 12))?, 0xFEED_0000 + page);
    }
    let stats = system.mtl().stats();
    println!(
        "after reading every page back: faults_in {}, evictions {} — all 256 pages byte-exact",
        stats.faults_in, stats.evictions
    );

    // ── 2. Ballooning: voluntarily return frames to the machine ───────
    let reclaimed = system.reclaim_vb_frames(session.id(), vb.cvt_index, 32)?;
    let report = system.backing_report(session.id(), vb.cvt_index)?;
    println!(
        "\nballooning: reclaim_vb_frames gave back {reclaimed} frames; backing store now holds \
         {} slots ({} KiB payload)",
        report.slots,
        report.stored_bytes >> 10,
    );
    assert_eq!(session.load_u64(vb.at(0))?, 0xFEED_0000); // still byte-exact

    // ── 3. Sharded service swapping to a simulated PCM slow tier ──────
    fn pcm_backing() -> Box<dyn PressureBackend> {
        SlowTierBackend::new(HeteroKind::PcmDram, None).boxed()
    }
    let service = VbiService::new(
        ServiceConfig::new(2, VbiConfig { phys_frames: 64, ..VbiConfig::vbi_full() })
            .with_backing(pcm_backing),
    );
    let client = service.create_client()?;
    let vb = client.request_vb(1 << 20, VbProperties::NONE, Rwx::READ_WRITE)?;
    for page in 0..256u64 {
        client.store_u64(vb.at(page << 12), 0xBEEF_0000 + page)?;
    }
    for page in 0..256u64 {
        assert_eq!(client.load_u64(vb.at(page << 12))?, 0xBEEF_0000 + page);
    }
    let stats = service.stats();
    let report = service.backing_report(client.id(), vb.cvt_index)?;
    println!(
        "\nslow-tier service: evictions {}, faults_in {}, swap occupancy {} pages",
        stats.evictions,
        stats.faults_in,
        service.swap_occupancy(),
    );
    println!(
        "PCM backing store: {} slots, {} KiB payload, {} simulated cycles of tier traffic",
        report.slots,
        report.stored_bytes >> 10,
        report.tier_cycles,
    );
    assert!(report.tier_cycles > 0, "slow tier bills its accesses");
    println!("\nsame engine, same bytes — pressure is a capability of every front end.");
    Ok(())
}
