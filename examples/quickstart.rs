//! Quickstart: the VBI programming model in one file.
//!
//! Creates a machine, a process (memory client) with its session handle,
//! requests a virtual block (the `request_vb` system call of §4.2), and
//! exercises loads/stores, protection, and sharing.
//!
//! Run with: `cargo run --example quickstart`

use vbi::{Rwx, System, VbProperties, VbiConfig, VirtualAddress};

fn main() -> vbi::Result<()> {
    // A machine with the paper's full configuration: delayed physical
    // allocation + early reservation.
    let system = System::new(VbiConfig::vbi_full());

    // A process is a "memory client" with a Client-VB Table (CVT); the
    // session returned by create_client owns the client's whole API.
    let app = system.create_client()?;
    println!("created {}", app.id());

    // request_vb: the OS picks the smallest size class that fits 1 MiB
    // (the 4 MiB class), enables the VB, and attaches us read-write. The
    // returned CVT index is our pointer to the VB.
    let data = app.request_vb(1 << 20, VbProperties::LATENCY_SENSITIVE, Rwx::READ_WRITE)?;
    println!("attached {} at CVT index {}", data.vbuid, data.cvt_index);

    // Addresses are {CVT index, offset}: store then load.
    for i in 0..8u64 {
        app.store_u64(data.at(i * 8), i * i)?;
    }
    for i in 0..8u64 {
        assert_eq!(app.load_u64(data.at(i * 8))?, i * i);
    }
    println!("stored and reloaded 8 words");

    // Reads of never-written memory observe zeros — no physical memory is
    // consumed until data is actually written (§5.1).
    assert_eq!(app.load_u64(data.at(512 << 10))?, 0);
    println!(
        "free frames after touching 1 MiB lazily: {} of {}",
        system.mtl().free_frames(),
        system.config().phys_frames
    );

    // True sharing (§3.4): a second process attaches to the same VB.
    let reader = system.create_client()?;
    let idx = reader.attach(data.vbuid, Rwx::READ)?;
    assert_eq!(reader.load_u64(VirtualAddress::new(idx, 0))?, 0);
    assert_eq!(reader.load_u64(VirtualAddress::new(idx, 8))?, 1);
    println!("{} shares the VB read-only", reader.id());

    // ...but cannot write it.
    let denied = reader.store_u64(VirtualAddress::new(idx, 0), 1);
    println!("write by reader: {denied:?}");
    assert!(denied.is_err());

    // Cleanup releases all physical memory.
    app.destroy()?;
    reader.destroy()?;
    println!("done; MTL stats: {:?}", system.mtl().stats());
    Ok(())
}
