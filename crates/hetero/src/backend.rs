//! A slow-memory-tier backing store for the MTL's pressure path.
//!
//! §3.4 makes the MTL responsible for deciding which VB pages occupy
//! physical frames and which sit in slower memory. [`SlowTierBackend`]
//! implements `vbi_core`'s [`PressureBackend`] on top of this crate's
//! [`HeteroMemory`] latency model: evicted pages live in the slow tier
//! (functionally an in-memory [`BackingStore`]), and every store / load /
//! duplicate charges the simulated device cycles the tier would cost.
//! Installed per shard via `Mtl::set_backing`, it turns the engine's
//! evict-on-allocation-failure path into a two-tier capacity model.

use vbi_core::swap::{BackingStore, PageData, PressureBackend};
use vbi_core::translate::SwapSlot;
use vbi_core::{Result, VbiError};

use crate::memory::{HeteroKind, HeteroMemory, HeteroStats, Policy, PAGE_BYTES};

/// The region ID the backend charges its traffic to — the tier holds one
/// undifferentiated pool of swapped pages.
const SWAP_REGION: usize = 0;

/// A capacity-optionally-bounded backing store whose traffic is priced by a
/// [`HeteroMemory`] slow tier.
///
/// ```
/// use vbi_hetero::backend::SlowTierBackend;
/// use vbi_core::swap::PressureBackend;
/// use vbi_hetero::memory::HeteroKind;
///
/// let mut tier = SlowTierBackend::new(HeteroKind::PcmDram, Some(2));
/// let a = tier.try_store(Box::new([1u8; 4096])).expect("capacity left");
/// let _b = tier.try_store(Box::new([2u8; 4096])).expect("capacity left");
/// assert!(tier.try_store(Box::new([3u8; 4096])).is_err(), "bounded at 2 pages");
/// assert_eq!(tier.load(a).expect("stored")[0], 1);
/// assert!(tier.tier_cycles() > 0, "device traffic was priced");
/// ```
#[derive(Debug)]
pub struct SlowTierBackend {
    pages: BackingStore,
    tier: HeteroMemory,
    capacity_pages: Option<u64>,
    cycles: u64,
}

impl SlowTierBackend {
    /// Creates a slow-tier backend of the given device kind, optionally
    /// bounded to `capacity_pages` slots (payload and zero slots alike —
    /// a zero slot still occupies tier bookkeeping).
    pub fn new(kind: HeteroKind, capacity_pages: Option<u64>) -> Self {
        // No fast region: the whole store is the slow side of the device,
        // which is exactly what makes eviction to it expensive. Placement
        // policy is irrelevant with zero fast bytes.
        let mut tier = HeteroMemory::new(kind, 0, Policy::Unaware, u64::MAX);
        tier.register_region(SWAP_REGION, capacity_pages.unwrap_or(1 << 20) * PAGE_BYTES);
        Self { pages: BackingStore::new(), tier, capacity_pages, cycles: 0 }
    }

    /// Boxes the backend for `Mtl::set_backing` / service installation.
    pub fn boxed(self) -> Box<dyn PressureBackend> {
        Box::new(self)
    }

    /// The latency model's accumulated statistics (all accesses are slow
    /// by construction).
    pub fn tier_stats(&self) -> HeteroStats {
        self.tier.stats()
    }

    fn at_capacity(&self) -> bool {
        self.capacity_pages.is_some_and(|cap| self.pages.len() as u64 >= cap)
    }

    /// One device access for `slot`, charged to the accumulated cycles.
    fn charge(&mut self, slot: SwapSlot, is_write: bool) {
        self.cycles += self.tier.access(SWAP_REGION, slot.0 * PAGE_BYTES, is_write);
    }
}

impl PressureBackend for SlowTierBackend {
    fn try_store(&mut self, data: PageData) -> core::result::Result<SwapSlot, PageData> {
        if self.at_capacity() {
            return Err(data);
        }
        let slot = self.pages.store(data);
        self.charge(slot, true);
        Ok(slot)
    }

    fn try_store_zero(&mut self) -> Option<SwapSlot> {
        // Zero pages occupy a slot but move no payload over the device.
        if self.at_capacity() {
            return None;
        }
        Some(self.pages.store_zero())
    }

    fn load(&mut self, slot: SwapSlot) -> Option<PageData> {
        let data = self.pages.load(slot);
        if data.is_some() {
            self.charge(slot, false);
        }
        data
    }

    fn peek(&self, slot: SwapSlot) -> Option<&PageData> {
        self.pages.peek(slot)
    }

    fn duplicate(&mut self, slot: SwapSlot) -> Result<SwapSlot> {
        if self.at_capacity() {
            return Err(VbiError::BackingStoreFull {
                capacity_pages: self.capacity_pages.unwrap_or(0),
            });
        }
        let had_payload = self.pages.peek(slot).is_some();
        let dup = self.pages.duplicate(slot);
        if had_payload {
            self.charge(slot, false);
            self.charge(dup, true);
        }
        Ok(dup)
    }

    fn discard(&mut self, slot: SwapSlot) {
        self.pages.discard(slot);
    }

    fn len(&self) -> usize {
        self.pages.len()
    }

    fn zero_len(&self) -> usize {
        self.pages.zero_len()
    }

    fn stored_bytes(&self) -> u64 {
        self.pages.stored_bytes()
    }

    fn capacity_pages(&self) -> Option<u64> {
        self.capacity_pages
    }

    fn tier_cycles(&self) -> u64 {
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbi_core::{Mtl, SizeClass, VbProperties, VbiConfig};

    #[test]
    fn roundtrip_charges_device_cycles() {
        let mut t = SlowTierBackend::new(HeteroKind::TlDram, None);
        let slot = t.try_store(Box::new([9u8; 4096])).unwrap();
        let after_store = t.tier_cycles();
        assert!(after_store > 0);
        let back = t.load(slot).unwrap();
        assert_eq!(back[0], 9);
        assert!(t.tier_cycles() > after_store, "the load cost cycles too");
    }

    #[test]
    fn zero_slots_cost_no_device_traffic_but_occupy_capacity() {
        let mut t = SlowTierBackend::new(HeteroKind::PcmDram, Some(1));
        let z = t.try_store_zero().unwrap();
        assert_eq!(t.tier_cycles(), 0);
        assert_eq!(t.len(), 1);
        assert!(t.try_store_zero().is_none(), "the zero slot filled the bound");
        assert!(t.try_store(Box::new([1u8; 4096])).is_err());
        t.discard(z);
        assert!(t.try_store_zero().is_some());
    }

    #[test]
    fn duplicate_respects_the_capacity_bound() {
        let mut t = SlowTierBackend::new(HeteroKind::PcmDram, Some(1));
        let slot = t.try_store(Box::new([4u8; 4096])).unwrap();
        assert!(matches!(t.duplicate(slot), Err(VbiError::BackingStoreFull { capacity_pages: 1 })));
    }

    #[test]
    fn mtl_evicts_into_the_slow_tier_and_faults_back() {
        let config = VbiConfig { phys_frames: 256, ..VbiConfig::vbi_full() };
        let mut m = Mtl::new(config);
        m.set_backing(SlowTierBackend::new(HeteroKind::PcmDram, None).boxed()).unwrap();
        let vb = m.find_free_vb(SizeClass::Kib128).unwrap();
        m.enable_vb(vb, VbProperties::NONE).unwrap();
        for page in 0..16u64 {
            m.write_u64(vb.address(page << 12).unwrap(), page + 1).unwrap();
        }
        let evicted = m.reclaim_frames(8);
        assert_eq!(evicted, 8);
        for page in 0..16u64 {
            assert_eq!(m.read_u64(vb.address(page << 12).unwrap()).unwrap(), page + 1);
        }
        let stats = m.stats();
        assert_eq!(stats.evictions, 8);
        assert_eq!(stats.faults_in, 8);
        assert!(m.backing().tier_cycles() > 0, "eviction traffic hit the slow tier");
        assert_eq!(m.backing().len(), 0, "every page faulted back in");
    }
}
