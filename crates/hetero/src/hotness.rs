//! Hotness tracking: the fine-grained runtime information the MTL sees.
//!
//! A core argument of the paper (§2, §7.3) is that the memory controller —
//! unlike the OS — observes every main-memory access and can therefore
//! track data hotness cheaply and react quickly. This module implements the
//! counters the MTL keeps: per-VB (region) access counts for VBI's
//! VB-granularity placement, and per-page counts used to build the IDEAL
//! oracle's profile.

use std::collections::HashMap;

/// Epoch-based access counters at VB and page granularity.
#[derive(Debug, Clone, Default)]
pub struct HotnessTracker {
    region_counts: HashMap<usize, u64>,
    page_counts: HashMap<(usize, u64), u64>,
    region_bytes: HashMap<usize, u64>,
    epoch_accesses: u64,
}

impl HotnessTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a region and its size (needed for density ranking).
    pub fn register_region(&mut self, region: usize, bytes: u64) {
        self.region_bytes.insert(region, bytes);
    }

    /// Records one main-memory access to `page` of `region`.
    pub fn record(&mut self, region: usize, page: u64) {
        *self.region_counts.entry(region).or_insert(0) += 1;
        *self.page_counts.entry((region, page)).or_insert(0) += 1;
        self.epoch_accesses += 1;
    }

    /// Accesses recorded this epoch.
    pub fn epoch_accesses(&self) -> u64 {
        self.epoch_accesses
    }

    /// Access count of a region this epoch.
    pub fn region_count(&self, region: usize) -> u64 {
        self.region_counts.get(&region).copied().unwrap_or(0)
    }

    /// Regions ranked by access *density* (accesses per byte, hottest
    /// first). Density, not raw count, is the right VB-granularity metric:
    /// a small, hot VB displaces less fast-memory capacity per access than
    /// a huge, lukewarm one.
    pub fn rank_regions_by_density(&self) -> Vec<(usize, f64)> {
        let mut ranked: Vec<(usize, f64)> = self
            .region_counts
            .iter()
            .map(|(&region, &count)| {
                let bytes = self.region_bytes.get(&region).copied().unwrap_or(1).max(1);
                (region, count as f64 / bytes as f64)
            })
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("densities are finite"));
        ranked
    }

    /// Pages ranked by access count (hottest first) — the oracle's view.
    pub fn rank_pages(&self) -> Vec<((usize, u64), u64)> {
        let mut ranked: Vec<((usize, u64), u64)> =
            self.page_counts.iter().map(|(&k, &v)| (k, v)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
    }

    /// Registered size of a region in bytes.
    pub fn region_bytes(&self, region: usize) -> u64 {
        self.region_bytes.get(&region).copied().unwrap_or(0)
    }

    /// Ends the epoch: clears counters but keeps region registrations.
    pub fn new_epoch(&mut self) {
        self.region_counts.clear();
        self.page_counts.clear();
        self.epoch_accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut t = HotnessTracker::new();
        t.register_region(0, 4096);
        t.record(0, 0);
        t.record(0, 0);
        t.record(0, 1);
        assert_eq!(t.region_count(0), 3);
        assert_eq!(t.epoch_accesses(), 3);
    }

    #[test]
    fn density_ranking_prefers_small_hot_regions() {
        let mut t = HotnessTracker::new();
        t.register_region(0, 1 << 30); // huge, lukewarm
        t.register_region(1, 1 << 20); // small, hot
        for _ in 0..1000 {
            t.record(0, 0);
        }
        for _ in 0..500 {
            t.record(1, 0);
        }
        let ranked = t.rank_regions_by_density();
        assert_eq!(ranked[0].0, 1, "the small region has higher density");
    }

    #[test]
    fn page_ranking_is_by_count() {
        let mut t = HotnessTracker::new();
        t.register_region(0, 1 << 20);
        for _ in 0..10 {
            t.record(0, 5);
        }
        t.record(0, 9);
        let ranked = t.rank_pages();
        assert_eq!(ranked[0].0, (0, 5));
        assert_eq!(ranked[0].1, 10);
    }

    #[test]
    fn new_epoch_resets_counts_not_registrations() {
        let mut t = HotnessTracker::new();
        t.register_region(0, 4096);
        t.record(0, 0);
        t.new_epoch();
        assert_eq!(t.region_count(0), 0);
        assert_eq!(t.region_bytes(0), 4096);
    }
}
