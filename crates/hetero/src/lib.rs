//! # vbi-hetero — heterogeneous-memory management for the VBI reproduction
//!
//! Use case 2 of the paper (§7.3): extracting performance from
//! heterogeneous main memories by mapping frequently accessed data to the
//! fast region. Because the MTL owns physical placement and observes every
//! main-memory access, VBI can track hotness at VB granularity and migrate
//! VBs without OS involvement.
//!
//! * [`hotness`] — the MTL's per-VB and per-page access counters;
//! * [`memory`] — PCM-DRAM hybrid and TL-DRAM memories with three placement
//!   policies: hotness-unaware (baseline), VBI hotness-driven migration,
//!   and an IDEAL page-placement oracle;
//! * [`backend`] — a slow-tier `PressureBackend` that prices the MTL's
//!   eviction / fault-in traffic with the [`memory`] latency model (§3.4).
//!
//! ```
//! use vbi_hetero::memory::{HeteroKind, HeteroMemory, Policy};
//!
//! let mut mem = HeteroMemory::new(HeteroKind::TlDram, 1 << 20, Policy::VbiHotness, 1000);
//! mem.register_region(0, 64 << 10);
//! let cycles = mem.access(0, 0, false);
//! assert!(cycles > 0);
//! ```

pub mod backend;
pub mod hotness;
pub mod memory;

pub use backend::SlowTierBackend;
pub use hotness::HotnessTracker;
pub use memory::{HeteroKind, HeteroMemory, HeteroStats, Policy, PAGE_BYTES};
