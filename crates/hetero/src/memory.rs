//! Heterogeneous main memory with pluggable placement policies (§7.3).
//!
//! [`HeteroMemory`] binds a two-speed memory device (PCM-DRAM hybrid or
//! TL-DRAM) to a placement policy deciding which pages live in the fast
//! region:
//!
//! * [`Policy::Unaware`] — the baseline: pages are scattered across fast and
//!   slow memory in proportion to capacity, uncorrelated with hotness (the
//!   paper's mapping that "does not necessarily map the frequently-accessed
//!   data to the fast region").
//! * [`Policy::VbiHotness`] — the paper's mechanism: the MTL counts accesses
//!   per VB and, at every epoch boundary, migrates the densest VBs into the
//!   fast region.
//! * [`Policy::Ideal`] — the oracle: page-granularity placement from a
//!   profiling pass; the hottest pages occupy fast memory from the start
//!   and never migrate.

use std::collections::{HashMap, HashSet};

use vbi_mem_sim::controller::{HybridMemory, TlDramController};
use vbi_mem_sim::LINE_BYTES;

use crate::hotness::HotnessTracker;

/// Page granularity used for placement (4 KiB, the MTL's base allocation
/// unit).
pub const PAGE_BYTES: u64 = 4096;

/// The two heterogeneous architectures evaluated in §7.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeteroKind {
    /// PCM main memory with a small DRAM fast region (Ramos et al. \[107\]).
    PcmDram,
    /// TL-DRAM: near (fast) and far (slow) segments (Lee et al. \[74\]).
    TlDram,
}

/// Placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Hotness-unaware first-touch placement (the normalization baseline of
    /// Figures 9 and 10).
    Unaware,
    /// VBI: VB-granularity hotness tracking with epoch migration.
    VbiHotness,
    /// Oracle page placement (the IDEAL bars).
    Ideal,
}

enum DeviceImpl {
    Hybrid(HybridMemory),
    TlDram(TlDramController),
}

impl std::fmt::Debug for DeviceImpl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceImpl::Hybrid(_) => f.write_str("Hybrid"),
            DeviceImpl::TlDram(_) => f.write_str("TlDram"),
        }
    }
}

/// Statistics for a heterogeneous memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeteroStats {
    /// Accesses served from the fast region.
    pub fast_accesses: u64,
    /// Accesses served from the slow region.
    pub slow_accesses: u64,
    /// Pages migrated between regions.
    pub pages_migrated: u64,
    /// Cycles spent on migration traffic.
    pub migration_cycles: u64,
}

impl HeteroStats {
    /// Fraction of accesses served fast.
    pub fn fast_fraction(&self) -> f64 {
        let total = self.fast_accesses + self.slow_accesses;
        if total == 0 {
            0.0
        } else {
            self.fast_accesses as f64 / total as f64
        }
    }
}

/// A heterogeneous main memory with placement and migration.
///
/// # Examples
///
/// ```
/// use vbi_hetero::memory::{HeteroKind, HeteroMemory, Policy};
///
/// let mut mem = HeteroMemory::new(HeteroKind::PcmDram, 1 << 20, Policy::VbiHotness, 10_000);
/// mem.register_region(0, 64 << 10);
/// let _cycles = mem.access(0, 0, false);
/// ```
#[derive(Debug)]
pub struct HeteroMemory {
    device: DeviceImpl,
    fast_bytes: u64,
    policy: Policy,
    /// Total registered region bytes (sets the unaware policy's fast share).
    total_bytes: u64,
    /// Pages currently resident in the fast region.
    fast_pages: HashSet<(usize, u64)>,
    /// Assigned device address per page (stable between migrations).
    addresses: HashMap<(usize, u64), u64>,
    fast_cursor: u64,
    slow_cursor: u64,
    tracker: HotnessTracker,
    epoch_len: u64,
    /// Regions currently selected as hot (for VbiHotness).
    hot_regions: HashSet<usize>,
    /// Oracle placement, if the policy is `Ideal`.
    oracle_fast: HashSet<(usize, u64)>,
    stats: HeteroStats,
    /// Cycles charged per migrated page (reading the slow copy and writing
    /// the fast one, line by line).
    migration_cycles_per_page: u64,
}

impl HeteroMemory {
    /// Creates a heterogeneous memory with `fast_bytes` of fast capacity and
    /// an epoch of `epoch_len` main-memory accesses.
    pub fn new(kind: HeteroKind, fast_bytes: u64, policy: Policy, epoch_len: u64) -> Self {
        let device = match kind {
            HeteroKind::PcmDram => DeviceImpl::Hybrid(HybridMemory::new(fast_bytes)),
            HeteroKind::TlDram => DeviceImpl::TlDram(TlDramController::new(fast_bytes)),
        };
        let migration_cycles_per_page = match kind {
            HeteroKind::PcmDram => 128,
            HeteroKind::TlDram => 24,
        };
        Self {
            device,
            fast_bytes,
            policy,
            total_bytes: 0,
            fast_pages: HashSet::new(),
            addresses: HashMap::new(),
            fast_cursor: 0,
            slow_cursor: fast_bytes,
            tracker: HotnessTracker::new(),
            epoch_len,
            hot_regions: HashSet::new(),
            oracle_fast: HashSet::new(),
            stats: HeteroStats::default(),
            // Page migration uses in-DRAM bulk copy (RowClone [117] /
            // LISA [22], which §4.4 cites for exactly this purpose). In
            // TL-DRAM, near and far segments share bitlines, so the copy is
            // a couple of row cycles; across PCM-DRAM it is an inter-device
            // transfer and costs more.
            migration_cycles_per_page,
        }
    }

    /// Fast-region capacity in bytes.
    pub fn fast_bytes(&self) -> u64 {
        self.fast_bytes
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> HeteroStats {
        self.stats
    }

    /// Registers a region (VB) and its size before use.
    pub fn register_region(&mut self, region: usize, bytes: u64) {
        self.total_bytes += bytes;
        self.tracker.register_region(region, bytes);
    }

    /// Hotness-unaware placement: a deterministic hash scatters pages across
    /// fast and slow memory in proportion to fast capacity, uncorrelated
    /// with access frequency.
    fn unaware_is_fast(&self, region: usize, page: u64) -> bool {
        let mut h = (region as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(page.wrapping_mul(0xd1b5_4a32_d192_ed03));
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        let total = self.total_bytes.max(1);
        (h % total) < self.fast_bytes.min(total)
    }

    /// Installs the oracle's page set (hottest pages first-fit into fast
    /// capacity), for [`Policy::Ideal`]. Typically produced by a profiling
    /// run's [`HotnessTracker::rank_pages`].
    pub fn set_oracle(&mut self, ranked_pages: &[((usize, u64), u64)]) {
        let capacity_pages = self.fast_bytes / PAGE_BYTES;
        self.oracle_fast =
            ranked_pages.iter().take(capacity_pages as usize).map(|(k, _)| *k).collect();
    }

    fn is_fast(&self, region: usize, page: u64) -> bool {
        match self.policy {
            Policy::Unaware => self.fast_pages.contains(&(region, page)),
            Policy::VbiHotness => self.hot_regions.contains(&region),
            Policy::Ideal => self.oracle_fast.contains(&(region, page)),
        }
    }

    /// First-touch placement decision.
    fn place_new(&mut self, region: usize, page: u64) -> bool {
        match self.policy {
            Policy::Unaware => {
                let fast = self.unaware_is_fast(region, page);
                if fast {
                    self.fast_pages.insert((region, page));
                }
                fast
            }
            Policy::VbiHotness => self.hot_regions.contains(&region),
            Policy::Ideal => self.oracle_fast.contains(&(region, page)),
        }
    }

    fn assign_address(&mut self, region: usize, page: u64, fast: bool) -> u64 {
        if fast {
            let addr = self.fast_cursor % self.fast_bytes;
            self.fast_cursor += PAGE_BYTES;
            addr
        } else {
            let addr = self.slow_cursor;
            self.slow_cursor += PAGE_BYTES;
            let _ = (region, page);
            addr
        }
    }

    /// Serves one main-memory access (an LLC miss or writeback) `offset`
    /// bytes into `region`, returning the service latency in CPU cycles.
    pub fn access(&mut self, region: usize, offset: u64, _is_write: bool) -> u64 {
        let page = offset / PAGE_BYTES;
        self.tracker.record(region, page);

        // First-touch placement.
        let key = (region, page);
        if !self.addresses.contains_key(&key) {
            let fast = self.place_new(region, page);
            let addr = self.assign_address(region, page, fast);
            self.addresses.insert(key, addr);
        }

        // Migration check: a page whose desired region changed since its
        // address was assigned is moved (VbiHotness only; Unaware never
        // reconsiders and Ideal is fixed but consulted on first touch).
        let want_fast = self.is_fast(region, page);
        let addr = self.addresses[&key];
        let have_fast = addr < self.fast_bytes;
        let addr = if want_fast != have_fast && self.policy == Policy::VbiHotness {
            let new_addr = self.assign_address(region, page, want_fast);
            self.addresses.insert(key, new_addr);
            self.stats.pages_migrated += 1;
            self.stats.migration_cycles += self.migration_cycles_per_page;
            new_addr
        } else {
            addr
        };

        if addr < self.fast_bytes {
            self.stats.fast_accesses += 1;
        } else {
            self.stats.slow_accesses += 1;
        }
        let line_addr = addr + (offset % PAGE_BYTES) / LINE_BYTES * LINE_BYTES;
        let latency = match &mut self.device {
            DeviceImpl::Hybrid(m) => m.service(line_addr),
            DeviceImpl::TlDram(t) => t.service(line_addr),
        };

        // Epoch boundary: re-rank VBs by access density and choose the hot
        // set that fits fast capacity.
        if self.policy == Policy::VbiHotness && self.tracker.epoch_accesses() >= self.epoch_len {
            self.rebalance();
        }
        latency
    }

    /// Recomputes the hot-VB set from this epoch's density ranking.
    ///
    /// Incumbent VBs get a 30% density bonus (hysteresis): re-migrating a
    /// whole VB is expensive, so the set only changes when a challenger is
    /// clearly hotter. This prevents oscillation between near-equal VBs.
    fn rebalance(&mut self) {
        let mut ranked = self.tracker.rank_regions_by_density();
        for (region, density) in &mut ranked {
            if self.hot_regions.contains(region) {
                *density *= 1.3;
            }
        }
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("densities are finite"));
        let mut budget = self.fast_bytes;
        let mut new_hot = HashSet::new();
        for (region, _) in ranked {
            let bytes = self.tracker.region_bytes(region);
            if bytes > 0 && bytes <= budget {
                budget -= bytes;
                new_hot.insert(region);
            }
        }
        self.hot_regions = new_hot;
        self.tracker.new_epoch();
    }

    /// The current hot-VB set (for inspection in tests and reports).
    pub fn hot_regions(&self) -> &HashSet<usize> {
        &self.hot_regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_cold_trace(mem: &mut HeteroMemory, rounds: usize) {
        // Region 0: small and hot. Region 1: large and cold.
        mem.register_region(0, 16 * PAGE_BYTES);
        mem.register_region(1, 4096 * PAGE_BYTES);
        for round in 0..rounds {
            for page in 0..16u64 {
                mem.access(0, page * PAGE_BYTES, false);
            }
            // One cold touch per round, wandering.
            mem.access(1, ((round as u64 * 37) % 4096) * PAGE_BYTES, false);
        }
    }

    #[test]
    fn vbi_policy_learns_the_hot_region() {
        let mut mem =
            HeteroMemory::new(HeteroKind::PcmDram, 64 * PAGE_BYTES, Policy::VbiHotness, 100);
        hot_cold_trace(&mut mem, 200);
        assert!(mem.hot_regions().contains(&0), "small hot region selected");
        assert!(!mem.hot_regions().contains(&1), "large cold region rejected");
        assert!(mem.stats().fast_fraction() > 0.7, "{}", mem.stats().fast_fraction());
    }

    #[test]
    fn unaware_policy_scatters_in_proportion_to_capacity() {
        // Fast region = 1/4 of the footprint.
        let mut mem =
            HeteroMemory::new(HeteroKind::PcmDram, 64 * PAGE_BYTES, Policy::Unaware, 1 << 60);
        mem.register_region(0, 256 * PAGE_BYTES);
        for page in 0..256u64 {
            mem.access(0, page * PAGE_BYTES, false);
        }
        let s = mem.stats();
        let frac = s.fast_fraction();
        assert!((0.12..0.40).contains(&frac), "fast fraction {frac} should be near 1/4");
        assert_eq!(s.pages_migrated, 0, "unaware never migrates");
    }

    #[test]
    fn unaware_placement_is_uncorrelated_with_hotness() {
        // The hot pages (low page numbers) should be fast no more often
        // than the cold ones.
        let mut mem =
            HeteroMemory::new(HeteroKind::PcmDram, 128 * PAGE_BYTES, Policy::Unaware, 1 << 60);
        mem.register_region(0, 512 * PAGE_BYTES);
        let mut hot_fast = 0;
        let mut cold_fast = 0;
        for page in 0..512u64 {
            let before = mem.stats().fast_accesses;
            mem.access(0, page * PAGE_BYTES, false);
            let went_fast = mem.stats().fast_accesses > before;
            if page < 64 {
                hot_fast += went_fast as u32;
            } else {
                cold_fast += went_fast as u32;
            }
        }
        // Proportions should be similar (~25% each), not skewed to hot.
        let hot_rate = hot_fast as f64 / 64.0;
        let cold_rate = cold_fast as f64 / 448.0;
        assert!((hot_rate - cold_rate).abs() < 0.2, "hot {hot_rate} vs cold {cold_rate}");
    }

    #[test]
    fn ideal_oracle_places_hot_pages_fast_immediately() {
        let mut mem = HeteroMemory::new(HeteroKind::TlDram, 2 * PAGE_BYTES, Policy::Ideal, 100);
        mem.register_region(0, 64 * PAGE_BYTES);
        mem.set_oracle(&[((0, 7), 1000), ((0, 9), 500), ((0, 1), 10)]);
        mem.access(0, 7 * PAGE_BYTES, false);
        mem.access(0, 9 * PAGE_BYTES, false);
        mem.access(0, PAGE_BYTES, false); // beyond fast capacity
        assert_eq!(mem.stats().fast_accesses, 2);
        assert_eq!(mem.stats().slow_accesses, 1);
    }

    #[test]
    fn migration_is_counted_and_charged() {
        let mut mem =
            HeteroMemory::new(HeteroKind::PcmDram, 64 * PAGE_BYTES, Policy::VbiHotness, 50);
        hot_cold_trace(&mut mem, 100);
        let s = mem.stats();
        assert!(s.pages_migrated > 0);
        assert_eq!(s.migration_cycles, s.pages_migrated * 128);
    }

    #[test]
    fn fast_accesses_are_faster_on_average() {
        // Directly compare service latencies on both sides of a hybrid.
        let mut fast_mem =
            HeteroMemory::new(HeteroKind::PcmDram, 1 << 30, Policy::Unaware, 1 << 60);
        fast_mem.register_region(0, 1 << 20);
        let mut slow_mem = HeteroMemory::new(HeteroKind::PcmDram, 0, Policy::Unaware, 1 << 60);
        slow_mem.register_region(0, 1 << 20);
        let mut fast_total = 0;
        let mut slow_total = 0;
        for i in 0..256u64 {
            fast_total += fast_mem.access(0, (i * 97) % (1 << 20), false);
            slow_total += slow_mem.access(0, (i * 97) % (1 << 20), false);
        }
        assert!(slow_total > fast_total, "slow {slow_total} vs fast {fast_total}");
    }
}
