//! `read_path` bench: locked-baseline vs lock-free session reads.
//!
//! The paper's central performance claim is that clients cache CVT entries,
//! so the common-case translation check needs no MTL (or OS) involvement.
//! This bench isolates exactly that hot path: N reader threads share ONE
//! client session and hammer warm CVT-cache-hit loads, once with the
//! seqlock fast path disabled (every check locks the client mutex — the
//! pre-redesign behavior) and once enabled (zero client locks). The final
//! line is a machine-readable JSON summary (tag `BENCH_read_path`).
//!
//! Run with `cargo bench -p vbi-bench --bench read_path`; set
//! `VBI_READ_OPS` to change the per-thread load count (default 50 000).
//! On a single-CPU host the wall-clock columns are flat (readers share one
//! core and uncontended mutexes are cheap); the `client_locks` column is
//! the structural signal — 0 on the lock-free rows, one per read on the
//! locked rows.

use vbi_core::telemetry::{bench_line, JsonValue as J};
use vbi_sim::service_run::{read_path_run, ReadPathConfig};

fn main() {
    let ops_per_thread =
        std::env::var("VBI_READ_OPS").ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(50_000);
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // (threads, lockfree) sweep: each thread count runs the locked
    // baseline and the lock-free session path back to back.
    let sweep: [(usize, bool); 8] = [
        (1, false),
        (1, true),
        (2, false),
        (2, true),
        (4, false),
        (4, true),
        (8, false),
        (8, true),
    ];

    println!(
        "{:>7} {:>9} {:>12} {:>13} {:>14} {:>12}",
        "threads", "lockfree", "ops/sec", "client-locks", "lockfree-hits", "torn-retries"
    );
    let mut results = Vec::new();
    for (threads, lockfree) in sweep {
        let report = read_path_run(&ReadPathConfig {
            threads,
            shards: 4,
            ops_per_thread,
            lockfree,
            ..ReadPathConfig::default()
        });
        println!(
            "{:>7} {:>9} {:>12.0} {:>13} {:>14} {:>12}",
            threads,
            lockfree,
            report.ops_per_sec,
            report.client_locks,
            report.cache.lockfree_hits,
            report.cache.torn_retries,
        );
        // The structural claim the sweep exists to demonstrate — fail loud
        // in CI if a regression puts client locks back on the hit path.
        if lockfree {
            assert_eq!(
                report.client_locks, 0,
                "lock-free warm cache-hit reads must take zero client locks"
            );
        }
        results.push(report);
    }

    let entries: Vec<String> = results.iter().map(|r| r.to_json()).collect();
    println!(
        "{}",
        bench_line(
            "read_path",
            &[
                ("host_cpus", J::U(host_cpus as u64)),
                ("ops_per_thread", J::U(ops_per_thread as u64)),
                ("results", J::Raw(format!("[{}]", entries.join(",")))),
            ],
        )
    );
}
