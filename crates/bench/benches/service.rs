//! `service` bench: host-throughput sweep of the concurrent sharded
//! memory service (`vbi-service`) over shard count × thread count.
//!
//! Unlike the cycle-accurate figure benches, this one measures *real*
//! wall-clock ops/sec of the software service, demonstrating that the
//! sharded MTL scales with threads when shards scale too. The final line
//! is a machine-readable JSON summary (tag `BENCH_service`) so future PRs
//! can track the trajectory in `BENCH_service.json`.
//!
//! Run with `cargo bench -p vbi-bench --bench service`; set
//! `VBI_SERVICE_OPS` to change the per-thread op count (default 50 000).

use vbi_core::telemetry::{bench_line, json_object, JsonValue as J};
use vbi_sim::service_run::{service_run, ServiceRunConfig};

fn main() {
    let ops_per_thread = std::env::var("VBI_SERVICE_OPS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(50_000);
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // (threads, shards, batch) sweep. The 1×1 unbatched point is the
    // System-equivalent baseline; the diagonal shows thread/shard scaling;
    // the final pair isolates the effect of batched submission.
    let sweep: [(usize, usize, usize); 7] =
        [(1, 1, 1), (2, 2, 1), (4, 4, 1), (8, 8, 1), (4, 1, 1), (4, 4, 64), (1, 1, 64)];

    println!(
        "{:>7} {:>7} {:>6} {:>12} {:>12} {:>10}",
        "threads", "shards", "batch", "ops/sec", "contended", "tlb-hit%"
    );
    let mut results = Vec::new();
    for (threads, shards, batch) in sweep {
        let config = ServiceRunConfig {
            threads,
            shards,
            ops_per_thread,
            batch,
            ..ServiceRunConfig::default()
        };
        let report = service_run(&config);
        println!(
            "{:>7} {:>7} {:>6} {:>12.0} {:>12} {:>9.1}%",
            threads,
            shards,
            batch,
            report.ops_per_sec,
            report.total_contended(),
            report.mtl.tlb_hit_rate() * 100.0,
        );
        results.push((threads, shards, batch, report));
    }

    let ops_at = |t: usize, s: usize, b: usize| {
        results
            .iter()
            .find(|(rt, rs, rb, _)| (*rt, *rs, *rb) == (t, s, b))
            .map(|(_, _, _, r)| r.ops_per_sec)
            .unwrap_or(0.0)
    };
    let scaling = ops_at(4, 4, 1) / ops_at(1, 1, 1).max(1.0);
    println!("\n4 threads / 4 shards vs 1 thread / 1 shard: {scaling:.2}x ops/sec (host has {host_cpus} CPU(s))");
    if host_cpus < 4 {
        println!(
            "note: wall-clock scaling is bounded by the {host_cpus}-CPU host; on such hosts the \
             per-shard contention column (blocked lock acquisitions) is the scalability signal — \
             near-zero contention at 4x4 means the shards serialize on the CPU, not on each other."
        );
    }

    let entries: Vec<String> = results
        .iter()
        .map(|(t, s, b, r)| {
            json_object(&[
                ("threads", J::U(*t as u64)),
                ("shards", J::U(*s as u64)),
                ("batch", J::U(*b as u64)),
                ("ops_per_sec", J::F(r.ops_per_sec, 0)),
                ("contended", J::U(r.total_contended())),
            ])
        })
        .collect();
    println!(
        "{}",
        bench_line(
            "service",
            &[
                ("benchmark", J::S("mcf".to_string())),
                ("host_cpus", J::U(host_cpus as u64)),
                ("ops_per_thread", J::U(ops_per_thread as u64)),
                ("speedup_4x4_vs_1x1", J::F(scaling, 2)),
                ("results", J::Raw(format!("[{}]", entries.join(",")))),
            ],
        )
    );
}
