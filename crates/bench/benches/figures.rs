//! Criterion wrappers around the figure experiments: each benchmark times a
//! miniature run of one paper experiment, so `cargo bench` exercises every
//! table/figure path end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use vbi_hetero::memory::{HeteroKind, Policy};
use vbi_sim::engine::{run, EngineConfig};
use vbi_sim::hetero_run::run_hetero;
use vbi_sim::multicore::{run_alone_native, run_bundle};
use vbi_sim::systems::SystemKind;
use vbi_workloads::bundles::bundle;
use vbi_workloads::spec::benchmark;

fn quick() -> EngineConfig {
    EngineConfig { accesses: 4_000, warmup: 400, seed: 2020, phys_frames: 1 << 19 }
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    // Figure 6 slice: one TLB-hostile benchmark across the 4 KiB systems.
    for kind in [SystemKind::Native, SystemKind::Virtual, SystemKind::Vbi2, SystemKind::VbiFull] {
        group.bench_function(format!("fig6_mcf_{}", kind.label().replace(' ', "_")), |b| {
            let spec = benchmark("mcf").expect("known");
            let cfg = quick();
            b.iter(|| std::hint::black_box(run(kind, &spec, &cfg).cycles))
        });
    }

    // Figure 7 slice: large pages.
    for kind in [SystemKind::Native2M, SystemKind::EnigmaHw2M, SystemKind::VbiFull] {
        group.bench_function(format!("fig7_gems_{}", kind.label().replace(' ', "_")), |b| {
            let spec = benchmark("GemsFDTD").expect("known");
            let cfg = quick();
            b.iter(|| std::hint::black_box(run(kind, &spec, &cfg).cycles))
        });
    }

    // Figure 8 slice: one bundle, weighted speedup.
    group.bench_function("fig8_wl6_vbifull", |b| {
        let apps = bundle("wl6").expect("table 2");
        let cfg = quick();
        b.iter(|| {
            let alone = run_alone_native(&apps, &cfg);
            let shared = run_bundle("wl6", SystemKind::VbiFull, &apps, &cfg);
            std::hint::black_box(shared.weighted_speedup(&alone))
        })
    });

    // Figures 9-10 slice: placement policies on both architectures.
    for (label, kind) in [("fig9_pcm", HeteroKind::PcmDram), ("fig10_tldram", HeteroKind::TlDram)] {
        group.bench_function(format!("{label}_vbi_policy"), |b| {
            let spec = benchmark("sphinx3").expect("known");
            let cfg = quick();
            b.iter(|| {
                std::hint::black_box(run_hetero(kind, Policy::VbiHotness, &spec, &cfg).cycles)
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
