//! `pressure` bench: fault rate and tail latency vs oversubscription.
//!
//! Holds the working set fixed (threads × pages per thread) and shrinks
//! `phys_frames` so the data footprint goes from comfortably resident to
//! several times physical memory, measuring what the engine's pressure
//! path — clock eviction, write-back, fault-in — costs at each ratio.
//! Every load is byte-checked by the driver, so each row doubles as a
//! correctness proof of the swap path at that ratio. The final line is a
//! machine-readable JSON summary (tag `BENCH_pressure`) so future PRs can
//! track the trajectory in `BENCH_pressure.json`.
//!
//! Run with `cargo bench -p vbi-bench --bench pressure`; knobs:
//! `VBI_PRESSURE_OPS` (per-thread ops, default 20 000),
//! `VBI_PRESSURE_THREADS` (default 4),
//! `VBI_PRESSURE_PAGES` (pages per thread, default 64).

use vbi_core::telemetry::{bench_line, JsonValue as J};
use vbi_sim::pressure_run::{pressure_run, PressureFrontEnd, PressureRunConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let ops_per_thread = env_usize("VBI_PRESSURE_OPS", 20_000);
    let threads = env_usize("VBI_PRESSURE_THREADS", 4);
    let pages_per_thread = env_usize("VBI_PRESSURE_PAGES", 64) as u64;
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let working_set = threads as u64 * pages_per_thread;
    // Sweep oversubscription from 0.5x (fully resident, the no-pressure
    // baseline) to 8x physical memory. Frames are derived from the fixed
    // working set so the sweep is the ratio, not the footprint.
    let ratios: [f64; 5] = [0.5, 1.0, 2.0, 4.0, 8.0];

    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "ratio", "frames", "ops/sec", "fault_rate", "p99_ns", "evictions", "faults_in"
    );
    let mut results = Vec::new();
    for ratio in ratios {
        let phys_frames = ((working_set as f64 / ratio).ceil() as u64).max(16);
        let config = PressureRunConfig {
            threads,
            shards: 2,
            pages_per_thread,
            ops_per_thread,
            phys_frames,
            seed: 0x2020,
            front_end: PressureFrontEnd::Service,
        };
        let report = pressure_run(&config);
        println!(
            "{:>6.1} {:>8} {:>12.0} {:>12.4} {:>12} {:>10} {:>10}",
            report.oversubscription,
            phys_frames,
            report.ops_per_sec,
            report.fault_rate,
            report.p99_latency_ns,
            report.evictions,
            report.faults_in,
        );
        results.push(report);
    }

    // One pipelined point at the steepest ratio: same engine, queue front
    // end — shows pressure costs are front-end-independent.
    let queue_report = pressure_run(&PressureRunConfig {
        threads,
        shards: 2,
        pages_per_thread,
        ops_per_thread,
        phys_frames: ((working_set as f64 / 4.0).ceil() as u64).max(16),
        seed: 0x2020,
        front_end: PressureFrontEnd::Queue,
    });
    println!(
        "queue front end at {:.1}x: {:.0} ops/sec, fault_rate {:.4}, p99 {} ns",
        queue_report.oversubscription,
        queue_report.ops_per_sec,
        queue_report.fault_rate,
        queue_report.p99_latency_ns,
    );

    let entries: Vec<String> = results.iter().chain([&queue_report]).map(|r| r.to_json()).collect();
    println!(
        "{}",
        bench_line(
            "pressure",
            &[
                ("host_cpus", J::U(host_cpus as u64)),
                ("threads", J::U(threads as u64)),
                ("pages_per_thread", J::U(pages_per_thread)),
                ("ops_per_thread", J::U(ops_per_thread as u64)),
                ("results", J::Raw(format!("[{}]", entries.join(",")))),
            ],
        )
    );
}
