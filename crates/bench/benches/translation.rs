//! Microbenchmarks of the translation paths: MTL walks at every structure
//! depth versus conventional 4-level walks and nested (2D) walks.

use criterion::{criterion_group, criterion_main, Criterion};
use vbi_baselines::mmu::NativeMmu;
use vbi_baselines::nested::NestedMmu;
use vbi_baselines::page_table::PageSize;
use vbi_core::addr::SizeClass;
use vbi_core::config::VbiConfig;
use vbi_core::mtl::{Mtl, MtlAccess};
use vbi_core::vb::VbProperties;

fn mtl_with_vb(size_class: SizeClass, config: VbiConfig) -> (Mtl, vbi_core::addr::Vbuid) {
    let mut mtl = Mtl::new(VbiConfig { phys_frames: 1 << 18, ..config });
    let vb = mtl.find_free_vb(size_class).expect("free VB");
    mtl.enable_vb(vb, VbProperties::NONE).expect("enable");
    // Touch a spread of pages so walks traverse real structures.
    for page in (0..size_class.pages().min(4096)).step_by(17) {
        mtl.write_u64(vb.address(page * 4096).expect("in range"), page).expect("write");
    }
    (mtl, vb)
}

fn bench_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("translation");

    for (label, sc) in [
        ("mtl_single_level_4mb", SizeClass::Mib4),
        ("mtl_multi_level_128mb", SizeClass::Mib128),
        ("mtl_multi_level_4gb", SizeClass::Gib4),
    ] {
        group.bench_function(label, |b| {
            let (mut mtl, vb) = mtl_with_vb(sc, VbiConfig::vbi_1());
            let pages = sc.pages().min(4096);
            let mut page = 0u64;
            b.iter(|| {
                page = (page + 17) % pages;
                let addr = vb.address(page * 4096).expect("in range");
                std::hint::black_box(mtl.translate(addr, MtlAccess::Read).expect("enabled"))
            })
        });
    }

    group.bench_function("mtl_direct_mapped_4mb", |b| {
        let (mut mtl, vb) = mtl_with_vb(SizeClass::Mib4, VbiConfig::vbi_full());
        let mut page = 0u64;
        b.iter(|| {
            page = (page + 17) % 1024;
            let addr = vb.address(page * 4096).expect("in range");
            std::hint::black_box(mtl.translate(addr, MtlAccess::Read).expect("enabled"))
        })
    });

    // Walk a bounded, pre-mapped page set (TLBs flushed per iteration to
    // force full walks) so demand paging cannot exhaust physical memory
    // over millions of iterations.
    const WALK_PAGES: u64 = 4096;

    group.bench_function("native_4level_walk", |b| {
        let mut mmu = NativeMmu::new(PageSize::Kb4, 1 << 18);
        for page in 0..WALK_PAGES {
            mmu.translate(page << 12);
        }
        let mut page = 0u64;
        b.iter(|| {
            page = (page + 257) % WALK_PAGES;
            mmu.flush_tlbs();
            std::hint::black_box(mmu.translate(page << 12))
        })
    });

    group.bench_function("nested_2d_walk", |b| {
        let mut mmu = NestedMmu::new(PageSize::Kb4, 1 << 18);
        for page in 0..WALK_PAGES {
            mmu.translate(page << 12);
        }
        let mut page = 0u64;
        b.iter(|| {
            page = (page + 257) % WALK_PAGES;
            mmu.flush_tlbs();
            std::hint::black_box(mmu.translate(page << 12))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_translation);
criterion_main!(benches);
