//! Microbenchmarks of the cache hierarchy and DRAM models.

use criterion::{criterion_group, criterion_main, Criterion};
use vbi_mem_sim::controller::MemoryController;
use vbi_mem_sim::hierarchy::CacheHierarchy;

fn bench_caches(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem-sim");

    group.bench_function("hierarchy_l1_hit", |b| {
        let mut h = CacheHierarchy::per_core_default();
        h.access(0x1000, false);
        b.iter(|| std::hint::black_box(h.access(0x1000, false).latency))
    });

    group.bench_function("hierarchy_streaming", |b| {
        let mut h = CacheHierarchy::per_core_default();
        let mut addr = 0u64;
        b.iter(|| {
            addr += 64;
            std::hint::black_box(h.access(addr, false).latency)
        })
    });

    group.bench_function("hierarchy_random_with_writebacks", |b| {
        let mut h = CacheHierarchy::per_core_default();
        let mut x = 0x9e3779b97f4a7c15u64;
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            std::hint::black_box(h.access(x % (1 << 30), x.is_multiple_of(3)).latency)
        })
    });

    group.bench_function("dram_row_hits", |b| {
        let mut m = MemoryController::ddr3_1600();
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 64) % 8192;
            std::hint::black_box(m.service(addr))
        })
    });

    group.bench_function("dram_row_conflicts", |b| {
        let mut m = MemoryController::ddr3_1600();
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            std::hint::black_box(m.service(x % (1 << 30)))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_caches);
criterion_main!(benches);
