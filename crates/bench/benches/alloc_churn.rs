//! `alloc_churn` bench: the magazine frame cache vs the buddy-only
//! allocation path, under multi-threaded VB request/release churn.
//!
//! **Sweep**: thread counts {1, 2, 4, 8} × the cache toggle, each cell
//! running `VBI_ALLOC_OPS` request → store → load → release cycles per
//! thread over `VBI_ALLOC_VBS`-byte VBs, with a persistent VB per worker
//! kept under store traffic so allocation races ordinary data ops (the
//! [`vbi_sim::service_run::alloc_churn_run`] driver).
//!
//! **Gate**: the 4-thread cell is re-run best-of-5 with rounds
//! interleaved (cached, buddy-only, cached, ...) so both sides see the
//! same machine state; the run *asserts* the cached side reaches
//! `VBI_ALLOC_FLOOR` (default 0.95 — parity within scheduler noise on a
//! shared single-CPU host) of buddy-only throughput — a magazine hit is
//! two `Vec` pops where the buddy pays split/coalesce bookkeeping, so
//! the cache must never lose. It also asserts `cache_hits` dominate
//! `cache_misses` (steady-state churn lives in the magazines) and that
//! neither variant leaks a single frame.
//!
//! Run with `cargo bench -p vbi-bench --bench alloc_churn`; knobs:
//! `VBI_ALLOC_OPS` (cycles per thread, default 10 000),
//! `VBI_ALLOC_THREADS` (gate-cell thread count, default 4),
//! `VBI_ALLOC_VBS` (churned-VB bytes, default 4096 = one frame),
//! `VBI_ALLOC_FLOOR` (gate, default 0.95). On a single-CPU host the
//! wall-clock spread is modest (workers share one core); the hit/miss and
//! refill columns are the structural signal either way.

use vbi_core::telemetry::{bench_line, JsonValue as J};
use vbi_sim::service_run::{alloc_churn_run, AllocChurnConfig, AllocChurnReport};

fn main() {
    let churns_per_thread =
        std::env::var("VBI_ALLOC_OPS").ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(10_000);
    let gate_threads =
        std::env::var("VBI_ALLOC_THREADS").ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(4);
    let vb_bytes =
        std::env::var("VBI_ALLOC_VBS").ok().and_then(|v| v.parse::<u64>().ok()).unwrap_or(4 << 10);
    let floor =
        std::env::var("VBI_ALLOC_FLOOR").ok().and_then(|v| v.parse::<f64>().ok()).unwrap_or(0.95);
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let config = |threads: usize, frame_cache: bool| AllocChurnConfig {
        threads,
        shards: 4,
        churns_per_thread,
        vb_bytes,
        frame_cache,
        ..AllocChurnConfig::default()
    };

    // (threads, frame_cache) sweep: each thread count runs the buddy-only
    // baseline and the cached path back to back.
    let sweep: Vec<(usize, bool)> =
        [1usize, 2, 4, 8].iter().flat_map(|&t| [(t, false), (t, true)]).collect();

    println!(
        "{:>7} {:>6} {:>12} {:>10} {:>10} {:>9} {:>8} {:>7}",
        "threads", "cache", "churns/sec", "hits", "misses", "refills", "flushes", "leaked"
    );
    let mut results: Vec<AllocChurnReport> = Vec::new();
    for &(threads, frame_cache) in &sweep {
        let report = alloc_churn_run(&config(threads, frame_cache));
        println!(
            "{:>7} {:>6} {:>12.0} {:>10} {:>10} {:>9} {:>8} {:>7}",
            report.threads,
            report.frame_cache,
            report.churns_per_sec,
            report.cache_hits,
            report.cache_misses,
            report.cache_refills,
            report.cache_flushes,
            report.frames_leaked,
        );
        // The conservation claim every cell must uphold, cache or not.
        assert_eq!(
            report.frames_leaked, 0,
            "allocation churn leaked frames (threads {threads}, cache {frame_cache})"
        );
        if frame_cache {
            assert!(
                report.cache_hits > report.cache_misses,
                "steady-state churn must be served from the magazines \
                 (hits {}, misses {})",
                report.cache_hits,
                report.cache_misses
            );
        }
        results.push(report);
    }

    // Gate: interleave buddy-only/cached rounds and keep each side's best
    // — best-vs-best cancels scheduler noise on shared hosts (the async
    // bench's pattern).
    let rounds = 5;
    let mut best_buddy = 0.0f64;
    let mut best_cached = 0.0f64;
    let mut gate_cached: Option<AllocChurnReport> = None;
    for _ in 0..rounds {
        best_buddy = best_buddy.max(alloc_churn_run(&config(gate_threads, false)).churns_per_sec);
        let cached = alloc_churn_run(&config(gate_threads, true));
        if cached.churns_per_sec > best_cached {
            best_cached = cached.churns_per_sec;
            gate_cached = Some(cached);
        }
    }
    let gate_cached = gate_cached.expect("at least one cached round");
    let ratio = best_cached / best_buddy.max(1.0);
    println!(
        "gate ({gate_threads} threads, best of {rounds}): cached {best_cached:.0} churns/sec vs \
         buddy-only {best_buddy:.0} churns/sec = {ratio:.2}x (floor {floor:.2})"
    );
    assert!(
        ratio >= floor,
        "frame-cache regression: cached churn runs at {ratio:.2}x buddy-only throughput \
         (floor {floor:.2}). A magazine hit must stay cheaper than buddy split/coalesce."
    );
    assert!(
        gate_cached.cache_hits > gate_cached.cache_misses,
        "gate cell must be magazine-served (hits {}, misses {})",
        gate_cached.cache_hits,
        gate_cached.cache_misses
    );

    let entries: Vec<String> = results.iter().map(|r| r.to_json()).collect();
    println!(
        "{}",
        bench_line(
            "alloc_churn",
            &[
                ("host_cpus", J::U(host_cpus as u64)),
                ("churns_per_thread", J::U(churns_per_thread as u64)),
                ("vb_bytes", J::U(vb_bytes)),
                ("gate_threads", J::U(gate_threads as u64)),
                ("rounds", J::U(rounds)),
                ("churns_per_sec_buddy", J::F(best_buddy, 0)),
                ("churns_per_sec_cached", J::F(best_cached, 0)),
                ("cached_ratio", J::F(ratio, 3)),
                ("floor", J::F(floor, 2)),
                ("gate_cache_hits", J::U(gate_cached.cache_hits)),
                ("gate_cache_misses", J::U(gate_cached.cache_misses)),
                ("results", J::Raw(format!("[{}]", entries.join(",")))),
            ],
        )
    );
}
