//! `telemetry` bench: what the telemetry plane costs on the hot path.
//!
//! Runs the `read_path` hot loop — N readers hammering warm
//! CVT-cache-hit loads through one shared session — twice: with telemetry
//! off (the uninstrumented baseline) and with the metrics registry armed
//! (per-op counters + latency histograms, the default shipping
//! configuration). The final line is a machine-readable JSON summary (tag
//! `BENCH_telemetry`) carrying the instrumented/uninstrumented throughput
//! ratio.
//!
//! The claim under test: metrics-off recording is flag-gated behind one
//! relaxed load, and metrics-on costs a few relaxed counter bumps per op
//! plus clock reads on 1-in-16 ops (latency sampling — see
//! `Telemetry::should_time`). The run *asserts* the metrics-on ratio
//! stays above a floor (`VBI_TELEMETRY_FLOOR`, default 0.90 — the slack
//! is scheduler noise on shared CI hosts, not instrument cost).
//!
//! Run with `cargo bench -p vbi-bench --bench telemetry`; set
//! `VBI_READ_OPS` to change the per-thread load count (default 50 000).

use vbi_core::telemetry::{bench_line, JsonValue as J};
use vbi_sim::service_run::{read_path_run, ReadPathConfig, ReadPathReport};

fn run(ops_per_thread: usize, telemetry: bool) -> ReadPathReport {
    read_path_run(&ReadPathConfig {
        threads: 4,
        shards: 4,
        ops_per_thread,
        lockfree: true,
        telemetry,
        ..ReadPathConfig::default()
    })
}

fn main() {
    let ops_per_thread =
        std::env::var("VBI_READ_OPS").ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(50_000);
    let floor = std::env::var("VBI_TELEMETRY_FLOOR")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.90);
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Interleave the configurations across rounds and keep each side's best
    // round: on a shared host, comparing best-vs-best cancels scheduler
    // noise that would swamp a single-round comparison.
    let rounds = 3;
    let mut best_off: Option<ReadPathReport> = None;
    let mut best_on: Option<ReadPathReport> = None;
    for _ in 0..rounds {
        let off = run(ops_per_thread, false);
        let on = run(ops_per_thread, true);
        if best_off.as_ref().is_none_or(|b| off.ops_per_sec > b.ops_per_sec) {
            best_off = Some(off);
        }
        if best_on.as_ref().is_none_or(|b| on.ops_per_sec > b.ops_per_sec) {
            best_on = Some(on);
        }
    }
    let off = best_off.expect("rounds > 0");
    let on = best_on.expect("rounds > 0");
    let metrics_ratio = on.ops_per_sec / off.ops_per_sec.max(1.0);

    println!("{:>12} {:>14} {:>8}", "telemetry", "ops/sec", "ratio");
    println!("{:>12} {:>14.0} {:>8}", "off", off.ops_per_sec, "1.00");
    println!("{:>12} {:>14.0} {:>8.2}", "metrics", on.ops_per_sec, metrics_ratio);

    assert!(
        metrics_ratio >= floor,
        "telemetry overhead regression: metrics-on read path runs at \
         {metrics_ratio:.2}x the uninstrumented throughput (floor {floor:.2}). \
         Recording must stay a flag-gated handful of relaxed atomics."
    );

    println!(
        "{}",
        bench_line(
            "telemetry",
            &[
                ("host_cpus", J::U(host_cpus as u64)),
                ("ops_per_thread", J::U(ops_per_thread as u64)),
                ("rounds", J::U(rounds)),
                ("ops_per_sec_off", J::F(off.ops_per_sec, 0)),
                ("ops_per_sec_metrics", J::F(on.ops_per_sec, 0)),
                ("metrics_ratio", J::F(metrics_ratio, 3)),
                ("floor", J::F(floor, 2)),
            ],
        )
    );
}
