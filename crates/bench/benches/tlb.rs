//! Microbenchmarks of the TLB and CVT-cache structures.

use criterion::{criterion_group, criterion_main, Criterion};
use vbi_core::addr::{SizeClass, Vbuid};
use vbi_core::client::{ClientId, Cvt};
use vbi_core::cvt_cache::{ClientCvtCache, CvtCache};
use vbi_core::perm::Rwx;
use vbi_core::tlb::Tlb;

fn bench_tlb(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb");

    group.bench_function("hit_512x4", |b| {
        let mut tlb: Tlb<u64, u64> = Tlb::new(512, 4);
        for k in 0..512 {
            tlb.insert(k, k);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 97) % 512;
            std::hint::black_box(tlb.lookup(&k))
        })
    });

    group.bench_function("miss_insert_evict", |b| {
        let mut tlb: Tlb<u64, u64> = Tlb::new(512, 4);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            tlb.insert(k, k)
        })
    });

    group.bench_function("fully_associative_64", |b| {
        let mut tlb: Tlb<u64, u64> = Tlb::fully_associative(64);
        for k in 0..64 {
            tlb.insert(k, k);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 13) % 64;
            std::hint::black_box(tlb.lookup(&k))
        })
    });

    group.bench_function("cvt_cache_hit", |b| {
        let mut cvt = Cvt::new(ClientId(0), 64);
        let mut cache = CvtCache::new(64);
        for i in 0..48u64 {
            let idx = cvt.attach(Vbuid::new(SizeClass::Kib128, i), Rwx::ALL).expect("slot");
            cache.fill(ClientId(0), idx, *cvt.entry(idx).expect("entry"));
        }
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7) % 48;
            std::hint::black_box(cache.lookup(ClientId(0), i))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_tlb);
criterion_main!(benches);
