//! `async` bench: the waker-driven front end (`vbi_service::AsyncSession`)
//! under a concurrency sweep, gated against the polling baseline.
//!
//! **Sweep**: task counts (`VBI_ASYNC_TASKS` × 1, ×10, ×100 — default
//! 1 000 → 100 000 concurrent sessions) × shard counts {2, 4}, every task
//! awaiting its ops on **one** executor thread while the queue's per-shard
//! workers execute. Reported per cell: ops/sec, p50/p99 wake-to-complete
//! latency, max queue depth, and backpressure engagements.
//!
//! **Gate**: the identical op stream (same clients, same VBs, same slot
//! pattern, same in-flight allowance) is also pushed through [`VbiQueue`]
//! by a polling submitter — submit, spin the window, reap. The run
//! *asserts* the async side stays above `VBI_ASYNC_FLOOR` (default 0.85)
//! of that synchronous throughput: waking a parked future per completion
//! must cost no more than 15% over polling a shared completion queue,
//! while scaling to orders of magnitude more clients than a
//! thread-per-client reaper could.
//!
//! Run with `cargo bench -p vbi-bench --bench async_sessions`; knobs:
//! `VBI_ASYNC_TASKS` (base task count), `VBI_ASYNC_OPS` (ops per task),
//! `VBI_ASYNC_FLOOR` (gate). On a single-CPU host wall-clock barely moves
//! across the sweep (executor and workers share one core); the latency
//! percentiles and depth/backpressure columns still show the machinery
//! working.

use std::time::Instant;

use vbi_core::ops::Op;
use vbi_core::perm::Rwx;
use vbi_core::telemetry::{bench_line, json_object, JsonValue as J};
use vbi_core::vb::VbProperties;
use vbi_core::VbiConfig;
use vbi_service::{ServiceConfig, VbiQueue};
use vbi_sim::service_run::{async_run, AsyncRunConfig, AsyncRunReport};

/// The polling baseline: the same clients × slots × ops stream as
/// [`async_run`], pipelined through [`VbiQueue`] by one submitter with the
/// same total in-flight allowance, reaping to stay inside it. Returns
/// ops/sec.
fn polling_run(config: &AsyncRunConfig) -> f64 {
    let clients = config.tasks.min(config.clients).clamp(1, 60_000);
    let tasks_per_client = config.tasks.div_ceil(clients);
    let queue = VbiQueue::new(ServiceConfig::new(
        config.shards,
        VbiConfig { phys_frames: config.phys_frames, ..VbiConfig::vbi_full() },
    ));
    let sessions: Vec<_> = (0..clients)
        .map(|_| {
            let owner = queue.create_client().expect("service has client IDs");
            let vb = owner
                .request_vb(
                    (tasks_per_client as u64 * 8).max(4096),
                    VbProperties::NONE,
                    Rwx::READ_WRITE,
                )
                .expect("footprint fits");
            (owner.id(), vb)
        })
        .collect();
    let window = (clients * config.inflight_per_session).max(64) as u64;
    let started = Instant::now();
    let mut tag = 0u64;
    let mut reaped = 0u64;
    for i in 0..config.ops_per_task as u64 {
        for task in 0..config.tasks {
            let (client, vb) = &sessions[task % clients];
            let va = vb.at((task / clients) as u64 * 8);
            let op = if i % 2 == 0 {
                Op::StoreU64 { client: *client, va, value: (task as u64) << 24 | i }
            } else {
                Op::LoadU64 { client: *client, va }
            };
            queue.submit(tag, op);
            tag += 1;
            while queue.in_flight() > window {
                if let Some(cqe) = queue.reap() {
                    assert!(cqe.result.is_ok(), "baseline requests are always in bounds");
                    reaped += 1;
                }
            }
        }
    }
    reaped += queue.drain().len() as u64;
    let elapsed = started.elapsed().as_secs_f64();
    let total = (config.tasks * config.ops_per_task) as u64;
    assert_eq!(reaped, total, "a completion was lost");
    if elapsed > 0.0 {
        total as f64 / elapsed
    } else {
        0.0
    }
}

fn main() {
    let base_tasks = std::env::var("VBI_ASYNC_TASKS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1_000);
    let ops_per_task =
        std::env::var("VBI_ASYNC_OPS").ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(20);
    let floor =
        std::env::var("VBI_ASYNC_FLOOR").ok().and_then(|v| v.parse::<f64>().ok()).unwrap_or(0.85);
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let config = |tasks: usize, shards: usize| AsyncRunConfig {
        tasks,
        ops_per_task,
        shards,
        inflight_per_session: 4,
        clients: 512,
        ..AsyncRunConfig::default()
    };

    // Concurrency sweep: 3 task counts × 2 shard (worker) counts.
    let sweep: Vec<(usize, usize)> = [1, 10, 100]
        .iter()
        .flat_map(|mul| [2usize, 4].map(|shards| (base_tasks * mul, shards)))
        .collect();

    println!(
        "{:>8} {:>8} {:>7} {:>12} {:>10} {:>10} {:>10} {:>9}",
        "tasks", "clients", "shards", "ops/sec", "p50-ns", "p99-ns", "max-depth", "bp-waits"
    );
    let mut results: Vec<AsyncRunReport> = Vec::new();
    for &(tasks, shards) in &sweep {
        let report = async_run(&config(tasks, shards));
        println!(
            "{:>8} {:>8} {:>7} {:>12.0} {:>10} {:>10} {:>10} {:>9}",
            report.tasks,
            report.clients,
            report.shards,
            report.ops_per_sec,
            report.p50_await_ns,
            report.p99_await_ns,
            report.max_queue_depth,
            report.backpressure_waits,
        );
        results.push(report);
    }

    // Gate on the smallest cell: interleave polling/async rounds and keep
    // each side's best — best-vs-best cancels scheduler noise on shared
    // hosts (the telemetry bench's pattern). Latency instrumentation is
    // off: the baseline doesn't pay it, so the ratio must not either.
    let gate_config = AsyncRunConfig { measure_latency: false, ..config(base_tasks, 2) };
    let rounds = 3;
    let mut best_polling = 0.0f64;
    let mut best_async = 0.0f64;
    for _ in 0..rounds {
        best_polling = best_polling.max(polling_run(&gate_config));
        best_async = best_async.max(async_run(&gate_config).ops_per_sec);
    }
    let async_ratio = best_async / best_polling.max(1.0);
    println!(
        "gate: async {best_async:.0} ops/sec vs polling {best_polling:.0} ops/sec \
         = {async_ratio:.2}x (floor {floor:.2})"
    );
    assert!(
        async_ratio >= floor,
        "async front-end regression: waker-driven sessions run at {async_ratio:.2}x the \
         polling-reap throughput (floor {floor:.2}). Completion dispatch must stay one \
         registry probe plus one wake."
    );

    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            json_object(&[
                ("tasks", J::U(r.tasks as u64)),
                ("clients", J::U(r.clients as u64)),
                ("shards", J::U(r.shards as u64)),
                ("ops_per_sec", J::F(r.ops_per_sec, 0)),
                ("p50_await_ns", J::U(r.p50_await_ns)),
                ("p99_await_ns", J::U(r.p99_await_ns)),
                ("max_queue_depth", J::U(r.max_queue_depth as u64)),
                ("inflight_high_water", J::U(r.inflight_high_water)),
                ("backpressure_waits", J::U(r.backpressure_waits)),
            ])
        })
        .collect();
    println!(
        "{}",
        bench_line(
            "async",
            &[
                ("host_cpus", J::U(host_cpus as u64)),
                ("base_tasks", J::U(base_tasks as u64)),
                ("ops_per_task", J::U(ops_per_task as u64)),
                ("rounds", J::U(rounds)),
                ("ops_per_sec_polling", J::F(best_polling, 0)),
                ("ops_per_sec_async", J::F(best_async, 0)),
                ("async_ratio", J::F(async_ratio, 3)),
                ("floor", J::F(floor, 2)),
                ("results", J::Raw(format!("[{}]", entries.join(",")))),
            ],
        )
    );
}
