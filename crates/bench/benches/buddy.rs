//! Microbenchmarks of the buddy allocator (the MTL's frame manager, §5.3).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use vbi_core::buddy::BuddyAllocator;

fn bench_buddy(c: &mut Criterion) {
    let mut group = c.benchmark_group("buddy");

    group.bench_function("alloc_free_order0", |b| {
        b.iter_batched_ref(
            || BuddyAllocator::new(1 << 16),
            |buddy| {
                let f = buddy.allocate(0).expect("frame");
                buddy.free(f, 0);
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("alloc_free_order8", |b| {
        b.iter_batched_ref(
            || BuddyAllocator::new(1 << 16),
            |buddy| {
                let f = buddy.allocate(8).expect("block");
                buddy.free(f, 8);
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("fragmented_churn", |b| {
        b.iter_batched_ref(
            || {
                let mut buddy = BuddyAllocator::new(1 << 16);
                // Pre-fragment: take every other small block.
                let mut held = Vec::new();
                for _ in 0..512 {
                    held.push(buddy.allocate(0).expect("frame"));
                    let tmp = buddy.allocate(0).expect("frame");
                    buddy.free(tmp, 0);
                }
                (buddy, held)
            },
            |(buddy, _held)| {
                for _ in 0..16 {
                    let f = buddy.allocate(3).expect("block");
                    buddy.free(f, 3);
                }
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("reservation_split_1024", |b| {
        b.iter_batched_ref(
            || BuddyAllocator::new(1 << 16),
            |buddy| {
                let base = buddy.allocate_split(10).expect("reservation");
                for i in 0..(1 << 10) {
                    buddy.free(base.offset(i), 0);
                }
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_buddy);
criterion_main!(benches);
