//! `queue` bench: host-throughput sweep of the io_uring-style
//! submission/completion front end (`vbi_service::VbiQueue`) over
//! submitter threads × shards × pipeline window.
//!
//! Complements the `service` bench (synchronous + batched paths) with the
//! asynchronous path: submitters pipeline tagged ops into per-shard rings
//! while shard workers execute through the shared op engine and post
//! completions. The final line is a machine-readable JSON summary (tag
//! `BENCH_queue`) so future PRs can track the trajectory.
//!
//! Run with `cargo bench -p vbi-bench --bench queue`; set `VBI_QUEUE_OPS`
//! to change the per-thread op count (default 20 000). On a single-CPU
//! host the wall-clock diagonal is flat (submitters and workers share one
//! core); the queue-depth column still shows the pipeline working.

use vbi_core::telemetry::{bench_line, json_object, JsonValue as J};
use vbi_sim::service_run::{queue_run, ServiceRunConfig};

fn main() {
    let ops_per_thread =
        std::env::var("VBI_QUEUE_OPS").ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(20_000);
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // (threads, shards, window) sweep. The 1×1×1 point is the fully
    // serialized baseline; the diagonal scales submitters with shards; the
    // final pair isolates the effect of a deeper pipeline window.
    let sweep: [(usize, usize, usize); 6] =
        [(1, 1, 1), (1, 1, 16), (2, 2, 16), (4, 4, 16), (4, 4, 64), (4, 1, 16)];

    println!(
        "{:>7} {:>7} {:>7} {:>12} {:>10} {:>10}",
        "threads", "shards", "window", "ops/sec", "max-depth", "tlb-hit%"
    );
    let mut results = Vec::new();
    for (threads, shards, window) in sweep {
        let config = ServiceRunConfig {
            threads,
            shards,
            ops_per_thread,
            batch: window,
            ..ServiceRunConfig::default()
        };
        let report = queue_run(&config);
        println!(
            "{:>7} {:>7} {:>7} {:>12.0} {:>10} {:>9.1}%",
            threads,
            shards,
            window,
            report.ops_per_sec,
            report.max_queue_depth,
            report.mtl.tlb_hit_rate() * 100.0,
        );
        results.push(report);
    }

    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            json_object(&[
                ("threads", J::U(r.threads as u64)),
                ("shards", J::U(r.shards as u64)),
                ("window", J::U(r.window as u64)),
                ("ops_per_sec", J::F(r.ops_per_sec, 0)),
                ("max_queue_depth", J::U(r.max_queue_depth as u64)),
            ])
        })
        .collect();
    println!(
        "{}",
        bench_line(
            "queue",
            &[
                ("benchmark", J::S("mcf".to_string())),
                ("host_cpus", J::U(host_cpus as u64)),
                ("ops_per_thread", J::U(ops_per_thread as u64)),
                ("results", J::Raw(format!("[{}]", entries.join(",")))),
            ],
        )
    );
}
