//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! delayed allocation on/off, early reservation on/off, CVT-cache size,
//! MTL-TLB size, and flexible versus fixed-depth translation structures.

use criterion::{criterion_group, criterion_main, Criterion};
use vbi_core::addr::SizeClass;
use vbi_core::config::VbiConfig;
use vbi_core::mtl::{Mtl, MtlAccess};
use vbi_core::vb::VbProperties;
use vbi_sim::engine::{run, EngineConfig};
use vbi_sim::systems::SystemKind;
use vbi_workloads::spec::benchmark;

fn quick() -> EngineConfig {
    EngineConfig { accesses: 4_000, warmup: 400, seed: 2020, phys_frames: 1 << 19 }
}

/// Ablation 1: the three VBI variants isolate each optimization.
fn ablate_optimizations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate-optimizations");
    group.sample_size(10);
    for (label, kind) in [
        ("base_vbi1", SystemKind::Vbi1),
        ("plus_delayed_alloc_vbi2", SystemKind::Vbi2),
        ("plus_early_reservation_full", SystemKind::VbiFull),
    ] {
        group.bench_function(label, |b| {
            let spec = benchmark("GemsFDTD").expect("known");
            let cfg = quick();
            b.iter(|| std::hint::black_box(run(kind, &spec, &cfg).cycles))
        });
    }
    group.finish();
}

/// Ablation 2: MTL page-TLB size sweep (the §4.2.3 TLB).
fn ablate_mtl_tlb(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate-mtl-tlb");
    group.sample_size(10);
    for entries in [64usize, 256, 1024] {
        group.bench_function(format!("entries_{entries}"), |b| {
            let config = VbiConfig {
                phys_frames: 1 << 18,
                mtl_tlb_entries: entries,
                mtl_tlb_ways: 4,
                early_reservation: false,
                ..VbiConfig::vbi_2()
            };
            let mut mtl = Mtl::new(config);
            let vb = mtl.find_free_vb(SizeClass::Mib128).expect("free");
            mtl.enable_vb(vb, VbProperties::NONE).expect("enable");
            for page in 0..4096u64 {
                mtl.write_u64(vb.address(page * 4096).expect("ok"), page).expect("write");
            }
            let mut page = 0u64;
            b.iter(|| {
                page = (page + 193) % 4096;
                let addr = vb.address(page * 4096).expect("ok");
                std::hint::black_box(mtl.translate(addr, MtlAccess::Read).expect("ok"))
            })
        });
    }
    group.finish();
}

/// Ablation 3: flexible (size-matched) versus fixed 4-level translation.
/// A 4 MiB VB walks one level under the static policy; forcing the deepest
/// structure shows what the flexibility buys.
fn ablate_structure_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate-structure-depth");
    group.sample_size(10);

    group.bench_function("flexible_single_level", |b| {
        let config =
            VbiConfig { phys_frames: 1 << 18, early_reservation: false, ..VbiConfig::vbi_1() };
        let mut mtl = Mtl::new(config);
        let vb = mtl.find_free_vb(SizeClass::Mib4).expect("free");
        mtl.enable_vb(vb, VbProperties::NONE).expect("enable");
        for page in 0..1024u64 {
            mtl.write_u64(vb.address(page * 4096).expect("ok"), page).expect("write");
        }
        let mut page = 0u64;
        b.iter(|| {
            page = (page + 193) % 1024;
            std::hint::black_box(
                mtl.translate(vb.address(page * 4096).expect("ok"), MtlAccess::Read).expect("ok"),
            )
        })
    });

    group.bench_function("fixed_deep_multi_level", |b| {
        // The same 4 MiB of data placed at the bottom of a 128 GiB VB, which
        // forces a 3-level walk — the cost a one-size-fits-all table pays.
        let config =
            VbiConfig { phys_frames: 1 << 18, early_reservation: false, ..VbiConfig::vbi_1() };
        let mut mtl = Mtl::new(config);
        let vb = mtl.find_free_vb(SizeClass::Gib128).expect("free");
        mtl.enable_vb(vb, VbProperties::NONE).expect("enable");
        for page in 0..1024u64 {
            mtl.write_u64(vb.address(page * 4096).expect("ok"), page).expect("write");
        }
        let mut page = 0u64;
        b.iter(|| {
            page = (page + 193) % 1024;
            std::hint::black_box(
                mtl.translate(vb.address(page * 4096).expect("ok"), MtlAccess::Read).expect("ok"),
            )
        })
    });

    group.finish();
}

/// Ablation 4: CVT-cache size sweep around the paper's 64-entry claim
/// (§4.3: near-100% hit rate at 64 entries because programs use < 48 VBs).
fn ablate_cvt_cache(c: &mut Criterion) {
    use vbi_core::client::{ClientId, Cvt};
    use vbi_core::cvt_cache::{ClientCvtCache, CvtCache};
    use vbi_core::perm::Rwx;

    let mut group = c.benchmark_group("ablate-cvt-cache");
    for slots in [16usize, 64, 256] {
        group.bench_function(format!("slots_{slots}_48vbs"), |b| {
            let mut cvt = Cvt::new(ClientId(0), 256);
            let mut cache = CvtCache::new(slots);
            for i in 0..48u64 {
                cvt.attach(vbi_core::addr::Vbuid::new(SizeClass::Kib128, i), Rwx::ALL)
                    .expect("slot");
            }
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7) % 48;
                match cache.lookup(ClientId(0), i) {
                    Some(e) => std::hint::black_box(e),
                    None => {
                        let e = *cvt.entry(i).expect("valid");
                        cache.fill(ClientId(0), i, e);
                        std::hint::black_box(e)
                    }
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablate_optimizations,
    ablate_mtl_tlb,
    ablate_structure_depth,
    ablate_cvt_cache
);
criterion_main!(benches);
