//! `migration` bench: cross-shard VB migration under concurrent lock-free
//! readers (`vbi_sim::service_run::migration_run`) over readers × shards ×
//! churn intensity.
//!
//! Exercises the §4.2.2 flexibility claim end to end: a churn thread moves
//! whole VBs between MTL shards through the engine's `Op::Migrate` while
//! reader threads hammer the same VBs through one shared session — every
//! read is asserted byte-exact in-process, so the sweep doubles as a
//! correctness check. The final line is a machine-readable JSON summary
//! (tag `BENCH_migration`) so future PRs can track the trajectory.
//!
//! Run with `cargo bench -p vbi-bench --bench migration`; set
//! `VBI_MIGRATION_READS` to change the per-reader load count (default
//! 20 000). On a single-CPU host the reader-scaling diagonal is flat; the
//! migrations/sec column and the epoch-fallback (cache-miss) counter are
//! the signal there.

use vbi_core::telemetry::{bench_line, JsonValue as J};
use vbi_sim::service_run::{migration_run, MigrationRunConfig};

fn main() {
    let reads_per_thread = std::env::var("VBI_MIGRATION_READS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(20_000);
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // (readers, shards, migrations) sweep. The first point is the quiet
    // baseline (almost no churn); the diagonal scales readers with shards;
    // the final pair isolates churn intensity at fixed parallelism.
    let sweep: [(usize, usize, usize); 5] =
        [(1, 2, 8), (2, 2, 100), (4, 4, 100), (4, 4, 400), (8, 4, 400)];

    println!(
        "{:>7} {:>7} {:>11} {:>12} {:>12} {:>11} {:>11}",
        "readers", "shards", "migrations", "reads/sec", "moves/sec", "epoch-miss", "torn"
    );
    let mut results = Vec::new();
    for (readers, shards, migrations) in sweep {
        let config = MigrationRunConfig {
            readers,
            shards,
            reads_per_thread,
            migrations,
            ..MigrationRunConfig::default()
        };
        let report = migration_run(&config);
        println!(
            "{:>7} {:>7} {:>11} {:>12.0} {:>12.1} {:>11} {:>11}",
            readers,
            shards,
            migrations,
            report.reads_per_sec,
            report.migrations_per_sec,
            report.cache.misses,
            report.cache.torn_retries,
        );
        results.push(report);
    }

    let entries: Vec<String> = results.iter().map(|r| r.to_json()).collect();
    println!(
        "{}",
        bench_line(
            "migration",
            &[
                ("host_cpus", J::U(host_cpus as u64)),
                ("reads_per_thread", J::U(reads_per_thread as u64)),
                ("results", J::Raw(format!("[{}]", entries.join(",")))),
            ],
        )
    );
}
