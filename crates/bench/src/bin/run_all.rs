//! Runs every table/figure harness in sequence (the full evaluation).
//!
//! The harnesses are compiled in as modules and invoked in-process, so
//! `cargo run --release -p vbi-bench --bin run_all` works on a fresh
//! checkout without the sibling binaries having been built first. The
//! harnesses print in a fixed order; fig8 — the most expensive sweep,
//! 6 bundles × 6 systems of quad-core runs — fans its independent
//! (bundle, system) runs out across `std::thread::scope` workers
//! internally, so the full evaluation's wall time is dominated by the
//! single-threaded figures rather than the quad-core sweep.

#[path = "table1.rs"]
mod table1;

#[path = "fig6.rs"]
mod fig6;

#[path = "fig7.rs"]
mod fig7;

#[path = "fig8.rs"]
mod fig8;

#[path = "fig9.rs"]
mod fig9;

#[path = "fig10.rs"]
mod fig10;

fn main() {
    let harnesses: [(&str, fn()); 6] = [
        ("table1", table1::main),
        ("fig6", fig6::main),
        ("fig7", fig7::main),
        ("fig8", fig8::main),
        ("fig9", fig9::main),
        ("fig10", fig10::main),
    ];
    let started = std::time::Instant::now();
    let mut timings = Vec::new();
    for (name, run) in harnesses {
        eprintln!("==> {name}");
        let t0 = std::time::Instant::now();
        run();
        timings.push((name, t0.elapsed().as_secs_f64()));
    }
    // Machine-readable trajectory line: per-figure wall-clock plus the key
    // knobs of the run (trace length, warm-up, host parallelism), so the
    // full evaluation's cost is trackable across PRs.
    let config = vbi_bench::figure_config();
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    use vbi_core::telemetry::{bench_line, json_object, JsonValue as J};
    let figures: Vec<String> = timings
        .iter()
        .map(|(name, secs)| {
            json_object(&[("name", J::S((*name).to_string())), ("secs", J::F(*secs, 3))])
        })
        .collect();
    println!(
        "{}",
        bench_line(
            "run_all",
            &[
                ("host_cpus", J::U(host_cpus as u64)),
                ("accesses", J::U(config.accesses as u64)),
                ("warmup", J::U(config.warmup as u64)),
                ("phys_frames", J::U(config.phys_frames)),
                ("total_secs", J::F(started.elapsed().as_secs_f64(), 3)),
                ("figures", J::Raw(format!("[{}]", figures.join(",")))),
            ],
        )
    );
}
