//! Runs every table/figure harness in sequence (the full evaluation).
//!
//! The harnesses are compiled in as modules and invoked in-process, so
//! `cargo run --release -p vbi-bench --bin run_all` works on a fresh
//! checkout without the sibling binaries having been built first. The
//! harnesses print in a fixed order; fig8 — the most expensive sweep,
//! 6 bundles × 6 systems of quad-core runs — fans its independent
//! (bundle, system) runs out across `std::thread::scope` workers
//! internally, so the full evaluation's wall time is dominated by the
//! single-threaded figures rather than the quad-core sweep.

#[path = "table1.rs"]
mod table1;

#[path = "fig6.rs"]
mod fig6;

#[path = "fig7.rs"]
mod fig7;

#[path = "fig8.rs"]
mod fig8;

#[path = "fig9.rs"]
mod fig9;

#[path = "fig10.rs"]
mod fig10;

fn main() {
    let harnesses: [(&str, fn()); 6] = [
        ("table1", table1::main),
        ("fig6", fig6::main),
        ("fig7", fig7::main),
        ("fig8", fig8::main),
        ("fig9", fig9::main),
        ("fig10", fig10::main),
    ];
    for (name, run) in harnesses {
        eprintln!("==> {name}");
        run();
    }
}
