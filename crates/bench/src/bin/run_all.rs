//! Runs every table/figure harness in sequence (the full evaluation).

use std::process::Command;

fn main() {
    let bins = ["table1", "fig6", "fig7", "fig8", "fig9", "fig10"];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        let path = dir.join(bin);
        eprintln!("==> {bin}");
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("failed to launch {bin}: {e} (build with --release first)");
                std::process::exit(1);
            }
        }
    }
}
