//! Regenerates Table 1: the simulation configuration.

use vbi_mem_sim::timing::{CacheTiming, DeviceTiming};

pub fn main() {
    vbi_bench::header("Table 1: Simulation configuration");
    let cache = CacheTiming::default();
    let dram = DeviceTiming::ddr3_1600();
    let pcm = DeviceTiming::pcm_800();

    println!("CPU              4-wide issue, OOO, 128-entry ROB (MLP model)");
    println!("L1 Cache         32 KB, 8-way associative, {} cycles", cache.l1);
    println!("L2 Cache         256 KB, 8-way associative, {} cycles", cache.l2);
    println!("L3 Cache         8 MB (2 MB per-core), 16-way associative, {} cycles", cache.llc);
    println!("L1 DTLB          4 KB pages: 64-entry, fully associative");
    println!("                 2 MB pages: 32-entry, fully associative");
    println!("L2 DTLB          4 KB and 2 MB pages: 512-entry, 4-way associative");
    println!("Page Walk Cache  32-entry, fully associative");
    println!("DRAM             DDR3-1600, 1 channel, 1 rank/channel,");
    println!("                 8 banks/rank, open-page policy");
    println!(
        "DRAM Timing      tRCD={}cy, tRP={}cy, tRRDact={}cy, tRRDpre={}cy",
        dram.t_rcd, dram.t_rp, dram.t_rrd_act, dram.t_rrd_pre
    );
    println!("PCM              PCM-800, 1 channel, 1 rank/channel, 8 banks/rank");
    println!(
        "PCM Timing       tRCD={}cy, tRP={}cy, tRRDact={}cy, tRRDpre={}cy",
        pcm.t_rcd, pcm.t_rp, pcm.t_rrd_act, pcm.t_rrd_pre
    );
    println!();
    println!("VBI structures   64-entry direct-mapped CVT cache per core,");
    println!("                 32-entry VIT cache, 512-entry 4-way MTL page TLB,");
    println!("                 64-entry whole-VB (direct) MTL TLB");
}
