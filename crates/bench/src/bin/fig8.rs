//! Regenerates Figure 8 (and Table 2): quad-core multiprogrammed weighted
//! speedup, normalized to Native.
//!
//! Every (bundle, system) run is independent, so the sweep fans out over
//! `std::thread::scope` workers: one stage computes each bundle's Native
//! baselines in parallel, a second computes every (bundle, system)
//! weighted speedup in parallel. Output order stays deterministic because
//! workers are joined in spawn order.

use std::thread;

use vbi_bench::figure_config;
use vbi_sim::engine::{EngineConfig, RunResult};
use vbi_sim::multicore::{run_alone_native, run_bundle};
use vbi_sim::report::mean;
use vbi_sim::systems::SystemKind;
use vbi_workloads::bundles::{bundle, bundle_names, BUNDLES};
use vbi_workloads::trace::WorkloadSpec;

pub fn main() {
    let base = figure_config();
    // Quad-core runs split the trace budget per app.
    let cfg = EngineConfig { accesses: base.accesses / 2, warmup: base.warmup / 2, ..base };

    vbi_bench::header("Table 2: Multiprogrammed workload bundles");
    for (name, apps) in BUNDLES {
        println!("{name}  {}", apps.join(", "));
    }

    let systems = vec![
        SystemKind::Native2M,
        SystemKind::Virtual,
        SystemKind::Virtual2M,
        SystemKind::VbiFull,
        SystemKind::PerfectTlb,
    ];

    // Stage 1: per-bundle Native baselines (alone + shared), in parallel.
    let names = bundle_names();
    let baselines: Vec<(Vec<WorkloadSpec>, Vec<RunResult>, f64)> = thread::scope(|s| {
        let workers: Vec<_> = names
            .iter()
            .map(|&name| {
                let cfg = &cfg;
                s.spawn(move || {
                    eprintln!("[fig8] {name} baselines ...");
                    let apps = bundle(name).expect("table 2 bundle");
                    let alone = run_alone_native(&apps, cfg);
                    let native_ws =
                        run_bundle(name, SystemKind::Native, &apps, cfg).weighted_speedup(&alone);
                    (apps, alone, native_ws)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("baseline worker")).collect()
    });

    // Stage 2: every (bundle, system) weighted speedup, in parallel.
    let rows: Vec<(&str, Vec<f64>)> = thread::scope(|s| {
        let workers: Vec<Vec<_>> = names
            .iter()
            .zip(&baselines)
            .map(|(&name, (apps, alone, native_ws))| {
                systems
                    .iter()
                    .map(|&system| {
                        let cfg = &cfg;
                        s.spawn(move || {
                            let ws = run_bundle(name, system, apps, cfg).weighted_speedup(alone);
                            ws / native_ws
                        })
                    })
                    .collect()
            })
            .collect();
        names
            .iter()
            .zip(workers)
            .map(|(&name, row)| {
                (name, row.into_iter().map(|w| w.join().expect("bundle worker")).collect())
            })
            .collect()
    });

    vbi_bench::header(
        "Figure 8: Multiprogrammed workload performance (weighted speedup normalized to Native)",
    );
    print!("{:<8}", "bundle");
    for s in &systems {
        print!("{:>14}", s.label());
    }
    println!();
    println!("{}", "-".repeat(8 + 14 * systems.len()));
    for (name, row) in &rows {
        print!("{name:<8}");
        for v in row {
            print!("{v:>14.2}");
        }
        println!();
    }
    println!("{}", "-".repeat(8 + 14 * systems.len()));
    print!("{:<8}", "AVG");
    for i in 0..systems.len() {
        let avg = mean(&rows.iter().map(|(_, r)| r[i]).collect::<Vec<f64>>());
        print!("{avg:>14.2}");
    }
    println!();
}
