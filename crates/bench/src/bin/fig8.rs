//! Regenerates Figure 8 (and Table 2): quad-core multiprogrammed weighted
//! speedup, normalized to Native.

use vbi_bench::figure_config;
use vbi_sim::engine::EngineConfig;
use vbi_sim::multicore::{run_alone_native, run_bundle};
use vbi_sim::report::mean;
use vbi_sim::systems::SystemKind;
use vbi_workloads::bundles::{bundle, bundle_names, BUNDLES};

pub fn main() {
    let base = figure_config();
    // Quad-core runs split the trace budget per app.
    let cfg = EngineConfig { accesses: base.accesses / 2, warmup: base.warmup / 2, ..base };

    vbi_bench::header("Table 2: Multiprogrammed workload bundles");
    for (name, apps) in BUNDLES {
        println!("{name}  {}", apps.join(", "));
    }

    let systems = vec![
        SystemKind::Native2M,
        SystemKind::Virtual,
        SystemKind::Virtual2M,
        SystemKind::VbiFull,
        SystemKind::PerfectTlb,
    ];

    let mut rows: Vec<(&str, Vec<f64>)> = Vec::new();
    for name in bundle_names() {
        eprintln!("[fig8] {name} ...");
        let apps = bundle(name).expect("table 2 bundle");
        let alone = run_alone_native(&apps, &cfg);
        let native_shared = run_bundle(name, SystemKind::Native, &apps, &cfg);
        let native_ws = native_shared.weighted_speedup(&alone);
        let mut row = Vec::new();
        for &system in &systems {
            let ws = run_bundle(name, system, &apps, &cfg).weighted_speedup(&alone);
            row.push(ws / native_ws);
        }
        rows.push((name, row));
    }

    vbi_bench::header(
        "Figure 8: Multiprogrammed workload performance (weighted speedup normalized to Native)",
    );
    print!("{:<8}", "bundle");
    for s in &systems {
        print!("{:>14}", s.label());
    }
    println!();
    println!("{}", "-".repeat(8 + 14 * systems.len()));
    for (name, row) in &rows {
        print!("{name:<8}");
        for v in row {
            print!("{v:>14.2}");
        }
        println!();
    }
    println!("{}", "-".repeat(8 + 14 * systems.len()));
    print!("{:<8}", "AVG");
    for i in 0..systems.len() {
        let avg = mean(&rows.iter().map(|(_, r)| r[i]).collect::<Vec<f64>>());
        print!("{avg:>14.2}");
    }
    println!();
}
