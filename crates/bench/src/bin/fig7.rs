//! Regenerates Figure 7: performance with large pages, normalized to
//! Native-2M. The figure shows a subset of the benchmarks; the averages
//! (AVG, AVG-no-mcf) cover all Figure 6 benchmarks, as in the paper.

use vbi_bench::figure_config;
use vbi_sim::engine::run;
use vbi_sim::report::SpeedupTable;
use vbi_sim::systems::SystemKind;
use vbi_workloads::spec::{benchmark, FIG6_BENCHMARKS, FIG7_BENCHMARKS};

pub fn main() {
    let cfg = figure_config();
    let systems = vec![
        SystemKind::Virtual2M,
        SystemKind::EnigmaHw2M,
        SystemKind::VbiFull,
        SystemKind::PerfectTlb,
    ];

    let mut results = Vec::new();
    for name in FIG6_BENCHMARKS {
        let spec = benchmark(name).expect("figure benchmark exists");
        eprintln!("[fig7] {name} ...");
        results.push(run(SystemKind::Native2M, &spec, &cfg));
        for &system in &systems {
            results.push(run(system, &spec, &cfg));
        }
    }

    let table = SpeedupTable::from_runs(SystemKind::Native2M, systems.clone(), &results);
    vbi_bench::header("Figure 7: Performance with large pages (normalized to Native-2M)");
    println!("(figure rows; averages computed over all Figure 6 benchmarks)\n");
    print!("{:<16}", "workload");
    for s in &systems {
        print!("{:>14}", s.label());
    }
    println!();
    println!("{}", "-".repeat(16 + 14 * systems.len()));
    for name in FIG7_BENCHMARKS {
        print!("{name:<16}");
        for &s in &systems {
            print!("{:>14.2}", table.cell(name, s).expect("cell exists"));
        }
        println!();
    }
    println!("{}", "-".repeat(16 + 14 * systems.len()));
    print!("{:<16}", "AVG");
    for v in table.averages() {
        print!("{v:>14.2}");
    }
    println!();
    print!("{:<16}", "AVG-no-mcf");
    for v in table.averages_excluding("mcf") {
        print!("{v:>14.2}");
    }
    println!();
}
