//! Regenerates Figure 10: VBI TL-DRAM performance, normalized to the
//! hotness-unaware TL-DRAM mapping, with the IDEAL oracle as upper bound.

use vbi_bench::figure_config;
use vbi_hetero::memory::{HeteroKind, Policy};
use vbi_sim::hetero_run::run_hetero;
use vbi_sim::report::mean;
use vbi_workloads::spec::{benchmark, HETERO_BENCHMARKS};

pub fn main() {
    let kind = HeteroKind::TlDram;
    let cfg = figure_config();
    let mut vbi_speedups = Vec::new();
    let mut ideal_speedups = Vec::new();

    vbi_bench::header(
        "Figure 10: Performance of VBI TL-DRAM (normalized to hotness-unaware mapping)",
    );
    println!("{:<16}{:>14}{:>14}", "workload", "VBI", "IDEAL");
    println!("{}", "-".repeat(44));
    for name in HETERO_BENCHMARKS {
        let spec = benchmark(name).expect("hetero benchmark exists");
        eprintln!("[fig10] {name} ...");
        let unaware = run_hetero(kind, Policy::Unaware, &spec, &cfg);
        let vbi = run_hetero(kind, Policy::VbiHotness, &spec, &cfg);
        let ideal = run_hetero(kind, Policy::Ideal, &spec, &cfg);
        let vs = vbi.speedup_over(&unaware);
        let is = ideal.speedup_over(&unaware);
        println!("{name:<16}{vs:>14.2}{is:>14.2}");
        vbi_speedups.push(vs);
        ideal_speedups.push(is);
    }
    println!("{}", "-".repeat(44));
    println!("{:<16}{:>14.2}{:>14.2}", "AVG", mean(&vbi_speedups), mean(&ideal_speedups));
}
