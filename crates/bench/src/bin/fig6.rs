//! Regenerates Figure 6: performance of systems with 4 KiB pages,
//! normalized to Native, for each benchmark plus AVG and AVG-no-mcf.

use vbi_bench::figure_config;
use vbi_sim::engine::run;
use vbi_sim::report::SpeedupTable;
use vbi_sim::systems::SystemKind;
use vbi_workloads::spec::{benchmark, FIG6_BENCHMARKS};

pub fn main() {
    let cfg = figure_config();
    let systems = vec![
        SystemKind::Virtual,
        SystemKind::Vivt,
        SystemKind::Vbi1,
        SystemKind::Vbi2,
        SystemKind::VbiFull,
        SystemKind::PerfectTlb,
    ];

    let mut results = Vec::new();
    for name in FIG6_BENCHMARKS {
        let spec = benchmark(name).expect("figure benchmark exists");
        eprintln!("[fig6] {name} ...");
        results.push(run(SystemKind::Native, &spec, &cfg));
        for &system in &systems {
            results.push(run(system, &spec, &cfg));
        }
    }

    let table = SpeedupTable::from_runs(SystemKind::Native, systems, &results);
    vbi_bench::header("Figure 6: Performance of systems with 4 KB pages (normalized to Native)");
    print!("{}", table.render_with_exclusion("", "mcf"));
}
