//! # vbi-bench — the benchmark harness of the VBI reproduction
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | binary | regenerates | run with |
//! |---|---|---|
//! | `table1` | Table 1 (simulation configuration) | `cargo run -p vbi-bench --release --bin table1` |
//! | `fig6` | Figure 6 (4 KiB-page systems vs Native) | `cargo run -p vbi-bench --release --bin fig6` |
//! | `fig7` | Figure 7 (large-page systems vs Native-2M) | `cargo run -p vbi-bench --release --bin fig7` |
//! | `fig8` | Figure 8 + Table 2 (quad-core weighted speedup) | `cargo run -p vbi-bench --release --bin fig8` |
//! | `fig9` | Figure 9 (PCM-DRAM placement) | `cargo run -p vbi-bench --release --bin fig9` |
//! | `fig10` | Figure 10 (TL-DRAM placement) | `cargo run -p vbi-bench --release --bin fig10` |
//! | `run_all` | everything above | `cargo run -p vbi-bench --release --bin run_all` |
//!
//! The trace length is configurable through `VBI_SIM_ACCESSES` (default
//! 150 000 measured accesses + 10% warm-up); larger values sharpen the
//! averages at proportional runtime cost.

use vbi_sim::engine::EngineConfig;

/// Engine configuration for figure runs: `VBI_SIM_ACCESSES` accesses
/// (default 150 000) after a 10% warm-up, on a 4 GiB machine.
pub fn figure_config() -> EngineConfig {
    let accesses = std::env::var("VBI_SIM_ACCESSES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(150_000);
    EngineConfig {
        accesses,
        warmup: accesses / 10,
        seed: 2020, // ISCA 2020
        phys_frames: 1 << 20,
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=============================================================");
    println!("{title}");
    println!("=============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_config_defaults() {
        let cfg = figure_config();
        assert!(cfg.accesses >= 1000);
        assert_eq!(cfg.warmup, cfg.accesses / 10);
        assert_eq!(cfg.phys_frames, 1 << 20);
    }
}
