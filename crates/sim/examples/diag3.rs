use vbi_sim::engine::{run, EngineConfig};
use vbi_sim::systems::SystemKind;
use vbi_workloads::spec::benchmark;
fn main() {
    let cfg = EngineConfig { accesses: 150_000, warmup: 15_000, seed: 2020, phys_frames: 1 << 20 };
    let spec = benchmark("mcf").unwrap();
    for sys in [
        SystemKind::Native,
        SystemKind::PerfectTlb,
        SystemKind::Vbi1,
        SystemKind::Vbi2,
        SystemKind::VbiFull,
    ] {
        let r = run(sys, &spec, &cfg);
        let c = r.counters;
        println!(
            "{:12} ipc={:.4} cyc={:9} llc_miss={:6} tlb_miss={:6} xl_acc={:7} dram={:6} zero={:6}",
            sys.label(),
            r.ipc(),
            r.cycles,
            c.llc_misses,
            c.tlb_misses,
            c.translation_accesses,
            c.dram_accesses,
            c.zero_lines
        );
    }
}
