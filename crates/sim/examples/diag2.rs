use vbi_sim::engine::{run, EngineConfig};
use vbi_sim::systems::SystemKind;
use vbi_workloads::spec::{benchmark, FIG6_BENCHMARKS};
fn main() {
    let cfg = EngineConfig { accesses: 60_000, warmup: 6_000, seed: 2020, phys_frames: 1 << 20 };
    for name in FIG6_BENCHMARKS {
        for sys in [SystemKind::Vbi1, SystemKind::Vbi2, SystemKind::VbiFull] {
            let spec = benchmark(name).unwrap();
            let res = std::panic::catch_unwind(|| run(sys, &spec, &cfg));
            match res {
                Ok(r) => eprintln!("{name:14} {:9} ok ipc={:.3}", sys.label(), r.ipc()),
                Err(_) => {
                    eprintln!("{name:14} {:9} PANIC", sys.label());
                }
            }
        }
    }
}
