//! # vbi-sim — end-to-end system simulator for the VBI reproduction
//!
//! Replays `vbi-workloads` traces against the ten system configurations of
//! the paper's evaluation (§7) and reports paper-shaped speedup tables:
//!
//! * [`systems`] — `Native`, `Native-2M`, `Virtual`, `Virtual-2M`,
//!   `Perfect TLB`, `VIVT`, `Enigma-HW-2M`, `VBI-1`, `VBI-2`, `VBI-Full`;
//! * [`engine`] — the single-core trace engine (4-wide core, MLP-overlapped
//!   stalls, warm-up + measurement);
//! * [`multicore`] — quad-core bundles and weighted speedup (Figure 8);
//! * [`hetero_run`] — PCM-DRAM and TL-DRAM placement experiments
//!   (Figures 9-10);
//! * [`mod@service_run`] — the multi-threaded traffic harness for the
//!   concurrent `vbi-service` (host ops/sec, shard contention, and the
//!   deterministic replay used by the equivalence suite);
//! * [`mod@pressure_run`] — the oversubscribed-memory harness (fault rate
//!   and p50/p99 op latency while the engine evicts and faults in);
//! * [`report`] — speedup tables with `AVG` / `AVG-no-mcf` rows.
//!
//! ```no_run
//! use vbi_sim::engine::{run, EngineConfig};
//! use vbi_sim::systems::SystemKind;
//! use vbi_workloads::spec::benchmark;
//!
//! let spec = benchmark("mcf").expect("known");
//! let cfg = EngineConfig::quick();
//! let native = run(SystemKind::Native, &spec, &cfg);
//! let vbi = run(SystemKind::VbiFull, &spec, &cfg);
//! println!("VBI-Full speedup on mcf: {:.2}x", vbi.speedup_over(&native));
//! ```

pub mod engine;
pub mod hetero_run;
pub mod multicore;
pub mod pressure_run;
pub mod report;
pub mod service_run;
pub mod systems;

pub use engine::{run, EngineConfig, RunResult};
pub use hetero_run::{run_hetero, HeteroRunResult};
pub use multicore::{run_alone_native, run_bundle, BundleResult};
pub use pressure_run::{pressure_run, PressureFrontEnd, PressureRunConfig, PressureRunReport};
pub use report::{geomean, mean, SpeedupTable};
pub use service_run::{service_run, ServiceRunConfig, ServiceRunReport};
pub use systems::{build_system, AccessCost, MemorySystem, SystemKind};
