//! Multi-threaded traffic harness for the sharded memory service.
//!
//! Where [`crate::engine`] measures *simulated cycles* of one core, this
//! module measures *host throughput* of the concurrent service: M OS
//! threads replay workload traces against a [`VbiService`] — synchronously
//! or batched ([`service_run`]), or pipelined through the [`VbiQueue`]
//! submission/completion front end ([`queue_run`]) — and the report
//! carries real ops/sec plus the per-shard lock-contention counters (and,
//! in queue mode, the submission-ring high-water depth). A fourth driver,
//! [`migration_run`], hammers VBs with readers while a churn thread
//! migrates them between shards through the engine's `Op::Migrate`,
//! asserting byte-exactness throughout; a fifth, [`async_run`], multiplexes
//! thousands of awaited [`AsyncSession`](vbi_service::AsyncSession) tasks
//! on one executor thread and reports wake-to-complete latency and
//! backpressure engagement; a sixth, [`alloc_churn_run`], loops
//! request/touch/release cycles over short-lived VBs across threads — the
//! frame allocate/free hot path the per-shard magazine cache fronts.
//! These are the drivers behind the `service`, `queue`, `read_path`,
//! `migration`, `async_sessions`, and `alloc_churn` benches in `vbi-bench`
//! and the equivalence/stress suites at the workspace root.
//!
//! The same replay is exposed in deterministic single-threaded form
//! ([`replay_on_system`] / [`replay_on_service`]) so a fixed trace can be
//! pushed through the single-owner [`System`] and through a 1-shard,
//! 1-thread service and compared load-for-load and counter-for-counter.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::Rng;

use vbi_core::config::VbiConfig;
use vbi_core::ops::Op as VbiOp;
use vbi_core::perm::Rwx;
use vbi_core::stats::MtlStats;
use vbi_core::system::{System, VbHandle};
use vbi_core::vb::VbProperties;
use vbi_service::{ServiceConfig, ShardLoad, VbiQueue, VbiService};
use vbi_workloads::spec::benchmark;
use vbi_workloads::trace::WorkloadSpec;

/// Cap on the per-region VB size used by the harness: keeps the footprint
/// of a many-threaded run bounded while still exercising multi-page VBs.
pub const REGION_CAP: u64 = 4 << 20;

/// One replayable operation, fully resolved from a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Index into the workload's region list (one VB per region).
    pub region: usize,
    /// 8-byte-aligned offset within the (capped) region.
    pub offset: u64,
    /// Store (`true`) or load (`false`).
    pub is_write: bool,
}

/// Materializes `count` operations of `spec`'s trace with `seed` — the
/// fixed workload both sides of an equivalence comparison replay.
pub fn trace_ops(spec: &WorkloadSpec, seed: u64, count: usize) -> Vec<Op> {
    spec.trace(seed)
        .take(count)
        .map(|a| {
            let cap = spec.regions[a.region].bytes.min(REGION_CAP);
            Op { region: a.region, offset: (a.offset % (cap - 8)) & !7, is_write: a.is_write }
        })
        .collect()
}

/// Replays `ops` through a single-owner [`System`]; returns every loaded
/// value (in op order) and the MTL counters.
pub fn replay_on_system(
    config: VbiConfig,
    spec: &WorkloadSpec,
    ops: &[Op],
) -> (Vec<u64>, MtlStats) {
    let system = System::new(config);
    let session = system.create_client().expect("fresh system");
    let handles: Vec<VbHandle> = spec
        .regions
        .iter()
        .map(|r| {
            session
                .request_vb(r.bytes.min(REGION_CAP), VbProperties::NONE, Rwx::READ_WRITE)
                .expect("harness footprint fits the machine")
        })
        .collect();
    let mut loads = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let va = handles[op.region].at(op.offset);
        if op.is_write {
            session.store_u64(va, i as u64).expect("in-bounds store");
        } else {
            loads.push(session.load_u64(va).expect("in-bounds load"));
        }
    }
    let stats = system.mtl().stats();
    (loads, stats)
}

/// Replays `ops` through a [`VbiService`] from one thread; returns every
/// loaded value (in op order) and the merged MTL counters.
pub fn replay_on_service(
    service: &VbiService,
    spec: &WorkloadSpec,
    ops: &[Op],
) -> (Vec<u64>, MtlStats) {
    let session = service.create_client().expect("service has client IDs");
    let handles: Vec<VbHandle> = spec
        .regions
        .iter()
        .map(|r| {
            session
                .request_vb(r.bytes.min(REGION_CAP), VbProperties::NONE, Rwx::READ_WRITE)
                .expect("harness footprint fits the machine")
        })
        .collect();
    let mut loads = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let va = handles[op.region].at(op.offset);
        if op.is_write {
            session.store_u64(va, i as u64).expect("in-bounds store");
        } else {
            loads.push(session.load_u64(va).expect("in-bounds load"));
        }
    }
    (loads, service.stats())
}

/// Configuration of one multi-threaded service run.
#[derive(Debug, Clone)]
pub struct ServiceRunConfig {
    /// Worker (OS) threads replaying traffic.
    pub threads: usize,
    /// MTL shards (power of two).
    pub shards: usize,
    /// Operations each thread replays.
    pub ops_per_thread: usize,
    /// Batch size for [`VbiService::submit`]; `1` uses the unbatched path.
    pub batch: usize,
    /// Trace seed (thread `t` replays stream `seed ^ t`).
    pub seed: u64,
    /// Total physical frames of the machine (split across shards).
    pub phys_frames: u64,
    /// Benchmark whose trace is replayed (a `vbi-workloads` name).
    pub benchmark: &'static str,
}

impl Default for ServiceRunConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            shards: 4,
            ops_per_thread: 50_000,
            batch: 64,
            seed: 2020,
            phys_frames: 1 << 18, // 1 GiB
            benchmark: "mcf",
        }
    }
}

/// Report of one multi-threaded service run.
#[derive(Debug, Clone)]
pub struct ServiceRunReport {
    /// The run's configuration (threads, shards, batch, ...).
    pub threads: usize,
    /// Shard count of the run.
    pub shards: usize,
    /// Operations completed across all threads.
    pub total_ops: u64,
    /// Wall-clock seconds of the whole replay scope, including each
    /// worker's setup (client/VB creation, trace materialization).
    pub elapsed_secs: f64,
    /// Throughput in operations per second.
    pub ops_per_sec: f64,
    /// Merged MTL counters across shards.
    pub mtl: MtlStats,
    /// Per-shard lock traffic.
    pub shard_loads: Vec<ShardLoad>,
}

impl ServiceRunReport {
    /// Total blocked lock acquisitions across shards.
    pub fn total_contended(&self) -> u64 {
        self.shard_loads.iter().map(|l| l.contended).sum()
    }

    /// One-line JSON rendering via the shared
    /// [`json_object`](vbi_core::telemetry::json_object) emitter: sorted
    /// keys, schema-stable.
    pub fn to_json(&self) -> String {
        use vbi_core::telemetry::JsonValue as J;
        vbi_core::telemetry::json_object(&[
            ("threads", J::U(self.threads as u64)),
            ("shards", J::U(self.shards as u64)),
            ("total_ops", J::U(self.total_ops)),
            ("elapsed_secs", J::F(self.elapsed_secs, 6)),
            ("ops_per_sec", J::F(self.ops_per_sec, 0)),
            ("translation_requests", J::U(self.mtl.translation_requests)),
            ("tlb_hits", J::U(self.mtl.tlb_hits)),
            ("contended_lock_acquisitions", J::U(self.total_contended())),
        ])
    }
}

/// Runs `config.threads` workers against a fresh `config.shards`-way
/// service, each replaying `config.ops_per_thread` trace operations against
/// its own client and VBs, and reports throughput plus contention.
///
/// Each thread owns an independent, deterministic trace stream
/// (`seed ^ thread`) and an unshared RNG ([`SmallRng::stream`]) for store
/// values, so workload generation takes no locks.
///
/// # Panics
///
/// Panics if `config.benchmark` is unknown or the footprint exceeds the
/// machine (the harness caps regions at [`REGION_CAP`] to prevent this).
pub fn service_run(config: &ServiceRunConfig) -> ServiceRunReport {
    let spec = benchmark(config.benchmark)
        .unwrap_or_else(|| panic!("unknown benchmark {:?}", config.benchmark));
    let service = VbiService::new(ServiceConfig::new(
        config.shards,
        VbiConfig { phys_frames: config.phys_frames, ..VbiConfig::vbi_full() },
    ));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..config.threads {
            let service = service.clone();
            let spec = &spec;
            scope.spawn(move || {
                replay_worker(&service, spec, config, thread as u64);
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let total_ops = (config.threads * config.ops_per_thread) as u64;
    ServiceRunReport {
        threads: config.threads,
        shards: config.shards,
        total_ops,
        elapsed_secs: elapsed,
        ops_per_sec: if elapsed > 0.0 { total_ops as f64 / elapsed } else { 0.0 },
        mtl: service.stats(),
        shard_loads: service.contention(),
    }
}

fn replay_worker(
    service: &VbiService,
    spec: &WorkloadSpec,
    config: &ServiceRunConfig,
    thread: u64,
) {
    let session = service.create_client().expect("service has client IDs");
    let handles: Vec<VbHandle> = spec
        .regions
        .iter()
        .map(|r| {
            session
                .request_vb(r.bytes.min(REGION_CAP), VbProperties::NONE, Rwx::READ_WRITE)
                .expect("harness footprint fits the machine")
        })
        .collect();
    // Per-thread RNG: no shared lock anywhere in trace generation.
    let mut values = SmallRng::stream(config.seed, thread);
    let ops = trace_ops(spec, config.seed ^ thread, config.ops_per_thread);
    if config.batch <= 1 {
        for op in &ops {
            let va = handles[op.region].at(op.offset);
            if op.is_write {
                session.store_u64(va, values.gen()).expect("in-bounds store");
            } else {
                session.load_u64(va).expect("in-bounds load");
            }
        }
    } else {
        let client = session.id();
        let mut batch: Vec<VbiOp> = Vec::with_capacity(config.batch);
        for op in &ops {
            let va = handles[op.region].at(op.offset);
            batch.push(if op.is_write {
                VbiOp::StoreU64 { client, va, value: values.gen() }
            } else {
                VbiOp::LoadU64 { client, va }
            });
            if batch.len() == config.batch {
                flush(service, &mut batch);
            }
        }
        flush(service, &mut batch);
    }
}

fn flush(service: &VbiService, batch: &mut Vec<VbiOp>) {
    if batch.is_empty() {
        return;
    }
    for response in service.submit(batch) {
        assert!(response.is_ok(), "harness requests are always in bounds");
    }
    batch.clear();
}

/// Report of one queue-mode run ([`queue_run`]): M submitter threads
/// pipelining tagged ops through a [`VbiQueue`] while per-shard workers
/// execute and post completions.
#[derive(Debug, Clone)]
pub struct QueueRunReport {
    /// Submitter threads.
    pub threads: usize,
    /// MTL shards (= queue worker threads).
    pub shards: usize,
    /// Pipeline window each submitter keeps in flight.
    pub window: usize,
    /// Operations completed across all threads.
    pub total_ops: u64,
    /// Completions reaped (must equal `total_ops` — asserted by the run).
    pub completions: u64,
    /// Wall-clock seconds of the whole replay scope, including each
    /// submitter's setup (client/VB creation, trace materialization) and
    /// the final drain.
    pub elapsed_secs: f64,
    /// Throughput in operations per second.
    pub ops_per_sec: f64,
    /// High-water mark of SQEs queued at once.
    pub max_queue_depth: usize,
    /// Merged MTL counters across shards.
    pub mtl: MtlStats,
    /// Per-shard lock traffic.
    pub shard_loads: Vec<ShardLoad>,
}

impl QueueRunReport {
    /// One-line JSON rendering via the shared
    /// [`json_object`](vbi_core::telemetry::json_object) emitter: sorted
    /// keys, schema-stable.
    pub fn to_json(&self) -> String {
        use vbi_core::telemetry::JsonValue as J;
        vbi_core::telemetry::json_object(&[
            ("threads", J::U(self.threads as u64)),
            ("shards", J::U(self.shards as u64)),
            ("window", J::U(self.window as u64)),
            ("total_ops", J::U(self.total_ops)),
            ("completions", J::U(self.completions)),
            ("elapsed_secs", J::F(self.elapsed_secs, 6)),
            ("ops_per_sec", J::F(self.ops_per_sec, 0)),
            ("max_queue_depth", J::U(self.max_queue_depth as u64)),
            ("translation_requests", J::U(self.mtl.translation_requests)),
            ("tlb_hits", J::U(self.mtl.tlb_hits)),
        ])
    }
}

/// Runs `config.threads` submitters against a fresh [`VbiQueue`] over a
/// `config.shards`-way service: each submitter pipelines its trace through
/// tagged submissions, keeping up to `config.batch` ops in flight (the
/// pipeline window), and reaps completions as it goes — the asynchronous
/// analogue of [`service_run`]. Every completion is verified `Ok`, and the
/// run asserts none were lost.
///
/// # Panics
///
/// Panics if `config.benchmark` is unknown, the footprint exceeds the
/// machine, or any completion is missing or failed.
pub fn queue_run(config: &ServiceRunConfig) -> QueueRunReport {
    let spec = benchmark(config.benchmark)
        .unwrap_or_else(|| panic!("unknown benchmark {:?}", config.benchmark));
    let queue = VbiQueue::new(ServiceConfig::new(
        config.shards,
        VbiConfig { phys_frames: config.phys_frames, ..VbiConfig::vbi_full() },
    ));
    let window = config.batch.max(1);
    let started = Instant::now();
    let reaped: u64 = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..config.threads)
            .map(|thread| {
                let queue = &queue;
                let spec = &spec;
                scope.spawn(move || queue_worker(queue, spec, config, thread as u64, window))
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("submitter panicked")).sum()
    });
    // Reap whatever the submitters left in flight.
    let leftovers = queue.drain();
    for cqe in &leftovers {
        assert!(cqe.result.is_ok(), "harness requests are always in bounds");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let total_ops = (config.threads * config.ops_per_thread) as u64;
    let completions = reaped + leftovers.len() as u64;
    assert_eq!(completions, total_ops, "a completion was lost");
    let depth = queue.depth();
    let service = queue.service();
    QueueRunReport {
        threads: config.threads,
        shards: config.shards,
        window,
        total_ops,
        completions,
        elapsed_secs: elapsed,
        ops_per_sec: if elapsed > 0.0 { total_ops as f64 / elapsed } else { 0.0 },
        max_queue_depth: depth.high_water,
        mtl: service.stats(),
        shard_loads: service.contention(),
    }
}

/// One submitter: pipeline the thread's trace through the queue with a
/// bounded window, reaping (and checking) completions to make room.
/// Returns the number of completions this thread reaped.
fn queue_worker(
    queue: &VbiQueue,
    spec: &WorkloadSpec,
    config: &ServiceRunConfig,
    thread: u64,
    window: usize,
) -> u64 {
    // Setup is synchronous: the client and its VBs exist before the first
    // pipelined access (queued ops may not depend on unreaped ones).
    let session = queue.create_client().expect("service has client IDs");
    let client = session.id();
    let handles: Vec<VbHandle> = spec
        .regions
        .iter()
        .map(|r| {
            session
                .request_vb(r.bytes.min(REGION_CAP), VbProperties::NONE, Rwx::READ_WRITE)
                .expect("harness footprint fits the machine")
        })
        .collect();
    let mut values = SmallRng::stream(config.seed, thread);
    let ops = trace_ops(spec, config.seed ^ thread, config.ops_per_thread);
    let mut reaped = 0u64;
    for (seq, op) in ops.iter().enumerate() {
        let va = handles[op.region].at(op.offset);
        let tag = (thread << 32) | seq as u64;
        queue.submit(
            tag,
            if op.is_write {
                VbiOp::StoreU64 { client, va, value: values.gen() }
            } else {
                VbiOp::LoadU64 { client, va }
            },
        );
        // The window bounds *global* in-flight work; the completion queue
        // is shared, so a reaped CQE may belong to any submitter. Blocking
        // reap (not a try_reap spin) keeps submitters off the CPU while
        // the shard workers catch up.
        while queue.in_flight() > (window * config.threads) as u64 {
            match queue.reap() {
                Some(cqe) => {
                    assert!(cqe.result.is_ok(), "harness requests are always in bounds");
                    reaped += 1;
                }
                None => break, // another thread reaped the queue idle
            }
        }
    }
    reaped
}

/// Configuration of one read-path run ([`read_path_run`]): N reader
/// threads sharing **one** client session, hammering warm CVT-cache-hit
/// loads — the hot path the lock-free redesign takes the client lock off.
#[derive(Debug, Clone)]
pub struct ReadPathConfig {
    /// Reader threads sharing the one session.
    pub threads: usize,
    /// MTL shards (spreads the VBs so readers of different VBs do not
    /// serialize on one shard lock either).
    pub shards: usize,
    /// Loads each reader performs.
    pub ops_per_thread: usize,
    /// VBs the client owns (reads round-robin across them; keep it at or
    /// below the CVT-cache slot count so the cache stays warm).
    pub vbs: usize,
    /// `true` = seqlock fast path enabled; `false` = locked baseline.
    pub lockfree: bool,
    /// Whether the telemetry metrics registry is armed (per-op counters and
    /// latency histograms at the engine's execute boundary). `false` is the
    /// uninstrumented baseline the `BENCH_telemetry` overhead bench
    /// compares against.
    pub telemetry: bool,
    /// Total physical frames of the machine.
    pub phys_frames: u64,
}

impl Default for ReadPathConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            shards: 4,
            ops_per_thread: 50_000,
            vbs: 16,
            lockfree: true,
            telemetry: true,
            phys_frames: 1 << 16,
        }
    }
}

/// Report of one read-path run.
#[derive(Debug, Clone)]
pub struct ReadPathReport {
    /// Reader threads of the run.
    pub threads: usize,
    /// Whether the lock-free fast path was enabled.
    pub lockfree: bool,
    /// Loads completed across all readers.
    pub total_ops: u64,
    /// Wall-clock seconds of the read phase only (setup and warm-up are
    /// excluded — this isolates the steady-state hot path).
    pub elapsed_secs: f64,
    /// Throughput in loads per second.
    pub ops_per_sec: f64,
    /// Client-lock acquisitions during the read phase. Zero when every
    /// read hit the published cache lock-free.
    pub client_locks: u64,
    /// CVT-cache stats delta of the read phase.
    pub cache: vbi_core::cvt_cache::CvtCacheStats,
    /// Client-map stats delta of the read phase: published-table hits,
    /// generation retries, and authoritative-mutex fallbacks.
    pub map: vbi_core::telemetry::ClientMapStats,
}

impl ReadPathReport {
    /// One-line JSON rendering via the shared
    /// [`json_object`](vbi_core::telemetry::json_object) emitter: sorted
    /// keys, schema-stable.
    pub fn to_json(&self) -> String {
        use vbi_core::telemetry::JsonValue as J;
        vbi_core::telemetry::json_object(&[
            ("threads", J::U(self.threads as u64)),
            ("lockfree", J::B(self.lockfree)),
            ("total_ops", J::U(self.total_ops)),
            ("elapsed_secs", J::F(self.elapsed_secs, 6)),
            ("ops_per_sec", J::F(self.ops_per_sec, 0)),
            ("client_locks", J::U(self.client_locks)),
            ("lockfree_hits", J::U(self.cache.lockfree_hits)),
            ("locked_hits", J::U(self.cache.locked_hits)),
            ("torn_retries", J::U(self.cache.torn_retries)),
            ("map_lockfree_hits", J::U(self.map.lockfree_hits)),
            ("map_generation_retries", J::U(self.map.generation_retries)),
            ("map_locked_fallbacks", J::U(self.map.locked_fallbacks)),
        ])
    }
}

/// Runs `config.threads` readers, all clones of **one** session, over a
/// warm CVT cache: every load is a cache-hit protection check plus one
/// home-shard memory read. With `lockfree` the checks take zero client
/// locks (seqlock snapshot); without it each check locks the client — the
/// contended baseline the redesign removes.
///
/// # Panics
///
/// Panics if the footprint does not fit the machine or any read fails.
pub fn read_path_run(config: &ReadPathConfig) -> ReadPathReport {
    let service = VbiService::new(
        ServiceConfig::new(
            config.shards,
            VbiConfig {
                phys_frames: config.phys_frames,
                telemetry_metrics: config.telemetry,
                ..VbiConfig::vbi_full()
            },
        )
        .with_lockfree_reads(config.lockfree),
    );
    let session = service.create_client().expect("fresh service");
    let handles: Vec<VbHandle> = (0..config.vbs)
        .map(|_| {
            session
                .request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE)
                .expect("footprint fits")
        })
        .collect();
    // Populate and warm: one locked fill per CVT index, then steady state.
    for (i, vb) in handles.iter().enumerate() {
        session.store_u64(vb.at(0), i as u64).expect("in-bounds store");
        session.load_u64(vb.at(0)).expect("warm-up load");
    }
    let locks_before = service.client_lock_acquisitions(session.id()).expect("live client");
    let cache_before = session.cvt_cache_stats().expect("live client");
    let map_before = service.client_map_stats();

    let started = Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..config.threads {
            let session = session.clone();
            let handles = &handles;
            scope.spawn(move || {
                for i in 0..config.ops_per_thread {
                    let vb = &handles[(i + thread) % handles.len()];
                    let got = session.load_u64(vb.at(0)).expect("in-bounds load");
                    assert_eq!(got, ((i + thread) % handles.len()) as u64, "stale read");
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    // Snap the map delta first: the stats accessors below resolve the
    // client through the map themselves and would pollute the count.
    let map_after = service.client_map_stats();
    let client_locks =
        service.client_lock_acquisitions(session.id()).expect("live client") - locks_before;
    let cache_after = session.cvt_cache_stats().expect("live client");
    let total_ops = (config.threads * config.ops_per_thread) as u64;
    ReadPathReport {
        threads: config.threads,
        lockfree: config.lockfree,
        total_ops,
        elapsed_secs: elapsed,
        ops_per_sec: if elapsed > 0.0 { total_ops as f64 / elapsed } else { 0.0 },
        client_locks,
        cache: vbi_core::cvt_cache::CvtCacheStats {
            lockfree_hits: cache_after.lockfree_hits - cache_before.lockfree_hits,
            locked_hits: cache_after.locked_hits - cache_before.locked_hits,
            misses: cache_after.misses - cache_before.misses,
            torn_retries: cache_after.torn_retries - cache_before.torn_retries,
        },
        map: vbi_core::telemetry::ClientMapStats {
            lockfree_hits: map_after.lockfree_hits - map_before.lockfree_hits,
            generation_retries: map_after.generation_retries - map_before.generation_retries,
            locked_fallbacks: map_after.locked_fallbacks - map_before.locked_fallbacks,
            // Gauges are end-of-run occupancy, not deltas.
            arena_chunks: map_after.arena_chunks,
            slots_live: map_after.slots_live,
            slots_dead: map_after.slots_dead,
        },
    }
}

/// Configuration of one allocation-churn run ([`alloc_churn_run`]): N
/// worker threads, each on its **own** client, looping request → touch →
/// release over short-lived VBs while also keeping a persistent VB under
/// data traffic. Every churn cycle allocates and frees physical frames on
/// the worker's home shard — the order-0 hot path the magazine frame
/// cache takes the buddy's split/coalesce bookkeeping off.
#[derive(Debug, Clone)]
pub struct AllocChurnConfig {
    /// Worker threads, one client each.
    pub threads: usize,
    /// MTL shards (workers land on shards via round-robin VB placement).
    pub shards: usize,
    /// Request → touch → release cycles each worker performs.
    pub churns_per_thread: usize,
    /// Bytes of each short-lived VB (4 KiB = one frame per cycle, the
    /// pure order-0 churn the cache is built for).
    pub vb_bytes: u64,
    /// `true` = magazine frame cache in front of each shard's buddy;
    /// `false` = buddy-only baseline the A/B gate compares against.
    pub frame_cache: bool,
    /// Total physical frames of the machine (keep it ample: this driver
    /// measures allocator churn, not eviction).
    pub phys_frames: u64,
}

impl Default for AllocChurnConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            shards: 4,
            churns_per_thread: 10_000,
            vb_bytes: 4 << 10,
            frame_cache: true,
            phys_frames: 1 << 16,
        }
    }
}

/// Report of one allocation-churn run.
#[derive(Debug, Clone)]
pub struct AllocChurnReport {
    /// Worker threads of the run.
    pub threads: usize,
    /// Whether the magazine frame cache was enabled.
    pub frame_cache: bool,
    /// Request → touch → release cycles completed across all workers.
    pub total_churns: u64,
    /// Engine ops executed across all workers (5 per cycle: request,
    /// store, load, persistent store, release).
    pub total_ops: u64,
    /// Wall-clock seconds of the churn phase only (setup and warm-up are
    /// excluded).
    pub elapsed_secs: f64,
    /// Churn cycles per second.
    pub churns_per_sec: f64,
    /// Engine ops per second.
    pub ops_per_sec: f64,
    /// Frame-cache counter deltas of the churn phase, summed across
    /// shards. All zero with the cache disabled.
    pub cache_hits: u64,
    /// Cache misses (order-0 allocations that had to refill or fall
    /// through to the buddy).
    pub cache_misses: u64,
    /// Batch refills pulled from the buddy.
    pub cache_refills: u64,
    /// Whole-cache flushes back to the buddy.
    pub cache_flushes: u64,
    /// Depot-overflow bulk frees back to the buddy.
    pub cache_batch_frees: u64,
    /// Absolute free-frame drift across the churn phase: every churned VB
    /// is released, so any nonzero value is a leaked (or conjured) frame.
    pub frames_leaked: u64,
}

impl AllocChurnReport {
    /// One-line JSON rendering via the shared
    /// [`json_object`](vbi_core::telemetry::json_object) emitter: sorted
    /// keys, schema-stable.
    pub fn to_json(&self) -> String {
        use vbi_core::telemetry::JsonValue as J;
        vbi_core::telemetry::json_object(&[
            ("threads", J::U(self.threads as u64)),
            ("frame_cache", J::B(self.frame_cache)),
            ("total_churns", J::U(self.total_churns)),
            ("total_ops", J::U(self.total_ops)),
            ("elapsed_secs", J::F(self.elapsed_secs, 6)),
            ("churns_per_sec", J::F(self.churns_per_sec, 0)),
            ("ops_per_sec", J::F(self.ops_per_sec, 0)),
            ("cache_hits", J::U(self.cache_hits)),
            ("cache_misses", J::U(self.cache_misses)),
            ("cache_refills", J::U(self.cache_refills)),
            ("cache_flushes", J::U(self.cache_flushes)),
            ("cache_batch_frees", J::U(self.cache_batch_frees)),
            ("frames_leaked", J::U(self.frames_leaked)),
        ])
    }
}

/// Runs `config.threads` workers, each on its own client, through
/// request → store → load → release cycles over `vb_bytes` VBs while a
/// persistent per-worker VB stays under store traffic. Ample physical
/// memory keeps eviction out of the picture: the measured work is the
/// engine's frame allocate/free path, so the cached-vs-buddy-only A/B in
/// `vbi-bench` isolates exactly the magazine layer.
///
/// # Panics
///
/// Panics if the footprint does not fit the machine or any op fails.
pub fn alloc_churn_run(config: &AllocChurnConfig) -> AllocChurnReport {
    let service = VbiService::new(ServiceConfig::new(
        config.shards,
        VbiConfig {
            phys_frames: config.phys_frames,
            frame_cache: config.frame_cache,
            ..VbiConfig::vbi_full()
        },
    ));
    let sessions: Vec<_> =
        (0..config.threads).map(|_| service.create_client().expect("fresh service")).collect();
    let persistent: Vec<VbHandle> = sessions
        .iter()
        .map(|session| {
            let vb = session
                .request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE)
                .expect("footprint fits");
            session.store_u64(vb.at(0), 1).expect("warm-up store");
            vb
        })
        .collect();
    // One unmeasured churn cycle per worker: first-touch translation
    // structures and TLB compulsory misses land here, not on the clock.
    for (worker, session) in sessions.iter().enumerate() {
        let vb = session
            .request_vb(config.vb_bytes, VbProperties::NONE, Rwx::READ_WRITE)
            .expect("warm-up request fits");
        session.store_u64(vb.at(0), worker as u64).expect("warm-up store");
        session.release_vb(vb.cvt_index).expect("warm-up release");
    }
    let stats_before = service.stats();
    let free_before = service.free_frames();

    let started = Instant::now();
    std::thread::scope(|scope| {
        for (worker, session) in sessions.iter().enumerate() {
            let persistent = &persistent[worker];
            scope.spawn(move || {
                for i in 0..config.churns_per_thread {
                    let value = (worker * config.churns_per_thread + i) as u64;
                    let vb = session
                        .request_vb(config.vb_bytes, VbProperties::NONE, Rwx::READ_WRITE)
                        .expect("churn request fits");
                    session.store_u64(vb.at(0), value).expect("in-bounds store");
                    assert_eq!(
                        session.load_u64(vb.at(0)).expect("in-bounds load"),
                        value,
                        "stale read on a churned VB"
                    );
                    session.store_u64(persistent.at(0), value).expect("persistent store");
                    session.release_vb(vb.cvt_index).expect("release churned VB");
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    let stats_after = service.stats();
    let frames_leaked = free_before.abs_diff(service.free_frames());
    let total_churns = (config.threads * config.churns_per_thread) as u64;
    let total_ops = total_churns * 5;
    AllocChurnReport {
        threads: config.threads,
        frame_cache: config.frame_cache,
        total_churns,
        total_ops,
        elapsed_secs: elapsed,
        churns_per_sec: if elapsed > 0.0 { total_churns as f64 / elapsed } else { 0.0 },
        ops_per_sec: if elapsed > 0.0 { total_ops as f64 / elapsed } else { 0.0 },
        cache_hits: stats_after.frame_cache_hits - stats_before.frame_cache_hits,
        cache_misses: stats_after.frame_cache_misses - stats_before.frame_cache_misses,
        cache_refills: stats_after.frame_cache_refills - stats_before.frame_cache_refills,
        cache_flushes: stats_after.frame_cache_flushes - stats_before.frame_cache_flushes,
        cache_batch_frees: stats_after.frame_cache_batch_frees
            - stats_before.frame_cache_batch_frees,
        frames_leaked,
    }
}

/// Configuration of one migration run ([`migration_run`]): N reader
/// threads hammering a set of VBs through clones of **one** session while
/// a churn thread migrates those same VBs between shards through the
/// engine's `Op::Migrate` — the §4.2.2 "seamless migration" claim under
/// concurrent lock-free readers.
#[derive(Debug, Clone)]
pub struct MigrationRunConfig {
    /// Reader threads sharing the one session.
    pub readers: usize,
    /// MTL shards the VBs migrate across (power of two, ≥ 2 to actually
    /// cross shards).
    pub shards: usize,
    /// Loads each reader performs.
    pub reads_per_thread: usize,
    /// Migrations the churn thread performs (round-robin over the VBs and
    /// destination shards).
    pub migrations: usize,
    /// VBs under churn.
    pub vbs: usize,
    /// Total physical frames of the machine.
    pub phys_frames: u64,
}

impl Default for MigrationRunConfig {
    fn default() -> Self {
        Self {
            readers: 4,
            shards: 4,
            reads_per_thread: 20_000,
            migrations: 200,
            vbs: 8,
            phys_frames: 1 << 16,
        }
    }
}

/// Report of one migration run.
#[derive(Debug, Clone)]
pub struct MigrationRunReport {
    /// Reader threads of the run.
    pub readers: usize,
    /// Shard count of the run.
    pub shards: usize,
    /// Loads completed across all readers (retries included).
    pub total_reads: u64,
    /// Migrations the churn thread completed.
    pub migrations: u64,
    /// Wall-clock seconds of the churn + read phase.
    pub elapsed_secs: f64,
    /// Reader throughput in loads per second.
    pub reads_per_sec: f64,
    /// Migration throughput (whole-VB moves per second).
    pub migrations_per_sec: f64,
    /// `MtlStats::vbs_migrated` summed across shards (must equal
    /// `migrations` — asserted by the run).
    pub vbs_migrated: u64,
    /// Reads that raced an in-flight remap and were retried: the check
    /// resolved the pre-remap entry and the load touched the drained
    /// source's afterlife (a clean `VbNotEnabled` in the disable window,
    /// or stale bytes if the freed VBUID was already re-placed). Each one
    /// converged to the byte-exact value on retry — a read that *stays*
    /// wrong fails the run.
    pub stale_retries: u64,
    /// CVT-cache delta of the run: every migration bumps the client's
    /// seqlock epoch, so `misses` counts the forced fallbacks and
    /// `torn_retries` the snapshots a racing rewrite tore.
    pub cache: vbi_core::cvt_cache::CvtCacheStats,
}

impl MigrationRunReport {
    /// One-line JSON rendering via the shared
    /// [`json_object`](vbi_core::telemetry::json_object) emitter: sorted
    /// keys, schema-stable.
    pub fn to_json(&self) -> String {
        use vbi_core::telemetry::JsonValue as J;
        vbi_core::telemetry::json_object(&[
            ("readers", J::U(self.readers as u64)),
            ("shards", J::U(self.shards as u64)),
            ("total_reads", J::U(self.total_reads)),
            ("migrations", J::U(self.migrations)),
            ("elapsed_secs", J::F(self.elapsed_secs, 6)),
            ("reads_per_sec", J::F(self.reads_per_sec, 0)),
            ("migrations_per_sec", J::F(self.migrations_per_sec, 1)),
            ("vbs_migrated", J::U(self.vbs_migrated)),
            ("stale_retries", J::U(self.stale_retries)),
            ("cache_misses", J::U(self.cache.misses)),
            ("torn_retries", J::U(self.cache.torn_retries)),
        ])
    }
}

/// The expected contents of migration-run slot `slot` of VB `vb` — constant
/// for the whole run, so every epoch of a migrated VB is byte-identical and
/// any deviation a reader observes is a lost write or a torn entry.
fn migration_pattern(vb: usize, slot: u64) -> u64 {
    0x5EED_0000_0000_0000 | ((vb as u64) << 32) | slot
}

/// Runs `config.readers` reader threads over `config.vbs` VBs while a churn
/// thread migrates those VBs round-robin across the shards, all through one
/// shared [`ClientSession`](vbi_core::session::ClientSession). Readers
/// assert byte-exactness on every load: a load either observes the pattern
/// value or transiently raced the remap handover (a clean `VbNotEnabled`
/// in the disable window, or the drained source's afterlife if its VBUID
/// was re-placed) and must converge on retry — a torn entry or a value
/// that *stays* wrong fails the run. After the churn the whole footprint
/// is re-verified byte for byte.
///
/// # Panics
///
/// Panics if any read observes a persistently wrong value (a lost write),
/// if a migration fails, or if the migration counter diverges from the
/// churn count.
pub fn migration_run(config: &MigrationRunConfig) -> MigrationRunReport {
    use std::sync::atomic::{AtomicU64, Ordering};

    const SLOTS: u64 = 16;
    let service = VbiService::new(ServiceConfig::new(
        config.shards,
        VbiConfig { phys_frames: config.phys_frames, ..VbiConfig::vbi_full() },
    ));
    let session = service.create_client().expect("fresh service");
    let handles: Vec<VbHandle> = (0..config.vbs)
        .map(|vb| {
            let handle = session
                .request_vb(128 << 10, VbProperties::NONE, Rwx::READ_WRITE)
                .expect("footprint fits");
            for slot in 0..SLOTS {
                session.store_u64(handle.at(slot * 8), migration_pattern(vb, slot)).unwrap();
            }
            session.load_u64(handle.at(0)).expect("warm-up load");
            handle
        })
        .collect();
    let cache_before = session.cvt_cache_stats().expect("live client");
    let stats_before = service.stats();

    let stale_retries = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        // Churn: migrate VB i to shard (i + round) round-robin. The CVT
        // index — the program's pointer — never changes.
        {
            let session = session.clone();
            let handles = &handles;
            scope.spawn(move || {
                for m in 0..config.migrations {
                    let vb = m % handles.len();
                    let to = (vb + m / handles.len() + 1) % config.shards;
                    session.migrate(handles[vb].cvt_index, to).expect("migration succeeds");
                }
            });
        }
        for thread in 0..config.readers {
            let session = session.clone();
            let handles = &handles;
            let stale_retries = &stale_retries;
            scope.spawn(move || {
                for i in 0..config.reads_per_thread {
                    let vb = (i + thread) % handles.len();
                    let slot = (i as u64).wrapping_mul(7) % SLOTS;
                    let va = handles[vb].at(slot * 8);
                    let want = migration_pattern(vb, slot);
                    // Retry through the remap's disable window; a *wrong
                    // value* that survives retries is a real lost write.
                    let mut attempts = 0;
                    loop {
                        match session.load_u64(va) {
                            Ok(value) if value == want => break,
                            outcome => {
                                attempts += 1;
                                stale_retries.fetch_add(1, Ordering::Relaxed);
                                assert!(
                                    attempts < 1_000,
                                    "reader {thread}: VB {vb} slot {slot} stuck at {outcome:?}, \
                                     want {want:#x} — lost write or torn entry"
                                );
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    // Post-churn: the whole footprint is byte-exact through the (by now
    // several-times-redirected) CVT entries.
    for (vb, handle) in handles.iter().enumerate() {
        for slot in 0..SLOTS {
            assert_eq!(
                session.load_u64(handle.at(slot * 8)).unwrap(),
                migration_pattern(vb, slot),
                "VB {vb} slot {slot} lost its contents across migration"
            );
        }
    }
    let stats = service.stats();
    let vbs_migrated = stats.vbs_migrated - stats_before.vbs_migrated;
    assert_eq!(vbs_migrated, config.migrations as u64, "migration counter diverged");
    let cache_after = session.cvt_cache_stats().expect("live client");
    let total_reads = (config.readers * config.reads_per_thread) as u64;
    MigrationRunReport {
        readers: config.readers,
        shards: config.shards,
        total_reads,
        migrations: vbs_migrated,
        elapsed_secs: elapsed,
        reads_per_sec: if elapsed > 0.0 { total_reads as f64 / elapsed } else { 0.0 },
        migrations_per_sec: if elapsed > 0.0 { vbs_migrated as f64 / elapsed } else { 0.0 },
        vbs_migrated,
        stale_retries: stale_retries.load(Ordering::Relaxed),
        cache: vbi_core::cvt_cache::CvtCacheStats {
            lockfree_hits: cache_after.lockfree_hits - cache_before.lockfree_hits,
            locked_hits: cache_after.locked_hits - cache_before.locked_hits,
            misses: cache_after.misses - cache_before.misses,
            torn_retries: cache_after.torn_retries - cache_before.torn_retries,
        },
    }
}

/// Configuration of one async-session run ([`async_run`]): N cooperative
/// tasks, each awaiting its ops through an
/// [`AsyncSession`](vbi_service::AsyncSession), all multiplexed on **one**
/// executor thread while the queue's per-shard workers execute — the
/// "many concurrent clients on a handful of threads" scenario.
#[derive(Debug, Clone)]
pub struct AsyncRunConfig {
    /// Concurrent async tasks (each a logical client session).
    pub tasks: usize,
    /// Ops each task awaits (alternating store / load-check of its slot).
    pub ops_per_task: usize,
    /// MTL shards (= queue worker threads).
    pub shards: usize,
    /// In-flight budget per session (the backpressure bound).
    pub inflight_per_session: usize,
    /// Cap on distinct clients: tasks share sessions round-robin above it
    /// (the `ClientId` space is 2^16, the task space is not).
    pub clients: usize,
    /// Total physical frames of the machine.
    pub phys_frames: u64,
    /// Record per-op await latency (two clock reads + a histogram record
    /// per op). Off for pure-throughput comparisons — the gate in
    /// `BENCH_async` must not charge the async side for instrumentation
    /// its baseline doesn't pay; the percentile fields report 0 then.
    pub measure_latency: bool,
}

impl Default for AsyncRunConfig {
    fn default() -> Self {
        Self {
            tasks: 1_000,
            ops_per_task: 20,
            shards: 2,
            inflight_per_session: 4,
            clients: 256,
            phys_frames: 1 << 16,
            measure_latency: true,
        }
    }
}

/// Report of one async-session run.
#[derive(Debug, Clone)]
pub struct AsyncRunReport {
    /// Concurrent tasks of the run.
    pub tasks: usize,
    /// Distinct clients the tasks shared.
    pub clients: usize,
    /// Shard count (= queue worker threads).
    pub shards: usize,
    /// Per-session in-flight budget.
    pub inflight_per_session: usize,
    /// Ops awaited across all tasks.
    pub total_ops: u64,
    /// Completions the queue produced for them (must equal `total_ops` —
    /// asserted by the run).
    pub completions: u64,
    /// Wall-clock seconds of the executor's whole run.
    pub elapsed_secs: f64,
    /// Throughput in awaited operations per second.
    pub ops_per_sec: f64,
    /// Median wake-to-complete latency of one awaited op (submit → future
    /// resolved, budget wait included), in nanoseconds.
    pub p50_await_ns: u64,
    /// 99th-percentile wake-to-complete latency, in nanoseconds.
    pub p99_await_ns: u64,
    /// High-water mark of SQEs queued at once.
    pub max_queue_depth: usize,
    /// High-water mark of ops in flight at once.
    pub inflight_high_water: u64,
    /// Submissions that parked for budget (backpressure engagements).
    pub backpressure_waits: u64,
}

impl AsyncRunReport {
    /// One-line JSON rendering via the shared
    /// [`json_object`](vbi_core::telemetry::json_object) emitter: sorted
    /// keys, schema-stable.
    pub fn to_json(&self) -> String {
        use vbi_core::telemetry::JsonValue as J;
        vbi_core::telemetry::json_object(&[
            ("tasks", J::U(self.tasks as u64)),
            ("clients", J::U(self.clients as u64)),
            ("shards", J::U(self.shards as u64)),
            ("inflight_per_session", J::U(self.inflight_per_session as u64)),
            ("total_ops", J::U(self.total_ops)),
            ("completions", J::U(self.completions)),
            ("elapsed_secs", J::F(self.elapsed_secs, 6)),
            ("ops_per_sec", J::F(self.ops_per_sec, 0)),
            ("p50_await_ns", J::U(self.p50_await_ns)),
            ("p99_await_ns", J::U(self.p99_await_ns)),
            ("max_queue_depth", J::U(self.max_queue_depth as u64)),
            ("inflight_high_water", J::U(self.inflight_high_water)),
            ("backpressure_waits", J::U(self.backpressure_waits)),
        ])
    }
}

/// The value async-run task `task` stores on its `i`-th store — checked
/// back on the following load, so a lost wakeup, a cross-wired tag, or a
/// double-completion all surface as a data mismatch, not just a hang.
fn async_pattern(task: u64, i: u64) -> u64 {
    0xA5C_0000_0000_0000 | (task << 24) | i
}

/// Runs `config.tasks` async tasks on **one** executor thread over a fresh
/// [`AsyncFront`](vbi_service::AsyncFront), `config.shards` queue workers
/// underneath. Tasks share
/// `min(tasks, clients)` sessions round-robin (clones share the session's
/// in-flight budget), each task owning a private 8-byte slot of its
/// session's VB. Every op is awaited and every loaded value checked
/// against the last store, and the run asserts exactly-once completion:
/// queue completions == awaited ops, no outstanding tags, nothing left in
/// flight.
///
/// # Panics
///
/// Panics if any op fails, any load observes a wrong value, or any
/// completion is lost or duplicated.
pub fn async_run(config: &AsyncRunConfig) -> AsyncRunReport {
    use std::cell::RefCell;
    use std::rc::Rc;
    use vbi_core::telemetry::Histogram;
    use vbi_service::{AsyncFront, Executor};

    // Leave headroom in the 2^16 ClientId space.
    let clients = config.tasks.min(config.clients).clamp(1, 60_000);
    let tasks_per_client = config.tasks.div_ceil(clients);
    let front = AsyncFront::new(ServiceConfig::new(
        config.shards,
        VbiConfig { phys_frames: config.phys_frames, ..VbiConfig::vbi_full() },
    ));
    // Setup is synchronous through the service: clients and VBs exist
    // before the first awaited op, so the measured phase is pure
    // submit/await traffic.
    let sessions: Vec<_> = (0..clients)
        .map(|_| {
            let owner = front.service().create_client().expect("service has client IDs");
            let vb = owner
                .request_vb(
                    (tasks_per_client as u64 * 8).max(4096),
                    VbProperties::NONE,
                    Rwx::READ_WRITE,
                )
                .expect("footprint fits");
            (front.session_for(owner.id(), config.inflight_per_session), vb)
        })
        .collect();

    let latency = Rc::new(RefCell::new(Histogram::new()));
    let mut executor = Executor::new();
    for task in 0..config.tasks {
        let (session, vb) = &sessions[task % clients];
        let session = session.clone();
        let va = vb.at((task / clients) as u64 * 8);
        let latency = Rc::clone(&latency);
        let ops = config.ops_per_task;
        let measure = config.measure_latency;
        let task = task as u64;
        executor.spawn(async move {
            let mut last = 0u64;
            for i in 0..ops as u64 {
                let started = measure.then(Instant::now);
                if i % 2 == 0 {
                    last = async_pattern(task, i);
                    session.store_u64(va, last).await.expect("in-bounds store");
                } else {
                    let got = session.load_u64(va).await.expect("in-bounds load");
                    assert_eq!(got, last, "task {task}: completion cross-wired or lost");
                }
                if let Some(started) = started {
                    latency.borrow_mut().record(started.elapsed().as_nanos() as u64);
                }
            }
        });
    }

    let started = Instant::now();
    executor.run();
    let elapsed = started.elapsed().as_secs_f64();

    let total_ops = (config.tasks * config.ops_per_task) as u64;
    let completions = front.queue().completed();
    assert_eq!(completions, total_ops, "every awaited op completes exactly once");
    assert_eq!(front.outstanding(), 0, "no tag left behind");
    assert_eq!(front.queue().in_flight(), 0, "nothing still in flight");
    let latency = latency.borrow();
    if config.measure_latency {
        assert_eq!(latency.count(), total_ops);
    }
    AsyncRunReport {
        tasks: config.tasks,
        clients,
        shards: config.shards,
        inflight_per_session: config.inflight_per_session,
        total_ops,
        completions,
        elapsed_secs: elapsed,
        ops_per_sec: if elapsed > 0.0 { total_ops as f64 / elapsed } else { 0.0 },
        p50_await_ns: latency.percentile(50.0),
        p99_await_ns: latency.percentile(99.0),
        max_queue_depth: front.queue().depth().high_water,
        inflight_high_water: front.queue().inflight_high_water(),
        backpressure_waits: front.queue().backpressure_waits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ops_are_deterministic_and_aligned() {
        let spec = benchmark("mcf").unwrap();
        let a = trace_ops(&spec, 7, 500);
        let b = trace_ops(&spec, 7, 500);
        assert_eq!(a, b);
        for op in &a {
            assert_eq!(op.offset % 8, 0);
            assert!(op.offset + 8 <= spec.regions[op.region].bytes.min(REGION_CAP));
        }
    }

    #[test]
    fn single_thread_run_completes_and_reports() {
        let config = ServiceRunConfig {
            threads: 1,
            shards: 1,
            ops_per_thread: 2_000,
            batch: 1,
            ..Default::default()
        };
        let report = service_run(&config);
        assert_eq!(report.total_ops, 2_000);
        assert!(report.ops_per_sec > 0.0);
        assert!(report.mtl.translation_requests > 0);
        assert_eq!(report.shard_loads.len(), 1);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"ops_per_sec\""));
    }

    #[test]
    fn multi_thread_run_with_batching_completes() {
        let config = ServiceRunConfig {
            threads: 4,
            shards: 2,
            ops_per_thread: 2_000,
            batch: 32,
            ..Default::default()
        };
        let report = service_run(&config);
        assert_eq!(report.total_ops, 8_000);
        assert!(report.mtl.pages_allocated > 0);
        assert_eq!(report.shard_loads.len(), 2);
    }

    #[test]
    fn read_path_run_is_lock_free_when_enabled() {
        let base =
            ReadPathConfig { threads: 2, shards: 2, ops_per_thread: 500, ..Default::default() };
        let fast = read_path_run(&ReadPathConfig { lockfree: true, ..base.clone() });
        assert_eq!(fast.total_ops, 1_000);
        assert_eq!(fast.client_locks, 0, "warm cache-hit reads must take zero client locks");
        assert_eq!(fast.cache.lockfree_hits, 1_000);
        let json = fast.to_json();
        assert!(json.contains("\"client_locks\":0"), "{json}");

        let locked = read_path_run(&ReadPathConfig { lockfree: false, ..base });
        assert_eq!(locked.client_locks, 1_000, "baseline locks once per read");
        assert_eq!(locked.cache.lockfree_hits, 0);
        assert_eq!(locked.cache.locked_hits, 1_000);
    }

    #[test]
    fn read_path_run_resolves_clients_through_the_published_map() {
        let base =
            ReadPathConfig { threads: 2, shards: 2, ops_per_thread: 500, ..Default::default() };
        let fast = read_path_run(&base);
        assert_eq!(fast.map.lockfree_hits, 1_000, "every read resolves through the published map");
        assert_eq!(fast.map.locked_fallbacks, 0, "warm readers never touch the map mutex");
        let json = fast.to_json();
        assert!(json.contains("\"map_lockfree_hits\":1000"), "{json}");
    }

    #[test]
    fn alloc_churn_run_leaks_nothing_and_hits_the_cache() {
        let base = AllocChurnConfig {
            threads: 2,
            shards: 2,
            churns_per_thread: 500,
            ..Default::default()
        };
        let cached = alloc_churn_run(&base);
        assert_eq!(cached.total_churns, 1_000);
        assert_eq!(cached.total_ops, 5_000);
        assert_eq!(cached.frames_leaked, 0, "every churned frame must come back");
        assert!(
            cached.cache_hits > cached.cache_misses,
            "steady-state churn must be served from the magazines \
             (hits {}, misses {})",
            cached.cache_hits,
            cached.cache_misses
        );
        let json = cached.to_json();
        assert!(json.contains("\"frame_cache\":true"), "{json}");
        assert!(json.contains("\"frames_leaked\":0"), "{json}");

        let buddy_only = alloc_churn_run(&AllocChurnConfig { frame_cache: false, ..base });
        assert_eq!(buddy_only.frames_leaked, 0);
        assert_eq!(buddy_only.cache_hits, 0, "a disabled cache must count nothing");
        assert_eq!(buddy_only.cache_refills, 0);
    }

    #[test]
    fn migration_run_keeps_data_byte_exact_under_churn() {
        let report = migration_run(&MigrationRunConfig {
            readers: 2,
            shards: 4,
            reads_per_thread: 2_000,
            migrations: 40,
            vbs: 4,
            ..Default::default()
        });
        assert_eq!(report.total_reads, 4_000);
        assert_eq!(report.migrations, 40);
        assert_eq!(report.vbs_migrated, 40);
        // Every migration bumps the client's seqlock epoch via the CVT-slot
        // invalidation, so readers demonstrably fell back to the
        // authoritative path at least once.
        assert!(report.cache.misses > 0, "migrations must invalidate the published cache");
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"vbs_migrated\":40"), "{json}");
    }

    #[test]
    fn async_run_completes_exactly_once_and_reports() {
        // 96 tasks over 16 sessions with budget 2: tasks outnumber permits
        // per session threefold, so backpressure must engage.
        let report = async_run(&AsyncRunConfig {
            tasks: 96,
            ops_per_task: 10,
            shards: 2,
            inflight_per_session: 2,
            clients: 16,
            ..Default::default()
        });
        assert_eq!(report.total_ops, 960);
        assert_eq!(report.completions, 960);
        assert_eq!(report.clients, 16);
        assert!(report.ops_per_sec > 0.0);
        assert!(report.backpressure_waits > 0, "budget 2 under 6 tasks/session must park");
        assert!(report.inflight_high_water >= 1);
        assert!(report.p99_await_ns >= report.p50_await_ns);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"backpressure_waits\""), "{json}");
        assert!(json.contains("\"p99_await_ns\""), "{json}");
    }

    #[test]
    fn queue_run_loses_no_completions_and_reports_depth() {
        let config = ServiceRunConfig {
            threads: 2,
            shards: 2,
            ops_per_thread: 2_000,
            batch: 16,
            ..Default::default()
        };
        let report = queue_run(&config);
        assert_eq!(report.total_ops, 4_000);
        assert_eq!(report.completions, 4_000);
        assert!(report.ops_per_sec > 0.0);
        assert!(report.mtl.translation_requests > 0);
        assert!(report.max_queue_depth >= 1);
        assert_eq!(report.shard_loads.len(), 2);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"max_queue_depth\""));
    }
}
