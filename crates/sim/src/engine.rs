//! The trace-driven execution engine.
//!
//! Replays a workload's access stream against one system configuration and
//! produces cycle counts. The core model follows the paper's setup (Table
//! 1): a 4-wide out-of-order core whose 128-entry ROB overlaps independent
//! misses. Committed instructions cost `1/4` cycle each; memory stalls are
//! divided by the workload's memory-level-parallelism factor except for
//! serially dependent (pointer-chasing) accesses, which expose their full
//! latency.

use vbi_workloads::trace::WorkloadSpec;

use crate::systems::{build_system, MemorySystem, SystemCounters, SystemKind};

/// Issue width of the modelled core (Table 1: 4-wide OOO).
pub const ISSUE_WIDTH: u64 = 4;

/// Engine parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Memory accesses replayed after warm-up.
    pub accesses: usize,
    /// Warm-up accesses (caches/TLBs filled, counters then reset).
    pub warmup: usize,
    /// Trace seed (same seed = same trace across systems).
    pub seed: u64,
    /// Physical memory size in 4 KiB frames.
    pub phys_frames: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { accesses: 100_000, warmup: 10_000, seed: 42, phys_frames: 1 << 20 }
    }
}

impl EngineConfig {
    /// A faster configuration for smoke tests.
    pub fn quick() -> Self {
        Self { accesses: 20_000, warmup: 2_000, ..Self::default() }
    }
}

/// Result of one single-core run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark name.
    pub workload: &'static str,
    /// System configuration.
    pub system: SystemKind,
    /// Instructions committed (memory + non-memory).
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// System counters after warm-up.
    pub counters: SystemCounters,
}

impl RunResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles.max(1) as f64
    }

    /// Speedup of this run over a baseline run of the same workload.
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        assert_eq!(self.workload, baseline.workload, "speedups compare like with like");
        self.ipc() / baseline.ipc()
    }
}

/// Runs `spec` on `system_kind` and returns the result.
pub fn run(system_kind: SystemKind, spec: &WorkloadSpec, config: &EngineConfig) -> RunResult {
    let mut system = build_system(system_kind, config.phys_frames);
    run_on(system.as_mut(), system_kind, spec, config)
}

/// Runs `spec` on an existing system (used by ablations that pre-configure
/// the system).
pub fn run_on(
    system: &mut dyn MemorySystem,
    system_kind: SystemKind,
    spec: &WorkloadSpec,
    config: &EngineConfig,
) -> RunResult {
    let sizes: Vec<u64> = spec.regions.iter().map(|r| r.bytes).collect();
    system.attach_regions(&sizes);

    // Initialization phase: programs write their data before reading it.
    // One store per initialized page allocates physical memory everywhere
    // and leaves only genuinely fresh allocations eligible for VBI's
    // zero-line path.
    for (i, region) in spec.regions.iter().enumerate() {
        let pages = region.bytes >> 12;
        let init_pages = (pages as f64 * region.init_fraction).round() as u64;
        for k in 0..init_pages {
            // Spread initialized pages evenly over the region so the
            // initialized subset is unbiased with respect to any access
            // pattern (prefix-writing would systematically overlap patterns
            // that also start at offset zero).
            let page = if region.init_fraction >= 1.0 {
                k
            } else {
                ((k as f64 / region.init_fraction) as u64).min(pages - 1)
            };
            let _ = system.access(i, page << 12, true);
        }
    }

    let mut trace = spec.trace(config.seed);
    // Warm-up: fill caches, TLBs, and allocations; then reset counters.
    for access in trace.by_ref().take(config.warmup) {
        let _ = system.access(access.region, access.offset, access.is_write);
    }
    system.reset_counters();

    let mut instructions: u64 = 0;
    let mut cycles_x4: u64 = 0; // fixed-point: quarter cycles
    for access in trace.take(config.accesses) {
        // Non-memory instructions retire at the issue width.
        instructions += access.gap as u64 + 1;
        cycles_x4 += access.gap as u64;

        let cost = system.access(access.region, access.offset, access.is_write);
        // Independent misses overlap in the ROB; dependent ones serialize.
        let exposed =
            if access.dependent { cost.stall as f64 } else { cost.stall as f64 / spec.mlp };
        cycles_x4 += (exposed * 4.0) as u64;
    }

    RunResult {
        workload: spec.name,
        system: system_kind,
        instructions,
        cycles: (cycles_x4 / 4).max(1),
        counters: system.counters(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbi_workloads::spec::benchmark;

    fn quick() -> EngineConfig {
        EngineConfig { accesses: 5_000, warmup: 500, seed: 7, phys_frames: 1 << 19 }
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = benchmark("bzip2").unwrap();
        let a = run(SystemKind::Native, &spec, &quick());
        let b = run(SystemKind::Native, &spec, &quick());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
    }

    #[test]
    fn perfect_tlb_is_at_least_as_fast_as_native() {
        let spec = benchmark("mcf").unwrap();
        let native = run(SystemKind::Native, &spec, &quick());
        let perfect = run(SystemKind::PerfectTlb, &spec, &quick());
        assert!(
            perfect.ipc() >= native.ipc(),
            "perfect {} vs native {}",
            perfect.ipc(),
            native.ipc()
        );
    }

    #[test]
    fn virtualization_slows_native_down() {
        let spec = benchmark("mcf").unwrap();
        let native = run(SystemKind::Native, &spec, &quick());
        let virt = run(SystemKind::Virtual, &spec, &quick());
        assert!(virt.ipc() < native.ipc());
    }

    #[test]
    fn vbi_outperforms_native_on_tlb_hostile_workloads() {
        let spec = benchmark("mcf").unwrap();
        let native = run(SystemKind::Native, &spec, &quick());
        let vbi = run(SystemKind::Vbi2, &spec, &quick());
        assert!(vbi.speedup_over(&native) > 1.2, "VBI-2 speedup {}", vbi.speedup_over(&native));
    }

    #[test]
    fn ipc_is_bounded_by_issue_width() {
        let spec = benchmark("namd").unwrap();
        let r = run(SystemKind::PerfectTlb, &spec, &quick());
        assert!(r.ipc() <= ISSUE_WIDTH as f64 + 1e-9);
        assert!(r.ipc() > 0.1);
    }
}
