//! Figure/table-shaped reporting helpers.
//!
//! The bench binaries print rows that mirror the paper's figures: one row
//! per benchmark, one column per system, normalized to the figure's
//! baseline, with `AVG` and (for Figure 6) `AVG-no-mcf` rows.

use crate::engine::RunResult;
use crate::systems::SystemKind;

/// Arithmetic mean (the paper reports arithmetic-average speedups).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Geometric mean (reported alongside for robustness).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// A speedup matrix: rows = workloads, columns = systems, all normalized to
/// one baseline system.
#[derive(Debug, Clone)]
pub struct SpeedupTable {
    /// Baseline system (the "1.0" of the figure).
    pub baseline: SystemKind,
    /// Column systems, in print order.
    pub systems: Vec<SystemKind>,
    /// `(workload, speedups-per-system)` rows.
    pub rows: Vec<(&'static str, Vec<f64>)>,
}

impl SpeedupTable {
    /// Builds a table from per-(workload, system) results. `results` must
    /// contain, for every workload, one run per system in `systems` plus one
    /// run of `baseline`.
    pub fn from_runs(
        baseline: SystemKind,
        systems: Vec<SystemKind>,
        results: &[RunResult],
    ) -> SpeedupTable {
        let mut workloads: Vec<&'static str> = results.iter().map(|r| r.workload).collect();
        workloads.dedup();
        let rows = workloads
            .iter()
            .map(|&w| {
                let base = results
                    .iter()
                    .find(|r| r.workload == w && r.system == baseline)
                    .unwrap_or_else(|| panic!("baseline run missing for {w}"));
                let speedups = systems
                    .iter()
                    .map(|&s| {
                        results
                            .iter()
                            .find(|r| r.workload == w && r.system == s)
                            .unwrap_or_else(|| panic!("run missing for {w} on {}", s.label()))
                            .speedup_over(base)
                    })
                    .collect();
                (w, speedups)
            })
            .collect();
        SpeedupTable { baseline, systems, rows }
    }

    /// Per-system average across all rows.
    pub fn averages(&self) -> Vec<f64> {
        (0..self.systems.len())
            .map(|i| mean(&self.rows.iter().map(|(_, s)| s[i]).collect::<Vec<f64>>()))
            .collect()
    }

    /// Per-system average excluding one workload (the figure's
    /// `AVG-no-mcf`).
    pub fn averages_excluding(&self, workload: &str) -> Vec<f64> {
        (0..self.systems.len())
            .map(|i| {
                mean(
                    &self
                        .rows
                        .iter()
                        .filter(|(w, _)| *w != workload)
                        .map(|(_, s)| s[i])
                        .collect::<Vec<f64>>(),
                )
            })
            .collect()
    }

    /// Speedup of one (workload, system) cell.
    pub fn cell(&self, workload: &str, system: SystemKind) -> Option<f64> {
        let col = self.systems.iter().position(|&s| s == system)?;
        self.rows.iter().find(|(w, _)| *w == workload).map(|(_, s)| s[col])
    }

    /// Renders the table as fixed-width text.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{title}\n"));
        out.push_str(&format!(
            "(speedup normalized to {}; higher is better)\n\n",
            self.baseline.label()
        ));
        out.push_str(&format!("{:<16}", "workload"));
        for s in &self.systems {
            out.push_str(&format!("{:>14}", s.label()));
        }
        out.push('\n');
        let width = 16 + 14 * self.systems.len();
        out.push_str(&"-".repeat(width));
        out.push('\n');
        for (w, speedups) in &self.rows {
            out.push_str(&format!("{w:<16}"));
            for v in speedups {
                out.push_str(&format!("{v:>14.2}"));
            }
            out.push('\n');
        }
        out.push_str(&"-".repeat(width));
        out.push('\n');
        out.push_str(&format!("{:<16}", "AVG"));
        for v in self.averages() {
            out.push_str(&format!("{v:>14.2}"));
        }
        out.push('\n');
        out
    }

    /// Renders the table plus an extra average row excluding `workload`.
    pub fn render_with_exclusion(&self, title: &str, workload: &str) -> String {
        let mut out = self.render(title);
        out.push_str(&format!("{:<16}", format!("AVG-no-{workload}")));
        for v in self.averages_excluding(workload) {
            out.push_str(&format!("{v:>14.2}"));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::SystemCounters;

    fn result(workload: &'static str, system: SystemKind, ipc_millis: u64) -> RunResult {
        RunResult {
            workload,
            system,
            instructions: ipc_millis,
            cycles: 1000,
            counters: SystemCounters::default(),
        }
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn table_normalizes_to_baseline() {
        let results = vec![
            result("a", SystemKind::Native, 1000),
            result("a", SystemKind::Vbi1, 1500),
            result("a", SystemKind::PerfectTlb, 2000),
            result("b", SystemKind::Native, 500),
            result("b", SystemKind::Vbi1, 500),
            result("b", SystemKind::PerfectTlb, 1000),
        ];
        let table = SpeedupTable::from_runs(
            SystemKind::Native,
            vec![SystemKind::Vbi1, SystemKind::PerfectTlb],
            &results,
        );
        assert_eq!(table.cell("a", SystemKind::Vbi1), Some(1.5));
        assert_eq!(table.cell("b", SystemKind::PerfectTlb), Some(2.0));
        let avg = table.averages();
        assert!((avg[0] - 1.25).abs() < 1e-12);
        assert!((avg[1] - 2.0).abs() < 1e-12);
        let no_a = table.averages_excluding("a");
        assert!((no_a[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_headers_and_rows() {
        let results =
            vec![result("mcf", SystemKind::Native, 100), result("mcf", SystemKind::Vbi2, 400)];
        let table = SpeedupTable::from_runs(SystemKind::Native, vec![SystemKind::Vbi2], &results);
        let text = table.render_with_exclusion("Figure 6", "mcf");
        assert!(text.contains("Figure 6"));
        assert!(text.contains("VBI-2"));
        assert!(text.contains("mcf"));
        assert!(text.contains("AVG-no-mcf"));
    }
}
