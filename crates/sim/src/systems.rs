//! The ten system configurations of the evaluation (§7.2).
//!
//! Every system implements [`MemorySystem`]: given one trace record it
//! returns the stall cycles the access exposes to the core and bookkeeping
//! counters. The implementations differ in exactly the ways the paper's
//! systems differ:
//!
//! | system | caches indexed by | translation point | translator |
//! |---|---|---|---|
//! | `Native`, `Native-2M` | physical | before L1 (parallel TLB) | 4/3-level walk + PWC |
//! | `Virtual`, `Virtual-2M` | physical | before L1 | two-dimensional walk |
//! | `Perfect TLB` | physical | free | none |
//! | `VIVT` | virtual | LLC miss | 4-level walk + TLB |
//! | `Enigma-HW-2M` | intermediate | LLC miss | 16K CTC + HW walk |
//! | `VBI-1/2/Full` | VBI | LLC miss | MTL (per-VB structures) |

use vbi_baselines::enigma::EnigmaController;
use vbi_baselines::mmu::{NativeMmu, PerfectMmu, L2_TLB_LATENCY};
use vbi_baselines::nested::NestedMmu;
use vbi_baselines::page_table::PageSize;
use vbi_core::addr::{SizeClass, VbiAddress, Vbuid};
use vbi_core::client::ClientId;
use vbi_core::config::VbiConfig;
use vbi_core::cvt_cache::{ClientCvtCache, CvtCache};
use vbi_core::mtl::{Mtl, MtlAccess, TranslateResult};
use vbi_core::vb::VbProperties;
use vbi_mem_sim::controller::MemoryController;
use vbi_mem_sim::hierarchy::{CacheHierarchy, HitLevel};

/// The systems compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// x86-64 with 4 KiB pages.
    Native,
    /// x86-64 with 2 MiB pages.
    Native2M,
    /// Virtual machine, 4 KiB pages everywhere (2D walks).
    Virtual,
    /// Virtual machine, 2 MiB pages everywhere, with a nested walk cache.
    Virtual2M,
    /// Native with no L1 TLB misses (no translation overhead at all).
    PerfectTlb,
    /// Native but with virtually indexed, virtually tagged caches.
    Vivt,
    /// Enigma with a 16K-entry CTC, hardware walks, and 2 MiB pages.
    EnigmaHw2M,
    /// VBI with flexible 4 KiB-granularity translation structures.
    Vbi1,
    /// VBI-1 plus delayed physical allocation.
    Vbi2,
    /// VBI-2 plus early reservation (direct mapping).
    VbiFull,
}

impl SystemKind {
    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Native => "Native",
            SystemKind::Native2M => "Native-2M",
            SystemKind::Virtual => "Virtual",
            SystemKind::Virtual2M => "Virtual-2M",
            SystemKind::PerfectTlb => "Perfect TLB",
            SystemKind::Vivt => "VIVT",
            SystemKind::EnigmaHw2M => "Enigma-HW-2M",
            SystemKind::Vbi1 => "VBI-1",
            SystemKind::Vbi2 => "VBI-2",
            SystemKind::VbiFull => "VBI-Full",
        }
    }

    /// All systems, in figure order.
    pub const ALL: [SystemKind; 10] = [
        SystemKind::Native,
        SystemKind::Native2M,
        SystemKind::Virtual,
        SystemKind::Virtual2M,
        SystemKind::PerfectTlb,
        SystemKind::Vivt,
        SystemKind::EnigmaHw2M,
        SystemKind::Vbi1,
        SystemKind::Vbi2,
        SystemKind::VbiFull,
    ];
}

/// Cost of one access as seen by the core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCost {
    /// Cycles of memory stall exposed to this access (before MLP overlap).
    pub stall: u64,
    /// Main-memory (DRAM/PCM) data accesses performed on the demand path.
    pub dram_accesses: u64,
    /// Memory accesses performed for translation (walks, VIT, CVT).
    pub translation_accesses: u64,
    /// The access was served as a zero line (no memory access at all).
    pub zero_line: bool,
}

/// Counters accumulated over a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemCounters {
    /// L1 TLB misses (front-end systems only).
    pub tlb_misses: u64,
    /// LLC misses reaching memory/MTL.
    pub llc_misses: u64,
    /// Total demand DRAM accesses.
    pub dram_accesses: u64,
    /// Total translation-related memory accesses.
    pub translation_accesses: u64,
    /// Zero-line returns (VBI-2+).
    pub zero_lines: u64,
}

/// A complete single-core memory system: address layout, caches,
/// translation machinery, and a memory controller.
pub trait MemorySystem {
    /// Registers the workload's regions (sizes in bytes) before the run.
    fn attach_regions(&mut self, sizes: &[u64]);

    /// Plays one access and returns its cost.
    fn access(&mut self, region: usize, offset: u64, is_write: bool) -> AccessCost;

    /// Accumulated counters.
    fn counters(&self) -> SystemCounters;

    /// Resets counters at the warm-up boundary (cache/TLB state persists).
    fn reset_counters(&mut self);
}

/// Builds the system for a kind, sized for `phys_frames` frames of memory.
pub fn build_system(kind: SystemKind, phys_frames: u64) -> Box<dyn MemorySystem> {
    match kind {
        SystemKind::Native => Box::new(PiptSystem::native(PageSize::Kb4, phys_frames)),
        SystemKind::Native2M => Box::new(PiptSystem::native(PageSize::Mb2, phys_frames)),
        SystemKind::Virtual => Box::new(PiptSystem::virtualized(PageSize::Kb4, phys_frames)),
        SystemKind::Virtual2M => Box::new(PiptSystem::virtualized(PageSize::Mb2, phys_frames)),
        SystemKind::PerfectTlb => Box::new(PerfectSystem::new(phys_frames)),
        SystemKind::Vivt => Box::new(VivtSystem::new(phys_frames)),
        SystemKind::EnigmaHw2M => Box::new(EnigmaSystem::new(phys_frames)),
        SystemKind::Vbi1 => Box::new(VbiSystem::new(VbiConfig::vbi_1(), phys_frames)),
        SystemKind::Vbi2 => Box::new(VbiSystem::new(VbiConfig::vbi_2(), phys_frames)),
        SystemKind::VbiFull => Box::new(VbiSystem::new(VbiConfig::vbi_full(), phys_frames)),
    }
}

/// Lays regions out in a virtual (or intermediate) address space with guard
/// gaps, 2 MiB-aligned so large pages apply cleanly.
fn layout_regions(sizes: &[u64]) -> Vec<u64> {
    let mut bases = Vec::with_capacity(sizes.len());
    // Start high so virtual addresses never collide with physical addresses
    // in systems whose cache hierarchy sees both (VIVT walks).
    let mut cursor: u64 = 1 << 40;
    for &size in sizes {
        cursor = cursor.next_multiple_of(2 << 20);
        bases.push(cursor);
        cursor += size.next_multiple_of(2 << 20) + (2 << 20);
    }
    bases
}

/// A small SRAM cache at the memory controller holding translation-structure
/// entries — the working memory of the MTL's "programmable low-power core"
/// (§4.5.3; Pinnacle-class controllers have exactly such SRAM). Enigma's
/// centralized translation cache hardware gets the same structure.
struct ControllerTableCache {
    cache: vbi_mem_sim::Cache,
}

impl ControllerTableCache {
    /// Hit latency of the controller-side SRAM.
    const HIT_CYCLES: u64 = 12;

    fn new() -> Self {
        Self { cache: vbi_mem_sim::Cache::new(256 << 10, 8) }
    }

    /// Plays one table access; returns its latency, touching DRAM on miss.
    fn access(&mut self, pa: u64, memory: &mut MemoryController) -> u64 {
        if self.cache.access(pa, false).hit {
            Self::HIT_CYCLES
        } else {
            Self::HIT_CYCLES + memory.service(pa)
        }
    }
}

enum FrontEnd {
    Native(NativeMmu),
    Nested(NestedMmu),
}

/// Conventional PIPT systems: `Native`, `Native-2M`, `Virtual`,
/// `Virtual-2M`. Translation sits in front of the cache hierarchy.
pub struct PiptSystem {
    mmu: FrontEnd,
    caches: CacheHierarchy,
    memory: MemoryController,
    bases: Vec<u64>,
    counters: SystemCounters,
}

impl PiptSystem {
    fn native(page_size: PageSize, phys_frames: u64) -> Self {
        Self {
            mmu: FrontEnd::Native(NativeMmu::new(page_size, phys_frames)),
            caches: CacheHierarchy::per_core_default(),
            memory: MemoryController::ddr3_1600(),
            bases: Vec::new(),
            counters: SystemCounters::default(),
        }
    }

    fn virtualized(page_size: PageSize, phys_frames: u64) -> Self {
        Self {
            mmu: FrontEnd::Nested(NestedMmu::new(page_size, phys_frames)),
            caches: CacheHierarchy::per_core_default(),
            memory: MemoryController::ddr3_1600(),
            bases: Vec::new(),
            counters: SystemCounters::default(),
        }
    }

    /// Plays a set of translation-walk memory references through the cache
    /// hierarchy (page-table entries are cacheable) and returns the stall
    /// they add.
    fn play_walk(&mut self, addrs: &[u64]) -> u64 {
        let mut stall = 0;
        for &pa in addrs {
            self.counters.translation_accesses += 1;
            let access = self.caches.access(pa, false);
            stall += access.latency;
            if access.level == HitLevel::Memory {
                stall += self.memory.service(pa);
            }
            for wb in access.llc_writebacks {
                self.memory.service(wb);
            }
        }
        stall
    }
}

impl MemorySystem for PiptSystem {
    fn attach_regions(&mut self, sizes: &[u64]) {
        self.bases = layout_regions(sizes);
    }

    fn access(&mut self, region: usize, offset: u64, is_write: bool) -> AccessCost {
        let vaddr = self.bases[region] + offset;
        let translation = match &mut self.mmu {
            FrontEnd::Native(mmu) => mmu.translate(vaddr),
            FrontEnd::Nested(mmu) => mmu.translate(vaddr),
        };
        let mut cost = AccessCost::default();
        if !translation.events.l1_tlb_hit {
            self.counters.tlb_misses += 1;
        }
        if translation.events.l2_tlb_hit {
            cost.stall += L2_TLB_LATENCY;
        }
        if !translation.events.walk_accesses.is_empty() {
            let walk_addrs = translation.events.walk_accesses.clone();
            cost.translation_accesses = walk_addrs.len() as u64;
            cost.stall += self.play_walk(&walk_addrs);
        }

        let data = self.caches.access(translation.paddr, is_write);
        cost.stall += data.latency;
        if data.level == HitLevel::Memory {
            self.counters.llc_misses += 1;
            cost.stall += self.memory.service(translation.paddr);
            cost.dram_accesses += 1;
            self.counters.dram_accesses += 1;
        }
        for wb in data.llc_writebacks {
            // Writebacks leave the critical path but occupy the device.
            self.memory.service(wb);
            self.counters.dram_accesses += 1;
        }
        self.counters.translation_accesses += 0; // walk counting done above
        cost
    }

    fn counters(&self) -> SystemCounters {
        self.counters
    }

    fn reset_counters(&mut self) {
        self.counters = SystemCounters::default();
    }
}

/// The `Perfect TLB` upper bound: PIPT caches, translation free.
pub struct PerfectSystem {
    mmu: PerfectMmu,
    caches: CacheHierarchy,
    memory: MemoryController,
    bases: Vec<u64>,
    counters: SystemCounters,
}

impl PerfectSystem {
    fn new(phys_frames: u64) -> Self {
        Self {
            mmu: PerfectMmu::new(phys_frames),
            caches: CacheHierarchy::per_core_default(),
            memory: MemoryController::ddr3_1600(),
            bases: Vec::new(),
            counters: SystemCounters::default(),
        }
    }
}

impl MemorySystem for PerfectSystem {
    fn attach_regions(&mut self, sizes: &[u64]) {
        self.bases = layout_regions(sizes);
    }

    fn access(&mut self, region: usize, offset: u64, is_write: bool) -> AccessCost {
        let paddr = self.mmu.translate(self.bases[region] + offset);
        let mut cost = AccessCost::default();
        let data = self.caches.access(paddr, is_write);
        cost.stall += data.latency;
        if data.level == HitLevel::Memory {
            self.counters.llc_misses += 1;
            cost.stall += self.memory.service(paddr);
            cost.dram_accesses += 1;
            self.counters.dram_accesses += 1;
        }
        for wb in data.llc_writebacks {
            self.memory.service(wb);
            self.counters.dram_accesses += 1;
        }
        cost
    }

    fn counters(&self) -> SystemCounters {
        self.counters
    }

    fn reset_counters(&mut self) {
        self.counters = SystemCounters::default();
    }
}

/// `VIVT`: conventional page tables, but caches are indexed by virtual
/// address and translation happens only on LLC misses (and writebacks),
/// overlapped with the LLC access.
pub struct VivtSystem {
    mmu: NativeMmu,
    caches: CacheHierarchy,
    memory: MemoryController,
    bases: Vec<u64>,
    counters: SystemCounters,
}

impl VivtSystem {
    fn new(phys_frames: u64) -> Self {
        Self {
            mmu: NativeMmu::new(PageSize::Kb4, phys_frames),
            caches: CacheHierarchy::per_core_default(),
            memory: MemoryController::ddr3_1600(),
            bases: Vec::new(),
            counters: SystemCounters::default(),
        }
    }

    /// Translates at the memory side. The walker is still a CPU-side
    /// structure under VIVT, so its (physical) references go through the
    /// cache hierarchy like any page walk.
    fn translate_at_memory(&mut self, vaddr: u64) -> (u64, u64, u64) {
        let translation = self.mmu.translate(vaddr);
        if !translation.events.l1_tlb_hit {
            self.counters.tlb_misses += 1;
        }
        let mut stall = if translation.events.l2_tlb_hit { L2_TLB_LATENCY } else { 0 };
        let walk_count = translation.events.walk_accesses.len() as u64;
        for pa in translation.events.walk_accesses {
            self.counters.translation_accesses += 1;
            let access = self.caches.access(pa, false);
            stall += access.latency;
            if access.level == HitLevel::Memory {
                stall += self.memory.service(pa);
            }
            for wb in access.llc_writebacks {
                self.memory.service(wb);
            }
        }
        (translation.paddr, stall, walk_count)
    }
}

impl MemorySystem for VivtSystem {
    fn attach_regions(&mut self, sizes: &[u64]) {
        self.bases = layout_regions(sizes);
    }

    fn access(&mut self, region: usize, offset: u64, is_write: bool) -> AccessCost {
        let vaddr = self.bases[region] + offset;
        let mut cost = AccessCost::default();
        let data = self.caches.access(vaddr, is_write);
        cost.stall += data.latency;
        if data.level == HitLevel::Memory {
            self.counters.llc_misses += 1;
            // Translation overlaps the (already charged) LLC lookup; only
            // the excess beyond it is exposed.
            let (paddr, tstall, walks) = self.translate_at_memory(vaddr);
            cost.translation_accesses += walks;
            cost.stall += tstall.saturating_sub(self.caches_latency_llc());
            cost.stall += self.memory.service(paddr);
            cost.dram_accesses += 1;
            self.counters.dram_accesses += 1;
        }
        for wb in data.llc_writebacks {
            let (paddr, _, walks) = self.translate_at_memory(wb);
            cost.translation_accesses += walks;
            self.memory.service(paddr);
            self.counters.dram_accesses += 1;
        }
        cost
    }

    fn counters(&self) -> SystemCounters {
        self.counters
    }

    fn reset_counters(&mut self) {
        self.counters = SystemCounters::default();
    }
}

impl VivtSystem {
    fn caches_latency_llc(&self) -> u64 {
        31
    }
}

/// `Enigma-HW-2M`: caches indexed by intermediate addresses, CTC + hardware
/// walk at the memory controller.
pub struct EnigmaSystem {
    controller: EnigmaController,
    caches: CacheHierarchy,
    memory: MemoryController,
    table_cache: ControllerTableCache,
    bases: Vec<u64>,
    counters: SystemCounters,
}

impl EnigmaSystem {
    fn new(phys_frames: u64) -> Self {
        Self {
            controller: EnigmaController::new(phys_frames),
            caches: CacheHierarchy::per_core_default(),
            memory: MemoryController::ddr3_1600(),
            table_cache: ControllerTableCache::new(),
            bases: Vec::new(),
            counters: SystemCounters::default(),
        }
    }
}

impl MemorySystem for EnigmaSystem {
    fn attach_regions(&mut self, sizes: &[u64]) {
        let mut space = vbi_baselines::enigma::IaSpace::new();
        self.bases = sizes.iter().map(|&s| space.assign(s)).collect();
    }

    fn access(&mut self, region: usize, offset: u64, is_write: bool) -> AccessCost {
        let ia = self.bases[region] + offset;
        let mut cost = AccessCost::default();
        let data = self.caches.access(ia, is_write);
        cost.stall += data.latency;
        if data.level == HitLevel::Memory {
            self.counters.llc_misses += 1;
            let t = self.controller.translate(ia);
            cost.translation_accesses = t.walk_accesses.len() as u64;
            for pa in &t.walk_accesses {
                cost.stall += self.table_cache.access(*pa, &mut self.memory);
                self.counters.translation_accesses += 1;
            }
            cost.stall += self.memory.service(t.paddr);
            cost.dram_accesses += 1;
            self.counters.dram_accesses += 1;
        }
        for wb in data.llc_writebacks {
            let t = self.controller.translate(wb);
            for pa in &t.walk_accesses {
                self.table_cache.access(*pa, &mut self.memory);
                self.counters.translation_accesses += 1;
            }
            self.memory.service(t.paddr);
            self.counters.dram_accesses += 1;
        }
        cost
    }

    fn counters(&self) -> SystemCounters {
        self.counters
    }

    fn reset_counters(&mut self) {
        self.counters = SystemCounters::default();
    }
}

/// The VBI systems: inherently virtual caches in front of the MTL.
pub struct VbiSystem {
    mtl: Mtl,
    caches: CacheHierarchy,
    memory: MemoryController,
    table_cache: ControllerTableCache,
    cvt_cache: CvtCache,
    vbs: Vec<Vbuid>,
    counters: SystemCounters,
    client: ClientId,
}

impl VbiSystem {
    fn new(config: VbiConfig, phys_frames: u64) -> Self {
        let cvt_slots = config.cvt_cache_slots;
        let config = VbiConfig { phys_frames, ..config };
        Self {
            mtl: Mtl::new(config),
            caches: CacheHierarchy::per_core_default(),
            memory: MemoryController::ddr3_1600(),
            table_cache: ControllerTableCache::new(),
            cvt_cache: CvtCache::new(cvt_slots),
            vbs: Vec::new(),
            counters: SystemCounters::default(),
            client: ClientId(1),
        }
    }

    /// Serves one MTL translation, charging walk accesses to memory.
    /// Returns `(Some(paddr), stall)` or `(None, stall)` for zero lines.
    fn mtl_translate(&mut self, addr: VbiAddress, access: MtlAccess) -> (Option<u64>, u64, u64) {
        let translation = self.mtl.translate(addr, access).expect("sim VBs are enabled");
        let mut stall = 0;
        let walks = translation.events.table_accesses.len() as u64;
        for pa in &translation.events.table_accesses {
            stall += self.table_cache.access(pa.to_bits(), &mut self.memory);
            self.counters.translation_accesses += 1;
        }
        match translation.result {
            TranslateResult::Mapped(pa) => (Some(pa.to_bits()), stall, walks),
            TranslateResult::ZeroLine => (None, stall, walks),
        }
    }
}

impl MemorySystem for VbiSystem {
    fn attach_regions(&mut self, sizes: &[u64]) {
        for &size in sizes {
            let sc = SizeClass::smallest_fitting(size).expect("workloads fit a size class");
            let vb = self.mtl.find_free_vb(sc).expect("plenty of VBs");
            self.mtl.enable_vb(vb, VbProperties::NONE).expect("fresh VB");
            self.mtl.add_ref(vb).expect("enabled");
            self.vbs.push(vb);
        }
    }

    fn access(&mut self, region: usize, offset: u64, is_write: bool) -> AccessCost {
        let mut cost = AccessCost::default();

        // CVT-cache protection check; a miss reads the in-memory CVT entry
        // through the cache hierarchy.
        if self.cvt_cache.lookup(self.client, region).is_none() {
            let entry_addr = 0x10_0000 + (region as u64) * 16; // reserved CVT region
            let check = self.caches.access(entry_addr, false);
            cost.stall += check.latency;
            if check.level == HitLevel::Memory {
                cost.stall += self.memory.service(entry_addr);
                self.counters.translation_accesses += 1;
            }
            // Refill: the simulator does not model CVT entries functionally
            // here (vbi-core::System covers that); insert a placeholder.
            let mut cvt = vbi_core::client::Cvt::new(self.client, region + 1);
            for _ in 0..=region {
                let _ = cvt.attach(self.vbs[region], vbi_core::perm::Rwx::ALL);
            }
            if let Ok(entry) = cvt.entry(region) {
                self.cvt_cache.fill(self.client, region, *entry);
            }
        }

        let addr = self.vbs[region].address(offset).expect("trace stays in bounds");
        let bits = addr.to_bits();
        let data = self.caches.access(bits, is_write);
        cost.stall += data.latency;
        if data.level == HitLevel::Memory {
            self.counters.llc_misses += 1;
            // Translation runs in parallel with the LLC lookup; only the
            // excess beyond the (already charged) LLC latency is exposed.
            let (paddr, tstall, walks) = self.mtl_translate(addr, MtlAccess::Read);
            cost.translation_accesses += walks;
            cost.stall += tstall.saturating_sub(31);
            match paddr {
                Some(pa) => {
                    cost.stall += self.memory.service(pa);
                    cost.dram_accesses += 1;
                    self.counters.dram_accesses += 1;
                }
                None => {
                    cost.zero_line = true;
                    self.counters.zero_lines += 1;
                }
            }
        }
        for wb in data.llc_writebacks {
            let (paddr, _, walks) = self.mtl_translate(VbiAddress(wb), MtlAccess::Writeback);
            cost.translation_accesses += walks;
            if let Some(pa) = paddr {
                self.memory.service(pa);
                self.counters.dram_accesses += 1;
            }
        }
        cost
    }

    fn counters(&self) -> SystemCounters {
        self.counters
    }

    fn reset_counters(&mut self) {
        self.counters = SystemCounters::default();
        self.mtl.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FRAMES: u64 = 1 << 18; // 1 GiB

    fn touch(system: &mut dyn MemorySystem, n: u64) -> u64 {
        let mut stall = 0;
        for i in 0..n {
            stall += system.access(0, (i * 64) % (1 << 20), i % 4 == 0).stall;
        }
        stall
    }

    #[test]
    fn all_systems_build_and_run() {
        for kind in SystemKind::ALL {
            let mut system = build_system(kind, FRAMES);
            system.attach_regions(&[1 << 20, 1 << 16]);
            let stall = touch(system.as_mut(), 1000);
            assert!(stall > 0, "{}", kind.label());
            let _ = system.access(1, 0, true);
        }
    }

    #[test]
    fn perfect_tlb_beats_native_on_tlb_hostile_streams() {
        let mut native = build_system(SystemKind::Native, FRAMES);
        let mut perfect = build_system(SystemKind::PerfectTlb, FRAMES);
        native.attach_regions(&[256 << 20]);
        perfect.attach_regions(&[256 << 20]);
        let mut native_stall = 0;
        let mut perfect_stall = 0;
        // Page-stride pattern: every access a new page.
        for i in 0..20_000u64 {
            let off = (i * 4096 * 7) % (256 << 20);
            native_stall += native.access(0, off, false).stall;
            perfect_stall += perfect.access(0, off, false).stall;
        }
        assert!(native_stall > perfect_stall, "{native_stall} vs {perfect_stall}");
        assert!(native.counters().translation_accesses > 0);
        assert_eq!(perfect.counters().translation_accesses, 0);
    }

    #[test]
    fn virtual_walks_cost_more_than_native_walks() {
        let mut native = build_system(SystemKind::Native, FRAMES);
        let mut virt = build_system(SystemKind::Virtual, FRAMES);
        native.attach_regions(&[256 << 20]);
        virt.attach_regions(&[256 << 20]);
        for i in 0..20_000u64 {
            let off = (i * 4096 * 7) % (256 << 20);
            native.access(0, off, false);
            virt.access(0, off, false);
        }
        assert!(virt.counters().translation_accesses > native.counters().translation_accesses * 2);
    }

    #[test]
    fn vbi2_returns_zero_lines_for_untouched_data() {
        let mut vbi = build_system(SystemKind::Vbi2, FRAMES);
        vbi.attach_regions(&[64 << 20]);
        // Pure reads over fresh memory: all LLC misses become zero lines.
        let mut zero_lines = 0;
        for i in 0..1000u64 {
            let cost = vbi.access(0, i * 4096, false);
            if cost.zero_line {
                zero_lines += 1;
            }
        }
        assert!(zero_lines > 900, "{zero_lines}");
        assert_eq!(vbi.counters().dram_accesses, 0);
    }

    #[test]
    fn vbi_full_direct_maps_and_avoids_walks() {
        let mut vbi = build_system(SystemKind::VbiFull, FRAMES);
        vbi.attach_regions(&[64 << 20]);
        // Write everything once (allocates), then re-read with cold caches.
        for i in 0..10_000u64 {
            vbi.access(0, i * 4096 % (64 << 20), true);
        }
        vbi.reset_counters();
        for i in 0..10_000u64 {
            vbi.access(0, (i * 4096 * 13) % (64 << 20), false);
        }
        let c = vbi.counters();
        // Direct-mapped VB: the whole-VB TLB entry serves almost every miss.
        assert!(
            c.translation_accesses < c.llc_misses / 10,
            "translation {} vs misses {}",
            c.translation_accesses,
            c.llc_misses
        );
    }
}
