//! Memory-pressure harness: oversubscribed traffic with per-op latency.
//!
//! Where [`mod@crate::service_run`] measures throughput with the working set
//! comfortably resident, this driver deliberately sizes the footprint
//! *past* physical memory (the paper's §3.4 capacity-management case) so
//! every thread's traffic runs the engine's pressure path — clock
//! eviction, write-back to the shard's backing store, fault-in on next
//! touch — and reports what that costs: the fault rate and the p50/p99
//! per-operation latency at a given oversubscription ratio. The
//! `BENCH_pressure` bench in `vbi-bench` sweeps that ratio by shrinking
//! `phys_frames` under a fixed working set.
//!
//! Every operation is byte-checked: stores write a pure function of
//! `(thread, page)` and loads assert it, so a run that completes proves
//! the swap path lost nothing while it was evicting. Both the synchronous
//! [`VbiService`] front end and the pipelined [`VbiQueue`] front end are
//! supported ([`PressureFrontEnd`]) — the same engine code serves both, so
//! the comparison isolates front-end overhead under pressure.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::Rng;

use vbi_core::config::VbiConfig;
use vbi_core::ops::Op;
use vbi_core::perm::Rwx;
use vbi_core::stats::MtlStats;
use vbi_core::system::VbHandle;
use vbi_core::vb::VbProperties;
use vbi_service::{ServiceConfig, ServiceSession, VbiQueue, VbiService};

/// Which front end carries the oversubscribed traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PressureFrontEnd {
    /// Synchronous per-op calls through [`VbiService`] sessions.
    Service,
    /// Tagged submission/completion pipelining through [`VbiQueue`].
    Queue,
}

impl PressureFrontEnd {
    fn label(self) -> &'static str {
        match self {
            PressureFrontEnd::Service => "service",
            PressureFrontEnd::Queue => "queue",
        }
    }
}

/// Configuration of one pressure run ([`pressure_run`]).
#[derive(Debug, Clone)]
pub struct PressureRunConfig {
    /// Worker threads, one client + one private VB each.
    pub threads: usize,
    /// MTL shards.
    pub shards: usize,
    /// Pages in each thread's VB — all of them are pre-written, so the
    /// working set is exactly `threads * pages_per_thread` pages.
    pub pages_per_thread: u64,
    /// Mixed store/load operations per thread after the pre-write phase
    /// (a final byte-exact sweep of every page adds `pages_per_thread`
    /// more loads per thread).
    pub ops_per_thread: usize,
    /// Physical frames in the machine. Set below the working set to
    /// oversubscribe; see [`PressureRunReport::oversubscription`].
    pub phys_frames: u64,
    /// Seed for the per-thread op streams.
    pub seed: u64,
    /// Which front end carries the traffic.
    pub front_end: PressureFrontEnd,
}

impl Default for PressureRunConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            shards: 2,
            pages_per_thread: 64,
            ops_per_thread: 4_000,
            phys_frames: 128,
            seed: 0x2020,
            front_end: PressureFrontEnd::Service,
        }
    }
}

/// Report of one pressure run.
#[derive(Debug, Clone)]
pub struct PressureRunReport {
    /// Worker threads.
    pub threads: usize,
    /// MTL shards.
    pub shards: usize,
    /// Front end that carried the traffic (`"service"` or `"queue"`).
    pub front_end: &'static str,
    /// Operations completed across all threads (mixed phase plus the
    /// final verification sweep; the pre-write phase is not counted).
    pub total_ops: u64,
    /// Pages the run keeps live: `threads * pages_per_thread`.
    pub working_set_pages: u64,
    /// Physical frames in the machine.
    pub phys_frames: u64,
    /// `working_set_pages / phys_frames` — above 1.0 the data alone
    /// cannot be resident, and translation structures push the true
    /// pressure higher still.
    pub oversubscription: f64,
    /// Wall-clock seconds of the measured phases.
    pub elapsed_secs: f64,
    /// Throughput in operations per second.
    pub ops_per_sec: f64,
    /// Faults served per operation: `faults_in / total_ops`.
    pub fault_rate: f64,
    /// Median per-operation latency in nanoseconds.
    pub p50_latency_ns: u64,
    /// 99th-percentile per-operation latency in nanoseconds.
    pub p99_latency_ns: u64,
    /// Pages swapped back in while the run executed.
    pub faults_in: u64,
    /// Pages reclaimed by the eviction policy.
    pub evictions: u64,
    /// Dirty pages written back to the backing store.
    pub writebacks: u64,
    /// Pages resident in the backing stores when the run finished (the
    /// part of the working set that ended its life swapped out).
    pub swap_occupancy_pages: usize,
    /// Merged MTL counters across shards.
    pub mtl: MtlStats,
}

impl PressureRunReport {
    /// One-line JSON rendering via the shared
    /// [`json_object`](vbi_core::telemetry::json_object) emitter: sorted
    /// keys, schema-stable.
    pub fn to_json(&self) -> String {
        use vbi_core::telemetry::JsonValue as J;
        vbi_core::telemetry::json_object(&[
            ("front_end", J::S(self.front_end.to_string())),
            ("threads", J::U(self.threads as u64)),
            ("shards", J::U(self.shards as u64)),
            ("working_set_pages", J::U(self.working_set_pages)),
            ("phys_frames", J::U(self.phys_frames)),
            ("oversubscription", J::F(self.oversubscription, 3)),
            ("total_ops", J::U(self.total_ops)),
            ("elapsed_secs", J::F(self.elapsed_secs, 6)),
            ("ops_per_sec", J::F(self.ops_per_sec, 0)),
            ("fault_rate", J::F(self.fault_rate, 6)),
            ("p50_latency_ns", J::U(self.p50_latency_ns)),
            ("p99_latency_ns", J::U(self.p99_latency_ns)),
            ("faults_in", J::U(self.faults_in)),
            ("evictions", J::U(self.evictions)),
            ("writebacks", J::U(self.writebacks)),
            ("pages_swapped_out", J::U(self.mtl.pages_swapped_out)),
            ("pages_swapped_in", J::U(self.mtl.pages_swapped_in)),
            ("swap_occupancy_pages", J::U(self.swap_occupancy_pages as u64)),
        ])
    }
}

/// The byte pattern for `(thread, page)` — a pure function, so stores are
/// idempotent and any load can be checked without tracking history.
fn pattern(thread: u64, page: u64) -> u64 {
    (0xC0DE_0000 + thread) << 32 | page
}

/// Runs `config.threads` workers against a fresh oversubscribed service:
/// each pre-writes its whole VB, then issues `config.ops_per_thread`
/// mixed stores/loads over it (uniform page choice, idempotent values,
/// every load asserted), then sweeps every page once more to prove the
/// final bytes survived the churn. Per-operation latency is captured for
/// the measured phases and summarized as p50/p99.
///
/// # Panics
///
/// Panics if any operation fails or any load returns a value other than
/// its page's pattern — under pressure that would mean the swap path lost
/// or corrupted a page.
pub fn pressure_run(config: &PressureRunConfig) -> PressureRunReport {
    let service_config = ServiceConfig::new(
        config.shards,
        VbiConfig { phys_frames: config.phys_frames, ..VbiConfig::vbi_full() },
    );
    let (latencies, elapsed, stats, swap_occupancy) = match config.front_end {
        PressureFrontEnd::Service => run_service(config, service_config),
        PressureFrontEnd::Queue => run_queue(config, service_config),
    };
    let total_ops = latencies.len() as u64;
    let working_set_pages = config.threads as u64 * config.pages_per_thread;
    let (p50, p99) = percentiles(latencies);
    PressureRunReport {
        threads: config.threads,
        shards: config.shards,
        front_end: config.front_end.label(),
        total_ops,
        working_set_pages,
        phys_frames: config.phys_frames,
        oversubscription: working_set_pages as f64 / config.phys_frames.max(1) as f64,
        elapsed_secs: elapsed,
        ops_per_sec: if elapsed > 0.0 { total_ops as f64 / elapsed } else { 0.0 },
        fault_rate: if total_ops > 0 { stats.faults_in as f64 / total_ops as f64 } else { 0.0 },
        p50_latency_ns: p50,
        p99_latency_ns: p99,
        faults_in: stats.faults_in,
        evictions: stats.evictions,
        writebacks: stats.writebacks,
        swap_occupancy_pages: swap_occupancy,
        mtl: stats,
    }
}

fn percentiles(mut latencies: Vec<u64>) -> (u64, u64) {
    if latencies.is_empty() {
        return (0, 0);
    }
    latencies.sort_unstable();
    let at = |q: usize| latencies[(latencies.len() - 1) * q / 100];
    (at(50), at(99))
}

/// Creates this thread's client and VB and writes every page's pattern.
/// Setup is synchronous on both front ends; the measured phases start
/// after it.
fn setup_worker(session: &ServiceSession, config: &PressureRunConfig, thread: u64) -> VbHandle {
    let vb = session
        .request_vb(config.pages_per_thread * 4096, VbProperties::NONE, Rwx::READ_WRITE)
        .expect("VB request allocates nothing up front");
    for page in 0..config.pages_per_thread {
        session.store_u64(vb.at(page << 12), pattern(thread, page)).expect("pre-write");
    }
    vb
}

fn run_service(
    config: &PressureRunConfig,
    service_config: ServiceConfig,
) -> (Vec<u64>, f64, MtlStats, usize) {
    let service = VbiService::new(service_config);
    let started = Instant::now();
    let latencies: Vec<u64> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..config.threads)
            .map(|thread| {
                let service = service.clone();
                scope.spawn(move || service_worker(&service, config, thread as u64))
            })
            .collect();
        workers.into_iter().flat_map(|w| w.join().expect("pressure worker panicked")).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let occupancy = service.swap_occupancy();
    (latencies, elapsed, service.stats(), occupancy)
}

fn service_worker(service: &VbiService, config: &PressureRunConfig, thread: u64) -> Vec<u64> {
    let session = service.create_client().expect("service has client IDs");
    let vb = setup_worker(&session, config, thread);
    let mut rng = SmallRng::stream(config.seed, thread);
    let mut latencies =
        Vec::with_capacity(config.ops_per_thread + config.pages_per_thread as usize);
    for _ in 0..config.ops_per_thread {
        let page = rng.gen::<u64>() % config.pages_per_thread;
        let is_write = rng.gen::<u64>() & 1 == 0;
        let va = vb.at(page << 12);
        let start = Instant::now();
        if is_write {
            session.store_u64(va, pattern(thread, page)).expect("in-bounds store");
        } else {
            let value = session.load_u64(va).expect("in-bounds load");
            assert_eq!(value, pattern(thread, page), "swap path corrupted page {page}");
        }
        latencies.push(start.elapsed().as_nanos() as u64);
    }
    // Final sweep: every page must still hold its pattern, resident or not.
    for page in 0..config.pages_per_thread {
        let start = Instant::now();
        let value = session.load_u64(vb.at(page << 12)).expect("in-bounds load");
        latencies.push(start.elapsed().as_nanos() as u64);
        assert_eq!(value, pattern(thread, page), "final sweep lost page {page}");
    }
    latencies
}

fn run_queue(
    config: &PressureRunConfig,
    service_config: ServiceConfig,
) -> (Vec<u64>, f64, MtlStats, usize) {
    let queue = VbiQueue::new(service_config);
    let ops_total = config.ops_per_thread + config.pages_per_thread as usize;
    // The completion queue is shared, so a CQE may be reaped by any
    // thread. Submit time and the expected load value are published per
    // tag through these arrays (indexed `thread * ops_total + seq`) so
    // whoever reaps a completion can time it and byte-check it.
    let epoch = Instant::now();
    let submit_ns: Vec<AtomicU64> =
        (0..config.threads * ops_total).map(|_| AtomicU64::new(0)).collect();
    let expected: Vec<AtomicU64> =
        (0..config.threads * ops_total).map(|_| AtomicU64::new(STORE_SENTINEL)).collect();
    let started = Instant::now();
    let latencies: Vec<u64> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..config.threads)
            .map(|thread| {
                let queue = &queue;
                let (submit_ns, expected) = (&submit_ns, &expected);
                scope.spawn(move || {
                    queue_worker(queue, config, thread as u64, epoch, submit_ns, expected)
                })
            })
            .collect();
        let mut latencies: Vec<u64> = workers
            .into_iter()
            .flat_map(|w| w.join().expect("pressure submitter panicked"))
            .collect();
        // Reap whatever the submitters left in flight.
        for cqe in queue.drain() {
            latencies.push(check_cqe(&cqe, epoch, &submit_ns, &expected));
        }
        latencies
    });
    let total = (config.threads * ops_total) as u64;
    assert_eq!(latencies.len() as u64, total, "a completion was lost");
    let elapsed = started.elapsed().as_secs_f64();
    let service = queue.service();
    let occupancy = service.swap_occupancy();
    (latencies, elapsed, service.stats(), occupancy)
}

/// `expected[tag]` value meaning "a store: assert success, no value check".
const STORE_SENTINEL: u64 = u64::MAX;

fn check_cqe(
    cqe: &vbi_service::Cqe,
    epoch: Instant,
    submit_ns: &[AtomicU64],
    expected: &[AtomicU64],
) -> u64 {
    let output = cqe.result.as_ref().expect("in-bounds op under pressure");
    let want = expected[cqe.tag as usize].load(Ordering::Acquire);
    if want != STORE_SENTINEL {
        let got = output.as_u64().expect("load completion carries a value");
        assert_eq!(got, want, "swap path corrupted a queued load (tag {})", cqe.tag);
    }
    let submitted = submit_ns[cqe.tag as usize].load(Ordering::Acquire);
    (epoch.elapsed().as_nanos() as u64).saturating_sub(submitted)
}

fn queue_worker(
    queue: &VbiQueue,
    config: &PressureRunConfig,
    thread: u64,
    epoch: Instant,
    submit_ns: &[AtomicU64],
    expected: &[AtomicU64],
) -> Vec<u64> {
    // Setup is synchronous: the client and VB exist (and the pre-write
    // pattern is in place) before the first pipelined access.
    let session = queue.create_client().expect("service has client IDs");
    let client = session.id();
    let vb = setup_worker(&session, config, thread);
    let mut rng = SmallRng::stream(config.seed, thread);
    let ops_total = config.ops_per_thread + config.pages_per_thread as usize;
    let window = 32 * config.threads as u64;
    let mut latencies = Vec::with_capacity(ops_total);
    let submit = |seq: usize, page: u64, is_write: bool, latencies: &mut Vec<u64>| {
        let tag = thread * ops_total as u64 + seq as u64;
        let va = vb.at(page << 12);
        let op = if is_write {
            Op::StoreU64 { client, va, value: pattern(thread, page) }
        } else {
            expected[tag as usize].store(pattern(thread, page), Ordering::Release);
            Op::LoadU64 { client, va }
        };
        submit_ns[tag as usize].store(epoch.elapsed().as_nanos() as u64, Ordering::Release);
        queue.submit(tag, op);
        // Bound global in-flight work; a reaped CQE may belong to any
        // submitter, so check it against the shared tag tables.
        while queue.in_flight() > window {
            match queue.reap() {
                Some(cqe) => latencies.push(check_cqe(&cqe, epoch, submit_ns, expected)),
                None => break, // another thread reaped the queue idle
            }
        }
    };
    for seq in 0..config.ops_per_thread {
        let page = rng.gen::<u64>() % config.pages_per_thread;
        let is_write = rng.gen::<u64>() & 1 == 0;
        submit(seq, page, is_write, &mut latencies);
    }
    // Final sweep, pipelined like the rest: same-VB ops execute in
    // submission order, so these see every prior store's bytes.
    for page in 0..config.pages_per_thread {
        submit(config.ops_per_thread + page as usize, page, false, &mut latencies);
    }
    latencies
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(front_end: PressureFrontEnd) -> PressureRunConfig {
        PressureRunConfig {
            threads: 2,
            shards: 2,
            pages_per_thread: 48,
            ops_per_thread: 400,
            phys_frames: 64,
            seed: 7,
            front_end,
        }
    }

    #[test]
    fn service_pressure_run_faults_and_stays_byte_exact() {
        let config = small(PressureFrontEnd::Service);
        let report = pressure_run(&config);
        assert_eq!(report.total_ops, 2 * (400 + 48));
        assert!(report.oversubscription > 1.0, "config must oversubscribe");
        assert!(report.evictions > 0, "no eviction at {:.2}x", report.oversubscription);
        assert!(report.faults_in > 0, "no fault-in at {:.2}x", report.oversubscription);
        assert!(report.fault_rate > 0.0);
        assert!(report.p99_latency_ns >= report.p50_latency_ns);
        assert_eq!(report.mtl.faults_in, report.mtl.pages_swapped_in);
    }

    #[test]
    fn queue_pressure_run_faults_and_stays_byte_exact() {
        let report = pressure_run(&small(PressureFrontEnd::Queue));
        assert_eq!(report.total_ops, 2 * (400 + 48));
        assert!(report.evictions > 0);
        assert!(report.faults_in > 0);
        assert_eq!(report.front_end, "queue");
    }

    #[test]
    fn resident_working_set_never_faults() {
        let config = PressureRunConfig { phys_frames: 1024, ..small(PressureFrontEnd::Service) };
        let report = pressure_run(&config);
        assert!(report.oversubscription < 1.0);
        assert_eq!(report.faults_in, 0);
        assert_eq!(report.fault_rate, 0.0);
        assert_eq!(report.swap_occupancy_pages, 0);
    }

    #[test]
    fn report_renders_single_line_json() {
        let report = pressure_run(&small(PressureFrontEnd::Service));
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(!json.contains('\n'));
        for key in [
            "\"front_end\"",
            "\"oversubscription\"",
            "\"fault_rate\"",
            "\"p99_latency_ns\"",
            "\"evictions\"",
            "\"writebacks\"",
            "\"swap_occupancy_pages\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
