//! Heterogeneous-memory experiments (Figures 9 and 10).
//!
//! Use case 2 (§7.3): the same VBI front end (inherently virtual caches, no
//! front-end translation), but the memory behind the MTL is two-speed. What
//! is compared is purely the *placement policy*: hotness-unaware first
//! touch, VBI's VB-granularity hotness migration, and the IDEAL page-level
//! oracle. The oracle is built from a profiling pass over the same trace,
//! mirroring the paper's "oracle knowledge" formulation.

use vbi_hetero::hotness::HotnessTracker;
use vbi_hetero::memory::{HeteroKind, HeteroMemory, Policy, PAGE_BYTES};
use vbi_mem_sim::hierarchy::{CacheHierarchy, HitLevel};
use vbi_workloads::trace::WorkloadSpec;

use crate::engine::EngineConfig;

/// Result of one heterogeneous-memory run.
#[derive(Debug, Clone)]
pub struct HeteroRunResult {
    /// Benchmark name.
    pub workload: &'static str,
    /// Architecture.
    pub kind: HeteroKind,
    /// Placement policy.
    pub policy: Policy,
    /// Instructions committed.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Fraction of main-memory accesses served by the fast region.
    pub fast_fraction: f64,
    /// Pages migrated.
    pub pages_migrated: u64,
}

impl HeteroRunResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles.max(1) as f64
    }

    /// Speedup over a baseline run of the same workload and architecture.
    pub fn speedup_over(&self, baseline: &HeteroRunResult) -> f64 {
        assert_eq!(self.workload, baseline.workload);
        assert_eq!(self.kind, baseline.kind);
        self.ipc() / baseline.ipc()
    }
}

/// Fast-region capacity used in the experiments. Both are deliberately much
/// smaller than the workload footprints (as in the paper, where DRAM is a
/// small fraction of PCM and TL-DRAM's near segment a small fraction of each
/// subarray), so placement quality actually matters.
pub fn fast_bytes_for(kind: HeteroKind) -> u64 {
    match kind {
        // A DRAM cache-like fast region in front of PCM.
        HeteroKind::PcmDram => 128 << 20,
        // TL-DRAM's near segment is a small slice of every subarray
        // (tens of rows out of 512), so its aggregate capacity is a much
        // smaller fraction of memory.
        HeteroKind::TlDram => 64 << 20,
    }
}

/// Epoch length (main-memory accesses between placement decisions).
pub const EPOCH_ACCESSES: u64 = 10_000;

/// Runs one workload on a heterogeneous memory under `policy`.
pub fn run_hetero(
    kind: HeteroKind,
    policy: Policy,
    spec: &WorkloadSpec,
    config: &EngineConfig,
) -> HeteroRunResult {
    let fast_bytes = fast_bytes_for(kind);
    let mut memory = HeteroMemory::new(kind, fast_bytes, policy, EPOCH_ACCESSES);
    for (i, region) in spec.regions.iter().enumerate() {
        memory.register_region(i, region.bytes);
    }

    // The IDEAL oracle sees the future: profile the LLC-miss stream first.
    if policy == Policy::Ideal {
        let mut profiler = HotnessTracker::new();
        let mut caches = CacheHierarchy::per_core_default();
        let bases = region_bases(spec);
        for access in spec.trace(config.seed).take(config.warmup + config.accesses) {
            let line = bases[access.region] + access.offset;
            if caches.access(line, access.is_write).level == HitLevel::Memory {
                profiler.record(access.region, access.offset / PAGE_BYTES);
            }
        }
        memory.set_oracle(&profiler.rank_pages());
    }

    let mut caches = CacheHierarchy::per_core_default();
    let bases = region_bases(spec);
    let mut trace = spec.trace(config.seed);

    for access in trace.by_ref().take(config.warmup) {
        let line = bases[access.region] + access.offset;
        let r = caches.access(line, access.is_write);
        if r.level == HitLevel::Memory {
            memory.access(access.region, access.offset, access.is_write);
        }
    }

    let mut instructions = 0u64;
    let mut cycles_x4 = 0u64;
    let migration_before = memory.stats().migration_cycles;
    for access in trace.take(config.accesses) {
        instructions += access.gap as u64 + 1;
        cycles_x4 += access.gap as u64;
        let line = bases[access.region] + access.offset;
        let r = caches.access(line, access.is_write);
        let mut stall = r.latency;
        if r.level == HitLevel::Memory {
            stall += memory.access(access.region, access.offset, access.is_write);
        }
        for wb in r.llc_writebacks {
            // Writebacks occupy the device off the critical path.
            let region = bases.iter().rposition(|&b| b <= wb).unwrap_or(0);
            memory.access(region, wb - bases[region], true);
        }
        let exposed = if access.dependent { stall as f64 } else { stall as f64 / spec.mlp };
        cycles_x4 += (exposed * 4.0) as u64;
    }
    // Migration traffic steals device time from the application.
    let migration_cycles = memory.stats().migration_cycles - migration_before;
    cycles_x4 += migration_cycles * 4;

    let stats = memory.stats();
    HeteroRunResult {
        workload: spec.name,
        kind,
        policy,
        instructions,
        cycles: (cycles_x4 / 4).max(1),
        fast_fraction: stats.fast_fraction(),
        pages_migrated: stats.pages_migrated,
    }
}

/// Lays regions out back to back in a line-address space for the cache
/// model (identity per region; the hetero memory does its own placement).
fn region_bases(spec: &WorkloadSpec) -> Vec<u64> {
    let mut bases = Vec::with_capacity(spec.regions.len());
    let mut cursor = 0u64;
    for r in &spec.regions {
        bases.push(cursor);
        cursor += r.bytes.next_multiple_of(PAGE_BYTES) + PAGE_BYTES;
    }
    bases
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbi_workloads::spec::benchmark;

    fn quick() -> EngineConfig {
        EngineConfig { accesses: 40_000, warmup: 4_000, seed: 11, phys_frames: 1 << 20 }
    }

    #[test]
    fn vbi_placement_beats_unaware_on_skewed_workloads() {
        let spec = benchmark("sphinx3").unwrap(); // strongly hot/cold
        let unaware = run_hetero(HeteroKind::PcmDram, Policy::Unaware, &spec, &quick());
        let vbi = run_hetero(HeteroKind::PcmDram, Policy::VbiHotness, &spec, &quick());
        assert!(vbi.speedup_over(&unaware) > 1.0, "vbi {} vs unaware {}", vbi.ipc(), unaware.ipc());
    }

    #[test]
    fn ideal_is_an_upper_bound_for_unaware() {
        let spec = benchmark("milc").unwrap();
        let unaware = run_hetero(HeteroKind::TlDram, Policy::Unaware, &spec, &quick());
        let ideal = run_hetero(HeteroKind::TlDram, Policy::Ideal, &spec, &quick());
        assert!(ideal.speedup_over(&unaware) >= 0.95, "{}", ideal.speedup_over(&unaware));
    }

    #[test]
    fn runs_report_fast_fractions() {
        let spec = benchmark("hmmer").unwrap();
        let r = run_hetero(HeteroKind::PcmDram, Policy::VbiHotness, &spec, &quick());
        assert!(r.fast_fraction >= 0.0 && r.fast_fraction <= 1.0);
        assert!(r.cycles > 0 && r.instructions > 0);
    }
}
