//! Quad-core multiprogrammed simulation (Figure 8, Table 2).
//!
//! Four applications run together: private L1/L2/TLB state per core, a
//! shared memory controller (bank contention is captured by the shared
//! row-buffer state), and per-core cycle accounting. Following the paper,
//! the reported metric is the *weighted speedup* normalized to `Native`:
//!
//! ```text
//! WS(system) = (1/4) * Σ_i IPC_i(system, shared) / IPC_i(Native, alone)
//! ```

use vbi_workloads::trace::WorkloadSpec;

use crate::engine::{run, EngineConfig, RunResult};
use crate::systems::{build_system, SystemKind};

/// Result of one quad-core bundle run.
#[derive(Debug, Clone)]
pub struct BundleResult {
    /// Bundle label ("wl1".."wl6").
    pub bundle: &'static str,
    /// System configuration.
    pub system: SystemKind,
    /// Per-app results in bundle order.
    pub apps: Vec<RunResult>,
}

impl BundleResult {
    /// Weighted speedup against per-app baseline (alone) results.
    pub fn weighted_speedup(&self, baselines: &[RunResult]) -> f64 {
        assert_eq!(self.apps.len(), baselines.len());
        let sum: f64 =
            self.apps.iter().zip(baselines).map(|(shared, alone)| shared.ipc() / alone.ipc()).sum();
        sum / self.apps.len() as f64
    }
}

/// Runs a four-app bundle on `system_kind` with interleaved accesses and a
/// shared memory system per core group.
///
/// Each app gets its own [`crate::systems::MemorySystem`] (private caches
/// and translation state — the paper's LLC is 2 MiB *per core*), while
/// contention is modelled through the per-app engine running on a quarter
/// of the simulated window. This captures the first-order effect the
/// figure reports: how translation overhead scales when memory pressure
/// quadruples.
pub fn run_bundle(
    bundle: &'static str,
    system_kind: SystemKind,
    apps: &[WorkloadSpec],
    config: &EngineConfig,
) -> BundleResult {
    // Memory per app: a quarter of the machine.
    let per_app = EngineConfig { phys_frames: config.phys_frames / 4, ..config.clone() };
    let results = apps
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let cfg = EngineConfig { seed: per_app.seed + i as u64, ..per_app.clone() };
            run(system_kind, spec, &cfg)
        })
        .collect();
    BundleResult { bundle, system: system_kind, apps: results }
}

/// Runs each app of a bundle alone on `Native` with the full machine — the
/// normalization denominators of Figure 8.
pub fn run_alone_native(apps: &[WorkloadSpec], config: &EngineConfig) -> Vec<RunResult> {
    apps.iter()
        .enumerate()
        .map(|(i, spec)| {
            let cfg = EngineConfig { seed: config.seed + i as u64, ..config.clone() };
            run(SystemKind::Native, spec, &cfg)
        })
        .collect()
}

/// Builds a standalone system for ad-hoc experiments (re-exported for the
/// bench harness).
pub fn standalone(
    system_kind: SystemKind,
    phys_frames: u64,
) -> Box<dyn crate::systems::MemorySystem> {
    build_system(system_kind, phys_frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbi_workloads::bundles::bundle;

    fn quick() -> EngineConfig {
        EngineConfig { accesses: 3_000, warmup: 300, seed: 5, phys_frames: 1 << 20 }
    }

    #[test]
    fn weighted_speedup_of_native_against_itself_is_near_one() {
        let apps = bundle("wl6").unwrap();
        let cfg = quick();
        let alone = run_alone_native(&apps, &cfg);
        let shared = run_bundle("wl6", SystemKind::Native, &apps, &cfg);
        let ws = shared.weighted_speedup(&alone);
        // Quarter memory very mildly perturbs IPC in this model.
        assert!(ws > 0.8 && ws < 1.2, "ws {ws}");
    }

    #[test]
    fn vbi_full_beats_virtual_on_bundles() {
        let apps = bundle("wl3").unwrap(); // contains mcf and GemsFDTD
        let cfg = quick();
        let alone = run_alone_native(&apps, &cfg);
        let vbi = run_bundle("wl3", SystemKind::VbiFull, &apps, &cfg).weighted_speedup(&alone);
        let virt = run_bundle("wl3", SystemKind::Virtual, &apps, &cfg).weighted_speedup(&alone);
        assert!(vbi > virt, "vbi {vbi} vs virtual {virt}");
    }
}
