//! Two-dimensional (nested) page walks for virtualized baselines.
//!
//! In a virtual machine, the guest page table maps gVA→gPA and the host
//! (extended/nested) page table maps gPA→hPA. Serving a TLB miss requires a
//! *two-dimensional* walk: every guest page-table access is itself a guest
//! physical address that must be translated by a full host walk, giving up
//! to `levels * (levels + 1) + levels = 24` memory accesses for 4-level
//! tables (§1) — the dominant overhead of the paper's `Virtual` baselines.
//!
//! A nested TLB caches gPA→hPA translations of recently used guest-table
//! pages (the "2D page walk cache" the paper adds to `Virtual-2M` \[14\]).

use vbi_core::tlb::Tlb;

use crate::alloc::FrameAlloc;
use crate::mmu::{MmuEvents, MmuTranslation, PageWalkCache, TlbHierarchy};
use crate::page_table::{PageSize, PageTable};

/// Statistics for the nested MMU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NestedStats {
    /// Translations requested.
    pub translations: u64,
    /// TLB hits (combined gVA→hPA).
    pub tlb_hits: u64,
    /// Two-dimensional walks performed.
    pub walks: u64,
    /// Total memory accesses issued by 2D walks.
    pub walk_accesses: u64,
    /// Host-walk legs skipped thanks to the nested TLB.
    pub nested_tlb_hits: u64,
}

/// A virtualized MMU: guest and host page tables plus the combined TLB
/// hierarchy — the paper's `Virtual` and `Virtual-2M` baselines.
///
/// # Examples
///
/// ```
/// use vbi_baselines::nested::NestedMmu;
/// use vbi_baselines::page_table::PageSize;
///
/// let mut mmu = NestedMmu::new(PageSize::Kb4, 1 << 20);
/// let cold = mmu.translate(0x5000);
/// // A cold 2D walk costs many more accesses than the native walk's 4.
/// assert!(cold.events.walk_accesses.len() > 4);
/// assert!(mmu.translate(0x5000).events.l1_tlb_hit);
/// ```
#[derive(Debug, Clone)]
pub struct NestedMmu {
    guest_pt: PageTable,
    host_pt: PageTable,
    /// Guest "physical" frame allocator (the emulated physical memory).
    guest_frames: FrameAlloc,
    /// Host physical frame allocator.
    host_frames: FrameAlloc,
    /// Combined gVA→hPA TLBs (what the hardware caches).
    tlbs: TlbHierarchy,
    /// Host-side page-walk cache for host-table interior entries.
    host_pwc: PageWalkCache,
    /// Nested TLB: gPA page → host frame, used for guest-table accesses.
    nested_tlb: Tlb<u64, u64>,
    page_size: PageSize,
    stats: NestedStats,
}

impl NestedMmu {
    /// Creates a virtualized MMU. Guest and host use the same page size
    /// (the paper's `Virtual` uses 4 KiB everywhere, `Virtual-2M` 2 MiB
    /// everywhere).
    pub fn new(page_size: PageSize, phys_frames: u64) -> Self {
        let mut host_frames = FrameAlloc::new(phys_frames);
        let host_pt = PageTable::new(page_size, &mut host_frames);
        // The guest's page tables live in guest-physical memory; the guest
        // sees an emulated physical space as large as host memory.
        let mut guest_frames = FrameAlloc::new(phys_frames);
        let guest_pt = PageTable::new(page_size, &mut guest_frames);
        Self {
            guest_pt,
            host_pt,
            guest_frames,
            host_frames,
            tlbs: TlbHierarchy::new(page_size),
            host_pwc: PageWalkCache::new(),
            nested_tlb: Tlb::fully_associative(32),
            page_size,
            stats: NestedStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> NestedStats {
        self.stats
    }

    /// Translates a gPA to an hPA, appending the host-walk accesses to
    /// `accesses`. Demand-allocates host memory. Uses the nested TLB when
    /// `for_table` (guest-table accesses show high locality).
    fn host_translate(&mut self, gpa: u64, accesses: &mut Vec<u64>, for_table: bool) -> u64 {
        let gpn = gpa >> self.page_size.bits();
        if for_table {
            if let Some(hframe) = self.nested_tlb.lookup(&gpn) {
                self.stats.nested_tlb_hits += 1;
                return (hframe << 12) + (gpa & (self.page_size.bytes() - 1));
            }
        }
        let mut walk = self.host_pt.walk(gpa);
        if walk.frame.is_none() {
            let frame = match self.page_size {
                PageSize::Kb4 => self.host_frames.frame(),
                PageSize::Mb2 => self.host_frames.contiguous(512),
            };
            self.host_pt.map(gpa, frame, &mut self.host_frames);
            walk = self.host_pt.walk(gpa);
        }
        let charged = self.host_pwc.filter(&walk.steps);
        accesses.extend(charged.iter().map(|s| s.entry_addr));
        let hframe = walk.frame.expect("just mapped");
        if for_table {
            self.nested_tlb.insert(gpn, hframe);
        }
        (hframe << 12) + (gpa & (self.page_size.bytes() - 1))
    }

    /// Translates a guest virtual address to a host physical address.
    pub fn translate(&mut self, gva: u64) -> MmuTranslation {
        self.stats.translations += 1;
        let vpn = gva >> self.page_size.bits();
        let offset = gva & (self.page_size.bytes() - 1);

        if let Some((hframe, l1)) = self.tlbs.lookup(vpn) {
            self.stats.tlb_hits += 1;
            return MmuTranslation {
                paddr: (hframe << 12) + offset,
                events: MmuEvents { l1_tlb_hit: l1, l2_tlb_hit: !l1, ..Default::default() },
            };
        }

        // Two-dimensional walk.
        self.stats.walks += 1;
        let mut accesses = Vec::new();

        // Ensure the guest mapping exists (guest demand paging, costless:
        // the guest OS's own bookkeeping is not on the simulated path).
        let mut allocated = false;
        if !self.guest_pt.is_mapped(gva) {
            let gframe = match self.page_size {
                PageSize::Kb4 => self.guest_frames.frame(),
                PageSize::Mb2 => self.guest_frames.contiguous(512),
            };
            self.guest_pt.map(gva, gframe, &mut self.guest_frames);
            allocated = true;
        }

        // Each guest-walk step reads a guest-table entry at a gPA, which
        // first needs a host walk of its own.
        let guest_walk = self.guest_pt.walk(gva);
        for step in &guest_walk.steps {
            let entry_hpa = self.host_translate(step.entry_addr, &mut accesses, true);
            accesses.push(entry_hpa);
        }
        // Finally translate the data gPA through the host table.
        let gpa = (guest_walk.frame.expect("guest mapped above") << 12) + offset;
        let hpa = self.host_translate(gpa, &mut accesses, false);

        self.stats.walk_accesses += accesses.len() as u64;
        self.tlbs.insert(vpn, hpa >> 12);
        MmuTranslation {
            paddr: hpa,
            events: MmuEvents { walk_accesses: accesses, allocated, ..Default::default() },
        }
    }

    /// Flushes all TLBs and walk caches.
    pub fn flush_tlbs(&mut self) {
        self.tlbs.flush();
        self.host_pwc.flush();
        self.nested_tlb.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_2d_walk_costs_up_to_24_accesses() {
        let mut mmu = NestedMmu::new(PageSize::Kb4, 1 << 20);
        let t = mmu.translate(0x7f00_0000);
        // 4 guest steps x (host walk + entry) + final host walk. The very
        // first host walk is cold (4 accesses); later ones are filtered by
        // the host PWC and nested TLB, so the total is between 5 and 24.
        let n = t.events.walk_accesses.len();
        assert!(n >= 9, "cold 2D walk should be expensive, got {n}");
        assert!(n <= 24, "bounded by the 2D maximum, got {n}");
    }

    #[test]
    fn warm_2d_walks_are_cheaper_than_cold() {
        let mut mmu = NestedMmu::new(PageSize::Kb4, 1 << 20);
        let cold = mmu.translate(0x1000_0000).events.walk_accesses.len();
        // A neighbouring page misses the TLB but reuses guest-table pages
        // via the nested TLB and host PWC.
        mmu.tlbs.flush(); // force a walk without clearing walk caches
        let warm = mmu.translate(0x1000_1000).events.walk_accesses.len();
        assert!(warm < cold, "warm {warm} vs cold {cold}");
    }

    #[test]
    fn virtual_walks_cost_more_than_native() {
        let mut nested = NestedMmu::new(PageSize::Kb4, 1 << 20);
        let mut native = crate::mmu::NativeMmu::new(PageSize::Kb4, 1 << 20);
        let n = nested.translate(0x4000_0000).events.walk_accesses.len();
        let m = native.translate(0x4000_0000).events.walk_accesses.len();
        assert!(n > m * 2, "nested {n} vs native {m}");
    }

    #[test]
    fn tlb_hides_the_2d_walk() {
        let mut mmu = NestedMmu::new(PageSize::Kb4, 1 << 20);
        mmu.translate(0x2000);
        let t = mmu.translate(0x2040);
        assert!(t.events.l1_tlb_hit);
        assert!(t.events.walk_accesses.is_empty());
    }

    #[test]
    fn translations_are_stable() {
        let mut mmu = NestedMmu::new(PageSize::Mb2, 1 << 20);
        let a = mmu.translate(0x12_3456);
        mmu.flush_tlbs();
        let b = mmu.translate(0x12_3456);
        assert_eq!(a.paddr, b.paddr);
    }
}
