//! Enigma \[137\]: deferred translation through an intermediate address space.
//!
//! Enigma is the paper's closest prior work (`Enigma-HW-2M` in Figure 7). It
//! assigns each allocation a range of a system-wide unique *intermediate
//! address* (IA) space; caches are indexed by IA, and IA→physical
//! translation is deferred to a centralized translation cache (CTC) at the
//! memory controller. Unlike VBI, the mapping granularity is a fixed page
//! size, translation structures are conventional, and — in the original
//! design — a CTC miss traps to the OS. Following §7.2.2, this
//! implementation models the *enhanced* variant the paper compares against:
//! a 16K-entry CTC with hardware-managed walks and 2 MiB pages.

use vbi_core::tlb::Tlb;

use crate::alloc::FrameAlloc;
use crate::page_table::{PageSize, PageTable};

/// Statistics for an Enigma memory controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnigmaStats {
    /// Translation requests reaching the memory controller (LLC misses).
    pub translations: u64,
    /// CTC hits.
    pub ctc_hits: u64,
    /// Hardware walks of the IA-to-physical table.
    pub walks: u64,
    /// Memory accesses issued by those walks.
    pub walk_accesses: u64,
}

/// Result of an Enigma translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnigmaTranslation {
    /// The physical address.
    pub paddr: u64,
    /// Whether the CTC supplied the mapping.
    pub ctc_hit: bool,
    /// Memory accesses performed by the hardware walk (empty on CTC hits).
    pub walk_accesses: Vec<u64>,
}

/// The Enigma memory controller: CTC + hardware-walked IA-to-physical table.
///
/// Like VBI, Enigma pays no translation cost in front of the caches; its
/// costs appear only at the memory controller. Unlike VBI there is no
/// per-object structure choice: every mapping is a fixed-size page in one
/// conventional multi-level table.
///
/// # Examples
///
/// ```
/// use vbi_baselines::enigma::EnigmaController;
///
/// let mut enigma = EnigmaController::new(1 << 20);
/// let cold = enigma.translate(0x4000_0000);
/// assert!(!cold.ctc_hit);
/// let warm = enigma.translate(0x4000_0040);
/// assert!(warm.ctc_hit);
/// ```
#[derive(Debug, Clone)]
pub struct EnigmaController {
    table: PageTable,
    frames: FrameAlloc,
    ctc: Tlb<u64, u64>,
    page_size: PageSize,
    stats: EnigmaStats,
}

impl EnigmaController {
    /// Creates the `Enigma-HW-2M` configuration: 16K-entry CTC, 2 MiB pages.
    pub fn new(phys_frames: u64) -> Self {
        Self::with_geometry(phys_frames, 16 * 1024, PageSize::Mb2)
    }

    /// Creates a controller with an explicit CTC size and page size.
    pub fn with_geometry(phys_frames: u64, ctc_entries: usize, page_size: PageSize) -> Self {
        let mut frames = FrameAlloc::new(phys_frames);
        let table = PageTable::new(page_size, &mut frames);
        Self {
            table,
            frames,
            ctc: Tlb::new(ctc_entries, 8),
            page_size,
            stats: EnigmaStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> EnigmaStats {
        self.stats
    }

    /// Translates an intermediate address at the memory controller,
    /// demand-allocating physical memory on first touch.
    pub fn translate(&mut self, ia: u64) -> EnigmaTranslation {
        self.stats.translations += 1;
        let ipn = ia >> self.page_size.bits();
        let offset = ia & (self.page_size.bytes() - 1);
        if let Some(frame) = self.ctc.lookup(&ipn) {
            self.stats.ctc_hits += 1;
            return EnigmaTranslation {
                paddr: (frame << 12) + offset,
                ctc_hit: true,
                walk_accesses: Vec::new(),
            };
        }
        self.stats.walks += 1;
        let mut walk = self.table.walk(ia);
        if walk.frame.is_none() {
            let frame = match self.page_size {
                PageSize::Kb4 => self.frames.frame(),
                PageSize::Mb2 => self.frames.contiguous(512),
            };
            self.table.map(ia, frame, &mut self.frames);
            walk = self.table.walk(ia);
        }
        let walk_accesses: Vec<u64> = walk.steps.iter().map(|s| s.entry_addr).collect();
        self.stats.walk_accesses += walk_accesses.len() as u64;
        let frame = walk.frame.expect("just mapped");
        self.ctc.insert(ipn, frame);
        EnigmaTranslation { paddr: (frame << 12) + offset, ctc_hit: false, walk_accesses }
    }
}

/// Allocates system-wide unique intermediate-address ranges to memory
/// objects (Enigma's allocation-time assignment).
#[derive(Debug, Clone, Default)]
pub struct IaSpace {
    next: u64,
}

impl IaSpace {
    /// Creates an empty IA space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns a contiguous IA range of `bytes`, aligned to 2 MiB so large
    /// pages apply.
    pub fn assign(&mut self, bytes: u64) -> u64 {
        let base = self.next.next_multiple_of(2 << 20);
        self.next = base + bytes;
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctc_hits_after_first_walk() {
        let mut e = EnigmaController::new(1 << 20);
        let a = e.translate(0x123_4567);
        assert!(!a.ctc_hit);
        assert_eq!(a.walk_accesses.len(), 3, "2 MiB pages walk three levels");
        let b = e.translate(0x123_4568);
        assert!(b.ctc_hit);
        assert_eq!(b.paddr, a.paddr + 1);
    }

    #[test]
    fn huge_ctc_covers_large_footprints() {
        let mut e = EnigmaController::new(1 << 22);
        // Touch 4 GiB at 2 MiB granularity: 2048 pages, far below 16K CTC
        // entries. Second sweep must be all hits.
        for ia in (0..(4u64 << 30)).step_by(2 << 20) {
            e.translate(ia);
        }
        let walks_after_first = e.stats().walks;
        for ia in (0..(4u64 << 30)).step_by(2 << 20) {
            e.translate(ia);
        }
        assert_eq!(e.stats().walks, walks_after_first);
    }

    #[test]
    fn ia_ranges_never_overlap() {
        let mut space = IaSpace::new();
        let a = space.assign(1000);
        let b = space.assign(5 << 20);
        let c = space.assign(64);
        assert!(a + 1000 <= b);
        assert!(b + (5 << 20) <= c);
        assert_eq!(b % (2 << 20), 0);
    }

    #[test]
    fn distinct_ia_pages_get_distinct_frames() {
        let mut e = EnigmaController::new(1 << 20);
        let a = e.translate(0).paddr;
        let b = e.translate(2 << 20).paddr;
        assert_ne!(a >> 21, b >> 21);
    }
}
