//! x86-64-style multi-level page tables (the baselines' translation
//! structure).
//!
//! A four-level radix tree with 9-bit fanout maps 48-bit virtual addresses
//! at 4 KiB granularity (4 accesses per walk) or 2 MiB granularity (leaf at
//! the third level, 3 accesses per walk). Each node occupies one physical
//! frame so walk accesses carry real physical addresses, allowing them to be
//! played through the cache hierarchy and page-walk caches exactly as the
//! paper's simulator does.

use crate::alloc::FrameAlloc;

/// Baseline page sizes evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageSize {
    /// 4 KiB pages: 4-level walks.
    Kb4,
    /// 2 MiB pages: 3-level walks, 512x TLB reach.
    Mb2,
}

impl PageSize {
    /// log2 of the page size.
    pub const fn bits(self) -> u32 {
        match self {
            PageSize::Kb4 => 12,
            PageSize::Mb2 => 21,
        }
    }

    /// Page size in bytes.
    pub const fn bytes(self) -> u64 {
        1 << self.bits()
    }

    /// Number of table levels in a walk.
    pub const fn walk_levels(self) -> u32 {
        match self {
            PageSize::Kb4 => 4,
            PageSize::Mb2 => 3,
        }
    }

    /// Frames per page.
    pub const fn frames(self) -> u64 {
        self.bytes() >> 12
    }
}

/// One step of a page walk: the table level (0 = root/PML4) and the physical
/// address of the entry read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStep {
    /// Level from the root (0 = PML4).
    pub level: u32,
    /// Physical address of the entry.
    pub entry_addr: u64,
    /// Virtual-address prefix identifying this entry (for page-walk caches).
    pub prefix: u64,
}

/// Result of a page walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PtWalk {
    /// The translated base frame of the page, if mapped.
    pub frame: Option<u64>,
    /// Every step of the walk, root first.
    pub steps: Vec<WalkStep>,
}

#[derive(Debug, Clone)]
struct PtNode {
    addr: u64,
    children: Vec<Option<Box<PtNode>>>,
    leaves: Vec<Option<u64>>,
}

impl PtNode {
    fn new(addr: u64, leaf_level: bool) -> Self {
        if leaf_level {
            Self { addr, children: Vec::new(), leaves: vec![None; 512] }
        } else {
            Self { addr, children: (0..512).map(|_| None).collect(), leaves: Vec::new() }
        }
    }
}

/// A per-process page table.
///
/// # Examples
///
/// ```
/// use vbi_baselines::alloc::FrameAlloc;
/// use vbi_baselines::page_table::{PageSize, PageTable};
///
/// let mut frames = FrameAlloc::new(1 << 20);
/// let mut pt = PageTable::new(PageSize::Kb4, &mut frames);
/// pt.map(0x7fff_0000, 42, &mut frames);
/// let walk = pt.walk(0x7fff_0123);
/// assert_eq!(walk.frame, Some(42));
/// assert_eq!(walk.steps.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    page_size: PageSize,
    root: Box<PtNode>,
}

impl PageTable {
    /// Creates an empty table, allocating the root node.
    pub fn new(page_size: PageSize, frames: &mut FrameAlloc) -> Self {
        let root_frame = frames.frame();
        Self { page_size, root: Box::new(PtNode::new(root_frame << 12, false)) }
    }

    /// The table's page size.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Physical address of the root node (the CR3 value).
    pub fn root_addr(&self) -> u64 {
        self.root.addr
    }

    fn index_at(&self, vaddr: u64, level: u32) -> usize {
        let levels = self.page_size.walk_levels();
        let shift = self.page_size.bits() + 9 * (levels - 1 - level);
        ((vaddr >> shift) & 0x1ff) as usize
    }

    fn prefix_at(&self, vaddr: u64, level: u32) -> u64 {
        let levels = self.page_size.walk_levels();
        let shift = self.page_size.bits() + 9 * (levels - 1 - level);
        vaddr >> shift
    }

    /// Walks the table for `vaddr`, recording every entry touched. A walk of
    /// an unmapped region stops at the missing node.
    pub fn walk(&self, vaddr: u64) -> PtWalk {
        let levels = self.page_size.walk_levels();
        let mut steps = Vec::with_capacity(levels as usize);
        let mut node = self.root.as_ref();
        for level in 0..levels {
            let index = self.index_at(vaddr, level);
            steps.push(WalkStep {
                level,
                entry_addr: node.addr + (index as u64) * 8,
                prefix: self.prefix_at(vaddr, level),
            });
            if level == levels - 1 {
                return PtWalk { frame: node.leaves[index], steps };
            }
            match node.children[index].as_deref() {
                Some(child) => node = child,
                None => return PtWalk { frame: None, steps },
            }
        }
        unreachable!("loop returns at the leaf level")
    }

    /// Maps the page containing `vaddr` to `frame` (a 4 KiB frame number;
    /// for 2 MiB pages it must be 512-frame aligned), allocating interior
    /// nodes on demand.
    ///
    /// # Panics
    ///
    /// Panics if the mapping already exists (double map is an OS-model bug)
    /// or a 2 MiB frame is misaligned.
    pub fn map(&mut self, vaddr: u64, frame: u64, frames: &mut FrameAlloc) {
        if self.page_size == PageSize::Mb2 {
            assert_eq!(frame % 512, 0, "2 MiB pages need 512-frame alignment");
        }
        let levels = self.page_size.walk_levels();
        let indices: Vec<usize> = (0..levels).map(|l| self.index_at(vaddr, l)).collect();
        let mut node = self.root.as_mut();
        for level in 0..levels {
            let index = indices[level as usize];
            if level == levels - 1 {
                assert!(node.leaves[index].is_none(), "double map of {vaddr:#x}");
                node.leaves[index] = Some(frame);
                return;
            }
            if node.children[index].is_none() {
                let addr = frames.frame() << 12;
                node.children[index] = Some(Box::new(PtNode::new(addr, level + 2 == levels)));
            }
            node = node.children[index].as_mut().expect("just ensured");
        }
    }

    /// Whether the page containing `vaddr` is mapped.
    pub fn is_mapped(&self, vaddr: u64) -> bool {
        self.walk(vaddr).frame.is_some()
    }

    /// Translates a full virtual address to a physical address, if mapped.
    pub fn translate(&self, vaddr: u64) -> Option<u64> {
        let frame = self.walk(vaddr).frame?;
        Some((frame << 12) + (vaddr & (self.page_size.bytes() - 1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(size: PageSize) -> (PageTable, FrameAlloc) {
        let mut frames = FrameAlloc::new(1 << 20);
        let pt = PageTable::new(size, &mut frames);
        (pt, frames)
    }

    #[test]
    fn walk_depth_matches_page_size() {
        let (mut pt, mut frames) = setup(PageSize::Kb4);
        pt.map(0, 1, &mut frames);
        assert_eq!(pt.walk(0).steps.len(), 4);

        let (mut pt2, mut frames2) = setup(PageSize::Mb2);
        pt2.map(0, 512, &mut frames2);
        assert_eq!(pt2.walk(0).steps.len(), 3);
    }

    #[test]
    fn translation_adds_page_offset() {
        let (mut pt, mut frames) = setup(PageSize::Kb4);
        pt.map(0x1234_5000, 99, &mut frames);
        assert_eq!(pt.translate(0x1234_5678), Some((99 << 12) + 0x678));
        assert_eq!(pt.translate(0x9999_9999), None);
    }

    #[test]
    fn two_mb_pages_cover_wide_ranges() {
        let (mut pt, mut frames) = setup(PageSize::Mb2);
        pt.map(0x4000_0000, 1024, &mut frames);
        // Every address within the 2 MiB page translates.
        assert_eq!(pt.translate(0x4000_0000), Some(1024 << 12));
        assert_eq!(pt.translate(0x401f_ffff), Some((1024 << 12) + 0x1f_ffff));
        assert!(!pt.is_mapped(0x4020_0000));
    }

    #[test]
    fn unmapped_walks_stop_early() {
        let (pt, _) = setup(PageSize::Kb4);
        let walk = pt.walk(0xdead_beef);
        assert_eq!(walk.frame, None);
        assert_eq!(walk.steps.len(), 1, "nothing below the root exists yet");
    }

    #[test]
    fn sibling_pages_share_interior_nodes() {
        let (mut pt, mut frames) = setup(PageSize::Kb4);
        let before = frames.used();
        pt.map(0x1000, 1, &mut frames);
        let after_first = frames.used();
        pt.map(0x2000, 2, &mut frames);
        assert_eq!(frames.used(), after_first, "same leaf table");
        assert_eq!(after_first - before, 3, "three interior nodes below the root");
    }

    #[test]
    fn steps_have_distinct_physical_addresses() {
        let (mut pt, mut frames) = setup(PageSize::Kb4);
        pt.map(0x7f00_0000_1000, 7, &mut frames);
        let walk = pt.walk(0x7f00_0000_1000);
        let mut addrs: Vec<u64> = walk.steps.iter().map(|s| s.entry_addr).collect();
        addrs.dedup();
        assert_eq!(addrs.len(), 4);
    }

    #[test]
    #[should_panic(expected = "double map")]
    fn double_map_panics() {
        let (mut pt, mut frames) = setup(PageSize::Kb4);
        pt.map(0, 1, &mut frames);
        pt.map(0, 2, &mut frames);
    }
}
