//! # vbi-baselines — conventional virtual-memory baselines
//!
//! The comparison systems of the paper's evaluation (§7.2), built from
//! scratch:
//!
//! * [`page_table`] — x86-64-style 4-level radix tables with 4 KiB or 2 MiB
//!   pages (`Native`, `Native-2M`);
//! * [`mmu`] — the Table 1 TLB hierarchy (64/32-entry FA L1, 512-entry 4-way
//!   L2), a 32-entry page-walk cache, demand paging, and the unrealistic
//!   `Perfect TLB`;
//! * [`nested`] — two-dimensional page walks with a nested TLB (`Virtual`,
//!   `Virtual-2M`);
//! * [`enigma`] — Enigma's intermediate address space with a 16K-entry
//!   centralized translation cache and hardware walks (`Enigma-HW-2M`);
//! * [`alloc`] — first-touch frame allocation shared by all baselines.
//!
//! Each MMU reports, per translation, exactly what the timing simulator
//! needs: which TLB level hit and the physical addresses of every
//! page-table access, so walks can be played through the cache hierarchy
//! and DRAM like any other memory traffic.

pub mod alloc;
pub mod enigma;
pub mod mmu;
pub mod nested;
pub mod page_table;

pub use alloc::FrameAlloc;
pub use enigma::{EnigmaController, IaSpace};
pub use mmu::{MmuEvents, MmuTranslation, NativeMmu, PerfectMmu, L2_TLB_LATENCY};
pub use nested::NestedMmu;
pub use page_table::{PageSize, PageTable};
