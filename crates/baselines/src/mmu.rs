//! The conventional MMU: TLB hierarchy, page-walk cache, and demand paging.
//!
//! Reproduces the translation front end of the paper's `Native` and
//! `Native-2M` baselines with the Table 1 structures: a fully associative
//! 64-entry L1 D-TLB for 4 KiB pages (32-entry for 2 MiB), a 512-entry
//! 4-way L2 TLB, and a 32-entry fully associative page-walk cache that
//! short-circuits the upper levels of the radix walk.

use vbi_core::tlb::Tlb;

use crate::alloc::FrameAlloc;
use crate::page_table::{PageSize, PageTable, WalkStep};

/// Latency charged when the L2 TLB (not the L1) supplies a translation.
pub const L2_TLB_LATENCY: u64 = 7;

/// Timing-relevant events of one baseline translation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MmuEvents {
    /// The L1 TLB supplied the translation (no cost; lookup overlaps L1
    /// cache access).
    pub l1_tlb_hit: bool,
    /// The L2 TLB supplied it (costs [`L2_TLB_LATENCY`]).
    pub l2_tlb_hit: bool,
    /// Physical addresses of page-table entries the walker had to read
    /// (empty on TLB hits; shortened by page-walk-cache hits).
    pub walk_accesses: Vec<u64>,
    /// A page was allocated on demand (first touch).
    pub allocated: bool,
}

/// Result of one baseline translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MmuTranslation {
    /// The physical address.
    pub paddr: u64,
    /// What it cost.
    pub events: MmuEvents,
}

/// The two-level TLB hierarchy of Table 1.
#[derive(Debug, Clone)]
pub struct TlbHierarchy {
    l1: Tlb<u64, u64>,
    l2: Tlb<u64, u64>,
}

impl TlbHierarchy {
    /// Builds the hierarchy for a page size (L1 capacity differs, Table 1).
    pub fn new(page_size: PageSize) -> Self {
        let l1_entries = match page_size {
            PageSize::Kb4 => 64,
            PageSize::Mb2 => 32,
        };
        Self { l1: Tlb::fully_associative(l1_entries), l2: Tlb::new(512, 4) }
    }

    /// Looks up a virtual page number. Returns the frame and which level
    /// hit.
    pub fn lookup(&mut self, vpn: u64) -> Option<(u64, bool)> {
        if let Some(frame) = self.l1.lookup(&vpn) {
            return Some((frame, true));
        }
        if let Some(frame) = self.l2.lookup(&vpn) {
            // Fill upward.
            self.l1.insert(vpn, frame);
            return Some((frame, false));
        }
        None
    }

    /// Installs a translation in both levels.
    pub fn insert(&mut self, vpn: u64, frame: u64) {
        self.l1.insert(vpn, frame);
        self.l2.insert(vpn, frame);
    }

    /// Drops everything (context switch between workloads).
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }

    /// `(l1_misses, l2_misses)` counters.
    pub fn miss_counts(&self) -> (u64, u64) {
        (self.l1.stats().misses, self.l2.stats().misses)
    }
}

/// The 32-entry fully associative page-walk cache (Table 1), caching
/// interior page-table entries keyed by `(level, va-prefix)`.
#[derive(Debug, Clone)]
pub struct PageWalkCache {
    cache: Tlb<(u32, u64), ()>,
}

impl PageWalkCache {
    /// Creates the Table 1 configuration.
    pub fn new() -> Self {
        Self { cache: Tlb::fully_associative(32) }
    }

    /// Given the full walk path (root first), returns the steps that must
    /// actually access memory — everything below the deepest cached interior
    /// entry — and caches the interior entries of the path.
    pub fn filter<'a>(&mut self, steps: &'a [WalkStep]) -> &'a [WalkStep] {
        let interior = steps.len().saturating_sub(1);
        // Find the deepest interior step already cached.
        let mut start = 0;
        for (i, step) in steps[..interior].iter().enumerate().rev() {
            if self.cache.lookup(&(step.level, step.prefix)).is_some() {
                start = i + 1;
                break;
            }
        }
        for step in &steps[..interior] {
            self.cache.insert((step.level, step.prefix), ());
        }
        &steps[start..]
    }

    /// Drops everything.
    pub fn flush(&mut self) {
        self.cache.flush();
    }
}

impl Default for PageWalkCache {
    fn default() -> Self {
        Self::new()
    }
}

/// The complete conventional MMU with demand paging: the paper's `Native`
/// (4 KiB) and `Native-2M` baselines.
///
/// # Examples
///
/// ```
/// use vbi_baselines::mmu::NativeMmu;
/// use vbi_baselines::page_table::PageSize;
///
/// let mut mmu = NativeMmu::new(PageSize::Kb4, 1 << 20);
/// let first = mmu.translate(0x1000);
/// assert!(first.events.allocated);
/// assert_eq!(first.events.walk_accesses.len(), 4);
/// let second = mmu.translate(0x1008);
/// assert!(second.events.l1_tlb_hit);
/// assert_eq!(second.paddr, first.paddr + 8);
/// ```
#[derive(Debug, Clone)]
pub struct NativeMmu {
    page_table: PageTable,
    tlbs: TlbHierarchy,
    pwc: PageWalkCache,
    frames: FrameAlloc,
    page_size: PageSize,
    stats: MmuStats,
}

/// Aggregate MMU statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmuStats {
    /// Translations requested.
    pub translations: u64,
    /// L1 TLB hits.
    pub l1_hits: u64,
    /// L2 TLB hits.
    pub l2_hits: u64,
    /// Full or partial walks performed.
    pub walks: u64,
    /// Page-table entry reads issued by walks.
    pub walk_accesses: u64,
    /// Pages allocated on demand.
    pub pages_allocated: u64,
}

impl NativeMmu {
    /// Creates an MMU with an empty address space over `phys_frames` frames.
    pub fn new(page_size: PageSize, phys_frames: u64) -> Self {
        let mut frames = FrameAlloc::new(phys_frames);
        let page_table = PageTable::new(page_size, &mut frames);
        Self {
            page_table,
            tlbs: TlbHierarchy::new(page_size),
            pwc: PageWalkCache::new(),
            frames,
            page_size,
            stats: MmuStats::default(),
        }
    }

    /// The configured page size.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MmuStats {
        self.stats
    }

    /// Translates a virtual address, allocating the page on first touch
    /// (demand paging).
    pub fn translate(&mut self, vaddr: u64) -> MmuTranslation {
        self.stats.translations += 1;
        let vpn = vaddr >> self.page_size.bits();
        let offset = vaddr & (self.page_size.bytes() - 1);

        if let Some((frame, l1)) = self.tlbs.lookup(vpn) {
            if l1 {
                self.stats.l1_hits += 1;
            } else {
                self.stats.l2_hits += 1;
            }
            return MmuTranslation {
                paddr: (frame << 12) + offset,
                events: MmuEvents { l1_tlb_hit: l1, l2_tlb_hit: !l1, ..Default::default() },
            };
        }

        // TLB miss: walk, demand-allocating if needed.
        self.stats.walks += 1;
        let mut walk = self.page_table.walk(vaddr);
        let mut allocated = false;
        if walk.frame.is_none() {
            let frame = match self.page_size {
                PageSize::Kb4 => self.frames.frame(),
                PageSize::Mb2 => self.frames.contiguous(512),
            };
            self.page_table.map(vaddr, frame, &mut self.frames);
            self.stats.pages_allocated += 1;
            allocated = true;
            walk = self.page_table.walk(vaddr);
        }
        let frame = walk.frame.expect("just mapped");
        let charged = self.pwc.filter(&walk.steps);
        let walk_accesses: Vec<u64> = charged.iter().map(|s| s.entry_addr).collect();
        self.stats.walk_accesses += walk_accesses.len() as u64;
        self.tlbs.insert(vpn, frame);
        MmuTranslation {
            paddr: (frame << 12) + offset,
            events: MmuEvents { walk_accesses, allocated, ..Default::default() },
        }
    }

    /// Flushes TLBs and the PWC (context switch between benchmark runs).
    pub fn flush_tlbs(&mut self) {
        self.tlbs.flush();
        self.pwc.flush();
    }
}

/// The unrealistic `Perfect TLB` comparison point: translation is free and
/// always hits; pages are still demand-allocated so physical layout matches
/// the other baselines.
#[derive(Debug, Clone)]
pub struct PerfectMmu {
    inner: NativeMmu,
}

impl PerfectMmu {
    /// Creates a perfect-TLB MMU over `phys_frames` frames.
    pub fn new(phys_frames: u64) -> Self {
        Self { inner: NativeMmu::new(PageSize::Kb4, phys_frames) }
    }

    /// Translates with zero translation cost.
    pub fn translate(&mut self, vaddr: u64) -> u64 {
        // Use the page table directly; no TLB or walk costs are reported.
        if let Some(paddr) = self.inner.page_table.translate(vaddr) {
            return paddr;
        }
        let frame = self.inner.frames.frame();
        self.inner.page_table.map(vaddr, frame, &mut self.inner.frames);
        (frame << 12) + (vaddr & 0xfff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_walks_four_levels() {
        let mut mmu = NativeMmu::new(PageSize::Kb4, 1 << 20);
        let t = mmu.translate(0x7000_0000);
        assert_eq!(t.events.walk_accesses.len(), 4);
        assert!(t.events.allocated);
        assert!(!t.events.l1_tlb_hit);
    }

    #[test]
    fn two_mb_walks_are_shorter() {
        let mut mmu = NativeMmu::new(PageSize::Mb2, 1 << 20);
        let t = mmu.translate(0x7000_0000);
        assert_eq!(t.events.walk_accesses.len(), 3);
    }

    #[test]
    fn tlb_hit_after_walk() {
        let mut mmu = NativeMmu::new(PageSize::Kb4, 1 << 20);
        mmu.translate(0x1000);
        let t = mmu.translate(0x1800);
        assert!(t.events.l1_tlb_hit);
        assert!(t.events.walk_accesses.is_empty());
        assert_eq!(mmu.stats().l1_hits, 1);
    }

    #[test]
    fn l2_tlb_catches_l1_evictions() {
        let mut mmu = NativeMmu::new(PageSize::Kb4, 1 << 20);
        // Touch 65 pages: page 0 falls out of the 64-entry L1 but stays in
        // the 512-entry L2.
        for page in 0..65u64 {
            mmu.translate(page << 12);
        }
        let t = mmu.translate(0);
        assert!(t.events.l2_tlb_hit, "L2 should catch it");
    }

    #[test]
    fn pwc_shortens_neighbouring_walks() {
        let mut mmu = NativeMmu::new(PageSize::Kb4, 1 << 20);
        mmu.translate(0x0000); // full walk, fills the PWC
                               // Evict page 1's translation from the TLBs? It was never inserted;
                               // page 1 is a fresh page in the same leaf table.
        let t = mmu.translate(0x1000);
        assert_eq!(t.events.walk_accesses.len(), 1, "PWC skips the three interior levels");
    }

    #[test]
    fn two_mb_reach_is_512x() {
        let mut mmu4 = NativeMmu::new(PageSize::Kb4, 1 << 20);
        let mut mmu2 = NativeMmu::new(PageSize::Mb2, 1 << 20);
        // Stride through 16 MiB; count walks.
        for addr in (0..(16 << 20)).step_by(4096) {
            mmu4.translate(addr);
            mmu2.translate(addr);
        }
        assert_eq!(mmu2.stats().pages_allocated, 8);
        assert_eq!(mmu4.stats().pages_allocated, 4096);
        assert!(mmu2.stats().walks < mmu4.stats().walks / 100);
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut mmu = NativeMmu::new(PageSize::Kb4, 1 << 20);
        let a = mmu.translate(0x1000).paddr;
        let b = mmu.translate(0x2000).paddr;
        assert_ne!(a >> 12, b >> 12);
    }

    #[test]
    fn perfect_mmu_translates_consistently() {
        let mut mmu = PerfectMmu::new(1 << 20);
        let a = mmu.translate(0x1234);
        let b = mmu.translate(0x1234);
        assert_eq!(a, b);
        let c = mmu.translate(0x2234);
        assert_ne!(a >> 12, c >> 12);
    }

    #[test]
    fn flush_forces_a_rewalk() {
        let mut mmu = NativeMmu::new(PageSize::Kb4, 1 << 20);
        mmu.translate(0x1000);
        mmu.flush_tlbs();
        let t = mmu.translate(0x1000);
        assert!(!t.events.l1_tlb_hit && !t.events.l2_tlb_hit);
        assert!(!t.events.walk_accesses.is_empty());
    }
}
