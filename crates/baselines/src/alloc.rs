//! Physical-frame allocation for the baseline (conventional) systems.
//!
//! Baseline OSes in the evaluation allocate physical memory on first touch
//! (demand paging). A bump allocator reproduces the allocation order of a
//! freshly booted machine, which is what matters for row-buffer locality;
//! fragmentation effects are exercised separately by the VBI buddy
//! allocator.

/// Bump allocator over 4 KiB frames.
#[derive(Debug, Clone)]
pub struct FrameAlloc {
    next: u64,
    limit: u64,
}

impl FrameAlloc {
    /// Creates an allocator over `frames` 4 KiB frames.
    pub fn new(frames: u64) -> Self {
        Self { next: 0, limit: frames }
    }

    /// Allocates one frame, returning its frame number.
    ///
    /// # Panics
    ///
    /// Panics when physical memory is exhausted — baseline simulations are
    /// sized so that footprints fit, and exceeding that is a harness bug.
    pub fn frame(&mut self) -> u64 {
        assert!(self.next < self.limit, "baseline physical memory exhausted");
        let f = self.next;
        self.next += 1;
        f
    }

    /// Allocates `n` contiguous frames (e.g. a 2 MiB page = 512 frames),
    /// aligned to `n`.
    ///
    /// # Panics
    ///
    /// Panics when physical memory is exhausted.
    pub fn contiguous(&mut self, n: u64) -> u64 {
        let start = self.next.next_multiple_of(n);
        assert!(start + n <= self.limit, "baseline physical memory exhausted");
        self.next = start + n;
        start
    }

    /// Frames handed out so far (including alignment holes).
    pub fn used(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_sequential() {
        let mut a = FrameAlloc::new(10);
        assert_eq!(a.frame(), 0);
        assert_eq!(a.frame(), 1);
        assert_eq!(a.used(), 2);
    }

    #[test]
    fn contiguous_is_aligned() {
        let mut a = FrameAlloc::new(4096);
        a.frame();
        let big = a.contiguous(512);
        assert_eq!(big % 512, 0);
        assert_eq!(a.frame(), big + 512);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut a = FrameAlloc::new(1);
        a.frame();
        a.frame();
    }
}
