//! OS model: process lifetimes on top of VBI (§3.4, §4.4).
//!
//! The OS under VBI no longer manages page tables or physical memory; it
//! keeps exactly two duties: *protection* (which client may attach to which
//! VB) and *policy* (loading binaries, forking, shared libraries,
//! memory-mapped files). This module implements those duties against
//! [`System`], holding one [`ClientSession`] per process (plus its own
//! privileged session for loading):
//!
//! * **Process creation** — one VB per binary section, loaded by the OS
//!   attaching itself with write permission, copying, and detaching.
//! * **Shared libraries** — library code lives in one VB shared by all
//!   processes; per-process static data sits at CVT index `code + 1`, so
//!   library code addresses it with `+1` CVT-relative addressing and no
//!   load-time relocation.
//! * **Fork** — the child's CVT mirrors the parent's indices (pointers stay
//!   valid); private VBs are cloned copy-on-write with `clone_vb`.
//! * **Heap** — `malloc`/`free` manage offsets inside a data VB; when a VB
//!   fills up, the OS transparently promotes it to the next size class.
//! * **Memory-mapped files** — a file is associated with a VB of its size;
//!   offsets map 1:1 (§3.4).

use std::collections::HashMap;

use crate::client::{ClientId, VirtualAddress};
use crate::error::{Result, VbiError};
use crate::perm::Rwx;
use crate::phys::FRAME_BYTES;
use crate::session::ClientSession;
use crate::system::{System, VbHandle};
use crate::vb::VbProperties;

/// A process ID in the OS model (distinct from the hardware client ID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

/// The kind of a binary section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// Executable code (mapped execute-only).
    Code,
    /// Read-only static data.
    RoData,
    /// Writable static data.
    Data,
}

impl SectionKind {
    fn perms(self) -> Rwx {
        match self {
            SectionKind::Code => Rwx::READ_EXECUTE,
            SectionKind::RoData => Rwx::READ,
            SectionKind::Data => Rwx::READ_WRITE,
        }
    }

    fn props(self) -> VbProperties {
        match self {
            SectionKind::Code => VbProperties::CODE | VbProperties::READ_ONLY,
            SectionKind::RoData => VbProperties::READ_ONLY,
            SectionKind::Data => VbProperties::NONE,
        }
    }
}

/// One section of a binary image.
#[derive(Debug, Clone)]
pub struct Section {
    /// Section kind, which determines permissions and properties.
    pub kind: SectionKind,
    /// Raw contents copied into the section's VB at load time.
    pub contents: Vec<u8>,
}

/// A loadable binary: a name plus its sections.
#[derive(Debug, Clone)]
pub struct BinaryImage {
    /// Program name (diagnostic only).
    pub name: String,
    /// Sections, loaded in order; the CVT indices of a process's sections
    /// follow this order.
    pub sections: Vec<Section>,
}

/// A shared library registered with the OS: shared code plus a template for
/// each process's private static data.
#[derive(Debug, Clone)]
pub struct LibraryImage {
    /// Library name used by processes to request linking.
    pub name: String,
    /// Executable code, loaded once and shared.
    pub code: Vec<u8>,
    /// Per-process static data template, copied into a fresh VB per process.
    pub static_data: Vec<u8>,
}

#[derive(Debug, Clone)]
struct HeapState {
    /// Bump pointer within the VB.
    brk: u64,
    /// Recycled blocks: offset -> size.
    free_list: Vec<(u64, u64)>,
}

/// Per-process bookkeeping.
#[derive(Debug, Clone)]
pub struct Process {
    pid: Pid,
    session: ClientSession<System>,
    name: String,
    /// Section handles in binary order.
    sections: Vec<VbHandle>,
    /// CVT indices of VBs shared with other processes (library code, shared
    /// memory) — fork must not clone these.
    shared_indices: Vec<usize>,
    /// Heap allocator state per heap VB (keyed by CVT index).
    heaps: HashMap<usize, HeapState>,
}

impl Process {
    /// The process ID.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The process's session — its memory API surface.
    pub fn session(&self) -> &ClientSession<System> {
        &self.session
    }

    /// The hardware client ID backing this process (op plumbing).
    pub fn client(&self) -> ClientId {
        self.session.id()
    }

    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Section handles, in binary order.
    pub fn sections(&self) -> &[VbHandle] {
        &self.sections
    }
}

/// Result of a `malloc`: the virtual address of the block. If the allocation
/// forced a VB promotion, `promoted` carries the new handle (the CVT index —
/// and hence all existing pointers — is unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Address of the first byte of the block.
    pub address: VirtualAddress,
    /// Size of the block.
    pub size: u64,
    /// Set when the containing VB was promoted to satisfy this request.
    pub promoted: Option<VbHandle>,
}

/// The OS model.
///
/// # Examples
///
/// ```
/// use vbi_core::os::{BinaryImage, Os, Section, SectionKind};
/// use vbi_core::VbiConfig;
///
/// # fn main() -> Result<(), vbi_core::VbiError> {
/// let mut os = Os::new(VbiConfig::vbi_full());
/// let image = BinaryImage {
///     name: "hello".into(),
///     sections: vec![Section { kind: SectionKind::Code, contents: vec![0x90; 64] }],
/// };
/// let pid = os.create_process(&image)?;
/// let code = os.process(pid)?.sections()[0];
/// assert_eq!(os.process(pid)?.session().fetch(code.at(0))?, 0x90);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Os {
    system: System,
    os_session: ClientSession<System>,
    processes: HashMap<Pid, Process>,
    libraries: HashMap<String, (LibraryImage, VbHandle)>,
    next_pid: u32,
}

impl Os {
    /// Boots the OS model: creates the system and the OS's own client (the
    /// privileged session used for loading).
    ///
    /// # Panics
    ///
    /// Panics if the OS client cannot be created (impossible on a fresh
    /// system).
    pub fn new(config: crate::config::VbiConfig) -> Self {
        let system = System::new(config);
        let os_session = system.create_client().expect("fresh system has client IDs");
        Self {
            system,
            os_session,
            processes: HashMap::new(),
            libraries: HashMap::new(),
            next_pid: 1,
        }
    }

    /// The underlying system (for inspection and direct MTL access).
    pub fn system(&self) -> &System {
        &self.system
    }

    /// The OS's own privileged session.
    pub fn os_session(&self) -> &ClientSession<System> {
        &self.os_session
    }

    /// The OS's own client ID.
    pub fn os_client(&self) -> ClientId {
        self.os_session.id()
    }

    /// Looks up a live process.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::InvalidClient`] for unknown PIDs.
    pub fn process(&self, pid: Pid) -> Result<&Process> {
        self.processes.get(&pid).ok_or(VbiError::InvalidClient(ClientId(pid.0 as u16)))
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Loads contents into a freshly enabled VB using the paper's loading
    /// protocol: the OS attaches itself with write permission, copies, and
    /// detaches (§4.4, "Process Creation").
    fn load_vb(&mut self, bytes: u64, props: VbProperties, contents: &[u8]) -> Result<VbHandle> {
        let handle = self.os_session.request_vb(bytes, props, Rwx::READ_WRITE)?;
        self.os_session.store_bytes(handle.at(0), contents)?;
        // Detach the OS but keep the VB enabled for the target process: the
        // OS detach would drop the refcount to zero, so the caller attaches
        // the process first.
        Ok(handle)
    }

    fn os_detach(&mut self, handle: VbHandle) -> Result<()> {
        self.os_session.detach(handle.vbuid)?;
        Ok(())
    }

    /// Creates a process from a binary image (§4.4): one VB per section,
    /// loaded by the OS and attached to the new client with section-specific
    /// permissions.
    ///
    /// # Errors
    ///
    /// Any allocation, attach, or load error.
    pub fn create_process(&mut self, image: &BinaryImage) -> Result<Pid> {
        let session = self.system.create_client()?;
        let pid = Pid(self.next_pid);
        self.next_pid += 1;

        let mut sections = Vec::with_capacity(image.sections.len());
        for section in &image.sections {
            let bytes = (section.contents.len() as u64).max(1);
            let loaded = self.load_vb(bytes, section.kind.props(), &section.contents)?;
            let index = session.attach(loaded.vbuid, section.kind.perms())?;
            self.os_detach(loaded)?;
            sections.push(VbHandle { cvt_index: index, vbuid: loaded.vbuid });
        }

        self.processes.insert(
            pid,
            Process {
                pid,
                session,
                name: image.name.clone(),
                sections,
                shared_indices: Vec::new(),
                heaps: HashMap::new(),
            },
        );
        Ok(pid)
    }

    /// Destroys a process (§4.4): detaches all VBs (disabling those whose
    /// reference count reaches zero) and frees the client ID.
    ///
    /// # Errors
    ///
    /// [`VbiError::InvalidClient`] for unknown PIDs.
    pub fn destroy_process(&mut self, pid: Pid) -> Result<()> {
        let process =
            self.processes.remove(&pid).ok_or(VbiError::InvalidClient(ClientId(pid.0 as u16)))?;
        process.session.destroy()
    }

    /// Registers a shared library: its code is loaded once into a shared VB.
    ///
    /// # Errors
    ///
    /// Any allocation or load error.
    pub fn register_library(&mut self, library: LibraryImage) -> Result<()> {
        let bytes = (library.code.len() as u64).max(1);
        let handle =
            self.load_vb(bytes, VbProperties::CODE | VbProperties::READ_ONLY, &library.code)?;
        // The OS keeps its attachment so the library VB stays referenced
        // even when no process currently links it.
        self.libraries.insert(library.name.clone(), (library, handle));
        Ok(())
    }

    /// Links a registered library into a process (§4.4, "Shared Libraries"):
    /// attaches the shared code VB and places a fresh per-process static-data
    /// VB at the *next* CVT index, enabling `+1` CVT-relative addressing.
    /// Returns the handle of the library code VB in this process.
    ///
    /// # Errors
    ///
    /// [`VbiError::SwapFailure`] (reused as "unknown library") if the library
    /// was never registered, plus any attach error.
    pub fn link_library(&mut self, pid: Pid, name: &str) -> Result<VbHandle> {
        let (library, shared) = self
            .libraries
            .get(name)
            .map(|(l, h)| (l.clone(), *h))
            .ok_or(VbiError::SwapFailure { reason: "unknown library" })?;
        let session = self.process(pid)?.session().clone();

        // Attach the shared code VB.
        let code_index = session.attach(shared.vbuid, Rwx::READ_EXECUTE)?;
        // The very next CVT index receives the private static data.
        let data_bytes = (library.static_data.len() as u64).max(1);
        let data = self.load_vb(data_bytes, VbProperties::LIBRARY_DATA, &library.static_data)?;
        session.attach_at(code_index + 1, data.vbuid, Rwx::READ_WRITE)?;
        self.os_detach(data)?;

        let process = self.processes.get_mut(&pid).expect("checked above");
        process.shared_indices.push(code_index);
        Ok(VbHandle { cvt_index: code_index, vbuid: shared.vbuid })
    }

    /// Forks a process (§4.4): the child's CVT mirrors the parent's indices;
    /// shared VBs are re-attached, private VBs are cloned copy-on-write via
    /// `clone_vb`. Returns the child PID.
    ///
    /// # Errors
    ///
    /// Any clone, enable, or attach error.
    pub fn fork(&mut self, pid: Pid) -> Result<Pid> {
        let parent = self.process(pid)?.clone();
        let child = self.system.create_client()?;
        let child_pid = Pid(self.next_pid);
        self.next_pid += 1;

        let entries: Vec<(usize, crate::addr::Vbuid, Rwx)> = self
            .system
            .cvt(parent.client())?
            .iter()
            .map(|(i, e)| (i, e.vbuid(), e.permissions()))
            .collect();

        let mut child_sections = Vec::new();
        for (index, vbuid, perms) in entries {
            // Only the library-code VBs themselves are shared; the private
            // static-data VBs at `code index + 1` are cloned like any other
            // private VB.
            let is_shared = parent.shared_indices.contains(&index);
            if is_shared {
                // Shared VB (library code): both processes attach to the
                // same VB at the same index.
                child.attach_at(index, vbuid, perms)?;
            } else {
                // Private VB: enable a clone of the same size class and
                // attach it at the same index so pointers stay valid.
                let clone = self.system.mtl().find_free_vb(vbuid.size_class())?;
                let props = self.system.mtl().props(vbuid)?;
                self.system.mtl_mut().enable_vb(clone, props)?;
                self.system.mtl_mut().clone_vb(vbuid, clone)?;
                child.attach_at(index, clone, perms)?;
                if parent.sections.iter().any(|s| s.cvt_index == index) {
                    child_sections.push(VbHandle { cvt_index: index, vbuid: clone });
                }
            }
        }

        self.processes.insert(
            child_pid,
            Process {
                pid: child_pid,
                session: child,
                name: parent.name.clone(),
                sections: child_sections,
                shared_indices: parent.shared_indices.clone(),
                heaps: parent.heaps.clone(),
            },
        );
        Ok(child_pid)
    }

    /// Creates a heap VB for a process: the target of subsequent
    /// [`Os::malloc`]/[`Os::free`] calls.
    ///
    /// # Errors
    ///
    /// Any allocation error.
    pub fn create_heap(&mut self, pid: Pid, bytes: u64, props: VbProperties) -> Result<VbHandle> {
        let handle = self.process(pid)?.session().request_vb(bytes, props, Rwx::READ_WRITE)?;
        let process = self.processes.get_mut(&pid).expect("checked above");
        process.heaps.insert(handle.cvt_index, HeapState { brk: 0, free_list: Vec::new() });
        Ok(handle)
    }

    /// `malloc(index, size)` (§4.2.1): allocates `size` bytes inside the heap
    /// VB at CVT index `heap`. If the VB is full, the OS transparently
    /// promotes it to the next size class (§4.4, "VB Promotion") — existing
    /// pointers remain valid because the CVT index is unchanged.
    ///
    /// # Errors
    ///
    /// [`VbiError::InvalidCvtIndex`] for a non-heap index, or promotion
    /// errors when the VB is at the largest class.
    pub fn malloc(&mut self, pid: Pid, heap: usize, size: u64) -> Result<Allocation> {
        let session = self.process(pid)?.session().clone();
        let client = session.id();
        let vb_size = self.system.cvt(client)?.entry(heap)?.vbuid().bytes();
        let size = size.max(8).next_multiple_of(8);

        let process = self.processes.get_mut(&pid).expect("checked above");
        let state = process
            .heaps
            .get_mut(&heap)
            .ok_or(VbiError::InvalidCvtIndex { client, index: heap })?;

        // First fit from the free list.
        if let Some(pos) = state.free_list.iter().position(|(_, s)| *s >= size) {
            let (offset, block) = state.free_list.remove(pos);
            if block > size {
                state.free_list.push((offset + size, block - size));
            }
            return Ok(Allocation {
                address: VirtualAddress::new(heap, offset),
                size,
                promoted: None,
            });
        }

        // Bump allocation, promoting as needed.
        if state.brk + size <= vb_size {
            let offset = state.brk;
            state.brk += size;
            return Ok(Allocation {
                address: VirtualAddress::new(heap, offset),
                size,
                promoted: None,
            });
        }

        // Out of space: promote, then retry the bump.
        let promoted = session.promote(heap)?;
        let process = self.processes.get_mut(&pid).expect("still live");
        let state = process.heaps.get_mut(&heap).expect("still a heap");
        let offset = state.brk;
        state.brk += size;
        if offset + size > promoted.vbuid.bytes() {
            return Err(VbiError::OutOfPhysicalMemory);
        }
        Ok(Allocation {
            address: VirtualAddress::new(heap, offset),
            size,
            promoted: Some(promoted),
        })
    }

    /// `free(index, ptr, size)`: returns a block to the heap's free list.
    ///
    /// # Errors
    ///
    /// [`VbiError::InvalidCvtIndex`] for a non-heap index.
    pub fn free(&mut self, pid: Pid, allocation: Allocation) -> Result<()> {
        let client = self.process(pid)?.client();
        let heap = allocation.address.cvt_index();
        let process = self.processes.get_mut(&pid).expect("checked above");
        let state = process
            .heaps
            .get_mut(&heap)
            .ok_or(VbiError::InvalidCvtIndex { client, index: heap })?;
        state.free_list.push((allocation.address.offset(), allocation.size));
        Ok(())
    }

    /// Maps a file into a process (§3.4, "Memory-Mapped Files"): a VB of the
    /// file's size is enabled, the file's pages are bound as swapped-out
    /// contents, and offsets within the VB map 1:1 to file offsets.
    ///
    /// # Errors
    ///
    /// Any allocation or attach error.
    pub fn mmap_file(&mut self, pid: Pid, contents: &[u8], perms: Rwx) -> Result<VbHandle> {
        let handle = self.process(pid)?.session().request_vb(
            (contents.len() as u64).max(1),
            VbProperties::FILE_BACKED,
            perms,
        )?;
        let pages = contents.chunks(FRAME_BYTES as usize).enumerate().map(|(i, chunk)| {
            let mut page = Box::new([0u8; FRAME_BYTES as usize]);
            page[..chunk.len()].copy_from_slice(chunk);
            (i as u64, page)
        });
        self.system.mtl_mut().bind_file(handle.vbuid, pages)?;
        Ok(handle)
    }

    /// Shares an existing VB with another process (pipes / shared memory,
    /// §3.4 "True Sharing"). Returns the CVT index in the target process.
    ///
    /// # Errors
    ///
    /// Any attach error.
    pub fn share_vb(&mut self, from: Pid, handle: VbHandle, to: Pid, perms: Rwx) -> Result<usize> {
        let _ = self.process(from)?;
        let index = self.process(to)?.session().attach(handle.vbuid, perms)?;
        let process = self.processes.get_mut(&to).expect("checked above");
        process.shared_indices.push(index);
        Ok(index)
    }
}

/// Helper: how many 4 KiB pages a byte count spans.
pub fn pages_for(bytes: u64) -> u64 {
    bytes.div_ceil(FRAME_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::SizeClass;
    use crate::config::VbiConfig;

    fn os() -> Os {
        Os::new(VbiConfig { phys_frames: 8192, ..VbiConfig::vbi_full() })
    }

    fn trivial_image(name: &str) -> BinaryImage {
        BinaryImage {
            name: name.into(),
            sections: vec![
                Section { kind: SectionKind::Code, contents: vec![0xc3; 128] },
                Section { kind: SectionKind::Data, contents: vec![1, 2, 3, 4] },
            ],
        }
    }

    #[test]
    fn process_creation_loads_sections() {
        let mut os = os();
        let pid = os.create_process(&trivial_image("a.out")).unwrap();
        let process = os.process(pid).unwrap();
        let session = process.session().clone();
        let code = process.sections()[0];
        let data = process.sections()[1];
        assert_eq!(session.fetch(code.at(0)).unwrap(), 0xc3);
        assert_eq!(session.load_u8(data.at(2)).unwrap(), 3);
        // Code is not writable by the process.
        assert!(matches!(session.store_u8(code.at(0), 0), Err(VbiError::PermissionDenied { .. })));
    }

    #[test]
    fn kernel_data_is_protected_from_processes() {
        let mut os = os();
        // The OS keeps a private VB.
        let secret =
            os.os_session().request_vb(4096, VbProperties::KERNEL, Rwx::READ_WRITE).unwrap();
        os.os_session().store_u64(secret.at(0), 0x5ec3e7).unwrap();

        let pid = os.create_process(&trivial_image("attacker")).unwrap();
        let session = os.process(pid).unwrap().session().clone();
        // The process has no CVT entry for the kernel VB; its own indices
        // do not reach it.
        for index in 0..8 {
            let va = VirtualAddress::new(index, 0);
            if let Ok(value) = session.load_u64(va) {
                assert_ne!(value, 0x5ec3e7);
            }
        }
    }

    #[test]
    fn destroy_process_releases_memory() {
        let mut os = os();
        let free0 = os.system().mtl().free_frames();
        let pid = os.create_process(&trivial_image("tmp")).unwrap();
        let heap = os.create_heap(pid, 64 << 10, VbProperties::NONE).unwrap();
        os.process(pid).unwrap().session().store_u64(heap.at(0), 1).unwrap();
        os.destroy_process(pid).unwrap();
        assert_eq!(os.system().mtl().free_frames(), free0);
        assert_eq!(os.process_count(), 0);
    }

    #[test]
    fn shared_library_uses_plus_one_addressing() {
        let mut os = os();
        os.register_library(LibraryImage {
            name: "libm".into(),
            code: vec![0xaa; 64],
            static_data: vec![7, 7, 7, 7],
        })
        .unwrap();

        let p1 = os.create_process(&trivial_image("one")).unwrap();
        let p2 = os.create_process(&trivial_image("two")).unwrap();
        let lib1 = os.link_library(p1, "libm").unwrap();
        let lib2 = os.link_library(p2, "libm").unwrap();

        // Both processes share the same code VB...
        assert_eq!(lib1.vbuid, lib2.vbuid);

        // ...and each reaches its own static data at code index + 1.
        let s1 = os.process(p1).unwrap().session().clone();
        let s2 = os.process(p2).unwrap().session().clone();
        let data1 = lib1.at(0).cvt_relative(1);
        let data2 = lib2.at(0).cvt_relative(1);
        s1.store_u8(data1, 0x11).unwrap();
        s2.store_u8(data2, 0x22).unwrap();
        assert_eq!(s1.load_u8(data1).unwrap(), 0x11);
        assert_eq!(s2.load_u8(data2).unwrap(), 0x22);
    }

    #[test]
    fn fork_clones_private_memory_copy_on_write() {
        let mut os = os();
        let parent = os.create_process(&trivial_image("shell")).unwrap();
        let heap = os.create_heap(parent, 64 << 10, VbProperties::NONE).unwrap();
        let ps = os.process(parent).unwrap().session().clone();
        ps.store_u64(heap.at(0), 1234).unwrap();

        let child = os.fork(parent).unwrap();
        let cs = os.process(child).unwrap().session().clone();
        // Same pointer (CVT index + offset) works in the child.
        assert_eq!(cs.load_u64(heap.at(0)).unwrap(), 1234);
        // Writes are private.
        cs.store_u64(heap.at(0), 5678).unwrap();
        assert_eq!(ps.load_u64(heap.at(0)).unwrap(), 1234);
        assert_eq!(cs.load_u64(heap.at(0)).unwrap(), 5678);
    }

    #[test]
    fn fork_shares_library_code() {
        let mut os = os();
        os.register_library(LibraryImage {
            name: "libc".into(),
            code: vec![0xbb; 32],
            static_data: vec![0; 8],
        })
        .unwrap();
        let parent = os.create_process(&trivial_image("init")).unwrap();
        let lib = os.link_library(parent, "libc").unwrap();
        let child = os.fork(parent).unwrap();
        let cc = os.process(child).unwrap().client();
        // The child's CVT entry at the library index names the same VB.
        let child_entry = os.system().cvt(cc).unwrap().entry(lib.cvt_index).unwrap().vbuid();
        assert_eq!(child_entry, lib.vbuid);
    }

    #[test]
    fn malloc_free_reuse() {
        let mut os = os();
        let pid = os.create_process(&trivial_image("allocd")).unwrap();
        let heap = os.create_heap(pid, 64 << 10, VbProperties::NONE).unwrap();
        let a = os.malloc(pid, heap.cvt_index, 100).unwrap();
        let b = os.malloc(pid, heap.cvt_index, 100).unwrap();
        assert_ne!(a.address, b.address);
        os.free(pid, a).unwrap();
        let c = os.malloc(pid, heap.cvt_index, 64).unwrap();
        assert_eq!(c.address.offset(), a.address.offset(), "freed block is reused");
    }

    #[test]
    fn malloc_promotes_when_the_vb_fills() {
        let mut os = os();
        let pid = os.create_process(&trivial_image("grower")).unwrap();
        let heap = os.create_heap(pid, 4 << 10, VbProperties::NONE).unwrap();
        assert_eq!(heap.vbuid.size_class(), SizeClass::Kib4);
        let session = os.process(pid).unwrap().session().clone();

        let a = os.malloc(pid, heap.cvt_index, 3 << 10).unwrap();
        session.store_u64(a.address, 42).unwrap();
        assert!(a.promoted.is_none());

        // This one does not fit in 4 KiB: the VB is promoted to 128 KiB.
        let b = os.malloc(pid, heap.cvt_index, 2 << 10).unwrap();
        let promoted = b.promoted.expect("promotion happened");
        assert_eq!(promoted.vbuid.size_class(), SizeClass::Kib128);
        assert_eq!(promoted.cvt_index, heap.cvt_index, "pointers stay valid");
        // Old data is still there through the same pointer.
        assert_eq!(session.load_u64(a.address).unwrap(), 42);
    }

    #[test]
    fn mmap_file_reads_file_contents() {
        let mut os = os();
        let pid = os.create_process(&trivial_image("pager")).unwrap();
        let mut contents = vec![0u8; 10_000];
        contents[0] = 0x10;
        contents[9_999] = 0x99;
        let handle = os.mmap_file(pid, &contents, Rwx::READ_WRITE).unwrap();
        let session = os.process(pid).unwrap().session();
        assert_eq!(session.load_u8(handle.at(0)).unwrap(), 0x10);
        assert_eq!(session.load_u8(handle.at(9_999)).unwrap(), 0x99);
        assert_eq!(session.load_u8(handle.at(5_000)).unwrap(), 0);
    }

    #[test]
    fn share_vb_gives_coherent_view() {
        let mut os = os();
        let p1 = os.create_process(&trivial_image("writer")).unwrap();
        let p2 = os.create_process(&trivial_image("reader")).unwrap();
        let heap = os.create_heap(p1, 4096, VbProperties::NONE).unwrap();
        let idx2 = os.share_vb(p1, heap, p2, Rwx::READ).unwrap();
        os.process(p1).unwrap().session().store_u64(heap.at(8), 2020).unwrap();
        assert_eq!(
            os.process(p2).unwrap().session().load_u64(VirtualAddress::new(idx2, 8)).unwrap(),
            2020
        );
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(4096), 1);
        assert_eq!(pages_for(4097), 2);
    }
}
