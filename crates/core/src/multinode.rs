//! Multi-node support: one MTL per node, VBs partitioned by home MTL (§6.2).
//!
//! The paper's initial multi-node approach gives each node its own MTL and
//! "equally partitions VBs of each size class among the MTLs, with the
//! higher order bits of VBID indicating the VB's home MTL." The home MTL is
//! the only MTL that manages a VB's physical allocation and translation.
//! The OS tries to place a process's VBs on the MTL of the node executing
//! it, and can migrate a VB's contents to a VB homed elsewhere during phase
//! changes. The paper leaves the evaluation of this design to future work;
//! this module implements the mechanics so they can be exercised and
//! tested.

use core::fmt;

use crate::addr::{SizeClass, VbiAddress, Vbuid};
use crate::config::VbiConfig;
use crate::error::{Result, VbiError};
use crate::mtl::{Mtl, MtlAccess, Translation};
use crate::vb::VbProperties;

/// A node ID in a multi-node system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u8);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// A multi-node machine: per-node MTLs over per-node physical memories,
/// with VBIDs partitioned by home node.
///
/// # Examples
///
/// ```
/// use vbi_core::multinode::{MultiNodeSystem, NodeId};
/// use vbi_core::{SizeClass, VbProperties, VbiConfig};
///
/// # fn main() -> Result<(), vbi_core::VbiError> {
/// let mut machine = MultiNodeSystem::new(4, VbiConfig::vbi_full());
/// let vb = machine.enable_vb_on(NodeId(2), SizeClass::Kib128, VbProperties::NONE)?;
/// assert_eq!(machine.home_of(vb), NodeId(2));
/// machine.write_u64(vb.address(0)?, 7)?;
/// assert_eq!(machine.read_u64(vb.address(0)?)?, 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MultiNodeSystem {
    mtls: Vec<Mtl>,
    node_bits: u32,
}

impl MultiNodeSystem {
    /// Creates a machine with `nodes` nodes (a power of two between 2 and
    /// 256), each owning `config.phys_frames` frames.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is not a power of two in `[2, 256]`.
    pub fn new(nodes: usize, config: VbiConfig) -> Self {
        assert!(
            nodes.is_power_of_two() && (2..=256).contains(&nodes),
            "node count must be a power of two in [2, 256]"
        );
        Self {
            mtls: (0..nodes).map(|_| Mtl::new(config.clone())).collect(),
            node_bits: nodes.trailing_zeros(),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.mtls.len()
    }

    /// The home node encoded in a VB's high-order VBID bits.
    pub fn home_of(&self, vbuid: Vbuid) -> NodeId {
        let shift = vbuid.size_class().vbid_bits() - self.node_bits;
        NodeId((vbuid.vbid() >> shift) as u8)
    }

    /// The VBs of `size_class` available to each node.
    pub fn vbs_per_node(&self, size_class: SizeClass) -> u64 {
        size_class.vb_count() >> self.node_bits
    }

    /// Builds the global VBUID for a node-local VBID.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::OutOfVirtualBlocks`] when `local_vbid` exceeds
    /// the node's slice.
    pub fn vbuid_on(&self, node: NodeId, size_class: SizeClass, local_vbid: u64) -> Result<Vbuid> {
        if local_vbid >= self.vbs_per_node(size_class) {
            return Err(VbiError::OutOfVirtualBlocks(size_class));
        }
        let shift = size_class.vbid_bits() - self.node_bits;
        Ok(Vbuid::new(size_class, ((node.0 as u64) << shift) | local_vbid))
    }

    /// Access to a node's MTL.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range node IDs.
    pub fn mtl(&self, node: NodeId) -> &Mtl {
        &self.mtls[node.0 as usize]
    }

    /// Mutable access to a node's MTL.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range node IDs.
    pub fn mtl_mut(&mut self, node: NodeId) -> &mut Mtl {
        &mut self.mtls[node.0 as usize]
    }

    fn home_mtl_of(&mut self, vbuid: Vbuid) -> &mut Mtl {
        let node = self.home_of(vbuid);
        &mut self.mtls[node.0 as usize]
    }

    /// Finds and enables a free VB of `size_class` homed on `node` —
    /// the OS's placement step ("the OS attempts to ensure that the VB's
    /// home MTL is in the same node as the core executing the process").
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::OutOfVirtualBlocks`] when the node's slice of the
    /// class is exhausted.
    pub fn enable_vb_on(
        &mut self,
        node: NodeId,
        size_class: SizeClass,
        props: VbProperties,
    ) -> Result<Vbuid> {
        for local in 0..self.vbs_per_node(size_class).min(1 << 20) {
            let vbuid = self.vbuid_on(node, size_class, local)?;
            let mtl = self.mtl_mut(node);
            match mtl.enable_vb(vbuid, props) {
                Ok(()) => return Ok(vbuid),
                Err(VbiError::VbAlreadyEnabled(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(VbiError::OutOfVirtualBlocks(size_class))
    }

    /// Routes a translation to the VB's home MTL.
    ///
    /// # Errors
    ///
    /// Any error from the home MTL.
    pub fn translate(&mut self, addr: VbiAddress, access: MtlAccess) -> Result<Translation> {
        self.home_mtl_of(addr.vbuid()).translate(addr, access)
    }

    /// Functional read routed to the home MTL.
    ///
    /// # Errors
    ///
    /// Any error from the home MTL.
    pub fn read_u64(&mut self, addr: VbiAddress) -> Result<u64> {
        self.home_mtl_of(addr.vbuid()).read_u64(addr)
    }

    /// Functional write routed to the home MTL.
    ///
    /// # Errors
    ///
    /// Any error from the home MTL.
    pub fn write_u64(&mut self, addr: VbiAddress, value: u64) -> Result<()> {
        self.home_mtl_of(addr.vbuid()).write_u64(addr, value)
    }

    /// Migrates a VB's contents to a fresh VB of the same size class homed
    /// on `to` ("the OS can seamlessly migrate data from a VB hosted by one
    /// MTL to a VB hosted by another MTL"). Returns the new VBUID; the OS
    /// then redirects CVT entries (see [`crate::client::Cvt::redirect_all`])
    /// and disables the old VB.
    ///
    /// A wrapper over the engine's shared data-movement primitive,
    /// [`Mtl::migrate_contents`] — the same copy the op engine's
    /// `Op::Migrate` runs behind the sharded service, here driven with
    /// per-node MTLs instead of per-shard locks. Pages never written stay
    /// unmapped on the destination too (delayed allocation is preserved
    /// across the migration).
    ///
    /// # Errors
    ///
    /// Any enable/translation error on either node.
    pub fn migrate_vb(&mut self, vbuid: Vbuid, to: NodeId) -> Result<Vbuid> {
        let from = self.home_of(vbuid);
        let props = self.mtl(from).props(vbuid)?;
        let new = self.enable_vb_on(to, vbuid.size_class(), props)?;
        let (src, dst) = (from.0 as usize, to.0 as usize);
        if src == dst {
            Mtl::migrate_contents(&mut self.mtls[src], None, vbuid, new)?;
        } else {
            // Split the per-node MTL vector so source and destination can be
            // borrowed together (the service takes two shard locks instead).
            let (lo, hi) = self.mtls.split_at_mut(src.max(dst));
            let (src_mtl, dst_mtl) =
                if src < dst { (&mut lo[src], &mut hi[0]) } else { (&mut hi[0], &mut lo[dst]) };
            Mtl::migrate_contents(src_mtl, Some(dst_mtl), vbuid, new)?;
        }
        Ok(new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MultiNodeSystem {
        MultiNodeSystem::new(4, VbiConfig { phys_frames: 4096, ..VbiConfig::vbi_full() })
    }

    #[test]
    fn vbids_partition_by_node() {
        let m = machine();
        for node in 0..4u8 {
            let vb = m.vbuid_on(NodeId(node), SizeClass::Kib128, 5).unwrap();
            assert_eq!(m.home_of(vb), NodeId(node));
        }
        assert_eq!(m.vbs_per_node(SizeClass::Kib128), SizeClass::Kib128.vb_count() / 4);
    }

    #[test]
    fn local_slices_do_not_collide() {
        let mut m = machine();
        let a = m.enable_vb_on(NodeId(0), SizeClass::Kib128, VbProperties::NONE).unwrap();
        let b = m.enable_vb_on(NodeId(1), SizeClass::Kib128, VbProperties::NONE).unwrap();
        assert_ne!(a, b);
        assert_eq!(m.home_of(a), NodeId(0));
        assert_eq!(m.home_of(b), NodeId(1));
    }

    #[test]
    fn accesses_route_to_the_home_mtl() {
        let mut m = machine();
        let vb = m.enable_vb_on(NodeId(3), SizeClass::Kib128, VbProperties::NONE).unwrap();
        m.write_u64(vb.address(64).unwrap(), 99).unwrap();
        assert_eq!(m.read_u64(vb.address(64).unwrap()).unwrap(), 99);
        // Only node 3's MTL allocated anything.
        for node in 0..3u8 {
            assert_eq!(m.mtl(NodeId(node)).free_frames(), m.mtl(NodeId(node)).config().phys_frames);
        }
        assert!(m.mtl(NodeId(3)).free_frames() < m.mtl(NodeId(3)).config().phys_frames);
    }

    #[test]
    fn nodes_have_independent_capacity() {
        // Exhausting one node's memory does not affect another's.
        let mut m = MultiNodeSystem::new(2, VbiConfig { phys_frames: 64, ..VbiConfig::vbi_2() });
        let a = m.enable_vb_on(NodeId(0), SizeClass::Kib128, VbProperties::NONE).unwrap();
        let mut wrote = 0;
        for page in 0..32u64 {
            if m.write_u64(a.address(page << 12).unwrap(), page).is_err() {
                break;
            }
            wrote += 1;
        }
        assert!(wrote > 0);
        let b = m.enable_vb_on(NodeId(1), SizeClass::Kib4, VbProperties::NONE).unwrap();
        m.write_u64(b.address(0).unwrap(), 1).unwrap();
    }

    #[test]
    fn migration_moves_data_and_home() {
        let mut m = machine();
        let vb = m.enable_vb_on(NodeId(0), SizeClass::Kib128, VbProperties::NONE).unwrap();
        for page in (0..32u64).step_by(5) {
            m.write_u64(vb.address(page << 12).unwrap(), 1000 + page).unwrap();
        }
        let moved = m.migrate_vb(vb, NodeId(2)).unwrap();
        assert_eq!(m.home_of(moved), NodeId(2));
        for page in (0..32u64).step_by(5) {
            assert_eq!(m.read_u64(moved.address(page << 12).unwrap()).unwrap(), 1000 + page);
        }
        // Untouched pages are still unallocated on the destination.
        assert_eq!(m.read_u64(moved.address(1 << 12).unwrap()).unwrap(), 0);
        // The old VB can now be disabled, freeing node 0's memory.
        m.mtl_mut(NodeId(0)).disable_vb(vb).unwrap();
        assert_eq!(m.mtl(NodeId(0)).free_frames(), m.mtl(NodeId(0)).config().phys_frames);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_node_counts_panic() {
        let _ = MultiNodeSystem::new(3, VbiConfig::vbi_full());
    }
}
