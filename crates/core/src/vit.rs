//! VB Info Tables (VITs): the MTL's per-VB metadata store (§4.5.1).
//!
//! The MTL keeps one VIT per size class, indexed by VBID. Each entry stores
//! the VB's enable bit, property bitvector, reference count (number of
//! attached clients), and the type of — and pointer to — its translation
//! structure. Tables grow only up to the largest-VBID enabled VB of their
//! class; the OS bounds table growth by reusing previously disabled VBs.

use std::collections::BTreeMap;

use crate::addr::{SizeClass, Vbuid, SIZE_CLASS_COUNT};
use crate::error::{Result, VbiError};
use crate::phys::PhysAddr;
use crate::translate::{TranslationKind, TranslationStructure};
use crate::vb::VbProperties;

/// One VB Info Table entry (§4.5.1).
#[derive(Debug, Clone, Default)]
pub struct VitEntry {
    /// Whether the VB is currently assigned to a process.
    pub enabled: bool,
    /// Property bitvector supplied by `enable_vb`.
    pub props: VbProperties,
    /// Number of clients attached to the VB.
    pub refcount: u32,
    /// The VB's translation structure. `None` until the first physical
    /// allocation, since the structure's type and pointer are "updated in
    /// its VIT entry at the time of physical memory allocation".
    pub translation: Option<TranslationStructure>,
}

impl VitEntry {
    /// The translation-structure type field of the entry.
    pub fn translation_kind(&self) -> Option<TranslationKind> {
        self.translation.as_ref().map(TranslationStructure::kind)
    }
}

/// The set of VB Info Tables, one per size class.
///
/// # Examples
///
/// ```
/// use vbi_core::addr::SizeClass;
/// use vbi_core::vb::VbProperties;
/// use vbi_core::vit::VbInfoTables;
///
/// let mut vits = VbInfoTables::new();
/// let vb = vits.find_free(SizeClass::Kib128)?;
/// vits.enable(vb, VbProperties::CODE)?;
/// assert!(vits.entry(vb)?.enabled);
/// # Ok::<(), vbi_core::VbiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct VbInfoTables {
    /// Sparse per-class tables. A `BTreeMap` (rather than a dense array)
    /// keeps the model practical for VBIDs scattered across the ID space —
    /// e.g. the high VBIDs produced by VM partitioning (§6.1) — while
    /// behaving identically to the paper's bounded, index-addressed tables.
    tables: [BTreeMap<u64, VitEntry>; SIZE_CLASS_COUNT],
}

impl VbInfoTables {
    /// Creates empty tables.
    pub fn new() -> Self {
        Self { tables: Default::default() }
    }

    /// Scans for a free (never-used or disabled) VB of `size_class`,
    /// preferring to reuse disabled entries so the table stays short.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::OutOfVirtualBlocks`] when the class is exhausted
    /// (practically unreachable given 2^14..2^49 VBs per class).
    pub fn find_free(&self, size_class: SizeClass) -> Result<Vbuid> {
        self.find_free_in(size_class, 0, size_class.vb_count())
    }

    /// Scans for a free VB of `size_class` whose VBID falls in `[lo, hi)` —
    /// the partitioned variant used by sharded MTLs (§6.2 homes VBs on an
    /// MTL by the high-order bits of the VBID, so each shard's slice is a
    /// contiguous VBID range).
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::OutOfVirtualBlocks`] when the slice is exhausted.
    pub fn find_free_in(&self, size_class: SizeClass, lo: u64, hi: u64) -> Result<Vbuid> {
        let table = &self.tables[size_class.id() as usize];
        // Prefer a previously used, now-disabled slot.
        if let Some((&vbid, _)) = table.range(lo..hi).find(|(_, e)| !e.enabled) {
            return Ok(Vbuid::new(size_class, vbid));
        }
        // Otherwise the smallest never-used VBID of the slice.
        let mut next = lo;
        for &vbid in table.range(lo..hi).map(|(k, _)| k) {
            if vbid == next {
                next += 1;
            } else if vbid > next {
                break;
            }
        }
        if next >= hi.min(size_class.vb_count()) {
            return Err(VbiError::OutOfVirtualBlocks(size_class));
        }
        Ok(Vbuid::new(size_class, next))
    }

    /// Marks `vbuid` enabled with `props` (the `enable_vb` instruction's VIT
    /// update, §4.5.1). The reference count starts at zero and the
    /// translation pointer empty.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::VbAlreadyEnabled`] if the VB is already enabled.
    pub fn enable(&mut self, vbuid: Vbuid, props: VbProperties) -> Result<()> {
        let table = &mut self.tables[vbuid.size_class().id() as usize];
        let entry = table.entry(vbuid.vbid()).or_default();
        if entry.enabled {
            return Err(VbiError::VbAlreadyEnabled(vbuid));
        }
        *entry = VitEntry { enabled: true, props, refcount: 0, translation: None };
        Ok(())
    }

    /// Clears the entry for `vbuid`, returning the old entry so the MTL can
    /// release its physical resources.
    ///
    /// # Errors
    ///
    /// [`VbiError::VbNotEnabled`] if the VB is not enabled, or
    /// [`VbiError::VbInUse`] if clients are still attached.
    pub fn disable(&mut self, vbuid: Vbuid) -> Result<VitEntry> {
        let entry = self.entry_mut(vbuid)?;
        if entry.refcount > 0 {
            return Err(VbiError::VbInUse { vbuid, refcount: entry.refcount });
        }
        Ok(core::mem::take(entry))
    }

    /// Immutable access to an enabled VB's entry.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::VbNotEnabled`] for disabled or never-enabled VBs.
    pub fn entry(&self, vbuid: Vbuid) -> Result<&VitEntry> {
        self.tables[vbuid.size_class().id() as usize]
            .get(&vbuid.vbid())
            .filter(|e| e.enabled)
            .ok_or(VbiError::VbNotEnabled(vbuid))
    }

    /// Mutable access to an enabled VB's entry.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::VbNotEnabled`] for disabled or never-enabled VBs.
    pub fn entry_mut(&mut self, vbuid: Vbuid) -> Result<&mut VitEntry> {
        self.tables[vbuid.size_class().id() as usize]
            .get_mut(&vbuid.vbid())
            .filter(|e| e.enabled)
            .ok_or(VbiError::VbNotEnabled(vbuid))
    }

    /// Increments the reference count (`attach`).
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::VbNotEnabled`] if the VB is not enabled.
    pub fn add_ref(&mut self, vbuid: Vbuid) -> Result<u32> {
        let entry = self.entry_mut(vbuid)?;
        entry.refcount += 1;
        Ok(entry.refcount)
    }

    /// Decrements the reference count (`detach`), returning the new count so
    /// the OS can `disable_vb` at zero.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::VbNotEnabled`] if the VB is not enabled.
    ///
    /// # Panics
    ///
    /// Panics if the count is already zero (an OS attach/detach pairing bug).
    pub fn remove_ref(&mut self, vbuid: Vbuid) -> Result<u32> {
        let entry = self.entry_mut(vbuid)?;
        assert!(entry.refcount > 0, "detach of {vbuid} with zero refcount");
        entry.refcount -= 1;
        Ok(entry.refcount)
    }

    /// Number of entries materialised for a size class (the table's length).
    pub fn table_len(&self, size_class: SizeClass) -> usize {
        self.tables[size_class.id() as usize].len()
    }

    /// Iterates over all enabled VBs, smallest class and VBID first.
    pub fn enabled_vbs(&self) -> impl Iterator<Item = Vbuid> + '_ {
        SizeClass::ALL.into_iter().flat_map(move |sc| {
            self.tables[sc.id() as usize]
                .iter()
                .filter(|(_, e)| e.enabled)
                .map(move |(&vbid, _)| Vbuid::new(sc, vbid))
        })
    }

    /// Physical address of a VIT entry, for walk-timing purposes. VITs live
    /// in a reserved region of physical memory; each size class gets a fixed
    /// stride-64 slab, mirroring the paper's "reserved region" for
    /// VBI-related tables.
    pub fn entry_addr(&self, vbuid: Vbuid) -> PhysAddr {
        const VIT_REGION_BASE: u64 = 0x100_0000; // 16 MiB, above CVT region
        const PER_CLASS_SPAN: u64 = 0x10_0000; // 1 MiB per class
        PhysAddr(
            VIT_REGION_BASE
                + vbuid.size_class().id() as u64 * PER_CLASS_SPAN
                + vbuid.vbid() * 64 % PER_CLASS_SPAN,
        )
    }
}

impl Default for VbInfoTables {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_free_prefers_reuse() {
        let mut vits = VbInfoTables::new();
        let a = vits.find_free(SizeClass::Kib4).unwrap();
        assert_eq!(a.vbid(), 0);
        vits.enable(a, VbProperties::NONE).unwrap();
        let b = vits.find_free(SizeClass::Kib4).unwrap();
        assert_eq!(b.vbid(), 1);
        vits.enable(b, VbProperties::NONE).unwrap();
        vits.disable(a).unwrap();
        // The disabled slot is reused before the table grows.
        assert_eq!(vits.find_free(SizeClass::Kib4).unwrap(), a);
        assert_eq!(vits.table_len(SizeClass::Kib4), 2);
    }

    #[test]
    fn enable_twice_fails() {
        let mut vits = VbInfoTables::new();
        let vb = Vbuid::new(SizeClass::Mib4, 3);
        vits.enable(vb, VbProperties::NONE).unwrap();
        assert_eq!(vits.enable(vb, VbProperties::NONE), Err(VbiError::VbAlreadyEnabled(vb)));
    }

    #[test]
    fn disable_requires_zero_refcount() {
        let mut vits = VbInfoTables::new();
        let vb = Vbuid::new(SizeClass::Kib128, 0);
        vits.enable(vb, VbProperties::NONE).unwrap();
        vits.add_ref(vb).unwrap();
        assert!(matches!(
            vits.disable(vb),
            Err(VbiError::VbInUse { vbuid: v, refcount: 1 }) if v == vb
        ));
        assert_eq!(vits.remove_ref(vb).unwrap(), 0);
        assert!(vits.disable(vb).is_ok());
        assert!(vits.entry(vb).is_err());
    }

    #[test]
    fn refcounts_track_attach_detach() {
        let mut vits = VbInfoTables::new();
        let vb = Vbuid::new(SizeClass::Kib4, 9);
        vits.enable(vb, VbProperties::NONE).unwrap();
        assert_eq!(vits.add_ref(vb).unwrap(), 1);
        assert_eq!(vits.add_ref(vb).unwrap(), 2);
        assert_eq!(vits.remove_ref(vb).unwrap(), 1);
    }

    #[test]
    fn props_are_stored() {
        let mut vits = VbInfoTables::new();
        let vb = Vbuid::new(SizeClass::Gib4, 1);
        let props = VbProperties::BANDWIDTH_SENSITIVE | VbProperties::READ_ONLY;
        vits.enable(vb, props).unwrap();
        assert_eq!(vits.entry(vb).unwrap().props, props);
        assert_eq!(vits.entry(vb).unwrap().translation_kind(), None);
    }

    #[test]
    fn enabled_vbs_enumerates_across_classes() {
        let mut vits = VbInfoTables::new();
        let a = Vbuid::new(SizeClass::Kib4, 2);
        let b = Vbuid::new(SizeClass::Tib4, 0);
        vits.enable(a, VbProperties::NONE).unwrap();
        vits.enable(b, VbProperties::NONE).unwrap();
        let all: Vec<_> = vits.enabled_vbs().collect();
        assert_eq!(all, vec![a, b]);
    }

    #[test]
    fn entry_addrs_differ_between_classes() {
        let vits = VbInfoTables::new();
        let a = vits.entry_addr(Vbuid::new(SizeClass::Kib4, 0));
        let b = vits.entry_addr(Vbuid::new(SizeClass::Kib128, 0));
        assert_ne!(a, b);
    }
}
