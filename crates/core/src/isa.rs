//! The six VBI instructions as typed operations (§4.1-§4.4).
//!
//! VBI extends the ISA with `enable_vb`, `disable_vb`, `attach`, `detach`,
//! `clone_vb`, and `promote_vb`. [`Instruction`] captures each one with its
//! architectural operands, and [`Instruction::execute`] applies it to a
//! [`System`], returning the architecturally visible result (the CVT index
//! for `attach`, nothing otherwise). The OS model issues these through the
//! same interface a kernel would, which keeps the hardware/software contract
//! explicit and testable.

use core::fmt;

use crate::addr::Vbuid;
use crate::client::ClientId;
use crate::error::Result;
use crate::ops::{Op, OpOutput};
use crate::perm::Rwx;
use crate::system::System;
use crate::vb::VbProperties;

/// A VBI ISA instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// `enable_vb VBUID, props` — mark a VB enabled with a property
    /// bitvector (§4.2).
    EnableVb {
        /// Target VB.
        vbuid: Vbuid,
        /// Property bitvector.
        props: VbProperties,
    },
    /// `disable_vb VBUID` — destroy all state of an unreferenced VB
    /// (§4.2.4).
    DisableVb {
        /// Target VB.
        vbuid: Vbuid,
    },
    /// `attach CID, VBUID, RWX` — grant a client access to a VB; returns the
    /// CVT index (§4.1.2).
    Attach {
        /// Client being granted access.
        client: ClientId,
        /// Target VB.
        vbuid: Vbuid,
        /// Granted permissions.
        perms: Rwx,
    },
    /// `detach CID, VBUID` — revoke a client's access (§4.1.2).
    Detach {
        /// Client losing access.
        client: ClientId,
        /// Target VB.
        vbuid: Vbuid,
    },
    /// `clone_vb SVBUID, DVBUID` — make `destination` a copy-on-write clone
    /// of `source` (§4.4).
    CloneVb {
        /// Source VB.
        source: Vbuid,
        /// Destination VB (enabled, empty, same size class).
        destination: Vbuid,
    },
    /// `promote_vb SVBUID, LVBUID` — move a VB's contents into a larger VB
    /// (§4.4).
    PromoteVb {
        /// Source (smaller) VB.
        source: Vbuid,
        /// Destination (larger) VB.
        destination: Vbuid,
    },
}

/// The architecturally visible result of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// No register result.
    None,
    /// The CVT index returned by `attach`.
    CvtIndex(usize),
    /// The reference count returned by `detach` (zero means the OS may
    /// `disable_vb`).
    Refcount(u32),
}

impl Instruction {
    /// Executes the instruction against a system.
    ///
    /// # Errors
    ///
    /// Propagates the underlying operation's error (see [`System`] and
    /// [`crate::mtl::Mtl`]).
    pub fn execute(self, system: &System) -> Result<Outcome> {
        match self {
            Instruction::EnableVb { vbuid, props } => {
                system.mtl_mut().enable_vb(vbuid, props)?;
                Ok(Outcome::None)
            }
            Instruction::DisableVb { vbuid } => {
                system.mtl_mut().disable_vb(vbuid)?;
                Ok(Outcome::None)
            }
            Instruction::Attach { client, vbuid, perms } => {
                // Instructions carry raw client IDs (they are the op
                // plumbing beneath sessions), so route through the engine.
                match system.execute(Op::Attach { client, vbuid, perms })? {
                    OpOutput::CvtIndex(index) => Ok(Outcome::CvtIndex(index)),
                    other => unreachable!("attach returns an index, got {other:?}"),
                }
            }
            Instruction::Detach { client, vbuid } => {
                match system.execute(Op::Detach { client, vbuid })? {
                    OpOutput::RefCount(count) => Ok(Outcome::Refcount(count)),
                    other => unreachable!("detach returns a refcount, got {other:?}"),
                }
            }
            Instruction::CloneVb { source, destination } => {
                system.mtl_mut().clone_vb(source, destination)?;
                Ok(Outcome::None)
            }
            Instruction::PromoteVb { source, destination } => {
                system.mtl_mut().promote_vb(source, destination)?;
                Ok(Outcome::None)
            }
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::EnableVb { vbuid, props } => {
                write!(f, "enable_vb {vbuid}, {props}")
            }
            Instruction::DisableVb { vbuid } => write!(f, "disable_vb {vbuid}"),
            Instruction::Attach { client, vbuid, perms } => {
                write!(f, "attach {client}, {vbuid}, {perms}")
            }
            Instruction::Detach { client, vbuid } => write!(f, "detach {client}, {vbuid}"),
            Instruction::CloneVb { source, destination } => {
                write!(f, "clone_vb {source}, {destination}")
            }
            Instruction::PromoteVb { source, destination } => {
                write!(f, "promote_vb {source}, {destination}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::SizeClass;
    use crate::client::VirtualAddress;
    use crate::config::VbiConfig;

    fn system() -> System {
        System::new(VbiConfig { phys_frames: 4096, ..VbiConfig::vbi_full() })
    }

    #[test]
    fn instruction_sequence_drives_a_full_lifecycle() {
        let s = system();
        let session = s.create_client().unwrap();
        let client = session.id();
        let vbuid = s.mtl().find_free_vb(SizeClass::Kib128).unwrap();

        Instruction::EnableVb { vbuid, props: VbProperties::NONE }.execute(&s).unwrap();
        let Outcome::CvtIndex(index) =
            Instruction::Attach { client, vbuid, perms: Rwx::READ_WRITE }.execute(&s).unwrap()
        else {
            panic!("attach returns an index");
        };
        session.store_u64(VirtualAddress::new(index, 0), 11).unwrap();

        let Outcome::Refcount(rc) = Instruction::Detach { client, vbuid }.execute(&s).unwrap()
        else {
            panic!("detach returns a refcount");
        };
        assert_eq!(rc, 0);
        Instruction::DisableVb { vbuid }.execute(&s).unwrap();
    }

    #[test]
    fn clone_and_promote_instructions() {
        let s = system();
        let session = s.create_client().unwrap();
        let client = session.id();
        let src = s.mtl().find_free_vb(SizeClass::Kib128).unwrap();
        Instruction::EnableVb { vbuid: src, props: VbProperties::NONE }.execute(&s).unwrap();
        let Outcome::CvtIndex(i) =
            Instruction::Attach { client, vbuid: src, perms: Rwx::READ_WRITE }.execute(&s).unwrap()
        else {
            panic!()
        };
        session.store_u64(VirtualAddress::new(i, 0), 5).unwrap();

        let dst = s.mtl().find_free_vb(SizeClass::Kib128).unwrap();
        Instruction::EnableVb { vbuid: dst, props: VbProperties::NONE }.execute(&s).unwrap();
        Instruction::CloneVb { source: src, destination: dst }.execute(&s).unwrap();

        let large = s.mtl().find_free_vb(SizeClass::Mib4).unwrap();
        Instruction::EnableVb { vbuid: large, props: VbProperties::NONE }.execute(&s).unwrap();
        Instruction::PromoteVb { source: dst, destination: large }.execute(&s).unwrap();

        let Outcome::CvtIndex(j) =
            Instruction::Attach { client, vbuid: large, perms: Rwx::READ }.execute(&s).unwrap()
        else {
            panic!()
        };
        assert_eq!(session.load_u64(VirtualAddress::new(j, 0)).unwrap(), 5);
    }

    #[test]
    fn display_is_assembly_like() {
        let i = Instruction::EnableVb {
            vbuid: Vbuid::new(SizeClass::Kib4, 3),
            props: VbProperties::CODE,
        };
        assert_eq!(i.to_string(), "enable_vb VB[4KB:3], code");
        let d = Instruction::Detach { client: ClientId(2), vbuid: Vbuid::new(SizeClass::Kib4, 3) };
        assert_eq!(d.to_string(), "detach client#2, VB[4KB:3]");
    }
}
