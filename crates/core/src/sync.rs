//! Small lock-plumbing helpers shared by every lock-based front end.
//!
//! Lives in `vbi-core` so the synchronous adapter ([`crate::System`]) and
//! the concurrent service crate recover from poisoned locks through one
//! definition instead of per-crate copies.

use std::sync::LockResult;

/// Extracts the guard from a [`LockResult`], ignoring poisoning.
///
/// Every multi-step state update in the workspace rolls back on error, so a
/// panicking lock holder leaves state functionally consistent; continuing to
/// serve is safe and keeps one misbehaving client from wedging the rest.
pub fn unpoison<G>(result: LockResult<G>) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}
