//! Error types for the VBI framework.

use core::fmt;

use crate::addr::{SizeClass, Vbuid};
use crate::client::ClientId;
use crate::perm::Rwx;

/// Errors returned by VBI operations.
///
/// Every fallible public operation in this crate returns `Result<T, VbiError>`.
/// The variants mirror the architectural failure modes of the paper's design:
/// exhaustion of physical memory or of a VB size class, protection violations
/// detected at the Client-VB Table (CVT), and misuse of the `enable_vb` /
/// `attach` / `clone_vb` / `promote_vb` instruction set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VbiError {
    /// The Memory Translation Layer could not allocate physical memory and
    /// had nothing left to swap out.
    OutOfPhysicalMemory,
    /// All VBs of the requested size class are enabled.
    OutOfVirtualBlocks(SizeClass),
    /// The requested allocation is larger than the largest size class.
    RequestTooLarge {
        /// Bytes requested by the caller.
        requested: u64,
    },
    /// The VB is not enabled (operation requires an enabled VB).
    VbNotEnabled(Vbuid),
    /// The VB is already enabled (`enable_vb` on an enabled VB).
    VbAlreadyEnabled(Vbuid),
    /// The VB still has attached clients (`disable_vb` with nonzero refcount).
    VbInUse {
        /// VB that was the target of the operation.
        vbuid: Vbuid,
        /// Number of clients still attached.
        refcount: u32,
    },
    /// A protection check at the CVT failed.
    PermissionDenied {
        /// Client that issued the access.
        client: ClientId,
        /// VB the access targeted.
        vbuid: Vbuid,
        /// Permission the access required.
        required: Rwx,
        /// Permission the CVT entry grants.
        granted: Rwx,
    },
    /// The offset falls outside the VB (`offset >= size`), detected by the
    /// bounds portion of the CVT check.
    OffsetOutOfRange {
        /// VB the access targeted.
        vbuid: Vbuid,
        /// Offending offset.
        offset: u64,
    },
    /// The CVT index used in a two-part virtual address does not name a valid
    /// entry of the client's CVT.
    InvalidCvtIndex {
        /// Client whose CVT was indexed.
        client: ClientId,
        /// Offending index.
        index: usize,
    },
    /// The client's CVT has no free entry left.
    CvtFull(ClientId),
    /// All client IDs are in use.
    OutOfClients,
    /// The client ID does not name a live client.
    InvalidClient(ClientId),
    /// `clone_vb` requires source and destination of the same size class.
    CloneSizeMismatch {
        /// Source VB.
        source: Vbuid,
        /// Destination VB.
        destination: Vbuid,
    },
    /// `promote_vb` requires a strictly larger destination size class.
    PromoteNotLarger {
        /// Source (smaller) VB.
        source: Vbuid,
        /// Destination VB that was not larger.
        destination: Vbuid,
    },
    /// The backing store rejected a swap operation.
    SwapFailure {
        /// Human-readable reason from the backing store.
        reason: &'static str,
    },
    /// A capacity-bounded backing store has no slot left for another
    /// swapped-out page, so eviction cannot make progress.
    BackingStoreFull {
        /// Capacity of the backing store in pages.
        capacity_pages: u64,
    },
    /// The VM ID is outside the configured partition.
    InvalidVmId(u8),
    /// A migration named a destination shard the machine does not have.
    InvalidShard {
        /// The requested destination shard.
        shard: usize,
        /// Number of shards the machine actually has.
        shards: usize,
    },
    /// Address arithmetic produced an address outside the VB or the VBI
    /// address space.
    MalformedAddress(u64),
    /// An internal engine invariant panicked while serving the op. Caught
    /// at the asynchronous service boundary so queued clients receive a
    /// completion instead of a hang; the payload is the panic message.
    EngineFault(String),
}

impl fmt::Display for VbiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OutOfPhysicalMemory => write!(f, "out of physical memory"),
            Self::OutOfVirtualBlocks(sc) => {
                write!(f, "no free virtual blocks in size class {sc}")
            }
            Self::RequestTooLarge { requested } => {
                write!(f, "requested {requested} bytes exceeds the largest size class")
            }
            Self::VbNotEnabled(vbuid) => write!(f, "virtual block {vbuid} is not enabled"),
            Self::VbAlreadyEnabled(vbuid) => {
                write!(f, "virtual block {vbuid} is already enabled")
            }
            Self::VbInUse { vbuid, refcount } => {
                write!(f, "virtual block {vbuid} still has {refcount} attached clients")
            }
            Self::PermissionDenied { client, vbuid, required, granted } => write!(
                f,
                "client {client} denied {required} access to {vbuid} (granted {granted})"
            ),
            Self::OffsetOutOfRange { vbuid, offset } => {
                write!(f, "offset {offset:#x} is outside virtual block {vbuid}")
            }
            Self::InvalidCvtIndex { client, index } => {
                write!(f, "CVT index {index} is invalid for client {client}")
            }
            Self::CvtFull(client) => write!(f, "client {client} has no free CVT entries"),
            Self::OutOfClients => write!(f, "all memory client IDs are in use"),
            Self::InvalidClient(client) => write!(f, "client {client} is not live"),
            Self::CloneSizeMismatch { source, destination } => write!(
                f,
                "clone_vb requires equal size classes (source {source}, destination {destination})"
            ),
            Self::PromoteNotLarger { source, destination } => write!(
                f,
                "promote_vb requires a larger destination (source {source}, destination {destination})"
            ),
            Self::SwapFailure { reason } => write!(f, "backing store failure: {reason}"),
            Self::BackingStoreFull { capacity_pages } => {
                write!(f, "backing store is full ({capacity_pages} page capacity)")
            }
            Self::InvalidVmId(id) => write!(f, "virtual machine id {id} is out of range"),
            Self::InvalidShard { shard, shards } => {
                write!(f, "shard {shard} is out of range for a {shards}-shard machine")
            }
            Self::MalformedAddress(bits) => write!(f, "malformed VBI address {bits:#018x}"),
            Self::EngineFault(message) => write!(f, "engine fault while serving the op: {message}"),
        }
    }
}

impl std::error::Error for VbiError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = core::result::Result<T, VbiError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::SizeClass;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors: Vec<VbiError> = vec![
            VbiError::OutOfPhysicalMemory,
            VbiError::OutOfVirtualBlocks(SizeClass::Kib4),
            VbiError::RequestTooLarge { requested: 1 << 50 },
            VbiError::OutOfClients,
            VbiError::SwapFailure { reason: "disk full" },
            VbiError::BackingStoreFull { capacity_pages: 64 },
            VbiError::InvalidVmId(77),
            VbiError::MalformedAddress(0xdead_beef),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            let first = s.chars().next().unwrap();
            assert!(first.is_lowercase() || first.is_numeric(), "{s}");
            assert!(!s.ends_with('.'), "{s}");
        }
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VbiError>();
    }
}
