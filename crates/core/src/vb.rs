//! Virtual-block property bitvectors and VB descriptors.
//!
//! Each VB carries a *property bitvector* (§4.1.1) combining flags that
//! characterise its contents (`code`, `read-only`, `kernel`, ...) with
//! software-provided hints about memory behaviour (latency sensitivity,
//! bandwidth sensitivity, access pattern, ...). The bitvector is part of the
//! ISA contract: software sets it at `enable_vb` time and the Memory
//! Translation Layer reads it when making mapping and migration decisions.

use core::fmt;
use core::ops::{BitAnd, BitOr, BitOrAssign};

use crate::addr::Vbuid;

/// Property bitvector associated with every VB.
///
/// The low half holds content *flags*; the upper half holds behavioural
/// *hints*. Both travel together through `enable_vb` as a single bitvector,
/// as specified by the ISA (§4.1.1).
///
/// # Examples
///
/// ```
/// use vbi_core::vb::VbProperties;
///
/// let props = VbProperties::CODE | VbProperties::KERNEL;
/// assert!(props.contains(VbProperties::CODE));
/// assert!(!props.contains(VbProperties::LATENCY_SENSITIVE));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct VbProperties(u32);

impl VbProperties {
    /// Empty property set.
    pub const NONE: VbProperties = VbProperties(0);

    // --- content flags -----------------------------------------------------
    /// The VB holds executable code.
    pub const CODE: VbProperties = VbProperties(1 << 0);
    /// The VB is read-only after initialisation.
    pub const READ_ONLY: VbProperties = VbProperties(1 << 1);
    /// The VB belongs to the kernel.
    pub const KERNEL: VbProperties = VbProperties(1 << 2);
    /// The VB's contents compress well.
    pub const COMPRESSIBLE: VbProperties = VbProperties(1 << 3);
    /// The VB must survive power loss (backed by persistent memory).
    pub const PERSISTENT: VbProperties = VbProperties(1 << 4);
    /// The VB is backed by a memory-mapped file.
    pub const FILE_BACKED: VbProperties = VbProperties(1 << 5);
    /// The VB holds a shared library's static per-process data.
    pub const LIBRARY_DATA: VbProperties = VbProperties(1 << 6);

    // --- behavioural hints -------------------------------------------------
    /// Latency-sensitive data: prefer low-latency memory regions.
    pub const LATENCY_SENSITIVE: VbProperties = VbProperties(1 << 16);
    /// Bandwidth-sensitive data: prefer high-bandwidth memory regions.
    pub const BANDWIDTH_SENSITIVE: VbProperties = VbProperties(1 << 17);
    /// Contents tolerate bit errors (e.g. approximate data).
    pub const ERROR_TOLERANT: VbProperties = VbProperties(1 << 18);
    /// Accesses are mostly sequential/streaming.
    pub const STREAMING: VbProperties = VbProperties(1 << 19);
    /// Accesses are pointer-chasing / dependent.
    pub const POINTER_CHASING: VbProperties = VbProperties(1 << 20);
    /// The program expects the VB to stay resident (avoid swapping).
    pub const PINNED: VbProperties = VbProperties(1 << 21);

    /// Builds a property set from its raw bitvector encoding.
    #[inline]
    pub const fn from_bits(bits: u32) -> VbProperties {
        VbProperties(bits)
    }

    /// The raw bitvector as carried by `enable_vb`.
    #[inline]
    pub const fn to_bits(self) -> u32 {
        self.0
    }

    /// Whether every bit of `other` is set in `self`.
    #[inline]
    pub const fn contains(self, other: VbProperties) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether any bit of `other` is set in `self`.
    #[inline]
    pub const fn intersects(self, other: VbProperties) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether no property is set.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for VbProperties {
    type Output = VbProperties;
    fn bitor(self, rhs: VbProperties) -> VbProperties {
        VbProperties(self.0 | rhs.0)
    }
}

impl BitOrAssign for VbProperties {
    fn bitor_assign(&mut self, rhs: VbProperties) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for VbProperties {
    type Output = VbProperties;
    fn bitand(self, rhs: VbProperties) -> VbProperties {
        VbProperties(self.0 & rhs.0)
    }
}

impl fmt::Display for VbProperties {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [(u32, &str); 13] = [
            (1 << 0, "code"),
            (1 << 1, "read-only"),
            (1 << 2, "kernel"),
            (1 << 3, "compressible"),
            (1 << 4, "persistent"),
            (1 << 5, "file-backed"),
            (1 << 6, "library-data"),
            (1 << 16, "latency-sensitive"),
            (1 << 17, "bandwidth-sensitive"),
            (1 << 18, "error-tolerant"),
            (1 << 19, "streaming"),
            (1 << 20, "pointer-chasing"),
            (1 << 21, "pinned"),
        ];
        if self.is_empty() {
            return f.write_str("(none)");
        }
        let mut first = true;
        for (bit, name) in NAMES {
            if self.0 & bit != 0 {
                if !first {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        Ok(())
    }
}

/// A lightweight descriptor pairing a VBUID with its property bitvector.
///
/// This is the value the OS hands around when reasoning about a VB; the
/// authoritative copy of the properties lives in the VB Info Table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VbDescriptor {
    /// System-wide unique ID of the VB.
    pub vbuid: Vbuid,
    /// Property bitvector supplied at `enable_vb` time.
    pub properties: VbProperties,
}

impl VbDescriptor {
    /// Creates a descriptor.
    pub fn new(vbuid: Vbuid, properties: VbProperties) -> Self {
        Self { vbuid, properties }
    }

    /// Size of the described VB in bytes.
    pub fn bytes(&self) -> u64 {
        self.vbuid.bytes()
    }
}

impl fmt::Display for VbDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.vbuid, self.properties)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::SizeClass;

    #[test]
    fn bits_roundtrip() {
        let p = VbProperties::CODE | VbProperties::LATENCY_SENSITIVE;
        assert_eq!(VbProperties::from_bits(p.to_bits()), p);
    }

    #[test]
    fn contains_and_intersects() {
        let p = VbProperties::KERNEL | VbProperties::READ_ONLY;
        assert!(p.contains(VbProperties::KERNEL));
        assert!(!p.contains(VbProperties::KERNEL | VbProperties::CODE));
        assert!(p.intersects(VbProperties::KERNEL | VbProperties::CODE));
        assert!(!p.intersects(VbProperties::STREAMING));
        assert!(VbProperties::NONE.is_empty());
    }

    #[test]
    fn display_lists_set_bits() {
        let p = VbProperties::CODE | VbProperties::KERNEL;
        assert_eq!(p.to_string(), "code|kernel");
        assert_eq!(VbProperties::NONE.to_string(), "(none)");
        assert_eq!(VbProperties::BANDWIDTH_SENSITIVE.to_string(), "bandwidth-sensitive");
    }

    #[test]
    fn descriptor_reports_size() {
        let d =
            VbDescriptor::new(Vbuid::new(SizeClass::Gib4, 6), VbProperties::BANDWIDTH_SENSITIVE);
        assert_eq!(d.bytes(), 4 << 30);
        assert!(d.to_string().contains("bandwidth-sensitive"));
    }
}
