//! Magazine-style order-0 frame cache fronting the buddy allocator.
//!
//! Every allocating data-plane operation — first-touch stores, fault-ins,
//! copy-on-write resolutions, and the constant request/release churn of a
//! service under load — asks the buddy allocator for exactly one 4 KiB
//! frame. The buddy pays split/coalesce bookkeeping (ordered-set inserts
//! and removals across order lists) for what is overwhelmingly a
//! fixed-size workload, and it does so under the shard lock, so every
//! cycle spent there lengthens the critical section of the whole shard.
//!
//! [`FrameCache`] keeps that common cycle out of the buddy entirely. It is
//! the classic magazine design (Bonwick's slab/magazine allocator): two
//! bounded LIFO stacks of order-0 frames — the *loaded* magazine served
//! first and a *previous* magazine swapped in depot-style when the loaded
//! one runs empty or full — refilled in contiguous batches via
//! [`BuddyAllocator::allocate_split`] and drained back with bulk frees.
//! An allocate/free churn cycle that stays within the magazines touches
//! two `Vec` push/pops and nothing else.
//!
//! Cached frames remain registered as *allocated* order-0 blocks inside
//! the buddy, so the buddy's own invariants (double-free panics, merge
//! bounds) keep holding; the MTL's `free_frames()` gauge stays exact by
//! summing `buddy free + cache len`.
//!
//! # The headroom rule
//!
//! The cache must never make the system fail an allocation that the bare
//! buddy would have satisfied. Translation-table frames are allocated
//! *inside* the buddy (by `TranslationStructure::set_entry` and friends),
//! below the cache, so the cache only holds frames while the buddy keeps
//! a cushion of `headroom` free frames of its own: refills never pull the
//! buddy below the cushion, and frees route straight to the buddy
//! whenever it is short. Under memory pressure the cache therefore drains
//! and becomes inert — pressure, ballooning, and cross-shard donation see
//! every free frame (the MTL additionally flushes the cache outright at
//! those entry points).

use crate::buddy::{BuddyAllocator, Order};
use crate::phys::Frame;

/// Counters for one [`FrameCache`] (folded into
/// [`crate::stats::MtlStats`] by the MTL).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameCacheStats {
    /// Allocations served from a magazine (no buddy order-list work).
    pub cache_hits: u64,
    /// Allocations that had to go to the buddy (magazines empty and the
    /// headroom rule forbade — or the buddy could not fund — a refill).
    pub cache_misses: u64,
    /// Batch refills pulled from the buddy into the loaded magazine.
    pub refills: u64,
    /// Times the cache was flushed back into the buddy by policy
    /// (pressure, donation, control-plane ops needing exact occupancy).
    pub flushes: u64,
    /// Full magazines returned to the buddy in bulk on the free path.
    pub batch_frees: u64,
}

/// A per-MTL magazine cache of order-0 frames in front of the buddy.
#[derive(Debug)]
pub struct FrameCache {
    enabled: bool,
    /// Capacity of each magazine, in frames.
    magazine: usize,
    /// Upper bound on frames pulled from the buddy per refill.
    refill_batch: usize,
    /// The magazine currently served. LIFO: the most recently freed frame
    /// is handed out next (warmest frame, tightest reuse).
    loaded: Vec<Frame>,
    /// The depot magazine swapped in when `loaded` runs dry or full.
    previous: Vec<Frame>,
    stats: FrameCacheStats,
}

impl FrameCache {
    /// A cache with the given magazine capacity and refill batch;
    /// `enabled = false` turns every call into a buddy pass-through (the
    /// A/B baseline — no counters move).
    pub fn new(enabled: bool, magazine: usize, refill_batch: usize) -> Self {
        let magazine = magazine.max(1);
        Self {
            enabled,
            magazine,
            refill_batch: refill_batch.clamp(1, magazine),
            loaded: Vec::with_capacity(magazine),
            previous: Vec::with_capacity(magazine),
            stats: FrameCacheStats::default(),
        }
    }

    /// Whether the cache fronts the buddy at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Frames currently held across both magazines.
    pub fn len(&self) -> u64 {
        (self.loaded.len() + self.previous.len()) as u64
    }

    /// Whether both magazines are empty.
    pub fn is_empty(&self) -> bool {
        self.loaded.is_empty() && self.previous.is_empty()
    }

    /// Accumulated counters.
    pub fn stats(&self) -> FrameCacheStats {
        self.stats
    }

    /// Clears the counters (simulation warm-up boundary).
    pub fn reset_stats(&mut self) {
        self.stats = FrameCacheStats::default();
    }

    /// Allocates one order-0 frame: loaded magazine, then depot swap, then
    /// a batch refill from the buddy (only while the buddy keeps
    /// `headroom` frames of its own), then the bare buddy.
    pub fn allocate(&mut self, buddy: &mut BuddyAllocator, headroom: u64) -> Option<Frame> {
        if !self.enabled {
            return buddy.allocate(0);
        }
        if let Some(frame) = self.loaded.pop() {
            self.stats.cache_hits += 1;
            return Some(frame);
        }
        if !self.previous.is_empty() {
            std::mem::swap(&mut self.loaded, &mut self.previous);
            self.stats.cache_hits += 1;
            return self.loaded.pop();
        }
        self.stats.cache_misses += 1;
        let free = buddy.free_frames();
        if free > headroom {
            let batch = (self.refill_batch as u64).min(free - headroom).max(1);
            self.refill(buddy, batch);
            self.stats.refills += 1;
            if let Some(frame) = self.loaded.pop() {
                return Some(frame);
            }
        }
        buddy.allocate(0)
    }

    /// Pulls up to `batch` frames from the buddy into the loaded magazine,
    /// preferring one contiguous power-of-two grab (`allocate_split`
    /// registers each frame as an individual order-0 allocation, so the
    /// cache can hand them back one at a time).
    fn refill(&mut self, buddy: &mut BuddyAllocator, batch: u64) {
        let mut remaining = batch;
        let order = 63 - batch.leading_zeros().min(63);
        if order > 0 {
            if let Some(base) = buddy.allocate_split(order as Order) {
                // LIFO pops hand out ascending addresses this way.
                for i in (0..(1u64 << order)).rev() {
                    self.loaded.push(Frame(base.0 + i));
                }
                remaining -= 1u64 << order;
            }
        }
        for _ in 0..remaining {
            match buddy.allocate(0) {
                Some(frame) => self.loaded.push(frame),
                None => break,
            }
        }
    }

    /// Frees one order-0 frame into the cache — unless the buddy is below
    /// its headroom cushion (the frame then goes straight back) or the
    /// cache is disabled. A full loaded magazine swaps with the depot; if
    /// both are full the depot magazine is bulk-freed to the buddy first.
    pub fn free(&mut self, buddy: &mut BuddyAllocator, frame: Frame, headroom: u64) {
        if !self.enabled || buddy.free_frames() < headroom {
            buddy.free(frame, 0);
            return;
        }
        if self.loaded.len() >= self.magazine {
            if self.previous.len() >= self.magazine {
                for f in self.previous.drain(..) {
                    buddy.free(f, 0);
                }
                self.stats.batch_frees += 1;
            }
            std::mem::swap(&mut self.loaded, &mut self.previous);
        }
        self.loaded.push(frame);
    }

    /// Returns every cached frame to the buddy. Called before any
    /// operation that must see exact buddy occupancy (pressure reclaim,
    /// cross-shard donation, control-plane ops allocating table frames in
    /// bulk). Returns how many frames moved.
    pub fn flush(&mut self, buddy: &mut BuddyAllocator) -> u64 {
        let moved = self.len();
        if moved == 0 {
            return 0;
        }
        for f in self.loaded.drain(..).chain(self.previous.drain(..)) {
            buddy.free(f, 0);
        }
        self.stats.flushes += 1;
        moved
    }

    /// Moves cached frames into the buddy until its free pool reaches
    /// `target` or the cache empties — the cheapest replenishment source,
    /// tried before anyone's reservation is raided. Returns frames moved.
    pub fn drain_to(&mut self, buddy: &mut BuddyAllocator, target: u64) -> u64 {
        let mut moved = 0;
        while buddy.free_frames() < target {
            let Some(frame) = self.loaded.pop().or_else(|| self.previous.pop()) else { break };
            buddy.free(frame, 0);
            moved += 1;
        }
        if moved > 0 {
            self.stats.flushes += 1;
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> FrameCache {
        FrameCache::new(true, 8, 4)
    }

    #[test]
    fn churn_cycle_stays_inside_the_magazines() {
        let mut buddy = BuddyAllocator::new(256);
        let mut c = cache();
        let f = c.allocate(&mut buddy, 16).unwrap();
        // First allocation missed and refilled a batch.
        assert_eq!(c.stats().cache_misses, 1);
        assert_eq!(c.stats().refills, 1);
        let buddy_free = buddy.free_frames();
        for _ in 0..100 {
            c.free(&mut buddy, f, 16);
            assert_eq!(c.allocate(&mut buddy, 16), Some(f), "LIFO returns the warmest frame");
        }
        assert_eq!(buddy.free_frames(), buddy_free, "churn never touched the buddy");
        assert_eq!(c.stats().cache_hits, 100);
        assert_eq!(c.stats().cache_misses, 1);
    }

    #[test]
    fn conservation_across_refill_and_flush() {
        let mut buddy = BuddyAllocator::new(256);
        let mut c = cache();
        let frames: Vec<Frame> = (0..20).map(|_| c.allocate(&mut buddy, 16).unwrap()).collect();
        assert_eq!(buddy.free_frames() + c.len(), 256 - 20);
        for f in frames {
            c.free(&mut buddy, f, 16);
        }
        assert_eq!(buddy.free_frames() + c.len(), 256);
        c.flush(&mut buddy);
        assert!(c.is_empty());
        assert_eq!(buddy.free_frames(), 256, "every frame merged back");
        assert_eq!(c.stats().flushes, 1);
    }

    #[test]
    fn overflowing_both_magazines_bulk_frees_the_depot() {
        let mut buddy = BuddyAllocator::new(256);
        let mut c = cache();
        let frames: Vec<Frame> = (0..24).map(|_| buddy.allocate(0).unwrap()).collect();
        for f in frames {
            c.free(&mut buddy, f, 16);
        }
        // 24 frees into 2×8 magazines: one depot bulk-free of 8 frames.
        assert_eq!(c.stats().batch_frees, 1);
        assert_eq!(c.len(), 16);
        assert_eq!(buddy.free_frames(), 256 - 24 + 8);
    }

    #[test]
    fn headroom_keeps_the_cache_inert_under_pressure() {
        let mut buddy = BuddyAllocator::new(20);
        let mut c = cache();
        // Only 20 frames with headroom 16: refills may pull at most down
        // to the cushion, and frees below the cushion bypass the cache.
        let a = c.allocate(&mut buddy, 16).unwrap();
        assert!(buddy.free_frames() >= 16, "refill respected the cushion");
        while !c.is_empty() {
            c.allocate(&mut buddy, 16).unwrap();
        }
        while buddy.free_frames() > 10 {
            buddy.allocate(0).unwrap();
        }
        c.free(&mut buddy, a, 16);
        assert_eq!(c.len(), 0, "free below headroom went straight to the buddy");
        // With the buddy short and the cache empty, allocation falls
        // through to the bare buddy.
        let before = c.stats().refills;
        assert!(c.allocate(&mut buddy, 16).is_some());
        assert_eq!(c.stats().refills, before, "no refill below the cushion");
    }

    #[test]
    fn drain_to_stops_at_the_target() {
        let mut buddy = BuddyAllocator::new(256);
        let mut c = cache();
        let held: Vec<Frame> = (0..240).map(|_| buddy.allocate(0).unwrap()).collect();
        for f in held.iter().take(12) {
            c.free(&mut buddy, *f, 16);
        }
        assert_eq!(c.len(), 12);
        let free = buddy.free_frames();
        assert_eq!(c.drain_to(&mut buddy, free + 5), 5);
        assert_eq!(c.len(), 7);
        assert_eq!(buddy.free_frames(), free + 5);
    }

    #[test]
    fn disabled_cache_is_a_pass_through() {
        let mut buddy = BuddyAllocator::new(64);
        let mut c = FrameCache::new(false, 8, 4);
        let f = c.allocate(&mut buddy, 16).unwrap();
        assert_eq!(buddy.free_frames(), 63);
        c.free(&mut buddy, f, 16);
        assert_eq!(buddy.free_frames(), 64);
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats(), FrameCacheStats::default(), "baseline moves no counters");
    }
}
