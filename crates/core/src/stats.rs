//! Counters collected by the Memory Translation Layer.

/// MTL statistics: translation traffic, optimization hit counts, and
/// memory-management events.
///
/// The evaluation (§7.2) is driven by exactly these counters: the number of
/// translation requests reaching the MTL, how many were filtered by the MTL
/// TLB, how many table accesses the walks cost, and how many main-memory
/// accesses were avoided outright by delayed allocation's zero-line returns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MtlStats {
    /// Translation requests received (LLC misses + dirty writebacks).
    pub translation_requests: u64,
    /// Requests satisfied by the MTL TLBs (page-grain or whole-VB).
    pub tlb_hits: u64,
    /// Requests that needed a translation-structure walk.
    pub walks: u64,
    /// Total table-entry memory accesses performed by walks.
    pub walk_table_accesses: u64,
    /// VIT cache hits while locating translation structures.
    pub vit_cache_hits: u64,
    /// VIT cache misses (each costs one memory access to the VIT).
    pub vit_cache_misses: u64,
    /// Reads of never-allocated regions answered with a zero line (§5.1).
    pub zero_line_returns: u64,
    /// 4 KiB regions allocated.
    pub pages_allocated: u64,
    /// Allocations deferred to a dirty-eviction writeback (§5.1).
    pub delayed_allocations: u64,
    /// Whole-VB early reservations that succeeded contiguously (§5.3).
    pub reservations_full: u64,
    /// Early reservations that fell back to sparse extents (§5.3).
    pub reservations_partial: u64,
    /// Frames taken from another VB's reservation under memory pressure.
    pub frames_stolen: u64,
    /// Copy-on-write page copies performed after `clone_vb`.
    pub cow_copies: u64,
    /// Pages moved to the backing store.
    pub pages_swapped_out: u64,
    /// Pages brought back from the backing store.
    pub pages_swapped_in: u64,
    /// VBs promoted to a larger size class.
    pub promotions: u64,
    /// VBs cloned copy-on-write (`clone_vb`, §4.4).
    pub vbs_cloned: u64,
    /// VBs whose contents were migrated to a VB homed elsewhere (§6.2);
    /// counted on the source MTL.
    pub vbs_migrated: u64,
    /// Direct-mapped VBs demoted to table-based structures (reservation
    /// stolen or contiguity broken).
    pub demotions: u64,
    /// Pages evicted by the reclaim policy (clock / second-chance) to
    /// relieve memory pressure (§3.4).
    pub evictions: u64,
    /// Swapped-out pages whose payload had to be written back to the
    /// backing store (all-zero pages are dropped for free).
    pub writebacks: u64,
    /// Translations that found the page swapped out and faulted it back
    /// into a frame.
    pub faults_in: u64,
    /// Order-0 allocations served from the magazine frame cache without
    /// touching the buddy allocator (see [`crate::frame_cache`]).
    pub frame_cache_hits: u64,
    /// Order-0 allocations the frame cache had to send to the buddy.
    pub frame_cache_misses: u64,
    /// Batch refills the frame cache pulled from the buddy.
    pub frame_cache_refills: u64,
    /// Times the frame cache was flushed back into the buddy by policy
    /// (pressure, donation, control-plane table allocation).
    pub frame_cache_flushes: u64,
    /// Full magazines the frame cache returned to the buddy in bulk.
    pub frame_cache_batch_frees: u64,
}

impl MtlStats {
    /// Accumulates another stats block into this one, field by field.
    ///
    /// Sharded deployments (`vbi-service`) run one MTL per shard; merging
    /// the per-shard counters yields the same totals a single MTL would
    /// have reported for the combined traffic.
    pub fn merge(&mut self, other: &MtlStats) {
        let MtlStats {
            translation_requests,
            tlb_hits,
            walks,
            walk_table_accesses,
            vit_cache_hits,
            vit_cache_misses,
            zero_line_returns,
            pages_allocated,
            delayed_allocations,
            reservations_full,
            reservations_partial,
            frames_stolen,
            cow_copies,
            pages_swapped_out,
            pages_swapped_in,
            promotions,
            vbs_cloned,
            vbs_migrated,
            demotions,
            evictions,
            writebacks,
            faults_in,
            frame_cache_hits,
            frame_cache_misses,
            frame_cache_refills,
            frame_cache_flushes,
            frame_cache_batch_frees,
        } = other;
        self.translation_requests += translation_requests;
        self.tlb_hits += tlb_hits;
        self.walks += walks;
        self.walk_table_accesses += walk_table_accesses;
        self.vit_cache_hits += vit_cache_hits;
        self.vit_cache_misses += vit_cache_misses;
        self.zero_line_returns += zero_line_returns;
        self.pages_allocated += pages_allocated;
        self.delayed_allocations += delayed_allocations;
        self.reservations_full += reservations_full;
        self.reservations_partial += reservations_partial;
        self.frames_stolen += frames_stolen;
        self.cow_copies += cow_copies;
        self.pages_swapped_out += pages_swapped_out;
        self.pages_swapped_in += pages_swapped_in;
        self.promotions += promotions;
        self.vbs_cloned += vbs_cloned;
        self.vbs_migrated += vbs_migrated;
        self.demotions += demotions;
        self.evictions += evictions;
        self.writebacks += writebacks;
        self.faults_in += faults_in;
        self.frame_cache_hits += frame_cache_hits;
        self.frame_cache_misses += frame_cache_misses;
        self.frame_cache_refills += frame_cache_refills;
        self.frame_cache_flushes += frame_cache_flushes;
        self.frame_cache_batch_frees += frame_cache_batch_frees;
    }

    /// Fraction of translation requests served without a walk.
    pub fn tlb_hit_rate(&self) -> f64 {
        if self.translation_requests == 0 {
            return 1.0;
        }
        self.tlb_hits as f64 / self.translation_requests as f64
    }

    /// Mean table accesses per walk (0 when no walk happened).
    pub fn accesses_per_walk(&self) -> f64 {
        if self.walks == 0 {
            return 0.0;
        }
        self.walk_table_accesses as f64 / self.walks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = MtlStats::default();
        assert_eq!(s.tlb_hit_rate(), 1.0);
        assert_eq!(s.accesses_per_walk(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = MtlStats {
            translation_requests: 10,
            tlb_hits: 9,
            walks: 1,
            walk_table_accesses: 3,
            ..Default::default()
        };
        assert!((s.tlb_hit_rate() - 0.9).abs() < 1e-12);
        assert!((s.accesses_per_walk() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_every_field() {
        let a = MtlStats {
            translation_requests: 1,
            tlb_hits: 2,
            walks: 3,
            walk_table_accesses: 4,
            vit_cache_hits: 5,
            vit_cache_misses: 6,
            zero_line_returns: 7,
            pages_allocated: 8,
            delayed_allocations: 9,
            reservations_full: 10,
            reservations_partial: 11,
            frames_stolen: 12,
            cow_copies: 13,
            pages_swapped_out: 14,
            pages_swapped_in: 15,
            promotions: 16,
            vbs_cloned: 17,
            vbs_migrated: 18,
            demotions: 19,
            evictions: 20,
            writebacks: 21,
            faults_in: 22,
            frame_cache_hits: 23,
            frame_cache_misses: 24,
            frame_cache_refills: 25,
            frame_cache_flushes: 26,
            frame_cache_batch_frees: 27,
        };
        let mut merged = a;
        merged.merge(&a);
        assert_eq!(merged.translation_requests, 2);
        assert_eq!(merged.walk_table_accesses, 8);
        assert_eq!(merged.vbs_cloned, 34);
        assert_eq!(merged.vbs_migrated, 36);
        assert_eq!(merged.demotions, 38);
        assert_eq!(merged.evictions, 40);
        assert_eq!(merged.writebacks, 42);
        assert_eq!(merged.faults_in, 44);
        assert_eq!(merged.frame_cache_hits, 46);
        assert_eq!(merged.frame_cache_misses, 48);
        assert_eq!(merged.frame_cache_refills, 50);
        assert_eq!(merged.frame_cache_flushes, 52);
        assert_eq!(merged.frame_cache_batch_frees, 54);
        // Merging the zero block is the identity.
        let mut b = a;
        b.merge(&MtlStats::default());
        assert_eq!(b, a);
    }

    #[test]
    fn merge_equals_a_combined_runs_counters() {
        use crate::addr::SizeClass;
        use crate::config::VbiConfig;
        use crate::mtl::Mtl;
        use crate::vb::VbProperties;

        let config = VbiConfig { phys_frames: 4096, ..VbiConfig::vbi_full() };
        let setup = |m: &mut Mtl| {
            let a = m.find_free_vb(SizeClass::Kib128).unwrap();
            m.enable_vb(a, VbProperties::NONE).unwrap();
            let b = m.find_free_vb(SizeClass::Mib4).unwrap();
            m.enable_vb(b, VbProperties::NONE).unwrap();
            (a, b)
        };
        let phase_a = |m: &mut Mtl, vb: crate::addr::Vbuid| {
            for page in 0..8u64 {
                m.write_u64(vb.address(page << 12).unwrap(), page).unwrap();
            }
            for page in 0..8u64 {
                assert_eq!(m.read_u64(vb.address(page << 12).unwrap()).unwrap(), page);
            }
        };
        let phase_b = |m: &mut Mtl, vb: crate::addr::Vbuid| {
            // Reads of untouched pages take the zero-line path; sparse
            // writes then allocate.
            for page in (0..64u64).step_by(7) {
                assert_eq!(m.read_u64(vb.address(page << 12).unwrap()).unwrap(), 0);
            }
            for page in (0..64u64).step_by(13) {
                m.write_u64(vb.address(page << 12).unwrap(), page).unwrap();
            }
        };
        let phase_c = |m: &mut Mtl, src: crate::addr::Vbuid| {
            // COW-clone `src`, then migrate its contents into a fresh
            // same-class VB (the 1-MTL degenerate case) — the ops behind
            // the `vbs_cloned` / `vbs_migrated` counters.
            let clone = m.find_free_vb(src.size_class()).unwrap();
            m.enable_vb(clone, VbProperties::NONE).unwrap();
            m.clone_vb(src, clone).unwrap();
            let dest = m.find_free_vb(src.size_class()).unwrap();
            m.enable_vb(dest, VbProperties::NONE).unwrap();
            Mtl::migrate_contents(m, None, src, dest).unwrap();
            assert_eq!(m.read_u64(dest.address(3 << 12).unwrap()).unwrap(), 3);
            dest
        };
        let phase_d = |m: &mut Mtl, b: crate::addr::Vbuid, dest: crate::addr::Vbuid| {
            // Pressure phase: policy-evict a few resident pages, then touch
            // every page that could have been the victim so the evicted
            // ones fault back in.
            let evicted = m.reclaim_frames(4);
            assert_eq!(evicted, 4);
            for page in (0..64u64).step_by(13) {
                assert_eq!(m.read_u64(b.address(page << 12).unwrap()).unwrap(), page);
            }
            for page in 1..8u64 {
                assert_eq!(m.read_u64(dest.address(page << 12).unwrap()).unwrap(), page);
            }
        };

        // One MTL runs all phases back to back: the combined counters.
        let mut combined = Mtl::new(config.clone());
        let (a, b) = setup(&mut combined);
        phase_a(&mut combined, a);
        phase_b(&mut combined, b);
        let dest = phase_c(&mut combined, a);
        phase_d(&mut combined, b, dest);
        let total = combined.stats();

        // An identical MTL snapshots per phase (reset_stats clears only the
        // counters, not the functional state) and merges the snapshots.
        let mut split = Mtl::new(config);
        let (a, b) = setup(&mut split);
        phase_a(&mut split, a);
        let first = split.stats();
        split.reset_stats();
        phase_b(&mut split, b);
        let second = split.stats();
        split.reset_stats();
        let dest = phase_c(&mut split, a);
        let third = split.stats();
        split.reset_stats();
        phase_d(&mut split, b, dest);
        let mut merged = first;
        merged.merge(&second);
        merged.merge(&third);
        merged.merge(&split.stats());

        assert_eq!(merged, total);
        assert!(total.translation_requests > 0 && total.zero_line_returns > 0);
        assert_eq!(total.vbs_cloned, 1);
        assert_eq!(total.vbs_migrated, 1);
        assert_eq!(total.evictions, 4);
        assert_eq!(total.faults_in, 4, "every evicted page was touched again");
        assert!(total.writebacks > 0, "evicted payloads were written back");
    }
}
