//! Counters collected by the Memory Translation Layer.

/// MTL statistics: translation traffic, optimization hit counts, and
/// memory-management events.
///
/// The evaluation (§7.2) is driven by exactly these counters: the number of
/// translation requests reaching the MTL, how many were filtered by the MTL
/// TLB, how many table accesses the walks cost, and how many main-memory
/// accesses were avoided outright by delayed allocation's zero-line returns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MtlStats {
    /// Translation requests received (LLC misses + dirty writebacks).
    pub translation_requests: u64,
    /// Requests satisfied by the MTL TLBs (page-grain or whole-VB).
    pub tlb_hits: u64,
    /// Requests that needed a translation-structure walk.
    pub walks: u64,
    /// Total table-entry memory accesses performed by walks.
    pub walk_table_accesses: u64,
    /// VIT cache hits while locating translation structures.
    pub vit_cache_hits: u64,
    /// VIT cache misses (each costs one memory access to the VIT).
    pub vit_cache_misses: u64,
    /// Reads of never-allocated regions answered with a zero line (§5.1).
    pub zero_line_returns: u64,
    /// 4 KiB regions allocated.
    pub pages_allocated: u64,
    /// Allocations deferred to a dirty-eviction writeback (§5.1).
    pub delayed_allocations: u64,
    /// Whole-VB early reservations that succeeded contiguously (§5.3).
    pub reservations_full: u64,
    /// Early reservations that fell back to sparse extents (§5.3).
    pub reservations_partial: u64,
    /// Frames taken from another VB's reservation under memory pressure.
    pub frames_stolen: u64,
    /// Copy-on-write page copies performed after `clone_vb`.
    pub cow_copies: u64,
    /// Pages moved to the backing store.
    pub pages_swapped_out: u64,
    /// Pages brought back from the backing store.
    pub pages_swapped_in: u64,
    /// VBs promoted to a larger size class.
    pub promotions: u64,
    /// Direct-mapped VBs demoted to table-based structures (reservation
    /// stolen or contiguity broken).
    pub demotions: u64,
}

impl MtlStats {
    /// Fraction of translation requests served without a walk.
    pub fn tlb_hit_rate(&self) -> f64 {
        if self.translation_requests == 0 {
            return 1.0;
        }
        self.tlb_hits as f64 / self.translation_requests as f64
    }

    /// Mean table accesses per walk (0 when no walk happened).
    pub fn accesses_per_walk(&self) -> f64 {
        if self.walks == 0 {
            return 0.0;
        }
        self.walk_table_accesses as f64 / self.walks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = MtlStats::default();
        assert_eq!(s.tlb_hit_rate(), 1.0);
        assert_eq!(s.accesses_per_walk(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = MtlStats {
            translation_requests: 10,
            tlb_hits: 9,
            walks: 1,
            walk_table_accesses: 3,
            ..Default::default()
        };
        assert!((s.tlb_hit_rate() - 0.9).abs() < 1e-12);
        assert!((s.accesses_per_walk() - 3.0).abs() < 1e-12);
    }
}
