//! Buddy allocator for physical frames.
//!
//! The MTL "uses the Buddy algorithm to manage free and reserved regions of
//! different size classes" (§5.3). This is a classic binary-buddy allocator
//! over 4 KiB frames: blocks are powers of two frames, splits are lazy, and
//! frees eagerly merge with the buddy block. Reservations (early reservation,
//! §5.3) are layered on top by the MTL — from the allocator's point of view a
//! reserved region is simply an allocated block the MTL hands back piecemeal.

use std::collections::{BTreeSet, HashMap};

use crate::phys::Frame;

/// A power-of-two block order: a block of order `k` spans `2^k` frames.
pub type Order = u32;

/// Classic binary-buddy allocator over physical frames.
///
/// # Examples
///
/// ```
/// use vbi_core::buddy::BuddyAllocator;
///
/// let mut buddy = BuddyAllocator::new(1024);
/// let a = buddy.allocate(0).expect("one frame");
/// let b = buddy.allocate(4).expect("sixteen frames");
/// assert_eq!(buddy.free_frames(), 1024 - 1 - 16);
/// buddy.free(a, 0);
/// buddy.free(b, 4);
/// assert_eq!(buddy.free_frames(), 1024);
/// ```
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    total_frames: u64,
    free_frames: u64,
    /// Free block start frames, indexed by order. `BTreeSet` keeps iteration
    /// deterministic (lowest address first), which keeps simulations
    /// reproducible run to run.
    free_lists: Vec<BTreeSet<u64>>,
    /// Currently allocated blocks (start frame -> order), used to validate
    /// frees and to answer occupancy queries.
    allocated: HashMap<u64, Order>,
}

impl BuddyAllocator {
    /// Creates an allocator managing frames `0..total_frames`.
    ///
    /// `total_frames` need not be a power of two; the range is covered by
    /// maximal naturally aligned blocks.
    ///
    /// # Panics
    ///
    /// Panics if `total_frames` is zero.
    pub fn new(total_frames: u64) -> Self {
        assert!(total_frames > 0, "buddy allocator needs at least one frame");
        let max_order = 64 - total_frames.leading_zeros();
        let mut free_lists: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); max_order as usize + 1];

        // Greedily tile [0, total_frames) with maximal aligned blocks.
        let mut start = 0u64;
        while start < total_frames {
            let align_order = if start == 0 { max_order } else { start.trailing_zeros() };
            let remaining = total_frames - start;
            let fit_order = 63 - remaining.leading_zeros().min(63);
            let order = align_order.min(fit_order).min(max_order);
            free_lists[order as usize].insert(start);
            start += 1u64 << order;
        }

        Self { total_frames, free_frames: total_frames, free_lists, allocated: HashMap::new() }
    }

    /// Total frames under management.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Frames currently free.
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// Frames currently allocated.
    pub fn allocated_frames(&self) -> u64 {
        self.total_frames - self.free_frames
    }

    /// The largest order with a free block available, or `None` when empty.
    pub fn largest_free_order(&self) -> Option<Order> {
        (0..self.free_lists.len() as Order).rev().find(|&o| !self.free_lists[o as usize].is_empty())
    }

    /// Whether a contiguous block of `order` can be allocated right now.
    pub fn can_allocate(&self, order: Order) -> bool {
        self.free_lists.iter().enumerate().any(|(o, l)| o as Order >= order && !l.is_empty())
    }

    /// Allocates a naturally aligned block of `2^order` frames.
    ///
    /// Returns the first frame of the block, or `None` when no contiguous
    /// block of that size exists (the caller may then fall back to smaller
    /// orders or trigger reservation stealing / swapping).
    pub fn allocate(&mut self, order: Order) -> Option<Frame> {
        let max = self.free_lists.len() as Order;
        if order >= max {
            return None;
        }
        // Find the smallest free block that fits, then split it down.
        let mut found = None;
        for o in order..max {
            if let Some(&start) = self.free_lists[o as usize].iter().next() {
                found = Some((start, o));
                break;
            }
        }
        let (start, mut o) = found?;
        self.free_lists[o as usize].remove(&start);
        while o > order {
            o -= 1;
            // Keep the low half, release the high half.
            self.free_lists[o as usize].insert(start + (1u64 << o));
        }
        self.free_frames -= 1u64 << order;
        self.allocated.insert(start, order);
        Some(Frame(start))
    }

    /// Allocates the largest available block no bigger than `max_order`.
    ///
    /// Used by early reservation when the full VB does not fit contiguously:
    /// the MTL then "reserves blocks of the largest size class that can be
    /// allocated contiguously" (§5.3).
    pub fn allocate_best(&mut self, max_order: Order) -> Option<(Frame, Order)> {
        let best = (0..=max_order.min(self.free_lists.len() as Order - 1))
            .rev()
            .find(|&o| !self.free_lists[o as usize].is_empty() || self.can_split_down_to(o))?;
        self.allocate(best).map(|f| (f, best))
    }

    fn can_split_down_to(&self, order: Order) -> bool {
        self.free_lists.iter().enumerate().any(|(o, l)| o as Order >= order && !l.is_empty())
    }

    /// Allocates a contiguous block of `2^order` frames but registers every
    /// frame as an *individual* order-0 allocation, so each can later be
    /// freed independently with `free(frame, 0)`.
    ///
    /// This is the primitive behind early reservation (§5.3): the MTL grabs
    /// a whole contiguous region for a VB, then hands frames out (or lets
    /// other VBs steal them) one at a time; buddy merging reassembles the
    /// region as frames come back.
    pub fn allocate_split(&mut self, order: Order) -> Option<Frame> {
        let base = self.allocate(order)?;
        self.allocated.remove(&base.0);
        for i in 0..(1u64 << order) {
            self.allocated.insert(base.0 + i, 0);
        }
        Some(base)
    }

    /// Frees a block previously returned by [`BuddyAllocator::allocate`],
    /// merging with its buddy as far as possible.
    ///
    /// # Panics
    ///
    /// Panics on a free that does not match a live allocation (double free,
    /// wrong order, or wrong address) — these indicate MTL bugs and must not
    /// be silently absorbed.
    pub fn free(&mut self, frame: Frame, order: Order) {
        match self.allocated.remove(&frame.0) {
            Some(o) if o == order => {}
            Some(o) => panic!("free of {frame} with order {order}, allocated with order {o}"),
            None => panic!("free of unallocated block at {frame}"),
        }
        self.free_frames += 1u64 << order;

        let mut start = frame.0;
        let mut order = order;
        let max = self.free_lists.len() as Order - 1;
        while order < max {
            let buddy = start ^ (1u64 << order);
            // Merge only if the buddy is wholly inside the managed range and
            // currently free at the same order.
            if buddy + (1u64 << order) <= self.total_frames
                && self.free_lists[order as usize].remove(&buddy)
            {
                start = start.min(buddy);
                order += 1;
            } else {
                break;
            }
        }
        self.free_lists[order as usize].insert(start);
    }

    /// Whether `frame` is the start of a live allocation of `order`.
    pub fn is_allocated(&self, frame: Frame, order: Order) -> bool {
        self.allocated.get(&frame.0) == Some(&order)
    }

    /// Permanently removes up to `count` free frames from circulation and
    /// returns how many were actually retired.
    ///
    /// Retired frames stay registered as allocated order-0 blocks forever, so
    /// the managed range and the buddy-merge bounds are unchanged — the
    /// capacity simply migrates to whichever allocator [`BuddyAllocator::grow`]s
    /// by the same amount. This is the donor half of cross-shard frame
    /// borrowing.
    pub fn retire_free(&mut self, count: u64) -> u64 {
        let mut retired = 0;
        while retired < count {
            match self.allocate(0) {
                Some(_) => retired += 1,
                None => break,
            }
        }
        retired
    }

    /// Extends the managed range by `count` fresh frames, all immediately
    /// free. The adoptee half of cross-shard frame borrowing: new frame
    /// indices are minted at the end of the existing range.
    pub fn grow(&mut self, count: u64) {
        for _ in 0..count {
            let idx = self.total_frames;
            self.total_frames = idx + 1;
            if self.free_lists.len() < (64 - self.total_frames.leading_zeros()) as usize + 1 {
                self.free_lists.push(BTreeSet::new());
            }
            // Reuse the free/merge path: register the new frame as a live
            // order-0 allocation, then free it so it coalesces with any
            // neighbouring free blocks.
            self.allocated.insert(idx, 0);
            self.free(Frame(idx), 0);
        }
    }

    /// External fragmentation measure: fraction of free memory *not* usable
    /// for a block of `order` (0.0 = can satisfy entirely with such blocks).
    pub fn fragmentation(&self, order: Order) -> f64 {
        if self.free_frames == 0 {
            return 0.0;
        }
        let usable: u64 = self
            .free_lists
            .iter()
            .enumerate()
            .filter(|(o, _)| *o as Order >= order)
            .map(|(o, l)| (l.len() as u64) << o)
            .sum();
        1.0 - usable as f64 / self.free_frames as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocator_is_fully_free() {
        let buddy = BuddyAllocator::new(4096);
        assert_eq!(buddy.free_frames(), 4096);
        assert_eq!(buddy.allocated_frames(), 0);
        assert_eq!(buddy.largest_free_order(), Some(12));
    }

    #[test]
    fn non_power_of_two_total_is_tiled() {
        let buddy = BuddyAllocator::new(1000);
        assert_eq!(buddy.free_frames(), 1000);
        // 1000 = 512 + 256 + 128 + 64 + 32 + 8
        assert_eq!(buddy.largest_free_order(), Some(9));
    }

    #[test]
    fn allocate_splits_and_free_merges() {
        let mut buddy = BuddyAllocator::new(16);
        let a = buddy.allocate(0).unwrap();
        assert_eq!(a, Frame(0));
        assert_eq!(buddy.free_frames(), 15);
        // The 16-frame block was split into 1+1+2+4+8.
        assert_eq!(buddy.largest_free_order(), Some(3));
        buddy.free(a, 0);
        assert_eq!(buddy.largest_free_order(), Some(4));
        assert_eq!(buddy.free_frames(), 16);
    }

    #[test]
    fn blocks_are_naturally_aligned() {
        let mut buddy = BuddyAllocator::new(64);
        let _ = buddy.allocate(0).unwrap();
        let b = buddy.allocate(3).unwrap();
        assert_eq!(b.0 % 8, 0, "order-3 block must be 8-frame aligned");
        let c = buddy.allocate(5).unwrap();
        assert_eq!(c.0 % 32, 0, "order-5 block must be 32-frame aligned");
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut buddy = BuddyAllocator::new(4);
        assert!(buddy.allocate(2).is_some());
        assert!(buddy.allocate(0).is_none());
        assert!(!buddy.can_allocate(0));
    }

    #[test]
    fn allocate_best_degrades_gracefully() {
        let mut buddy = BuddyAllocator::new(16);
        // Fragment: take one frame so no order-4 block exists.
        let a = buddy.allocate(0).unwrap();
        let (b, order) = buddy.allocate_best(4).expect("something is free");
        assert_eq!(order, 3, "largest remaining block is 8 frames");
        buddy.free(a, 0);
        buddy.free(b, order);
        assert_eq!(buddy.free_frames(), 16);
    }

    #[test]
    fn interleaved_alloc_free_preserves_accounting() {
        let mut buddy = BuddyAllocator::new(256);
        let mut live = Vec::new();
        for i in 0..32 {
            let order = (i % 3) as Order;
            live.push((buddy.allocate(order).unwrap(), order));
        }
        for (f, o) in live.drain(..).step_by(1) {
            buddy.free(f, o);
        }
        assert_eq!(buddy.free_frames(), 256);
        assert_eq!(buddy.largest_free_order(), Some(8));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn double_free_panics() {
        let mut buddy = BuddyAllocator::new(8);
        let a = buddy.allocate(1).unwrap();
        buddy.free(a, 1);
        buddy.free(a, 1);
    }

    #[test]
    #[should_panic(expected = "allocated with order")]
    fn wrong_order_free_panics() {
        let mut buddy = BuddyAllocator::new(8);
        let a = buddy.allocate(1).unwrap();
        buddy.free(a, 2);
    }

    #[test]
    fn allocate_split_frees_frame_by_frame() {
        let mut buddy = BuddyAllocator::new(64);
        let base = buddy.allocate_split(3).unwrap();
        assert_eq!(buddy.free_frames(), 56);
        for i in 0..8 {
            assert!(buddy.is_allocated(base.offset(i), 0));
        }
        // Free the frames in arbitrary order; buddies merge back.
        for i in [3u64, 0, 7, 1, 4, 2, 6, 5] {
            buddy.free(base.offset(i), 0);
        }
        assert_eq!(buddy.free_frames(), 64);
        assert_eq!(buddy.largest_free_order(), Some(6));
    }

    #[test]
    fn retire_free_takes_frames_out_of_circulation() {
        let mut buddy = BuddyAllocator::new(16);
        assert_eq!(buddy.retire_free(4), 4);
        assert_eq!(buddy.free_frames(), 12);
        assert_eq!(buddy.total_frames(), 16, "retired frames stay in the managed range");
        // Retiring more than is free retires only what exists.
        assert_eq!(buddy.retire_free(100), 12);
        assert_eq!(buddy.free_frames(), 0);
    }

    #[test]
    fn grow_mints_new_free_frames_at_the_end() {
        let mut buddy = BuddyAllocator::new(8);
        let a = buddy.allocate(3).unwrap();
        assert_eq!(buddy.free_frames(), 0);
        buddy.grow(8);
        assert_eq!(buddy.total_frames(), 16);
        assert_eq!(buddy.free_frames(), 8);
        let b = buddy.allocate(3).expect("grown capacity is allocatable");
        assert_eq!(b, Frame(8), "fresh indices are minted after the old range");
        buddy.free(a, 3);
        buddy.free(b, 3);
        assert_eq!(buddy.free_frames(), 16);
        assert_eq!(buddy.largest_free_order(), Some(4), "grown frames merge with old ones");
    }

    #[test]
    fn retire_then_grow_transfers_capacity() {
        let mut donor = BuddyAllocator::new(32);
        let mut adoptee = BuddyAllocator::new(8);
        let moved = donor.retire_free(8);
        adoptee.grow(moved);
        assert_eq!(donor.free_frames(), 24);
        assert_eq!(adoptee.free_frames(), 16);
        assert_eq!(donor.free_frames() + adoptee.free_frames(), 40, "net capacity is conserved");
    }

    #[test]
    fn fragmentation_metric() {
        let mut buddy = BuddyAllocator::new(16);
        assert_eq!(buddy.fragmentation(4), 0.0);
        let a = buddy.allocate(0).unwrap();
        // Free = 15 frames, none of them in an order-4 block.
        assert!(buddy.fragmentation(4) > 0.99);
        // But order-3 blocks can still use 8 of the 15.
        let f3 = buddy.fragmentation(3);
        assert!(f3 > 0.0 && f3 < 1.0);
        buddy.free(a, 0);
    }
}
