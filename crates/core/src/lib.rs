//! # vbi-core — The Virtual Block Interface
//!
//! A from-scratch implementation of the Virtual Block Interface (VBI), the
//! hardware-managed virtual memory framework proposed by Hajinazar et al. at
//! ISCA 2020, *"The Virtual Block Interface: A Flexible Alternative to the
//! Conventional Virtual Memory Framework."*
//!
//! VBI replaces per-process virtual address spaces with a single, globally
//! visible address space made of variable-sized **virtual blocks** (VBs).
//! The OS keeps control of *protection* — which process may access which VB,
//! recorded in per-process [Client-VB Tables](client::Cvt) — while physical
//! memory allocation and address translation are delegated entirely to a
//! hardware [Memory Translation Layer](mtl::Mtl) in the memory controller.
//! Because VBI addresses are system-wide unique, on-chip caches operate
//! purely on virtual (VBI) addresses, and translation happens only on
//! last-level-cache misses.
//!
//! ## Quick start
//!
//! ```
//! use vbi_core::{System, VbiConfig};
//! use vbi_core::vb::VbProperties;
//! use vbi_core::perm::Rwx;
//!
//! # fn main() -> Result<(), vbi_core::VbiError> {
//! // A machine with the paper's VBI-Full configuration.
//! let system = System::new(VbiConfig::vbi_full());
//!
//! // Create a process (a "memory client"): the returned session owns the
//! // client's whole API surface. Give it a data VB.
//! let client = system.create_client()?;
//! let vb = client.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE)?;
//!
//! // Processes address memory as {CVT index, offset}.
//! client.store_u64(vb.at(0x100), 42)?;
//! assert_eq!(client.load_u64(vb.at(0x100))?, 42);
//! # Ok(())
//! # }
//! ```
//!
//! ## Module map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`addr`] | §4.1.1 | size classes, VBUIDs, VBI addresses |
//! | [`vb`] | §4.1.1 | property bitvectors |
//! | [`perm`] | §4.1.2 | RWX permissions, access kinds |
//! | [`client`] | §4.1.2 | memory clients, Client-VB Tables |
//! | [`cvt_cache`] | §4.3 | per-core direct-mapped CVT cache |
//! | [`vit`] | §4.5.1 | VB Info Tables |
//! | [`buddy`] | §5.3 | buddy allocator for physical frames |
//! | [`translate`] | §4.5.2, §5.2 | direct / single-level / multi-level structures |
//! | [`tlb`] | §4.2.3 | generic set-associative TLB |
//! | [`swap`] | §3.4 | backing store |
//! | [`mtl`] | §4.5, §5 | the Memory Translation Layer |
//! | [`ops`] | §4.2 | the op-execution engine: every request-path op, executed once |
//! | [`session`] | §4.2 | [`ClientSession`]: the per-client handle every front end hands out |
//! | [`system`] | §4.2 | the synchronous adapter over the engine |
//! | [`stats`] | §7.2 | MTL counters, mergeable across shards |
//! | [`os`] | §3.4, §4.4 | OS model: processes, fork, shared libraries, mmap |
//! | [`vm`] | §6.1 | virtual-machine partitioning of the VBI space |
//! | [`multinode`] | §6.2 | per-node MTLs with home-MTL routing and migration |
//! | [`isa`] | §4 | the six VBI instructions as typed operations |
//!
//! All of the above is single-owner state. The concurrent, sharded memory
//! service built on top — per-shard MTLs ([`Mtl::for_shard`]) behind locks,
//! shared CVTs, and a batched request path — lives in the `vbi-service`
//! crate; every type here is `Send + Sync` so shards and clients can be
//! shared across threads.

pub mod addr;
pub mod buddy;
pub mod client;
pub mod config;
pub mod cvt_cache;
pub mod error;
pub mod frame_cache;
pub mod isa;
pub mod mtl;
pub mod multinode;
pub mod ops;
pub mod os;
pub mod perm;
pub mod phys;
pub mod session;
pub mod stats;
pub mod swap;
pub mod sync;
pub mod system;
pub mod telemetry;
pub mod tlb;
pub mod translate;
pub mod vb;
pub mod vit;
pub mod vm;

pub use addr::{SizeClass, VbiAddress, Vbuid};
pub use client::{ClientId, VirtualAddress};
pub use config::{EvictionPolicy, VbiConfig};
pub use error::{Result, VbiError};
pub use frame_cache::{FrameCache, FrameCacheStats};
pub use mtl::Mtl;
pub use ops::{Op, OpOutput, OpResult};
pub use perm::{AccessKind, Rwx};
pub use session::{ClientSession, SessionHost};
pub use stats::MtlStats;
pub use swap::{BackingStore, PageData, PressureBackend};
pub use system::{System, SystemSession};
pub use telemetry::{
    bench_line, chrome_trace, json_object, Histogram, JsonValue, OpKind, OpLatency, OpSample,
    QueueActivity, ShardActivity, Snapshot, Telemetry, TraceEvent, TraceRing,
};
pub use vb::VbProperties;

// The `vbi-service` crate shares MTL shards and CVTs across threads; these
// compile-time assertions keep the core types `Send + Sync` (none of them
// may grow `Rc`/`RefCell`/raw-pointer state without breaking the service).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Mtl>();
    assert_send_sync::<System>();
    assert_send_sync::<SystemSession>();
    assert_send_sync::<client::Cvt>();
    assert_send_sync::<cvt_cache::CvtCache>();
    assert_send_sync::<cvt_cache::SeqCvtCache>();
    assert_send_sync::<client::ClientIdAllocator>();
    assert_send_sync::<multinode::MultiNodeSystem>();
    assert_send_sync::<MtlStats>();
    assert_send_sync::<VbiError>();
    assert_send_sync::<Telemetry>();
    assert_send_sync::<TraceRing>();
    assert_send_sync::<Snapshot>();
};
