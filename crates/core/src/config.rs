//! Configuration for the VBI reference implementation.

use crate::phys::FRAME_BYTES;

/// Sizes and policy knobs for an MTL + processor-side VBI instance.
///
/// The defaults reproduce the configuration evaluated in the paper: 64-entry
/// direct-mapped CVT caches (§4.3), an MTL TLB equal in capacity to the
/// baseline's two-level DTLB hierarchy (64 + 512 entries, Table 1), and the
/// 4 KiB base allocation granularity of §4.5.2. The two policy booleans
/// select between the paper's three evaluated variants:
///
/// | variant  | `delayed_allocation` | `early_reservation` |
/// |----------|----------------------|---------------------|
/// | VBI-1    | `false`              | `false`             |
/// | VBI-2    | `true`               | `false`             |
/// | VBI-Full | `true`               | `true`              |
#[derive(Debug, Clone, PartialEq)]
pub struct VbiConfig {
    /// Physical memory size in 4 KiB frames.
    pub phys_frames: u64,
    /// Maximum entries per Client-VB Table.
    pub cvt_capacity: usize,
    /// Slots in each per-core direct-mapped CVT cache.
    pub cvt_cache_slots: usize,
    /// Entries in the MTL's VIT cache.
    pub vit_cache_entries: usize,
    /// Entries in the MTL's page-granularity TLB.
    pub mtl_tlb_entries: usize,
    /// Associativity of the MTL's page-granularity TLB.
    pub mtl_tlb_ways: usize,
    /// Entries in the MTL's whole-VB (direct-mapping) TLB.
    pub mtl_direct_tlb_entries: usize,
    /// Delay physical allocation until a dirty LLC eviction (§5.1, VBI-2+).
    pub delayed_allocation: bool,
    /// Reserve contiguous physical memory for whole VBs up front (§5.3,
    /// VBI-Full).
    pub early_reservation: bool,
    /// Bits of the VBID reserved for virtual-machine IDs (§6.1); 0 disables
    /// VM partitioning, 5 supports 31 VMs + host as in Figure 5.
    pub vm_id_bits: u32,
    /// Policy ordering eviction victims under memory pressure (§3.4).
    pub eviction: EvictionPolicy,
    /// Pages the engine reclaims per pressure event (the batch evicted when
    /// an op fails for lack of physical memory, before the op retries).
    pub pressure_reclaim_batch: usize,
    /// Record per-op counters and latency histograms at `execute`
    /// boundaries (the [`crate::telemetry`] metrics registry). Cheap —
    /// a few relaxed atomics per op — and togglable at runtime through
    /// [`crate::Telemetry::set_metrics`].
    pub telemetry_metrics: bool,
    /// Record compact [`crate::TraceEvent`]s into the per-shard trace
    /// rings. Off by default; togglable at runtime through
    /// [`crate::Telemetry::set_tracing`].
    pub telemetry_tracing: bool,
    /// Capacity of each per-shard trace ring, in events (oldest events are
    /// overwritten once full).
    pub trace_capacity: usize,
    /// Front the buddy allocator with the per-MTL magazine frame cache
    /// (see [`crate::frame_cache`]) so order-0 allocate/free churn skips
    /// the buddy's split/coalesce bookkeeping. `false` is the buddy-only
    /// baseline the `alloc_churn` bench A/Bs against.
    pub frame_cache: bool,
    /// Capacity of each of the frame cache's two magazines, in frames.
    pub frame_cache_magazine: usize,
    /// Upper bound on frames pulled from the buddy per cache refill
    /// (clamped to the magazine size).
    pub frame_cache_refill: usize,
}

/// How a shard's MTL picks eviction victims under memory pressure (§3.4,
/// "Physical Memory Capacity Management").
///
/// The MTL sees every main-memory access, so it can maintain per-page
/// reference bits (the `HotnessTracker` argument of §2/§7.3) and give
/// recently touched pages a second chance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Clock / second-chance: sweep resident pages in a fixed circular
    /// order, skipping (and clearing the reference bit of) pages touched
    /// since the last sweep.
    #[default]
    Clock,
    /// Evict in sweep order, ignoring reference bits — the baseline an
    /// access-bit-aware MTL is compared against.
    ScanOrder,
}

impl VbiConfig {
    /// The paper's VBI-1 variant: flexible 4 KiB-granularity translation and
    /// inherently virtual caches only.
    pub fn vbi_1() -> Self {
        Self { delayed_allocation: false, early_reservation: false, ..Self::default() }
    }

    /// The paper's VBI-2 variant: VBI-1 plus delayed physical allocation.
    pub fn vbi_2() -> Self {
        Self { delayed_allocation: true, early_reservation: false, ..Self::default() }
    }

    /// The paper's VBI-Full variant: VBI-2 plus early reservation (direct
    /// mapping for most VBs).
    pub fn vbi_full() -> Self {
        Self { delayed_allocation: true, early_reservation: true, ..Self::default() }
    }

    /// Physical memory size in bytes.
    pub fn phys_bytes(&self) -> u64 {
        self.phys_frames * FRAME_BYTES
    }
}

impl Default for VbiConfig {
    /// Defaults: 4 GiB of physical memory, 1024-entry CVTs, 64-slot CVT
    /// caches, 32-entry VIT cache, 512-entry 4-way MTL page TLB plus a
    /// 64-entry direct-VB TLB, both optimizations on (VBI-Full).
    fn default() -> Self {
        Self {
            phys_frames: 1 << 20, // 4 GiB
            cvt_capacity: 1024,
            cvt_cache_slots: 64,
            vit_cache_entries: 32,
            mtl_tlb_entries: 512,
            mtl_tlb_ways: 4,
            mtl_direct_tlb_entries: 64,
            delayed_allocation: true,
            early_reservation: true,
            vm_id_bits: 0,
            eviction: EvictionPolicy::Clock,
            pressure_reclaim_batch: 8,
            telemetry_metrics: true,
            telemetry_tracing: false,
            trace_capacity: 4096,
            frame_cache: true,
            frame_cache_magazine: 32,
            frame_cache_refill: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_set_policy_bits() {
        assert!(!VbiConfig::vbi_1().delayed_allocation);
        assert!(!VbiConfig::vbi_1().early_reservation);
        assert!(VbiConfig::vbi_2().delayed_allocation);
        assert!(!VbiConfig::vbi_2().early_reservation);
        assert!(VbiConfig::vbi_full().delayed_allocation);
        assert!(VbiConfig::vbi_full().early_reservation);
    }

    #[test]
    fn default_matches_paper_structures() {
        let c = VbiConfig::default();
        assert_eq!(c.cvt_cache_slots, 64);
        assert_eq!(c.phys_bytes(), 4 << 30);
    }
}
