//! Session handles: the client-facing API of every front end.
//!
//! The paper's programming model is per-client: a process holds CVT indices
//! and issues `{CVT index, offset}` accesses against *its own* protection
//! state. [`ClientSession`] is that model in code — `create_client` on any
//! front end ([`crate::System`], `vbi_service::VbiService`,
//! `vbi_service::VbiQueue`) returns an owned session bound to the new
//! client, and the entire data plane lives on the session
//! (`session.load_u64(va)`), with [`ClientId`] remaining an implementation
//! detail of the [`Op`] plumbing underneath.
//!
//! Sessions are cheap to clone and (for `Send + Sync` hosts) freely shared
//! across threads: many reader threads can hold clones of one session, and
//! on the concurrent service their CVT-cache-hit reads proceed entirely
//! lock-free (see `vbi_service`'s seqlock read path).

use crate::client::{ClientId, VirtualAddress};
use crate::cvt_cache::CvtCacheStats;
use crate::error::Result;
use crate::ops::{CheckedAccess, Op, OpOutput, OpResult, VbHandle};
use crate::perm::{AccessKind, Rwx};
use crate::vb::VbProperties;

/// A front end that can execute engine [`Op`]s on behalf of a session.
///
/// Implemented by `System`, `VbiService`, and (via its service) `VbiQueue`;
/// the host decides where state lives and how it is locked, the session
/// provides the typed per-client surface.
pub trait SessionHost: Clone {
    /// Executes one op through the host's engine adapter.
    fn run_op(&self, op: Op) -> OpResult;

    /// The client's CVT-cache statistics (split by lock-free/locked path).
    ///
    /// # Errors
    ///
    /// `VbiError::InvalidClient` for destroyed clients.
    fn client_cvt_cache_stats(&self, client: ClientId) -> Result<CvtCacheStats>;

    /// Copies `data` into a VB through the engine's checked store path
    /// (`ops::store_bytes`) without cloning the span into an owned
    /// [`Op`] — the zero-copy half of [`ClientSession::store_bytes`].
    ///
    /// # Errors
    ///
    /// Any protection or translation error.
    fn store_bytes_for(&self, client: ClientId, va: VirtualAddress, data: &[u8]) -> Result<()>;
}

/// An owned handle on one memory client of a front end `H`.
///
/// All data-plane operations (`load_*`, `store_*`, [`ClientSession::fetch`],
/// [`ClientSession::access`]) and the client's control plane
/// ([`ClientSession::request_vb`], attach/detach/release) live here; no
/// other public surface takes a raw [`ClientId`].
///
/// # Examples
///
/// ```
/// use vbi_core::{Rwx, System, VbProperties, VbiConfig};
///
/// # fn main() -> Result<(), vbi_core::VbiError> {
/// let system = System::new(VbiConfig::vbi_full());
/// let app = system.create_client()?;
/// let vb = app.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE)?;
/// app.store_u64(vb.at(8), 2020)?;
/// assert_eq!(app.load_u64(vb.at(8))?, 2020);
/// app.destroy()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ClientSession<H: SessionHost> {
    host: H,
    client: ClientId,
}

impl<H: SessionHost> ClientSession<H> {
    /// Binds a session to an *existing* client of `host` — used by the OS
    /// and VM layers when the client was created through the op plumbing
    /// (e.g. a queued `Op::CreateClient` completion). Front-end
    /// `create_client` methods are the normal way to obtain a session.
    pub fn bind(host: H, client: ClientId) -> Self {
        Self { host, client }
    }

    /// The underlying client ID (op/engine plumbing; needed to build raw
    /// [`Op`]s for batched or queued submission).
    pub fn id(&self) -> ClientId {
        self.client
    }

    /// The front end this session runs against.
    pub fn host(&self) -> &H {
        &self.host
    }

    fn run(&self, op: Op) -> OpResult {
        self.host.run_op(op)
    }

    // --- control plane -------------------------------------------------------

    /// The `request_vb` system call (§4.2): allocates and attaches the
    /// smallest free VB that fits `bytes`, returning the handle whose CVT
    /// index is this client's pointer to the VB.
    ///
    /// # Errors
    ///
    /// `VbiError::RequestTooLarge` beyond 128 TiB, `VbiError::CvtFull`, or
    /// VB exhaustion.
    pub fn request_vb(&self, bytes: u64, props: VbProperties, perms: Rwx) -> Result<VbHandle> {
        match self.run(Op::RequestVb { client: self.client, bytes, props, perms })? {
            OpOutput::Handle(handle) => Ok(handle),
            other => unreachable!("request_vb returns a handle, got {other:?}"),
        }
    }

    /// The `attach` instruction: grants this client access to `vbuid` with
    /// `perms`. Returns the CVT index.
    ///
    /// # Errors
    ///
    /// `VbiError::VbNotEnabled` or `VbiError::CvtFull`.
    pub fn attach(&self, vbuid: crate::addr::Vbuid, perms: Rwx) -> Result<usize> {
        match self.run(Op::Attach { client: self.client, vbuid, perms })? {
            OpOutput::CvtIndex(index) => Ok(index),
            other => unreachable!("attach returns an index, got {other:?}"),
        }
    }

    /// `attach` at a specific CVT index (fork and shared-library layout).
    ///
    /// # Errors
    ///
    /// Same as [`ClientSession::attach`], plus `VbiError::InvalidCvtIndex`.
    pub fn attach_at(&self, index: usize, vbuid: crate::addr::Vbuid, perms: Rwx) -> Result<()> {
        self.run(Op::AttachAt { client: self.client, index, vbuid, perms }).map(|_| ())
    }

    /// The `detach` instruction: revokes this client's access to `vbuid`.
    /// Returns the VB's new reference count.
    ///
    /// # Errors
    ///
    /// `VbiError::VbNotEnabled` if this client has no entry for `vbuid`.
    pub fn detach(&self, vbuid: crate::addr::Vbuid) -> Result<u32> {
        match self.run(Op::Detach { client: self.client, vbuid })? {
            OpOutput::RefCount(count) => Ok(count),
            other => unreachable!("detach returns a refcount, got {other:?}"),
        }
    }

    /// Detaches the VB behind a CVT index and disables it at zero
    /// references — the common "free this data structure" path.
    ///
    /// # Errors
    ///
    /// `VbiError::InvalidCvtIndex` or `VbiError::VbNotEnabled`.
    pub fn release_vb(&self, index: usize) -> Result<()> {
        self.run(Op::ReleaseVb { client: self.client, index }).map(|_| ())
    }

    /// Destroys the client: detaches every VB in its CVT, disables VBs
    /// whose reference count drops to zero, and recycles the client ID.
    /// Consumes the session; clones of it (other reader threads) observe
    /// `VbiError::InvalidClient` from then on.
    ///
    /// # Errors
    ///
    /// `VbiError::InvalidClient` if the client was already destroyed.
    pub fn destroy(self) -> Result<()> {
        self.run(Op::DestroyClient { client: self.client }).map(|_| ())
    }

    // --- VB remap ------------------------------------------------------------

    /// Promotes the VB behind `index` to the next larger size class (§4.4):
    /// a larger VB is enabled on the same home shard, the translation state
    /// moves, and every attached client's CVT entry is redirected — the
    /// program's pointers (CVT indices) stay valid (§4.2.2). Returns the
    /// new handle. Executes through the shared engine on every front end.
    ///
    /// # Errors
    ///
    /// `VbiError::RequestTooLarge` at the largest class, plus any
    /// enable/translation error.
    pub fn promote(&self, index: usize) -> Result<VbHandle> {
        match self.run(Op::Promote { client: self.client, index })? {
            OpOutput::Handle(handle) => Ok(handle),
            other => unreachable!("promote returns a handle, got {other:?}"),
        }
    }

    /// Clones the VB behind `index` copy-on-write (§4.4 `clone_vb`) and
    /// attaches the clone to this client with the source entry's
    /// permissions. Returns the clone's handle; the source VB and its other
    /// sharers are untouched.
    ///
    /// # Errors
    ///
    /// VB exhaustion on the home shard, `VbiError::CvtFull`, or any
    /// translation error.
    pub fn clone_vb(&self, index: usize) -> Result<VbHandle> {
        match self.run(Op::CloneVb { client: self.client, index })? {
            OpOutput::Handle(handle) => Ok(handle),
            other => unreachable!("clone_vb returns a handle, got {other:?}"),
        }
    }

    /// Migrates the VB behind `index` to a fresh VB homed on `to_shard`
    /// (§6.2): contents are copied under both home MTLs, every attached
    /// client's CVT entry is redirected, and the source VB is disabled,
    /// freeing its frames on the source shard. Returns the new handle —
    /// same CVT index, new home.
    ///
    /// # Errors
    ///
    /// `VbiError::InvalidShard` for an out-of-range destination, plus any
    /// enable/translation error.
    pub fn migrate(&self, index: usize, to_shard: usize) -> Result<VbHandle> {
        match self.run(Op::Migrate { client: self.client, index, to_shard })? {
            OpOutput::Handle(handle) => Ok(handle),
            other => unreachable!("migrate returns a handle, got {other:?}"),
        }
    }

    // --- data plane ----------------------------------------------------------

    /// The CPU-side protection check of §4.2.3, without touching memory. A
    /// read-kind check on a CVT-cache hit takes no client lock.
    ///
    /// # Errors
    ///
    /// Any protection error.
    pub fn access(&self, va: VirtualAddress, kind: AccessKind) -> Result<CheckedAccess> {
        match self.run(Op::Access { client: self.client, va, kind })? {
            OpOutput::Checked(checked) => Ok(checked),
            other => unreachable!("access returns check info, got {other:?}"),
        }
    }

    /// Protection-checked functional load of a `u64`.
    ///
    /// # Errors
    ///
    /// Any protection or translation error.
    pub fn load_u64(&self, va: VirtualAddress) -> Result<u64> {
        match self.run(Op::LoadU64 { client: self.client, va })? {
            OpOutput::U64(value) => Ok(value),
            other => unreachable!("load returns a u64, got {other:?}"),
        }
    }

    /// Protection-checked functional store of a `u64`.
    ///
    /// # Errors
    ///
    /// Any protection or translation error.
    pub fn store_u64(&self, va: VirtualAddress, value: u64) -> Result<()> {
        self.run(Op::StoreU64 { client: self.client, va, value }).map(|_| ())
    }

    /// Protection-checked functional load of one byte.
    ///
    /// # Errors
    ///
    /// Any protection or translation error.
    pub fn load_u8(&self, va: VirtualAddress) -> Result<u8> {
        match self.run(Op::LoadU8 { client: self.client, va })? {
            OpOutput::U8(value) => Ok(value),
            other => unreachable!("load returns a byte, got {other:?}"),
        }
    }

    /// Protection-checked functional store of one byte.
    ///
    /// # Errors
    ///
    /// Any protection or translation error.
    pub fn store_u8(&self, va: VirtualAddress, value: u8) -> Result<()> {
        self.run(Op::StoreU8 { client: self.client, va, value }).map(|_| ())
    }

    /// Protection-checked instruction fetch (returns the byte; fetch width
    /// is immaterial to the model).
    ///
    /// # Errors
    ///
    /// Any protection or translation error.
    pub fn fetch(&self, va: VirtualAddress) -> Result<u8> {
        match self.run(Op::Fetch { client: self.client, va })? {
            OpOutput::U8(value) => Ok(value),
            other => unreachable!("fetch returns a byte, got {other:?}"),
        }
    }

    /// Reads `len` bytes through the checked load path — one protection
    /// check and one home-MTL visit for the whole span.
    ///
    /// # Errors
    ///
    /// Any protection or translation error.
    pub fn load_bytes(&self, va: VirtualAddress, len: usize) -> Result<Vec<u8>> {
        match self.run(Op::LoadBytes { client: self.client, va, len })? {
            OpOutput::Bytes(bytes) => Ok(bytes),
            other => unreachable!("load returns bytes, got {other:?}"),
        }
    }

    /// Copies `data` into a VB through the checked store path — one
    /// protection check and one home-MTL visit for the whole copy, with
    /// no clone of the span (the host routes the slice straight into the
    /// engine's `ops::store_bytes`).
    ///
    /// # Errors
    ///
    /// Any protection or translation error, including running off the end
    /// of the VB mid-copy (bytes before the fault stay written).
    pub fn store_bytes(&self, va: VirtualAddress, data: &[u8]) -> Result<()> {
        self.host.store_bytes_for(self.client, va, data)
    }

    // --- introspection -------------------------------------------------------

    /// This client's CVT-cache statistics, split by lookup path (lock-free
    /// hits vs locked hits vs misses vs torn-read fallbacks).
    ///
    /// # Errors
    ///
    /// `VbiError::InvalidClient` if the client was destroyed.
    pub fn cvt_cache_stats(&self) -> Result<CvtCacheStats> {
        self.host.client_cvt_cache_stats(self.client)
    }
}
