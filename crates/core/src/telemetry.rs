//! One telemetry plane for every front end (§7.2 made queryable).
//!
//! The paper's evaluation is driven by MTL counters; this reproduction has
//! outgrown plain counters — three front ends, lock-free readers,
//! cross-shard migration, and eviction/fault-in all interact under live
//! traffic. This module is the single place observability lives, threaded
//! through the op engine so every front end inherits it:
//!
//! * a **metrics registry** ([`Telemetry`]) — per-stripe, cache-line-padded
//!   atomic op counters plus log-bucketed (power-of-2) latency
//!   [`Histogram`]s recorded per [`OpKind`] at [`crate::ops::execute`]
//!   boundaries;
//! * a **structured trace ring** ([`TraceRing`]) — a fixed-capacity,
//!   lock-free ring of compact [`TraceEvent`]s per stripe, togglable at
//!   runtime, drained to Chrome `trace_event` JSON ([`chrome_trace`]) that
//!   opens in `chrome://tracing` / Perfetto;
//! * an **export layer** — a unified [`Snapshot`] with JSON and
//!   Prometheus-style text exposition, plus the shared [`bench_line`]
//!   emitter every benchmark uses for its `BENCH_*` trajectory line.
//!
//! Hot-path discipline: when recording is off the engine pays one relaxed
//! atomic load per op; when metrics are on, a handful of relaxed atomic
//! increments; when tracing is on, one ticket `fetch_add` plus five relaxed
//! stores. Nothing on the data plane allocates.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use crate::cvt_cache::CvtCacheStats;
use crate::ops::Op;
use crate::stats::MtlStats;
use crate::tlb::TlbStats;

// --- op kinds ---------------------------------------------------------------

/// The kind of an [`Op`], one variant per engine operation — the label
/// space of the per-op metrics and trace events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum OpKind {
    /// [`Op::CreateClient`].
    CreateClient,
    /// [`Op::CreateClientWithId`].
    CreateClientWithId,
    /// [`Op::DestroyClient`].
    DestroyClient,
    /// [`Op::RequestVb`].
    RequestVb,
    /// [`Op::Attach`].
    Attach,
    /// [`Op::AttachAt`].
    AttachAt,
    /// [`Op::Detach`].
    Detach,
    /// [`Op::ReleaseVb`].
    ReleaseVb,
    /// [`Op::Access`].
    #[default]
    Access,
    /// [`Op::Fetch`].
    Fetch,
    /// [`Op::LoadU64`].
    LoadU64,
    /// [`Op::StoreU64`].
    StoreU64,
    /// [`Op::LoadU8`].
    LoadU8,
    /// [`Op::StoreU8`].
    StoreU8,
    /// [`Op::LoadBytes`].
    LoadBytes,
    /// [`Op::StoreBytes`] and the slice-borrowing
    /// [`crate::ops::store_bytes`] helper.
    StoreBytes,
    /// [`Op::Promote`].
    Promote,
    /// [`Op::CloneVb`].
    CloneVb,
    /// [`Op::Migrate`].
    Migrate,
}

impl OpKind {
    /// Number of op kinds (the metrics registry's row count).
    pub const COUNT: usize = 19;

    /// Every kind, in stable (registry row) order.
    pub const ALL: [OpKind; OpKind::COUNT] = [
        OpKind::CreateClient,
        OpKind::CreateClientWithId,
        OpKind::DestroyClient,
        OpKind::RequestVb,
        OpKind::Attach,
        OpKind::AttachAt,
        OpKind::Detach,
        OpKind::ReleaseVb,
        OpKind::Access,
        OpKind::Fetch,
        OpKind::LoadU64,
        OpKind::StoreU64,
        OpKind::LoadU8,
        OpKind::StoreU8,
        OpKind::LoadBytes,
        OpKind::StoreBytes,
        OpKind::Promote,
        OpKind::CloneVb,
        OpKind::Migrate,
    ];

    /// The kind of an op.
    pub fn of(op: &Op) -> OpKind {
        match op {
            Op::CreateClient => OpKind::CreateClient,
            Op::CreateClientWithId { .. } => OpKind::CreateClientWithId,
            Op::DestroyClient { .. } => OpKind::DestroyClient,
            Op::RequestVb { .. } => OpKind::RequestVb,
            Op::Attach { .. } => OpKind::Attach,
            Op::AttachAt { .. } => OpKind::AttachAt,
            Op::Detach { .. } => OpKind::Detach,
            Op::ReleaseVb { .. } => OpKind::ReleaseVb,
            Op::Access { .. } => OpKind::Access,
            Op::Fetch { .. } => OpKind::Fetch,
            Op::LoadU64 { .. } => OpKind::LoadU64,
            Op::StoreU64 { .. } => OpKind::StoreU64,
            Op::LoadU8 { .. } => OpKind::LoadU8,
            Op::StoreU8 { .. } => OpKind::StoreU8,
            Op::LoadBytes { .. } => OpKind::LoadBytes,
            Op::StoreBytes { .. } => OpKind::StoreBytes,
            Op::Promote { .. } => OpKind::Promote,
            Op::CloneVb { .. } => OpKind::CloneVb,
            Op::Migrate { .. } => OpKind::Migrate,
        }
    }

    /// Registry row index (`0..COUNT`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case label (metric label, trace event name).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::CreateClient => "create_client",
            OpKind::CreateClientWithId => "create_client_with_id",
            OpKind::DestroyClient => "destroy_client",
            OpKind::RequestVb => "request_vb",
            OpKind::Attach => "attach",
            OpKind::AttachAt => "attach_at",
            OpKind::Detach => "detach",
            OpKind::ReleaseVb => "release_vb",
            OpKind::Access => "access",
            OpKind::Fetch => "fetch",
            OpKind::LoadU64 => "load_u64",
            OpKind::StoreU64 => "store_u64",
            OpKind::LoadU8 => "load_u8",
            OpKind::StoreU8 => "store_u8",
            OpKind::LoadBytes => "load_bytes",
            OpKind::StoreBytes => "store_bytes",
            OpKind::Promote => "promote",
            OpKind::CloneVb => "clone_vb",
            OpKind::Migrate => "migrate",
        }
    }
}

// --- histograms -------------------------------------------------------------

/// Number of power-of-2 buckets a [`Histogram`] holds. Bucket 0 holds the
/// value 0; bucket `i >= 1` holds `[2^(i-1), 2^i)`; the last bucket is
/// open-ended so `u64::MAX` still lands somewhere.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Index of the bucket `value` lands in: 0 for 0, else
/// `floor(log2(value)) + 1`, saturated to the last bucket.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Largest value bucket `index` can hold (`2^index - 1`, with the last
/// bucket open-ended) — what [`Histogram::percentile`] reports.
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// An HDR-style latency histogram with power-of-2 (log-bucketed) buckets.
///
/// Recording costs one bucket increment; percentiles are answered from the
/// bucket counts with at most 2x relative error (the bucket's upper bound
/// is reported). Histograms [`merge`](Histogram::merge) exactly: merging
/// two histograms equals recording both sample sets into one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in bucket `index` (see [`bucket_index`]).
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Accumulates another histogram — exactly equivalent to having
    /// recorded both histograms' samples into one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at percentile `p` (e.g. `50.0`, `99.0`, `99.9`): the
    /// upper bound of the first bucket whose cumulative count reaches the
    /// rank. 0 when empty; monotone non-decreasing in `p`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                // Report the exact max for the tail bucket instead of an
                // open-ended bound.
                if i == HISTOGRAM_BUCKETS - 1 || self.buckets[i + 1..].iter().all(|&b| b == 0) {
                    return self.max.min(bucket_upper_bound(i)).max(if i == 0 {
                        0
                    } else {
                        bucket_upper_bound(i - 1) + 1
                    });
                }
                return bucket_upper_bound(i);
            }
        }
        self.max
    }
}

/// A [`Histogram`] recorded with relaxed atomics — the registry's
/// concurrent, data-plane-safe flavor.
#[derive(Debug)]
struct AtomicHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn load(&self) -> Histogram {
        let mut h = Histogram::new();
        for (mine, theirs) in h.buckets.iter_mut().zip(self.buckets.iter()) {
            *mine = theirs.load(Ordering::Relaxed);
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.sum = self.sum.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        h
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

// --- trace ring -------------------------------------------------------------

/// One traced op: what ran, for whom, where, when, and how it went.
/// Compact (five words) so the ring's slots stay cache-friendly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceEvent {
    /// Nanoseconds since the telemetry plane's epoch when the op started.
    pub start_ns: u64,
    /// Op duration in nanoseconds.
    pub duration_ns: u64,
    /// Raw VBID of the VB the op touched (0 when unknown / not VB-scoped).
    pub vbid: u64,
    /// Client the op ran for (`u32::MAX` for client-less ops).
    pub client: u32,
    /// Home MTL shard of the touched VB (0 on single-shard machines).
    pub shard: u16,
    /// What ran.
    pub kind: OpKind,
    /// Outcome bits ([`TraceEvent::FLAG_ERROR`] & co.).
    pub flags: u8,
}

impl TraceEvent {
    /// The op returned an error.
    pub const FLAG_ERROR: u8 = 1;
    /// Serving the op faulted pages in from the backing store.
    pub const FLAG_FAULT_IN: u8 = 2;
    /// Serving the op evicted resident pages (memory pressure).
    pub const FLAG_EVICT: u8 = 4;
    /// The protection check fell back to a CVT memory read (cache miss /
    /// lock-free fallback).
    pub const FLAG_CVT_FALLBACK: u8 = 8;

    /// `|`-joined flag names ("fault_in|evict"); "ok" when no flags set.
    pub fn flag_names(&self) -> String {
        let mut names = Vec::new();
        if self.flags & Self::FLAG_ERROR != 0 {
            names.push("error");
        }
        if self.flags & Self::FLAG_FAULT_IN != 0 {
            names.push("fault_in");
        }
        if self.flags & Self::FLAG_EVICT != 0 {
            names.push("evict");
        }
        if self.flags & Self::FLAG_CVT_FALLBACK != 0 {
            names.push("cvt_fallback");
        }
        if names.is_empty() {
            "ok".to_string()
        } else {
            names.join("|")
        }
    }
}

/// A slot's fields live in separate atomics; `seq` is a per-slot seqlock
/// (odd = writer inside, even = published as ticket*2+2) so readers can
/// detect and skip torn records instead of ever observing one.
struct TraceSlot {
    seq: AtomicU64,
    start_ns: AtomicU64,
    duration_ns: AtomicU64,
    vbid: AtomicU64,
    /// kind(8) | flags(8) | shard(16) | client(32), low to high.
    meta: AtomicU64,
}

impl TraceSlot {
    fn new() -> Self {
        TraceSlot {
            seq: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            duration_ns: AtomicU64::new(0),
            vbid: AtomicU64::new(0),
            meta: AtomicU64::new(0),
        }
    }
}

fn pack_meta(kind: OpKind, flags: u8, shard: u16, client: u32) -> u64 {
    (kind as u64) | ((flags as u64) << 8) | ((shard as u64) << 16) | ((client as u64) << 32)
}

fn unpack_meta(meta: u64) -> (OpKind, u8, u16, u32) {
    let kind = OpKind::ALL[(meta & 0xFF) as usize % OpKind::COUNT];
    (kind, ((meta >> 8) & 0xFF) as u8, ((meta >> 16) & 0xFFFF) as u16, (meta >> 32) as u32)
}

/// A fixed-capacity, lock-free ring of [`TraceEvent`]s.
///
/// Writers claim a ticket with one `fetch_add` and publish into
/// `ticket % capacity` under a per-slot sequence counter; when the ring
/// wraps, the oldest events are overwritten (dropped), never blocked on.
/// [`drain`](TraceRing::drain) skips slots a writer is mid-publish in, so
/// readers never observe a torn event.
pub struct TraceRing {
    head: AtomicU64,
    slots: Box<[TraceSlot]>,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl TraceRing {
    /// A ring holding up to `capacity` events (rounded up to 1 minimum).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| TraceSlot::new()).collect(),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events ever pushed (monotone; `pushed - capacity` of them have been
    /// overwritten once this exceeds the capacity).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Publishes one event, overwriting the oldest when full.
    pub fn push(&self, event: TraceEvent) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        slot.seq.store(ticket * 2 + 1, Ordering::Release);
        slot.start_ns.store(event.start_ns, Ordering::Release);
        slot.duration_ns.store(event.duration_ns, Ordering::Release);
        slot.vbid.store(event.vbid, Ordering::Release);
        slot.meta.store(
            pack_meta(event.kind, event.flags, event.shard, event.client),
            Ordering::Release,
        );
        slot.seq.store(ticket * 2 + 2, Ordering::Release);
    }

    /// Snapshots every published event, oldest first. Slots currently
    /// being written (or rewritten during the read) are skipped — a torn
    /// event is never returned.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut events = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue;
            }
            let event = TraceEvent {
                start_ns: slot.start_ns.load(Ordering::Acquire),
                duration_ns: slot.duration_ns.load(Ordering::Acquire),
                vbid: slot.vbid.load(Ordering::Acquire),
                client: 0,
                shard: 0,
                kind: OpKind::Access,
                flags: 0,
            };
            let meta = slot.meta.load(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Acquire);
            if s1 != s2 {
                continue;
            }
            let (kind, flags, shard, client) = unpack_meta(meta);
            events.push(TraceEvent { kind, flags, shard, client, ..event });
        }
        events.sort_by_key(|e| e.start_ns);
        events
    }
}

// --- the registry -----------------------------------------------------------

/// One stripe of the registry: padded to its own cache lines so stripes
/// never false-share, holding per-kind counters, per-kind latency
/// histograms, and a trace ring.
#[repr(align(128))]
struct Stripe {
    counts: [AtomicU64; OpKind::COUNT],
    errors: [AtomicU64; OpKind::COUNT],
    histograms: [AtomicHistogram; OpKind::COUNT],
    ring: TraceRing,
}

impl Stripe {
    fn new(trace_capacity: usize) -> Self {
        Stripe {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            errors: std::array::from_fn(|_| AtomicU64::new(0)),
            histograms: std::array::from_fn(|_| AtomicHistogram::new()),
            ring: TraceRing::new(trace_capacity),
        }
    }
}

/// One recorded op — what [`Telemetry::record`] takes from the engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpSample {
    /// What ran.
    pub kind: OpKind,
    /// Client the op ran for (`u32::MAX` for client-less ops).
    pub client: u32,
    /// Raw VBID touched, 0 when unknown.
    pub vbid: u64,
    /// Home shard of the touched VB.
    pub shard: u16,
    /// Start, nanoseconds since [`Telemetry::now_ns`]'s epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
    /// [`TraceEvent`] flag bits.
    pub flags: u8,
    /// Whether `start_ns`/`duration_ns` are real clock measurements
    /// ([`Telemetry::should_time`] said yes). Untimed samples bump the
    /// exact per-op counters but skip the latency histogram and the trace
    /// ring — the engine skips the clock reads, not the accounting.
    pub timed: bool,
}

/// Per-kind metrics merged out of the registry — one row of a
/// [`Snapshot`].
#[derive(Debug, Clone, Default)]
pub struct OpLatency {
    /// Which op.
    pub kind: OpKind,
    /// Ops recorded.
    pub count: u64,
    /// Of those, ops that returned an error.
    pub errors: u64,
    /// Latency distribution (nanoseconds).
    pub latency: Histogram,
}

// Spreads threads across stripes: each thread picks a stripe round-robin
// on first record and keeps it (thread-affine, so stripes never contend in
// steady state). Shared across telemetry instances — it is a spreading
// heuristic, not an identity.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE_HINT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// Latency sampling period with tracing off: one in this many ops reads
/// the clock for the histograms (the per-op counters are always exact).
/// Amortizes the two `clock_gettime` calls of a timed op down to ~1–2 ns
/// on the hottest path — the difference between "telemetry on" costing a
/// few percent and costing tens.
pub const LATENCY_SAMPLE_PERIOD: u32 = 16;

thread_local! {
    static LATENCY_TICK: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// The per-front-end metrics registry and trace plane.
///
/// Created by each front end (one stripe per MTL shard) and handed to the
/// engine through [`crate::ops::OpEnv::telemetry`]; the engine records one
/// [`OpSample`] per [`crate::ops::execute`] at its boundaries. Metrics and
/// tracing are independently togglable at runtime; both off means the
/// engine pays a single relaxed load per op.
pub struct Telemetry {
    metrics_on: AtomicBool,
    tracing_on: AtomicBool,
    epoch: Instant,
    stripes: Box<[Stripe]>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("stripes", &self.stripes.len())
            .field("metrics_on", &self.metrics_enabled())
            .field("tracing_on", &self.tracing_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A registry with `stripes` stripes (use the shard count), each with a
    /// trace ring of `trace_capacity` events; `metrics` / `tracing` are the
    /// initial toggle states (see [`crate::VbiConfig::telemetry_metrics`]).
    pub fn new(stripes: usize, trace_capacity: usize, metrics: bool, tracing: bool) -> Self {
        let stripes = stripes.max(1);
        Telemetry {
            metrics_on: AtomicBool::new(metrics),
            tracing_on: AtomicBool::new(tracing),
            epoch: Instant::now(),
            stripes: (0..stripes).map(|_| Stripe::new(trace_capacity)).collect(),
        }
    }

    /// Number of stripes (== shard count of the owning front end).
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Whether per-op counters/histograms are being recorded.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics_on.load(Ordering::Relaxed)
    }

    /// Whether trace events are being recorded.
    pub fn tracing_enabled(&self) -> bool {
        self.tracing_on.load(Ordering::Relaxed)
    }

    /// Whether anything at all is being recorded — the engine's one
    /// hot-path check.
    pub fn armed(&self) -> bool {
        self.metrics_enabled() || self.tracing_enabled()
    }

    /// Toggles metric recording at runtime.
    pub fn set_metrics(&self, on: bool) {
        self.metrics_on.store(on, Ordering::Relaxed);
    }

    /// Toggles trace recording at runtime.
    pub fn set_tracing(&self, on: bool) {
        self.tracing_on.store(on, Ordering::Relaxed);
    }

    /// Nanoseconds since this registry's epoch (trace timestamp base).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Whether the current op should read the clock: always under tracing
    /// (every [`TraceEvent`] needs real timestamps), one op in
    /// [`LATENCY_SAMPLE_PERIOD`] under metrics alone, never when disarmed.
    /// Sampling keeps per-op `clock_gettime` calls off the armed hot path;
    /// the counters stay exact and the histograms become a uniform sample
    /// of the same distribution.
    pub fn should_time(&self) -> bool {
        if self.tracing_enabled() {
            return true;
        }
        if !self.metrics_enabled() {
            return false;
        }
        LATENCY_TICK.with(|t| {
            let n = t.get().wrapping_add(1);
            t.set(n);
            n % LATENCY_SAMPLE_PERIOD == 0
        })
    }

    fn stripe(&self) -> &Stripe {
        let hint = STRIPE_HINT.with(|h| {
            let mut v = h.get();
            if v == usize::MAX {
                v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed);
                h.set(v);
            }
            v
        });
        &self.stripes[hint % self.stripes.len()]
    }

    /// Records one executed op into the calling thread's stripe: counters
    /// (always exact) and the per-kind histogram when metrics are on, a
    /// [`TraceEvent`] when tracing is on. Histogram and ring only take
    /// `timed` samples — untimed ones carry no real clock readings (see
    /// [`Telemetry::should_time`]). All relaxed atomics; no allocation.
    pub fn record(&self, sample: OpSample) {
        let metrics = self.metrics_enabled();
        let tracing = self.tracing_enabled();
        if !metrics && !tracing {
            return;
        }
        let stripe = self.stripe();
        let row = sample.kind.index();
        if metrics {
            stripe.counts[row].fetch_add(1, Ordering::Relaxed);
            if sample.flags & TraceEvent::FLAG_ERROR != 0 {
                stripe.errors[row].fetch_add(1, Ordering::Relaxed);
            }
            if sample.timed {
                stripe.histograms[row].record(sample.duration_ns);
            }
        }
        if tracing && sample.timed {
            stripe.ring.push(TraceEvent {
                start_ns: sample.start_ns,
                duration_ns: sample.duration_ns,
                vbid: sample.vbid,
                client: sample.client,
                shard: sample.shard,
                kind: sample.kind,
                flags: sample.flags,
            });
        }
    }

    /// Per-kind metrics merged across every stripe, in [`OpKind::ALL`]
    /// order (zero-count kinds included).
    pub fn op_latencies(&self) -> Vec<OpLatency> {
        OpKind::ALL
            .iter()
            .map(|&kind| {
                let row = kind.index();
                let mut out = OpLatency { kind, ..OpLatency::default() };
                for stripe in self.stripes.iter() {
                    out.count += stripe.counts[row].load(Ordering::Relaxed);
                    out.errors += stripe.errors[row].load(Ordering::Relaxed);
                    out.latency.merge(&stripe.histograms[row].load());
                }
                out
            })
            .collect()
    }

    /// Total recorded ops per stripe (sum of every kind's exact counter) —
    /// what the stress suite checks against ops submitted. With tracing on
    /// every op is timed, so this also equals the per-stripe histogram
    /// counts; with tracing off the histograms hold a 1-in-
    /// [`LATENCY_SAMPLE_PERIOD`] sample and sit below it.
    pub fn ops_per_stripe(&self) -> Vec<u64> {
        self.stripes
            .iter()
            .map(|s| s.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum())
            .collect()
    }

    /// Total ops recorded across all stripes and kinds.
    pub fn total_ops(&self) -> u64 {
        self.ops_per_stripe().iter().sum()
    }

    /// Every stripe's published trace events, merged oldest-first.
    pub fn drain_trace(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> =
            self.stripes.iter().flat_map(|s| s.ring.drain()).collect();
        events.sort_by_key(|e| e.start_ns);
        events
    }

    /// Events pushed minus events still held — how many the rings have
    /// overwritten (dropped oldest-first).
    pub fn trace_dropped(&self) -> u64 {
        self.stripes.iter().map(|s| s.ring.pushed().saturating_sub(s.ring.capacity() as u64)).sum()
    }

    /// Clears counters and histograms (benchmark warm-up boundary). Trace
    /// rings are left alone — drain them instead.
    pub fn reset_metrics(&self) {
        for stripe in self.stripes.iter() {
            for c in &stripe.counts {
                c.store(0, Ordering::Relaxed);
            }
            for e in &stripe.errors {
                e.store(0, Ordering::Relaxed);
            }
            for h in &stripe.histograms {
                h.reset();
            }
        }
    }
}

// --- snapshot ---------------------------------------------------------------

/// Per-shard lock and work counters, as reported by the service front end
/// (all zero on the single-owner `System`, which takes no shard locks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardActivity {
    /// MTL shard-lock acquisitions.
    pub acquisitions: u64,
    /// Of those, acquisitions that had to block.
    pub contended: u64,
    /// Engine ops whose MTL work ran on this shard.
    pub ops_executed: u64,
}

/// Client-map lookup counters, split by path ([`Snapshot::client_map`]).
///
/// Produced by the service's epoch-validated sharded client map:
/// `lockfree_hits` counts slot resolutions served entirely from the
/// published table (zero shared locks); `generation_retries` counts
/// re-reads forced by a concurrent create/destroy bumping the map shard's
/// generation mid-snapshot; `locked_fallbacks` counts resolutions that went
/// through the authoritative per-shard mutex (misses or publish-table
/// overflow). All zero on the single-owner `System`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientMapStats {
    /// Slot resolutions served lock-free from the published table.
    pub lockfree_hits: u64,
    /// Lock-free snapshots retried because the shard generation moved.
    pub generation_retries: u64,
    /// Resolutions that took the authoritative map-shard mutex.
    pub locked_fallbacks: u64,
    /// Slot-arena chunks materialized so far. Chunks are never freed, so
    /// this is the map's permanent memory footprint in chunk units — a
    /// long-lived service watches it to see client-churn fragmentation.
    pub arena_chunks: u64,
    /// Arena slots currently owned by a live client.
    pub slots_live: u64,
    /// Arena slots whose client was destroyed, parked on the free list
    /// awaiting reuse (dead weight until the next create claims them).
    pub slots_dead: u64,
}

impl ClientMapStats {
    /// Total slot resolutions (each resolves exactly once, lock-free or
    /// locked; generation retries are extra attempts, not extra lookups).
    pub fn lookups(&self) -> u64 {
        self.lockfree_hits + self.locked_fallbacks
    }

    /// Accumulates another map's counters into this one (front ends built
    /// on top of the service aggregate into one report). The arena gauges
    /// sum too: merged maps report the combined footprint, matching a
    /// combined run when the workloads touch disjoint slot ranges (the
    /// merge test pins this with chunk-filling runs).
    pub fn merge(&mut self, other: &ClientMapStats) {
        let ClientMapStats {
            lockfree_hits,
            generation_retries,
            locked_fallbacks,
            arena_chunks,
            slots_live,
            slots_dead,
        } = other;
        self.lockfree_hits += lockfree_hits;
        self.generation_retries += generation_retries;
        self.locked_fallbacks += locked_fallbacks;
        self.arena_chunks += arena_chunks;
        self.slots_live += slots_live;
        self.slots_dead += slots_dead;
    }
}

/// Queue front-end depth counters ([`Snapshot::queue`], present only for
/// `VbiQueue`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueActivity {
    /// Submissions currently waiting in rings.
    pub queued: u64,
    /// Submitted but not yet reaped.
    pub in_flight: u64,
    /// High-water mark of queued submissions.
    pub high_water: u64,
    /// Completions ever produced.
    pub completed: u64,
    /// High-water mark of ops in flight at once (submitted, completion not
    /// yet posted) — how deep the pipeline actually got.
    pub inflight_high_water: u64,
    /// Async submissions that had to *wait* for an in-flight budget slot
    /// before entering the rings (the backpressure that keeps slow
    /// completion consumers from growing the completion state without
    /// bound). Zero for purely synchronous use.
    pub backpressure_waits: u64,
}

/// One serializable view of a whole front end: MTL/TLB/CVT-cache counters,
/// shard contention and work, queue depth, pressure counters, and the
/// per-op latency registry — the §7.2 counter set plus everything the
/// concurrent front ends added, in one place.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Which front end produced this ("system", "service", "queue").
    pub front_end: &'static str,
    /// MTL shards behind the front end.
    pub shards: usize,
    /// MTL counters merged across shards.
    pub mtl: MtlStats,
    /// MTL counters per shard, shard-index order.
    pub per_shard_mtl: Vec<MtlStats>,
    /// Translation TLB counters merged across shards (page + direct TLBs).
    pub tlb: TlbStats,
    /// CVT-cache counters merged across clients.
    pub cvt_cache: CvtCacheStats,
    /// Client-map lookup counters (zero for front ends without a sharded
    /// client map).
    pub client_map: ClientMapStats,
    /// Per-shard lock/work counters, shard-index order.
    pub shard_activity: Vec<ShardActivity>,
    /// Per-shard external fragmentation of the buddy allocator at
    /// [`Snapshot::FRAGMENTATION_ORDER`], shard-index order: the fraction
    /// of each shard's free memory not usable for a contiguous block of
    /// that order (0.0 = fully defragmented). Long-lived services watch
    /// this alongside the frame-cache counters to see churn-driven
    /// fragmentation build up.
    pub per_shard_fragmentation: Vec<f64>,
    /// Per-op counts and latency histograms, [`OpKind::ALL`] order.
    pub ops: Vec<OpLatency>,
    /// Recorded ops per telemetry stripe.
    pub ops_per_stripe: Vec<u64>,
    /// Free physical frames summed across shards.
    pub free_frames: u64,
    /// Payload-bearing pages in the backing stores, summed across shards.
    pub swap_occupancy: u64,
    /// Queue depth counters (queue front end only).
    pub queue: Option<QueueActivity>,
}

impl Snapshot {
    /// The block order [`Snapshot::per_shard_fragmentation`] is reported
    /// at: order 5 = 32 contiguous frames = 128 KiB, the smallest VB size
    /// class — the block a whole-VB early reservation needs.
    pub const FRAGMENTATION_ORDER: u32 = 5;

    /// Total ops recorded across all kinds.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().map(|o| o.count).sum()
    }

    /// The metrics row for `kind`.
    pub fn op(&self, kind: OpKind) -> Option<&OpLatency> {
        self.ops.iter().find(|o| o.kind == kind)
    }

    /// One-line JSON exposition: nested objects, keys sorted, zero-count
    /// op rows elided. Schema-stable — fields appear in sorted order.
    pub fn to_json(&self) -> String {
        use JsonValue as J;
        let mtl_json = |m: &MtlStats| {
            json_object(&[
                ("translation_requests", J::U(m.translation_requests)),
                ("tlb_hits", J::U(m.tlb_hits)),
                ("walks", J::U(m.walks)),
                ("pages_allocated", J::U(m.pages_allocated)),
                ("faults_in", J::U(m.faults_in)),
                ("evictions", J::U(m.evictions)),
                ("writebacks", J::U(m.writebacks)),
                ("pages_swapped_out", J::U(m.pages_swapped_out)),
                ("pages_swapped_in", J::U(m.pages_swapped_in)),
                ("promotions", J::U(m.promotions)),
                ("vbs_cloned", J::U(m.vbs_cloned)),
                ("vbs_migrated", J::U(m.vbs_migrated)),
                ("frame_cache_hits", J::U(m.frame_cache_hits)),
                ("frame_cache_misses", J::U(m.frame_cache_misses)),
                ("frame_cache_refills", J::U(m.frame_cache_refills)),
                ("frame_cache_flushes", J::U(m.frame_cache_flushes)),
                ("frame_cache_batch_frees", J::U(m.frame_cache_batch_frees)),
            ])
        };
        let ops_json: Vec<String> = self
            .ops
            .iter()
            .filter(|o| o.count > 0)
            .map(|o| {
                json_object(&[
                    ("op", J::S(o.kind.name().to_string())),
                    ("count", J::U(o.count)),
                    ("errors", J::U(o.errors)),
                    ("p50_ns", J::U(o.latency.percentile(50.0))),
                    ("p99_ns", J::U(o.latency.percentile(99.0))),
                    ("p999_ns", J::U(o.latency.percentile(99.9))),
                    ("max_ns", J::U(o.latency.max())),
                    ("mean_ns", J::F(o.latency.mean(), 1)),
                ])
            })
            .collect();
        let shard_json: Vec<String> = self
            .shard_activity
            .iter()
            .map(|s| {
                json_object(&[
                    ("acquisitions", J::U(s.acquisitions)),
                    ("contended", J::U(s.contended)),
                    ("ops_executed", J::U(s.ops_executed)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("front_end", J::S(self.front_end.to_string())),
            ("shards", J::U(self.shards as u64)),
            ("total_ops", J::U(self.total_ops())),
            ("mtl", J::Raw(mtl_json(&self.mtl))),
            (
                "per_shard_mtl",
                J::Raw(format!(
                    "[{}]",
                    self.per_shard_mtl.iter().map(mtl_json).collect::<Vec<_>>().join(",")
                )),
            ),
            (
                "tlb",
                J::Raw(json_object(&[
                    ("hits", J::U(self.tlb.hits)),
                    ("misses", J::U(self.tlb.misses)),
                    ("evictions", J::U(self.tlb.evictions)),
                ])),
            ),
            (
                "cvt_cache",
                J::Raw(json_object(&[
                    ("lockfree_hits", J::U(self.cvt_cache.lockfree_hits)),
                    ("locked_hits", J::U(self.cvt_cache.locked_hits)),
                    ("misses", J::U(self.cvt_cache.misses)),
                    ("torn_retries", J::U(self.cvt_cache.torn_retries)),
                ])),
            ),
            (
                "client_map",
                J::Raw(json_object(&[
                    ("lockfree_hits", J::U(self.client_map.lockfree_hits)),
                    ("generation_retries", J::U(self.client_map.generation_retries)),
                    ("locked_fallbacks", J::U(self.client_map.locked_fallbacks)),
                    ("arena_chunks", J::U(self.client_map.arena_chunks)),
                    ("slots_live", J::U(self.client_map.slots_live)),
                    ("slots_dead", J::U(self.client_map.slots_dead)),
                ])),
            ),
            ("shard_activity", J::Raw(format!("[{}]", shard_json.join(",")))),
            (
                "per_shard_fragmentation",
                J::Raw(format!(
                    "[{}]",
                    self.per_shard_fragmentation
                        .iter()
                        .map(|f| format!("{f:.4}"))
                        .collect::<Vec<_>>()
                        .join(",")
                )),
            ),
            ("ops", J::Raw(format!("[{}]", ops_json.join(",")))),
            (
                "ops_per_stripe",
                J::Raw(format!(
                    "[{}]",
                    self.ops_per_stripe.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",")
                )),
            ),
            ("free_frames", J::U(self.free_frames)),
            ("swap_occupancy", J::U(self.swap_occupancy)),
        ];
        if let Some(q) = &self.queue {
            fields.push((
                "queue",
                J::Raw(json_object(&[
                    ("queued", J::U(q.queued)),
                    ("in_flight", J::U(q.in_flight)),
                    ("high_water", J::U(q.high_water)),
                    ("completed", J::U(q.completed)),
                    ("inflight_high_water", J::U(q.inflight_high_water)),
                    ("backpressure_waits", J::U(q.backpressure_waits)),
                ])),
            ));
        }
        json_object(&fields)
    }

    /// Prometheus-style text exposition: one `name{labels} value` line per
    /// counter, `vbi_` prefixed, with per-op summary quantiles.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut line = |name: &str, labels: &str, value: String| {
            out.push_str("vbi_");
            out.push_str(name);
            if !labels.is_empty() {
                out.push('{');
                out.push_str(labels);
                out.push('}');
            }
            out.push(' ');
            out.push_str(&value);
            out.push('\n');
        };
        let fe = format!("front_end=\"{}\"", self.front_end);
        line("shards", &fe, self.shards.to_string());
        line("mtl_translation_requests", &fe, self.mtl.translation_requests.to_string());
        line("mtl_tlb_hits", &fe, self.mtl.tlb_hits.to_string());
        line("mtl_walks", &fe, self.mtl.walks.to_string());
        line("mtl_pages_allocated", &fe, self.mtl.pages_allocated.to_string());
        line("mtl_faults_in", &fe, self.mtl.faults_in.to_string());
        line("mtl_evictions", &fe, self.mtl.evictions.to_string());
        line("mtl_writebacks", &fe, self.mtl.writebacks.to_string());
        line("mtl_frame_cache_hits", &fe, self.mtl.frame_cache_hits.to_string());
        line("mtl_frame_cache_misses", &fe, self.mtl.frame_cache_misses.to_string());
        line("mtl_frame_cache_refills", &fe, self.mtl.frame_cache_refills.to_string());
        line("mtl_frame_cache_flushes", &fe, self.mtl.frame_cache_flushes.to_string());
        line("mtl_frame_cache_batch_frees", &fe, self.mtl.frame_cache_batch_frees.to_string());
        line("tlb_hits", &fe, self.tlb.hits.to_string());
        line("tlb_misses", &fe, self.tlb.misses.to_string());
        line("cvt_cache_lockfree_hits", &fe, self.cvt_cache.lockfree_hits.to_string());
        line("cvt_cache_locked_hits", &fe, self.cvt_cache.locked_hits.to_string());
        line("cvt_cache_misses", &fe, self.cvt_cache.misses.to_string());
        line("cvt_cache_torn_retries", &fe, self.cvt_cache.torn_retries.to_string());
        line("client_map_lockfree_hits", &fe, self.client_map.lockfree_hits.to_string());
        line("client_map_generation_retries", &fe, self.client_map.generation_retries.to_string());
        line("client_map_locked_fallbacks", &fe, self.client_map.locked_fallbacks.to_string());
        line("client_map_arena_chunks", &fe, self.client_map.arena_chunks.to_string());
        line("client_map_slots_live", &fe, self.client_map.slots_live.to_string());
        line("client_map_slots_dead", &fe, self.client_map.slots_dead.to_string());
        line("free_frames", &fe, self.free_frames.to_string());
        line("swap_occupancy_pages", &fe, self.swap_occupancy.to_string());
        for (i, s) in self.shard_activity.iter().enumerate() {
            let labels = format!("{fe},shard=\"{i}\"");
            line("shard_lock_acquisitions", &labels, s.acquisitions.to_string());
            line("shard_lock_contended", &labels, s.contended.to_string());
            line("shard_ops_executed", &labels, s.ops_executed.to_string());
        }
        for (i, f) in self.per_shard_fragmentation.iter().enumerate() {
            let labels = format!("{fe},shard=\"{i}\",order=\"{}\"", Snapshot::FRAGMENTATION_ORDER);
            line("fragmentation", &labels, format!("{f:.4}"));
        }
        for o in self.ops.iter().filter(|o| o.count > 0) {
            let op = format!("{fe},op=\"{}\"", o.kind.name());
            line("op_count", &op, o.count.to_string());
            line("op_errors", &op, o.errors.to_string());
            for (q, p) in [("0.5", 50.0), ("0.99", 99.0), ("0.999", 99.9)] {
                let labels = format!("{op},quantile=\"{q}\"");
                line("op_latency_ns", &labels, o.latency.percentile(p).to_string());
            }
        }
        if let Some(q) = &self.queue {
            line("queue_depth", &fe, q.queued.to_string());
            line("queue_in_flight", &fe, q.in_flight.to_string());
            line("queue_depth_high_water", &fe, q.high_water.to_string());
            line("queue_completed", &fe, q.completed.to_string());
            line("queue_inflight_high_water", &fe, q.inflight_high_water.to_string());
            line("queue_backpressure_waits", &fe, q.backpressure_waits.to_string());
        }
        out
    }
}

// --- chrome trace export ----------------------------------------------------

/// Renders trace events as Chrome `trace_event` JSON (the
/// `{"traceEvents":[...]}` object form, complete `ph:"X"` duration
/// events) — write it to a file and open it in `chrome://tracing` or
/// [Perfetto](https://ui.perfetto.dev).
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 64);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Chrome timestamps are microseconds; keep ns resolution with
        // fractional µs.
        out.push_str(&format!(
            "{{\"args\":{{\"flags\":\"{}\",\"vbid\":{}}},\"cat\":\"vbi\",\"dur\":{:.3},\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{:.3}}}",
            e.flag_names(),
            e.vbid,
            e.duration_ns as f64 / 1000.0,
            e.kind.name(),
            e.client,
            e.shard,
            e.start_ns as f64 / 1000.0,
        ));
    }
    out.push_str("]}");
    out
}

// --- JSON / bench-line emission ---------------------------------------------

/// A value in a [`json_object`] / [`bench_line`] field list.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// An unsigned integer.
    U(u64),
    /// A signed integer.
    I(i64),
    /// A float rendered with the given number of decimals.
    F(f64, u8),
    /// A boolean.
    B(bool),
    /// A string (escaped on render).
    S(String),
    /// Pre-rendered JSON spliced in verbatim (nested objects/arrays).
    Raw(String),
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn render_value(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::U(n) => out.push_str(&n.to_string()),
        JsonValue::I(n) => out.push_str(&n.to_string()),
        JsonValue::F(f, decimals) => {
            if f.is_finite() {
                out.push_str(&format!("{:.*}", *decimals as usize, f));
            } else {
                out.push('0');
            }
        }
        JsonValue::B(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::S(s) => {
            out.push('"');
            escape_json(s, out);
            out.push('"');
        }
        JsonValue::Raw(r) => out.push_str(r),
    }
}

/// Renders one-line JSON from `fields`, keys sorted (schema-stable
/// regardless of call-site order).
pub fn json_object(fields: &[(&str, JsonValue)]) -> String {
    let mut sorted: Vec<&(&str, JsonValue)> = fields.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(k, &mut out);
        out.push_str("\":");
        render_value(v, &mut out);
    }
    out.push('}');
    out
}

/// The one shared `BENCH_*` trajectory-line emitter: renders
/// `BENCH_<name> {json}` with `"bench":"<name>"` pinned first and every
/// other field sorted, so all benches emit schema-consistent lines that
/// log-scrapers can diff across commits. Print the returned line as-is.
pub fn bench_line(name: &str, fields: &[(&str, JsonValue)]) -> String {
    let mut sorted: Vec<&(&str, JsonValue)> = fields.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let mut out = format!("BENCH_{name} {{\"bench\":\"");
    escape_json(name, &mut out);
    out.push('"');
    for (k, v) in sorted {
        out.push_str(",\"");
        escape_json(k, &mut out);
        out.push_str("\":");
        render_value(v, &mut out);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_at_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for k in 1..62 {
            let v = 1u64 << k;
            // 2^k opens bucket k+1; 2^k - 1 closes bucket k.
            assert_eq!(bucket_index(v), k + 1, "2^{k}");
            assert_eq!(bucket_index(v - 1), k, "2^{k}-1");
            assert_eq!(bucket_upper_bound(k), v - 1);
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let samples_a = [0u64, 1, 7, 8, 100, 4096, 1 << 40];
        let samples_b = [3u64, 3, 3, 900, u64::MAX];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for &s in &samples_a {
            a.record(s);
            combined.record(s);
        }
        for &s in &samples_b {
            b.record(s);
            combined.record(s);
        }
        a.merge(&b);
        assert_eq!(a, combined);
        assert_eq!(a.count(), (samples_a.len() + samples_b.len()) as u64);
    }

    #[test]
    fn percentile_is_monotone_in_p() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 10, 100, 1000, 10_000, 100_000] {
            for _ in 0..7 {
                h.record(v);
            }
        }
        let ps = [0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0];
        let values: Vec<u64> = ps.iter().map(|&p| h.percentile(p)).collect();
        for w in values.windows(2) {
            assert!(w[0] <= w[1], "percentile not monotone: {values:?}");
        }
        assert!(h.percentile(100.0) >= 100_000 / 2, "tail percentile too low");
    }

    #[test]
    fn percentile_of_uniform_samples_brackets_the_true_value() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        // True median 500; log buckets answer within its bucket [256, 511].
        assert!((256..=511).contains(&p50), "p50 = {p50}");
        assert_eq!(h.percentile(100.0), 1000, "max is exact for tail bucket");
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.percentile(99.9), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn trace_ring_wraps_dropping_oldest_never_torn() {
        let ring = TraceRing::new(8);
        for i in 0..20u64 {
            ring.push(TraceEvent {
                start_ns: i,
                duration_ns: i * 3,
                vbid: i,
                client: i as u32,
                shard: (i % 4) as u16,
                kind: OpKind::ALL[(i % OpKind::COUNT as u64) as usize],
                flags: (i % 16) as u8,
            });
        }
        let events = ring.drain();
        assert_eq!(events.len(), 8, "ring holds exactly its capacity");
        assert_eq!(ring.pushed(), 20);
        // The survivors are exactly the newest 8, untorn: every field
        // still satisfies the generator's relations.
        for (j, e) in events.iter().enumerate() {
            let i = 12 + j as u64;
            assert_eq!(e.start_ns, i);
            assert_eq!(e.duration_ns, i * 3);
            assert_eq!(e.vbid, i);
            assert_eq!(e.client, i as u32);
            assert_eq!(e.shard, (i % 4) as u16);
            assert_eq!(e.kind, OpKind::ALL[(i % OpKind::COUNT as u64) as usize]);
            assert_eq!(e.flags, (i % 16) as u8);
        }
    }

    #[test]
    fn trace_ring_concurrent_pushes_are_never_torn() {
        use std::sync::Arc;
        let ring = Arc::new(TraceRing::new(64));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let v = t * 10_000 + i;
                        ring.push(TraceEvent {
                            start_ns: v,
                            duration_ns: v * 7,
                            vbid: v,
                            ..TraceEvent::default()
                        });
                    }
                })
            })
            .collect();
        // Concurrent drains must only ever see internally consistent events.
        for _ in 0..50 {
            for e in ring.drain() {
                assert_eq!(e.duration_ns, e.start_ns * 7, "torn event: {e:?}");
                assert_eq!(e.vbid, e.start_ns);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        let events = ring.drain();
        assert_eq!(events.len(), 64);
        for e in &events {
            assert_eq!(e.duration_ns, e.start_ns * 7);
        }
    }

    #[test]
    fn telemetry_records_and_merges_across_stripes() {
        let t = Telemetry::new(4, 16, true, true);
        for i in 0..100u64 {
            t.record(OpSample {
                kind: OpKind::LoadU64,
                duration_ns: i,
                flags: if i % 10 == 0 { TraceEvent::FLAG_ERROR } else { 0 },
                timed: true,
                ..OpSample::default()
            });
        }
        assert_eq!(t.total_ops(), 100);
        assert_eq!(t.ops_per_stripe().iter().sum::<u64>(), 100);
        let ops = t.op_latencies();
        let load = ops.iter().find(|o| o.kind == OpKind::LoadU64).unwrap();
        assert_eq!(load.count, 100);
        assert_eq!(load.errors, 10);
        assert_eq!(load.latency.count(), 100);
        assert!(!t.drain_trace().is_empty());
        t.reset_metrics();
        assert_eq!(t.total_ops(), 0);
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let t = Telemetry::new(1, 16, false, false);
        t.record(OpSample {
            kind: OpKind::Attach,
            duration_ns: 5,
            timed: true,
            ..OpSample::default()
        });
        assert_eq!(t.total_ops(), 0);
        assert!(t.drain_trace().is_empty());
        t.set_metrics(true);
        t.record(OpSample {
            kind: OpKind::Attach,
            duration_ns: 5,
            timed: true,
            ..OpSample::default()
        });
        assert_eq!(t.total_ops(), 1);
        assert!(t.drain_trace().is_empty(), "tracing still off");
    }

    /// A minimal JSON syntax walker: enough to assert the exporters emit
    /// structurally valid JSON (balanced, correctly quoted, comma-separated)
    /// without a JSON dependency.
    fn check_json(s: &str) {
        let bytes = s.as_bytes();
        let mut i = 0usize;
        fn skip_ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && (b[*i] as char).is_whitespace() {
                *i += 1;
            }
        }
        fn value(b: &[u8], i: &mut usize) {
            skip_ws(b, i);
            assert!(*i < b.len(), "truncated JSON");
            match b[*i] {
                b'{' => {
                    *i += 1;
                    skip_ws(b, i);
                    if b[*i] == b'}' {
                        *i += 1;
                        return;
                    }
                    loop {
                        skip_ws(b, i);
                        string(b, i);
                        skip_ws(b, i);
                        assert_eq!(b[*i], b':', "missing ':' at {i}");
                        *i += 1;
                        value(b, i);
                        skip_ws(b, i);
                        match b[*i] {
                            b',' => *i += 1,
                            b'}' => {
                                *i += 1;
                                return;
                            }
                            c => panic!("unexpected {:?} in object", c as char),
                        }
                    }
                }
                b'[' => {
                    *i += 1;
                    skip_ws(b, i);
                    if b[*i] == b']' {
                        *i += 1;
                        return;
                    }
                    loop {
                        value(b, i);
                        skip_ws(b, i);
                        match b[*i] {
                            b',' => *i += 1,
                            b']' => {
                                *i += 1;
                                return;
                            }
                            c => panic!("unexpected {:?} in array", c as char),
                        }
                    }
                }
                b'"' => string(b, i),
                _ => {
                    // number / true / false / null
                    let start = *i;
                    while *i < b.len() && !b",}] \t\n".contains(&b[*i]) {
                        *i += 1;
                    }
                    let tok = std::str::from_utf8(&b[start..*i]).unwrap();
                    assert!(
                        tok == "true"
                            || tok == "false"
                            || tok == "null"
                            || tok.parse::<f64>().is_ok(),
                        "bad scalar {tok:?}"
                    );
                }
            }
        }
        fn string(b: &[u8], i: &mut usize) {
            assert_eq!(b[*i], b'"', "expected string at {i}");
            *i += 1;
            while b[*i] != b'"' {
                if b[*i] == b'\\' {
                    *i += 1;
                }
                *i += 1;
                assert!(*i < b.len(), "unterminated string");
            }
            *i += 1;
        }
        value(bytes, &mut i);
        skip_ws(bytes, &mut i);
        assert_eq!(i, bytes.len(), "trailing garbage after JSON");
    }

    #[test]
    fn chrome_trace_is_valid_trace_event_json() {
        let t = Telemetry::new(2, 32, true, true);
        for i in 0..10u64 {
            t.record(OpSample {
                kind: OpKind::ALL[(i % OpKind::COUNT as u64) as usize],
                client: i as u32,
                vbid: i,
                shard: (i % 2) as u16,
                start_ns: i * 1000,
                duration_ns: 500,
                flags: if i % 3 == 0 { TraceEvent::FLAG_FAULT_IN } else { 0 },
                timed: true,
            });
        }
        let json = chrome_trace(&t.drain_trace());
        check_json(&json);
        // The trace_event envelope Perfetto/chrome://tracing requires.
        assert!(json.starts_with('{'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":"));
        assert!(json.contains("\"dur\":"));
        assert!(json.contains("\"name\":"));
        assert!(json.contains("fault_in"));
        // Empty traces are still valid documents.
        check_json(&chrome_trace(&[]));
    }

    #[test]
    fn client_map_stats_merge_sums_every_field() {
        let mut a = ClientMapStats {
            lockfree_hits: 5,
            generation_retries: 1,
            locked_fallbacks: 2,
            arena_chunks: 1,
            slots_live: 10,
            slots_dead: 3,
        };
        a.merge(&ClientMapStats {
            lockfree_hits: 3,
            generation_retries: 4,
            locked_fallbacks: 6,
            arena_chunks: 2,
            slots_live: 7,
            slots_dead: 1,
        });
        assert_eq!(
            a,
            ClientMapStats {
                lockfree_hits: 8,
                generation_retries: 5,
                locked_fallbacks: 8,
                arena_chunks: 3,
                slots_live: 17,
                slots_dead: 4,
            }
        );
        assert_eq!(a.lookups(), 16, "retries are attempts, not lookups");
    }

    #[test]
    fn snapshot_renders_valid_json_and_prometheus() {
        let t = Telemetry::new(2, 8, true, false);
        for i in 0..50u64 {
            t.record(OpSample {
                kind: OpKind::StoreU64,
                duration_ns: i * 10,
                timed: true,
                ..OpSample::default()
            });
        }
        let snap = Snapshot {
            front_end: "service",
            shards: 2,
            mtl: MtlStats { faults_in: 7, ..MtlStats::default() },
            per_shard_mtl: vec![MtlStats::default(), MtlStats::default()],
            tlb: TlbStats { hits: 10, misses: 3, evictions: 1 },
            cvt_cache: CvtCacheStats::default(),
            client_map: ClientMapStats {
                lockfree_hits: 40,
                generation_retries: 2,
                locked_fallbacks: 10,
                arena_chunks: 1,
                slots_live: 4,
                slots_dead: 0,
            },
            shard_activity: vec![
                ShardActivity { acquisitions: 5, contended: 1, ops_executed: 25 },
                ShardActivity { acquisitions: 5, contended: 0, ops_executed: 25 },
            ],
            per_shard_fragmentation: vec![0.0, 0.25],
            ops: t.op_latencies(),
            ops_per_stripe: t.ops_per_stripe(),
            free_frames: 1024,
            swap_occupancy: 3,
            queue: Some(QueueActivity {
                queued: 0,
                in_flight: 2,
                high_water: 9,
                completed: 48,
                inflight_high_water: 6,
                backpressure_waits: 11,
            }),
        };
        let json = snap.to_json();
        check_json(&json);
        assert!(json.contains("\"front_end\":\"service\""));
        assert!(json.contains("\"faults_in\":7"));
        assert!(json.contains("\"high_water\":9"));
        assert!(json.contains("\"ops_executed\":25"));
        assert!(json.contains(
            "\"client_map\":{\"arena_chunks\":1,\"generation_retries\":2,\"locked_fallbacks\":10,\
             \"lockfree_hits\":40,\"slots_dead\":0,\"slots_live\":4}"
        ));
        assert!(json.contains("\"inflight_high_water\":6"));
        assert!(json.contains("\"backpressure_waits\":11"));
        assert!(json.contains("\"per_shard_fragmentation\":[0.0000,0.2500]"));
        assert!(json.contains("\"frame_cache_hits\":0"));
        assert_eq!(snap.total_ops(), 50);

        let prom = snap.to_prometheus();
        assert!(prom.contains("vbi_mtl_faults_in{front_end=\"service\"} 7"));
        assert!(prom.contains("vbi_op_count{front_end=\"service\",op=\"store_u64\"} 50"));
        assert!(prom.contains("quantile=\"0.99\""));
        assert!(prom.contains("vbi_queue_depth_high_water{front_end=\"service\"} 9"));
        assert!(prom.contains("vbi_shard_ops_executed{front_end=\"service\",shard=\"1\"} 25"));
        assert!(prom.contains("vbi_client_map_lockfree_hits{front_end=\"service\"} 40"));
        assert!(prom.contains("vbi_client_map_generation_retries{front_end=\"service\"} 2"));
        assert!(prom.contains("vbi_client_map_locked_fallbacks{front_end=\"service\"} 10"));
        assert!(prom.contains("vbi_client_map_arena_chunks{front_end=\"service\"} 1"));
        assert!(prom.contains("vbi_client_map_slots_live{front_end=\"service\"} 4"));
        assert!(prom.contains("vbi_client_map_slots_dead{front_end=\"service\"} 0"));
        assert!(prom.contains("vbi_queue_inflight_high_water{front_end=\"service\"} 6"));
        assert!(prom.contains("vbi_queue_backpressure_waits{front_end=\"service\"} 11"));
        assert!(prom.contains("vbi_mtl_frame_cache_hits{front_end=\"service\"} 0"));
        assert!(prom
            .contains("vbi_fragmentation{front_end=\"service\",shard=\"1\",order=\"5\"} 0.2500"));
        for l in prom.lines() {
            assert!(l.starts_with("vbi_"), "unprefixed line {l:?}");
            assert!(l.rsplit(' ').next().unwrap().parse::<f64>().is_ok(), "bad value in {l:?}");
        }
    }

    #[test]
    fn json_object_sorts_keys_and_escapes() {
        use JsonValue as J;
        let json = json_object(&[
            ("zeta", J::U(1)),
            ("alpha", J::S("a\"b\\c".to_string())),
            ("mid", J::F(1.5, 2)),
            ("flag", J::B(true)),
            ("neg", J::I(-3)),
            ("raw", J::Raw("[1,2]".to_string())),
        ]);
        assert_eq!(
            json,
            "{\"alpha\":\"a\\\"b\\\\c\",\"flag\":true,\"mid\":1.50,\"neg\":-3,\"raw\":[1,2],\"zeta\":1}"
        );
        check_json(&json);
    }

    #[test]
    fn bench_line_pins_bench_first_and_sorts_the_rest() {
        use JsonValue as J;
        let line = bench_line("demo", &[("z", J::U(1)), ("a", J::U(2))]);
        assert_eq!(line, "BENCH_demo {\"bench\":\"demo\",\"a\":2,\"z\":1}");
        check_json(line.strip_prefix("BENCH_demo ").unwrap());
    }
}
