//! Virtual-machine support: partitioning the VBI address space (§6.1).
//!
//! VBI isolates virtual machines by partitioning the global VBI address
//! space: a few bits of the VBID (five in the paper's Figure 5, supporting
//! 31 VMs plus the host as VM 0) name the owning VM. Client IDs are
//! partitioned the same way. Once a guest process is attached to its VBs,
//! its memory accesses are ordinary VBI accesses — no nested translation,
//! no two-dimensional page walks.

use core::fmt;

use crate::addr::{SizeClass, Vbuid};
use crate::client::ClientId;
use crate::error::{Result, VbiError};
use crate::session::ClientSession;
use crate::system::System;

/// A virtual-machine ID within the partitioned VBI space. ID 0 is the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmId(pub u8);

impl VmId {
    /// The host partition.
    pub const HOST: VmId = VmId(0);
}

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            f.write_str("host")
        } else {
            write!(f, "vm#{}", self.0)
        }
    }
}

/// Partitions VBIDs and client IDs among virtual machines.
///
/// With `vm_id_bits = 5` (Figure 5), each size class's VBID space is split
/// into 32 equal slices: the VM ID occupies the top five VBID bits, so for
/// the 4 GiB class the address is `100 | VM ID (5b) | VBID (24b) | offset
/// (32b)`.
///
/// # Examples
///
/// ```
/// use vbi_core::addr::SizeClass;
/// use vbi_core::vm::{VmId, VmPartition};
///
/// let part = VmPartition::new(5);
/// let vb = part.vbuid(VmId(3), SizeClass::Gib4, 7)?;
/// assert_eq!(part.vm_of(vb), VmId(3));
/// assert_eq!(part.local_vbid(vb), 7);
/// # Ok::<(), vbi_core::VbiError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmPartition {
    vm_id_bits: u32,
}

impl VmPartition {
    /// Creates a partitioning scheme with `vm_id_bits` bits of VM ID
    /// (supporting `2^vm_id_bits - 1` guests plus the host).
    ///
    /// # Panics
    ///
    /// Panics if `vm_id_bits` exceeds the smallest class's VBID width budget
    /// (8 bits keeps every class usable).
    pub fn new(vm_id_bits: u32) -> Self {
        assert!(vm_id_bits <= 8, "at most 8 VM-ID bits supported");
        Self { vm_id_bits }
    }

    /// Number of VMs supported, including the host.
    pub fn vm_count(&self) -> u32 {
        1 << self.vm_id_bits
    }

    /// Number of VBs of `size_class` available to each VM.
    pub fn vbs_per_vm(&self, size_class: SizeClass) -> u64 {
        size_class.vb_count() >> self.vm_id_bits
    }

    /// Builds the global VBUID for a VM-local VBID.
    ///
    /// # Errors
    ///
    /// [`VbiError::InvalidVmId`] if the VM ID does not fit the partition, or
    /// [`VbiError::OutOfVirtualBlocks`] if `local_vbid` exceeds the VM's
    /// slice.
    pub fn vbuid(&self, vm: VmId, size_class: SizeClass, local_vbid: u64) -> Result<Vbuid> {
        if u32::from(vm.0) >= self.vm_count() {
            return Err(VbiError::InvalidVmId(vm.0));
        }
        let per_vm = self.vbs_per_vm(size_class);
        if local_vbid >= per_vm {
            return Err(VbiError::OutOfVirtualBlocks(size_class));
        }
        let shift = size_class.vbid_bits() - self.vm_id_bits;
        Ok(Vbuid::new(size_class, ((vm.0 as u64) << shift) | local_vbid))
    }

    /// The VM that owns a VB.
    pub fn vm_of(&self, vbuid: Vbuid) -> VmId {
        let shift = vbuid.size_class().vbid_bits() - self.vm_id_bits;
        VmId((vbuid.vbid() >> shift) as u8)
    }

    /// The VM-local VBID of a VB.
    pub fn local_vbid(&self, vbuid: Vbuid) -> u64 {
        let shift = vbuid.size_class().vbid_bits() - self.vm_id_bits;
        vbuid.vbid() & ((1u64 << shift) - 1)
    }

    /// The client-ID range assigned to a VM (client IDs are partitioned the
    /// same way as VBIDs, over the 16-bit client space).
    pub fn client_range(&self, vm: VmId) -> (u16, u32) {
        let per_vm = (1u32 << 16) >> self.vm_id_bits;
        let start = per_vm * u32::from(vm.0);
        (start as u16, start + per_vm)
    }
}

/// A guest virtual machine: a slice of the VBI space plus its own client-ID
/// range. The guest OS allocates VBs and clients inside its slice without
/// coordinating with the host (§6.1).
#[derive(Debug)]
pub struct VirtualMachine {
    vm: VmId,
    partition: VmPartition,
    next_client: u32,
    client_end: u32,
}

impl VirtualMachine {
    /// Creates the guest-side state for `vm` under `partition`.
    pub fn new(vm: VmId, partition: VmPartition) -> Self {
        let (start, end) = partition.client_range(vm);
        Self { vm, partition, next_client: start as u32, client_end: end }
    }

    /// The VM's ID.
    pub fn id(&self) -> VmId {
        self.vm
    }

    /// Creates a guest process: a client inside the VM's client-ID slice,
    /// returned as a session like any native client.
    ///
    /// # Errors
    ///
    /// [`VbiError::OutOfClients`] when the slice is exhausted.
    pub fn create_guest_client(&mut self, system: &System) -> Result<ClientSession<System>> {
        if self.next_client >= self.client_end {
            return Err(VbiError::OutOfClients);
        }
        let id = ClientId(self.next_client as u16);
        self.next_client += 1;
        system.create_client_with_id(id)
    }

    /// Finds a free VB of `size_class` inside the VM's slice by scanning
    /// VM-local VBIDs (the guest OS's `request_vb` scan).
    ///
    /// # Errors
    ///
    /// [`VbiError::OutOfVirtualBlocks`] when the slice is exhausted.
    pub fn find_free_vb(&self, system: &System, size_class: SizeClass) -> Result<Vbuid> {
        let per_vm = self.partition.vbs_per_vm(size_class);
        for local in 0..per_vm {
            let vbuid = self.partition.vbuid(self.vm, size_class, local)?;
            if system.mtl().translation_kind(vbuid).is_err() {
                // Not enabled: free.
                return Ok(vbuid);
            }
        }
        Err(VbiError::OutOfVirtualBlocks(size_class))
    }

    /// Whether `vbuid` belongs to this VM's slice.
    pub fn owns(&self, vbuid: Vbuid) -> bool {
        self.partition.vm_of(vbuid) == self.vm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VbiConfig;
    use crate::perm::Rwx;
    use crate::vb::VbProperties;

    #[test]
    fn figure5_layout() {
        // Figure 5: 4 GiB class, 3-bit size ID, 5-bit VM ID, 24-bit VBID,
        // 32-bit offset.
        let part = VmPartition::new(5);
        assert_eq!(SizeClass::Gib4.vbid_bits(), 29);
        assert_eq!(part.vbs_per_vm(SizeClass::Gib4), 1 << 24);
        let vb = part.vbuid(VmId(5), SizeClass::Gib4, 3).unwrap();
        let bits = vb.to_bits();
        assert_eq!(bits >> 61, 0b100, "size ID for 4 GiB");
        assert_eq!((bits >> 56) & 0x1f, 5, "VM ID sits below the size ID");
    }

    #[test]
    fn partition_roundtrips() {
        let part = VmPartition::new(5);
        for vm in [0u8, 1, 17, 31] {
            for sc in [SizeClass::Kib4, SizeClass::Gib4, SizeClass::Tib128] {
                let vb = part.vbuid(VmId(vm), sc, 42).unwrap();
                assert_eq!(part.vm_of(vb), VmId(vm));
                assert_eq!(part.local_vbid(vb), 42);
            }
        }
    }

    #[test]
    fn out_of_range_vms_and_vbids_are_rejected() {
        let part = VmPartition::new(5);
        assert!(matches!(part.vbuid(VmId(32), SizeClass::Kib4, 0), Err(VbiError::InvalidVmId(32))));
        assert!(part
            .vbuid(VmId(0), SizeClass::Tib128, part.vbs_per_vm(SizeClass::Tib128))
            .is_err());
    }

    #[test]
    fn client_ranges_do_not_overlap() {
        let part = VmPartition::new(5);
        let (s0, e0) = part.client_range(VmId(0));
        let (s1, e1) = part.client_range(VmId(1));
        assert_eq!(e0, s1 as u32);
        assert_eq!(e1 - s1 as u32, e0 - s0 as u32);
        let (_, last_end) = part.client_range(VmId(31));
        assert_eq!(last_end, 1 << 16);
    }

    #[test]
    fn guests_allocate_in_their_own_slices() {
        let system =
            System::new(VbiConfig { phys_frames: 4096, vm_id_bits: 5, ..VbiConfig::vbi_full() });
        let part = VmPartition::new(5);
        let mut vm1 = VirtualMachine::new(VmId(1), part);
        let mut vm2 = VirtualMachine::new(VmId(2), part);

        let c1 = vm1.create_guest_client(&system).unwrap();
        let c2 = vm2.create_guest_client(&system).unwrap();
        assert_ne!(c1.id(), c2.id());

        let vb1 = vm1.find_free_vb(&system, SizeClass::Kib128).unwrap();
        system.mtl_mut().enable_vb(vb1, VbProperties::NONE).unwrap();
        let vb2 = vm2.find_free_vb(&system, SizeClass::Kib128).unwrap();
        system.mtl_mut().enable_vb(vb2, VbProperties::NONE).unwrap();

        assert!(vm1.owns(vb1) && !vm1.owns(vb2));
        assert!(vm2.owns(vb2) && !vm2.owns(vb1));

        // A guest process accesses its VB like any native process: same
        // translation path, no nested walk.
        let i1 = c1.attach(vb1, Rwx::READ_WRITE).unwrap();
        c1.store_u64(crate::client::VirtualAddress::new(i1, 0), 77).unwrap();
        assert_eq!(c1.load_u64(crate::client::VirtualAddress::new(i1, 0)).unwrap(), 77);
    }

    #[test]
    fn guest_client_slice_exhaustion() {
        let system =
            System::new(VbiConfig { phys_frames: 256, vm_id_bits: 8, ..VbiConfig::vbi_full() });
        let part = VmPartition::new(8);
        let mut vm = VirtualMachine::new(VmId(255), part);
        // 2^16 / 2^8 = 256 clients per VM.
        for _ in 0..256 {
            vm.create_guest_client(&system).unwrap();
        }
        assert!(matches!(vm.create_guest_client(&system), Err(VbiError::OutOfClients)));
    }
}
