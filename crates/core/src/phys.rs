//! Physical memory: frames, physical addresses, and a sparse byte store.
//!
//! The Memory Translation Layer allocates physical memory in 4 KiB *frames*
//! (the base allocation granularity of §4.5.2). [`PhysicalMemory`] provides a
//! functional backing store for those frames so that higher-level mechanisms
//! — copy-on-write cloning, VB promotion, swapping, delayed allocation — can
//! be verified end to end on real data, not just on metadata.

use core::fmt;
use std::collections::HashMap;

/// Size of a physical frame in bytes (4 KiB, the base allocation unit).
pub const FRAME_BYTES: u64 = 4096;

/// Log2 of [`FRAME_BYTES`].
pub const FRAME_SHIFT: u32 = 12;

/// A physical frame number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frame(pub u64);

impl Frame {
    /// The physical address of the first byte of the frame.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << FRAME_SHIFT)
    }

    /// The frame containing a physical address.
    #[inline]
    pub const fn containing(addr: PhysAddr) -> Frame {
        Frame(addr.0 >> FRAME_SHIFT)
    }

    /// The frame `n` frames after this one.
    #[inline]
    pub const fn offset(self, n: u64) -> Frame {
        Frame(self.0 + n)
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame#{}", self.0)
    }
}

/// A byte-granularity physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The raw address value.
    #[inline]
    pub const fn to_bits(self) -> u64 {
        self.0
    }

    /// Byte offset within the containing frame.
    #[inline]
    pub const fn frame_offset(self) -> u64 {
        self.0 & (FRAME_BYTES - 1)
    }

    /// The address `delta` bytes later.
    #[inline]
    pub const fn offset(self, delta: u64) -> PhysAddr {
        PhysAddr(self.0 + delta)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

impl From<Frame> for PhysAddr {
    fn from(frame: Frame) -> Self {
        frame.base()
    }
}

/// A sparse physical memory: frames materialise on first write.
///
/// Reads of never-written bytes return zero, mirroring hardware that
/// zero-fills freshly allocated frames. The store is deliberately simple —
/// correctness infrastructure for the functional model, not a timing model
/// (timing lives in `vbi-mem-sim`).
///
/// # Examples
///
/// ```
/// use vbi_core::phys::{Frame, PhysicalMemory};
///
/// let mut mem = PhysicalMemory::new(1024);
/// let addr = Frame(3).base().offset(16);
/// mem.write_u64(addr, 0xdead_beef);
/// assert_eq!(mem.read_u64(addr), 0xdead_beef);
/// assert_eq!(mem.read_u64(addr.offset(8)), 0);
/// ```
#[derive(Debug, Clone)]
pub struct PhysicalMemory {
    total_frames: u64,
    frames: HashMap<u64, Box<[u8; FRAME_BYTES as usize]>>,
}

impl PhysicalMemory {
    /// Creates a physical memory of `total_frames` frames.
    pub fn new(total_frames: u64) -> Self {
        Self { total_frames, frames: HashMap::new() }
    }

    /// Total capacity in frames.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_frames * FRAME_BYTES
    }

    /// Number of frames that have been materialised by writes.
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    /// Whether `frame` lies within the memory.
    pub fn contains(&self, frame: Frame) -> bool {
        frame.0 < self.total_frames
    }

    /// Extends the memory by `count` frames (cross-shard frame adoption).
    /// The store is sparse, so growth is free until the new frames are
    /// written.
    pub fn grow(&mut self, count: u64) {
        self.total_frames += count;
    }

    fn check(&self, addr: PhysAddr) {
        assert!(
            addr.0 < self.total_bytes(),
            "physical address {addr} beyond end of memory ({} frames)",
            self.total_frames
        );
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond the end of physical memory.
    pub fn read_u8(&self, addr: PhysAddr) -> u8 {
        self.check(addr);
        match self.frames.get(&Frame::containing(addr).0) {
            Some(data) => data[addr.frame_offset() as usize],
            None => 0,
        }
    }

    /// Writes one byte, materialising the frame if needed.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond the end of physical memory.
    pub fn write_u8(&mut self, addr: PhysAddr, value: u8) {
        self.check(addr);
        let frame = Frame::containing(addr).0;
        let data =
            self.frames.entry(frame).or_insert_with(|| Box::new([0u8; FRAME_BYTES as usize]));
        data[addr.frame_offset() as usize] = value;
    }

    /// Reads a little-endian `u64` (may straddle frames).
    ///
    /// # Panics
    ///
    /// Panics if any byte is beyond the end of physical memory.
    pub fn read_u64(&self, addr: PhysAddr) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr.offset(i as u64));
        }
        u64::from_le_bytes(bytes)
    }

    /// Writes a little-endian `u64` (may straddle frames).
    ///
    /// # Panics
    ///
    /// Panics if any byte is beyond the end of physical memory.
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) {
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            self.write_u8(addr.offset(i as u64), b);
        }
    }

    /// Copies a whole frame, as `clone_vb`'s copy-on-write resolution and
    /// `promote_vb` do. A source frame that was never written stays logically
    /// zero, so the destination is simply dropped back to zero.
    pub fn copy_frame(&mut self, src: Frame, dst: Frame) {
        assert!(self.contains(src) && self.contains(dst), "copy_frame out of range");
        match self.frames.get(&src.0).cloned() {
            Some(data) => {
                self.frames.insert(dst.0, data);
            }
            None => {
                self.frames.remove(&dst.0);
            }
        }
    }

    /// Extracts a frame's contents (e.g. for swap-out). Returns `None` for a
    /// logically zero frame.
    pub fn take_frame(&mut self, frame: Frame) -> Option<Box<[u8; FRAME_BYTES as usize]>> {
        self.frames.remove(&frame.0)
    }

    /// Installs previously extracted contents (e.g. for swap-in).
    pub fn put_frame(&mut self, frame: Frame, data: Box<[u8; FRAME_BYTES as usize]>) {
        assert!(self.contains(frame), "put_frame out of range");
        self.frames.insert(frame.0, data);
    }

    /// Zeroes a frame (used when a freed frame is recycled).
    pub fn zero_frame(&mut self, frame: Frame) {
        self.frames.remove(&frame.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_address_math() {
        assert_eq!(Frame(0).base(), PhysAddr(0));
        assert_eq!(Frame(2).base(), PhysAddr(8192));
        assert_eq!(Frame::containing(PhysAddr(8191)), Frame(1));
        assert_eq!(Frame(3).offset(4), Frame(7));
        assert_eq!(PhysAddr(4097).frame_offset(), 1);
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = PhysicalMemory::new(16);
        assert_eq!(mem.read_u8(PhysAddr(0)), 0);
        assert_eq!(mem.read_u64(PhysAddr(4090)), 0);
        assert_eq!(mem.resident_frames(), 0);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut mem = PhysicalMemory::new(16);
        mem.write_u64(PhysAddr(100), 0x0123_4567_89ab_cdef);
        assert_eq!(mem.read_u64(PhysAddr(100)), 0x0123_4567_89ab_cdef);
        assert_eq!(mem.resident_frames(), 1);
    }

    #[test]
    fn straddling_writes_touch_both_frames() {
        let mut mem = PhysicalMemory::new(16);
        mem.write_u64(PhysAddr(4092), u64::MAX);
        assert_eq!(mem.read_u64(PhysAddr(4092)), u64::MAX);
        assert_eq!(mem.resident_frames(), 2);
    }

    #[test]
    fn copy_frame_duplicates_and_zeroes() {
        let mut mem = PhysicalMemory::new(16);
        mem.write_u64(Frame(1).base(), 42);
        mem.copy_frame(Frame(1), Frame(2));
        assert_eq!(mem.read_u64(Frame(2).base()), 42);
        // Copying a zero frame over a dirty one restores zero.
        mem.copy_frame(Frame(5), Frame(2));
        assert_eq!(mem.read_u64(Frame(2).base()), 0);
    }

    #[test]
    fn take_and_put_frame_move_contents() {
        let mut mem = PhysicalMemory::new(16);
        mem.write_u8(Frame(4).base(), 7);
        let data = mem.take_frame(Frame(4)).expect("written frame has contents");
        assert_eq!(mem.read_u8(Frame(4).base()), 0);
        mem.put_frame(Frame(9), data);
        assert_eq!(mem.read_u8(Frame(9).base()), 7);
        assert!(mem.take_frame(Frame(4)).is_none());
    }

    #[test]
    #[should_panic(expected = "beyond end of memory")]
    fn out_of_range_access_panics() {
        let mem = PhysicalMemory::new(1);
        let _ = mem.read_u8(PhysAddr(FRAME_BYTES));
    }
}
