//! Read/write/execute permissions stored in Client-VB Table entries.

use core::fmt;
use core::ops::{BitAnd, BitOr, BitOrAssign};

/// A three-bit read-write-execute permission set (§4.1.2).
///
/// Each CVT entry carries one `Rwx` value describing how the owning client
/// may access the referenced VB. Permissions are checked by the CPU on every
/// memory access, *before* the cache hierarchy is consulted, which is what
/// lets VBI defer address translation to the memory controller.
///
/// # Examples
///
/// ```
/// use vbi_core::perm::Rwx;
///
/// let rw = Rwx::READ | Rwx::WRITE;
/// assert!(rw.allows(Rwx::READ));
/// assert!(rw.allows(Rwx::WRITE));
/// assert!(!rw.allows(Rwx::EXECUTE));
/// assert!(rw.allows(Rwx::READ | Rwx::WRITE));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rwx(u8);

impl Rwx {
    /// No access.
    pub const NONE: Rwx = Rwx(0);
    /// Read permission.
    pub const READ: Rwx = Rwx(0b100);
    /// Write permission.
    pub const WRITE: Rwx = Rwx(0b010);
    /// Execute permission.
    pub const EXECUTE: Rwx = Rwx(0b001);
    /// Read and write.
    pub const READ_WRITE: Rwx = Rwx(0b110);
    /// Read and execute.
    pub const READ_EXECUTE: Rwx = Rwx(0b101);
    /// Full access.
    pub const ALL: Rwx = Rwx(0b111);

    /// Builds a permission set from its three-bit encoding.
    ///
    /// Only the low three bits are kept, matching the architectural field
    /// width in the CVT entry.
    #[inline]
    pub const fn from_bits(bits: u8) -> Rwx {
        Rwx(bits & 0b111)
    }

    /// The three-bit encoding.
    #[inline]
    pub const fn to_bits(self) -> u8 {
        self.0
    }

    /// Whether every permission in `required` is granted by `self`.
    #[inline]
    pub const fn allows(self, required: Rwx) -> bool {
        self.0 & required.0 == required.0
    }

    /// Whether no permission is granted.
    #[inline]
    pub const fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for Rwx {
    type Output = Rwx;
    fn bitor(self, rhs: Rwx) -> Rwx {
        Rwx(self.0 | rhs.0)
    }
}

impl BitOrAssign for Rwx {
    fn bitor_assign(&mut self, rhs: Rwx) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for Rwx {
    type Output = Rwx;
    fn bitand(self, rhs: Rwx) -> Rwx {
        Rwx(self.0 & rhs.0)
    }
}

impl fmt::Display for Rwx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.allows(Rwx::READ) { 'r' } else { '-' },
            if self.allows(Rwx::WRITE) { 'w' } else { '-' },
            if self.allows(Rwx::EXECUTE) { 'x' } else { '-' },
        )
    }
}

/// The kind of memory access being performed, used for protection checks and
/// for the Memory Translation Layer's allocation decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A data load.
    Read,
    /// A data store.
    Write,
    /// An instruction fetch.
    Execute,
}

impl AccessKind {
    /// The permission this access requires.
    #[inline]
    pub const fn required(self) -> Rwx {
        match self {
            AccessKind::Read => Rwx::READ,
            AccessKind::Write => Rwx::WRITE,
            AccessKind::Execute => Rwx::EXECUTE,
        }
    }

    /// Whether the access can dirty a cache line.
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Execute => "execute",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_encoding_is_three_bits() {
        assert_eq!(Rwx::from_bits(0xff), Rwx::ALL);
        assert_eq!(Rwx::ALL.to_bits(), 0b111);
        assert_eq!(Rwx::NONE.to_bits(), 0);
    }

    #[test]
    fn allows_requires_every_bit() {
        assert!(Rwx::ALL.allows(Rwx::READ_WRITE));
        assert!(!Rwx::READ.allows(Rwx::READ_WRITE));
        assert!(Rwx::READ_WRITE.allows(Rwx::NONE));
        assert!(Rwx::NONE.allows(Rwx::NONE));
        assert!(!Rwx::NONE.allows(Rwx::EXECUTE));
    }

    #[test]
    fn operators_compose() {
        let mut p = Rwx::READ;
        p |= Rwx::EXECUTE;
        assert_eq!(p, Rwx::READ_EXECUTE);
        assert_eq!(p & Rwx::READ, Rwx::READ);
        assert_eq!(Rwx::READ | Rwx::WRITE, Rwx::READ_WRITE);
    }

    #[test]
    fn access_kinds_map_to_permissions() {
        assert_eq!(AccessKind::Read.required(), Rwx::READ);
        assert_eq!(AccessKind::Write.required(), Rwx::WRITE);
        assert_eq!(AccessKind::Execute.required(), Rwx::EXECUTE);
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }

    #[test]
    fn display_matches_unix_style() {
        assert_eq!(Rwx::ALL.to_string(), "rwx");
        assert_eq!(Rwx::READ_WRITE.to_string(), "rw-");
        assert_eq!(Rwx::NONE.to_string(), "---");
        assert_eq!(AccessKind::Execute.to_string(), "execute");
    }
}
