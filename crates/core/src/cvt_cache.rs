//! The per-core direct-mapped CVT cache (§4.3).
//!
//! Every memory operation must consult the executing client's CVT entry for
//! its permission check. The CVT cache exploits the locality of CVT accesses:
//! programs use only a few tens of VBs (the paper observes at most 195, and
//! fewer than 48 for all but one application), so a small direct-mapped cache
//! keyed by CVT index achieves a near-100% hit rate — faster and cheaper than
//! the large set-associative TLBs conventional processors need.

use crate::client::{ClientId, CvtEntry};

/// Statistics for a CVT cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CvtCacheStats {
    /// Lookups that found the entry.
    pub hits: u64,
    /// Lookups that missed and required a CVT memory read.
    pub misses: u64,
}

impl CvtCacheStats {
    /// Accumulates another cache's counters into this one (per-client CVT
    /// cache stats aggregate into one report in sharded deployments).
    pub fn merge(&mut self, other: &CvtCacheStats) {
        let CvtCacheStats { hits, misses } = other;
        self.hits += hits;
        self.misses += misses;
    }

    /// Hit rate in `[0, 1]`; 1.0 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    client: ClientId,
    index: usize,
    entry: CvtEntry,
}

/// A per-core direct-mapped cache of recently used CVT entries.
///
/// Indexed by `CVT index % capacity` and tagged with `(client, index)`; the
/// client tag makes context switches safe without flushing (entries of the
/// previous client simply miss).
///
/// # Examples
///
/// ```
/// use vbi_core::client::{ClientId, Cvt};
/// use vbi_core::cvt_cache::CvtCache;
/// use vbi_core::perm::Rwx;
/// use vbi_core::addr::{SizeClass, Vbuid};
///
/// let mut cvt = Cvt::new(ClientId(0), 16);
/// let idx = cvt.attach(Vbuid::new(SizeClass::Kib4, 1), Rwx::READ)?;
/// let mut cache = CvtCache::new(64);
///
/// assert!(cache.lookup(ClientId(0), idx).is_none()); // cold miss
/// cache.fill(ClientId(0), idx, *cvt.entry(idx)?);
/// assert!(cache.lookup(ClientId(0), idx).is_some()); // hit
/// # Ok::<(), vbi_core::VbiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CvtCache {
    slots: Vec<Option<Slot>>,
    stats: CvtCacheStats,
}

impl CvtCache {
    /// Creates a direct-mapped cache with `capacity` slots (64 in the
    /// reference implementation).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "CVT cache needs at least one slot");
        Self { slots: vec![None; capacity], stats: CvtCacheStats::default() }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Looks up the cached CVT entry for `(client, index)`, recording a hit
    /// or miss.
    pub fn lookup(&mut self, client: ClientId, index: usize) -> Option<CvtEntry> {
        let slot = index % self.slots.len();
        match &self.slots[slot] {
            Some(s) if s.client == client && s.index == index => {
                self.stats.hits += 1;
                Some(s.entry)
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Fills the cache after a miss was serviced from the in-memory CVT.
    pub fn fill(&mut self, client: ClientId, index: usize, entry: CvtEntry) {
        let slot = index % self.slots.len();
        self.slots[slot] = Some(Slot { client, index, entry });
    }

    /// Invalidates any cached copy of `(client, index)` — required when the
    /// OS detaches a VB or rewrites an entry (e.g. `promote_vb` redirection).
    pub fn invalidate(&mut self, client: ClientId, index: usize) {
        let slot = index % self.slots.len();
        if let Some(s) = &self.slots[slot] {
            if s.client == client && s.index == index {
                self.slots[slot] = None;
            }
        }
    }

    /// Invalidates every cached entry of `client` (process destruction).
    pub fn invalidate_client(&mut self, client: ClientId) {
        for slot in &mut self.slots {
            if matches!(slot, Some(s) if s.client == client) {
                *slot = None;
            }
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CvtCacheStats {
        self.stats
    }

    /// Resets statistics (e.g. after simulation warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CvtCacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{SizeClass, Vbuid};
    use crate::client::Cvt;
    use crate::perm::Rwx;

    fn entry_for(vbid: u64) -> CvtEntry {
        let mut cvt = Cvt::new(ClientId(0), 4);
        let i = cvt.attach(Vbuid::new(SizeClass::Kib4, vbid), Rwx::READ).unwrap();
        *cvt.entry(i).unwrap()
    }

    #[test]
    fn stats_merge_sums_counters() {
        let mut a = CvtCacheStats { hits: 4, misses: 1 };
        a.merge(&CvtCacheStats { hits: 6, misses: 9 });
        assert_eq!(a, CvtCacheStats { hits: 10, misses: 10 });
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut cache = CvtCache::new(8);
        assert!(cache.lookup(ClientId(0), 3).is_none());
        cache.fill(ClientId(0), 3, entry_for(7));
        let hit = cache.lookup(ClientId(0), 3).unwrap();
        assert_eq!(hit.vbuid().vbid(), 7);
        assert_eq!(cache.stats(), CvtCacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn direct_mapping_conflicts_evict() {
        let mut cache = CvtCache::new(8);
        cache.fill(ClientId(0), 1, entry_for(1));
        cache.fill(ClientId(0), 9, entry_for(9)); // 9 % 8 == 1, conflicts
        assert!(cache.lookup(ClientId(0), 1).is_none());
        assert!(cache.lookup(ClientId(0), 9).is_some());
    }

    #[test]
    fn client_tag_prevents_cross_client_hits() {
        let mut cache = CvtCache::new(8);
        cache.fill(ClientId(0), 2, entry_for(2));
        assert!(cache.lookup(ClientId(1), 2).is_none());
        assert!(cache.lookup(ClientId(0), 2).is_some());
    }

    #[test]
    fn invalidation() {
        let mut cache = CvtCache::new(8);
        cache.fill(ClientId(0), 2, entry_for(2));
        cache.invalidate(ClientId(0), 2);
        assert!(cache.lookup(ClientId(0), 2).is_none());

        cache.fill(ClientId(3), 1, entry_for(1));
        cache.fill(ClientId(3), 2, entry_for(2));
        cache.fill(ClientId(4), 3, entry_for(3));
        cache.invalidate_client(ClientId(3));
        assert!(cache.lookup(ClientId(3), 1).is_none());
        assert!(cache.lookup(ClientId(3), 2).is_none());
        assert!(cache.lookup(ClientId(4), 3).is_some());
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let mut cache = CvtCache::new(64);
        // A program touching 48 VBs round-robin fits entirely (§4.3).
        for round in 0..100 {
            for idx in 0..48 {
                if cache.lookup(ClientId(0), idx).is_none() {
                    assert_eq!(round, 0, "only cold misses expected");
                    cache.fill(ClientId(0), idx, entry_for(idx as u64));
                }
            }
        }
        assert!(cache.stats().hit_rate() > 0.98);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_panics() {
        let _ = CvtCache::new(0);
    }
}
