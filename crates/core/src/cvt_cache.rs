//! The per-core direct-mapped CVT cache (§4.3), in two flavors.
//!
//! Every memory operation must consult the executing client's CVT entry for
//! its permission check. The CVT cache exploits the locality of CVT accesses:
//! programs use only a few tens of VBs (the paper observes at most 195, and
//! fewer than 48 for all but one application), so a small direct-mapped cache
//! keyed by CVT index achieves a near-100% hit rate — faster and cheaper than
//! the large set-associative TLBs conventional processors need.
//!
//! Two implementations share the [`ClientCvtCache`] interface the op engine
//! programs against:
//!
//! * [`CvtCache`] — the plain single-owner cache used by [`crate::System`];
//! * [`SeqCvtCache`] — a seqlock-published cache for the concurrent service:
//!   an epoch counter plus atomically packed entries ([`CvtEntry::to_bits`])
//!   let *readers validate a snapshot without taking any lock*, while
//!   writers (cache fills and control-plane invalidations, both serialized
//!   by the owning client's lock) bump the epoch around every mutation. A
//!   reader that observes an odd or changed epoch took a torn snapshot and
//!   falls back to the locked path.
//!
//! Both are direct-mapped with identical indexing and fill policy, so a
//! sequential run produces the same hit/miss sequence on either — which is
//! what keeps the service observably identical to `System`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::client::{ClientId, CvtEntry};

/// Statistics for a CVT cache, split by lookup path.
///
/// `lockfree_hits` counts hits served from a [`SeqCvtCache`] snapshot with
/// no lock held; `locked_hits` counts hits found under the client lock (the
/// only kind a plain [`CvtCache`] produces); `misses` counts lookups that
/// had to read the in-memory CVT; `torn_retries` counts lock-free attempts
/// abandoned because a writer was mid-update (each one falls back to the
/// locked path, where it is then counted as a hit or miss).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CvtCacheStats {
    /// Hits served lock-free from an epoch-validated snapshot.
    pub lockfree_hits: u64,
    /// Hits found while holding the client lock.
    pub locked_hits: u64,
    /// Lookups that missed and required a CVT memory read.
    pub misses: u64,
    /// Lock-free attempts abandoned on a torn (epoch-invalid) read.
    pub torn_retries: u64,
}

impl CvtCacheStats {
    /// Total hits across both paths.
    pub fn hits(&self) -> u64 {
        self.lockfree_hits + self.locked_hits
    }

    /// Total lookups (every lookup resolves as exactly one hit or miss;
    /// torn retries are extra attempts, not extra lookups).
    pub fn lookups(&self) -> u64 {
        self.hits() + self.misses
    }

    /// Accumulates another cache's counters into this one (per-client CVT
    /// cache stats aggregate into one report in sharded deployments).
    pub fn merge(&mut self, other: &CvtCacheStats) {
        let CvtCacheStats { lockfree_hits, locked_hits, misses, torn_retries } = other;
        self.lockfree_hits += lockfree_hits;
        self.locked_hits += locked_hits;
        self.misses += misses;
        self.torn_retries += torn_retries;
    }

    /// Hit rate in `[0, 1]`; 1.0 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            1.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// The CVT-cache interface the op engine programs against. Implementations
/// must behave as the same direct-mapped cache so every front end produces
/// the same hit/miss sequence for the same lookups.
///
/// All three methods are called with the owning client's state held
/// exclusively (the locked path); [`SeqCvtCache`] additionally serves
/// lock-free reads outside this interface.
pub trait ClientCvtCache {
    /// Looks up the cached CVT entry for `(client, index)`, recording a hit
    /// or miss.
    fn lookup(&mut self, client: ClientId, index: usize) -> Option<CvtEntry>;

    /// Fills the cache after a miss was serviced from the in-memory CVT.
    fn fill(&mut self, client: ClientId, index: usize, entry: CvtEntry);

    /// Invalidates any cached copy of `(client, index)` — required when the
    /// OS detaches a VB or rewrites an entry (e.g. `promote_vb` redirection).
    fn invalidate(&mut self, client: ClientId, index: usize);
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    client: ClientId,
    index: usize,
    entry: CvtEntry,
}

/// A per-core direct-mapped cache of recently used CVT entries.
///
/// Indexed by `CVT index % capacity` and tagged with `(client, index)`; the
/// client tag makes context switches safe without flushing (entries of the
/// previous client simply miss).
///
/// # Examples
///
/// ```
/// use vbi_core::client::{ClientId, Cvt};
/// use vbi_core::cvt_cache::{ClientCvtCache, CvtCache};
/// use vbi_core::perm::Rwx;
/// use vbi_core::addr::{SizeClass, Vbuid};
///
/// let mut cvt = Cvt::new(ClientId(0), 16);
/// let idx = cvt.attach(Vbuid::new(SizeClass::Kib4, 1), Rwx::READ)?;
/// let mut cache = CvtCache::new(64);
///
/// assert!(cache.lookup(ClientId(0), idx).is_none()); // cold miss
/// cache.fill(ClientId(0), idx, *cvt.entry(idx)?);
/// assert!(cache.lookup(ClientId(0), idx).is_some()); // hit
/// # Ok::<(), vbi_core::VbiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CvtCache {
    slots: Vec<Option<Slot>>,
    stats: CvtCacheStats,
}

impl CvtCache {
    /// Creates a direct-mapped cache with `capacity` slots (64 in the
    /// reference implementation).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "CVT cache needs at least one slot");
        Self { slots: vec![None; capacity], stats: CvtCacheStats::default() }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Invalidates every cached entry of `client` (process destruction).
    pub fn invalidate_client(&mut self, client: ClientId) {
        for slot in &mut self.slots {
            if matches!(slot, Some(s) if s.client == client) {
                *slot = None;
            }
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CvtCacheStats {
        self.stats
    }

    /// Resets statistics (e.g. after simulation warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CvtCacheStats::default();
    }
}

impl ClientCvtCache for CvtCache {
    fn lookup(&mut self, client: ClientId, index: usize) -> Option<CvtEntry> {
        let slot = index % self.slots.len();
        match &self.slots[slot] {
            Some(s) if s.client == client && s.index == index => {
                // Single-owner cache: every hit is found under the owner's
                // exclusive access.
                self.stats.locked_hits += 1;
                Some(s.entry)
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn fill(&mut self, client: ClientId, index: usize, entry: CvtEntry) {
        let slot = index % self.slots.len();
        self.slots[slot] = Some(Slot { client, index, entry });
    }

    fn invalidate(&mut self, client: ClientId, index: usize) {
        let slot = index % self.slots.len();
        if let Some(s) = &self.slots[slot] {
            if s.client == client && s.index == index {
                self.slots[slot] = None;
            }
        }
    }
}

/// Tag value of an empty [`SeqCvtCache`] slot (no CVT index is `u64::MAX`;
/// CVTs are bounded by `cvt_capacity`, orders of magnitude smaller).
const EMPTY: u64 = u64::MAX;

/// One published slot: the CVT index occupying it and the packed entry.
/// Multi-word, so only meaningful under the cache's epoch protocol.
#[derive(Debug)]
struct SeqSlot {
    tag: AtomicU64,
    entry: AtomicU64,
}

#[derive(Debug)]
struct SeqShared {
    /// Seqlock epoch: even = stable, odd = a writer is mid-update. Writers
    /// (always serialized by the owning client's lock) bump it before and
    /// after every slot mutation.
    epoch: AtomicU64,
    slots: Vec<SeqSlot>,
    lockfree_hits: AtomicU64,
    locked_hits: AtomicU64,
    misses: AtomicU64,
    torn_retries: AtomicU64,
}

/// A seqlock-published direct-mapped CVT cache: the lock-free read path of
/// the concurrent service.
///
/// The handle is cheap to clone (`Arc` inside); one clone lives under the
/// client's lock (the write side, via [`ClientCvtCache`]) and others serve
/// [`SeqCvtCache::lookup_lockfree`] from reader threads. Entries are packed
/// into single `u64`s ([`CvtEntry::to_bits`]) and every access is atomic,
/// so a racing reader can never observe a half-written entry — at worst it
/// observes an epoch change and falls back to the locked path.
///
/// # Examples
///
/// ```
/// use vbi_core::client::{ClientId, Cvt};
/// use vbi_core::cvt_cache::{ClientCvtCache, SeqCvtCache};
/// use vbi_core::perm::Rwx;
/// use vbi_core::addr::{SizeClass, Vbuid};
///
/// let mut cvt = Cvt::new(ClientId(0), 16);
/// let idx = cvt.attach(Vbuid::new(SizeClass::Kib4, 1), Rwx::READ)?;
/// let mut cache = SeqCvtCache::new(64);
///
/// assert!(cache.lookup_lockfree(idx).is_none()); // cold: nothing published
/// cache.fill(ClientId(0), idx, *cvt.entry(idx)?); // write side (locked)
/// assert!(cache.lookup_lockfree(idx).is_some()); // now lock-free
/// assert_eq!(cache.stats().lockfree_hits, 1);
/// # Ok::<(), vbi_core::VbiError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SeqCvtCache {
    shared: Arc<SeqShared>,
}

impl SeqCvtCache {
    /// Creates a seqlock-published cache with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "CVT cache needs at least one slot");
        Self {
            shared: Arc::new(SeqShared {
                epoch: AtomicU64::new(0),
                slots: (0..capacity)
                    .map(|_| SeqSlot { tag: AtomicU64::new(EMPTY), entry: AtomicU64::new(0) })
                    .collect(),
                lockfree_hits: AtomicU64::new(0),
                locked_hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                torn_retries: AtomicU64::new(0),
            }),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }

    /// Reads the slot for `index`, validating the epoch before and after.
    /// `Err(())` means the snapshot was torn.
    fn snapshot(&self, index: usize) -> core::result::Result<Option<CvtEntry>, ()> {
        let shared = &*self.shared;
        let slot = &shared.slots[index % shared.slots.len()];
        let before = shared.epoch.load(Ordering::Acquire);
        if before % 2 == 1 {
            return Err(()); // writer mid-update
        }
        let tag = slot.tag.load(Ordering::Acquire);
        let entry = slot.entry.load(Ordering::Acquire);
        if shared.epoch.load(Ordering::Acquire) != before {
            return Err(()); // a writer intervened: tag/entry may be mixed
        }
        Ok((tag == index as u64).then(|| CvtEntry::from_bits(entry)))
    }

    /// The lock-free fast path: looks up `index` from the published
    /// snapshot without taking any lock. Returns `None` on a miss *or* a
    /// torn read — either way the caller must fall back to the locked path,
    /// which performs the (counted) authoritative lookup.
    pub fn lookup_lockfree(&self, index: usize) -> Option<CvtEntry> {
        match self.snapshot(index) {
            Ok(Some(entry)) => {
                self.shared.lockfree_hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            Ok(None) => None,
            Err(()) => {
                self.shared.torn_retries.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stat-free, lock-free peek at the published entry for `index` — the
    /// routing lookup the completion queue uses to pick a submission ring.
    pub fn peek(&self, index: usize) -> Option<CvtEntry> {
        self.snapshot(index).ok().flatten()
    }

    /// Marks the start of a slot mutation (epoch goes odd). Callers hold
    /// the owning client's lock, so begin/end pairs never interleave.
    fn begin_write(&self) {
        self.shared.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Marks the end of a slot mutation (epoch returns to even).
    fn end_write(&self) {
        self.shared.epoch.fetch_add(1, Ordering::Release);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CvtCacheStats {
        CvtCacheStats {
            lockfree_hits: self.shared.lockfree_hits.load(Ordering::Relaxed),
            locked_hits: self.shared.locked_hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            torn_retries: self.shared.torn_retries.load(Ordering::Relaxed),
        }
    }

    /// Resets statistics (e.g. after warm-up).
    pub fn reset_stats(&self) {
        self.shared.lockfree_hits.store(0, Ordering::Relaxed);
        self.shared.locked_hits.store(0, Ordering::Relaxed);
        self.shared.misses.store(0, Ordering::Relaxed);
        self.shared.torn_retries.store(0, Ordering::Relaxed);
    }

    /// Clears every published slot and resets statistics, in place, under
    /// the seqlock protocol. Used when a client slot is recycled for a new
    /// client: the cache *handle* must survive (concurrent readers may still
    /// hold references to the shared image), so the image is wiped rather
    /// than replaced.
    pub fn reset_for_reuse(&self) {
        self.begin_write();
        for slot in &self.shared.slots {
            slot.tag.store(EMPTY, Ordering::Release);
        }
        self.end_write();
        self.reset_stats();
    }
}

impl ClientCvtCache for SeqCvtCache {
    // The locked (write-side) interface. Each cache belongs to exactly one
    // client in the service, so the client tag is implicit; the published
    // tag disambiguates direct-mapped aliases only.

    fn lookup(&mut self, _client: ClientId, index: usize) -> Option<CvtEntry> {
        // Under the client lock no writer can race this read, so no epoch
        // dance is needed; lock-free readers of these same words are
        // unaffected by our loads.
        let slot = &self.shared.slots[index % self.shared.slots.len()];
        if slot.tag.load(Ordering::Acquire) == index as u64 {
            self.shared.locked_hits.fetch_add(1, Ordering::Relaxed);
            Some(CvtEntry::from_bits(slot.entry.load(Ordering::Acquire)))
        } else {
            self.shared.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    fn fill(&mut self, _client: ClientId, index: usize, entry: CvtEntry) {
        let slot = &self.shared.slots[index % self.shared.slots.len()];
        self.begin_write();
        slot.entry.store(entry.to_bits(), Ordering::Release);
        slot.tag.store(index as u64, Ordering::Release);
        self.end_write();
    }

    fn invalidate(&mut self, _client: ClientId, index: usize) {
        let slot = &self.shared.slots[index % self.shared.slots.len()];
        if slot.tag.load(Ordering::Acquire) == index as u64 {
            self.begin_write();
            slot.tag.store(EMPTY, Ordering::Release);
            self.end_write();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{SizeClass, Vbuid};
    use crate::client::Cvt;
    use crate::perm::Rwx;

    fn entry_for(vbid: u64) -> CvtEntry {
        let mut cvt = Cvt::new(ClientId(0), 4);
        let i = cvt.attach(Vbuid::new(SizeClass::Kib4, vbid), Rwx::READ).unwrap();
        *cvt.entry(i).unwrap()
    }

    #[test]
    fn stats_merge_sums_every_field() {
        let mut a = CvtCacheStats { lockfree_hits: 3, locked_hits: 1, misses: 1, torn_retries: 2 };
        a.merge(&CvtCacheStats { lockfree_hits: 4, locked_hits: 2, misses: 9, torn_retries: 1 });
        assert_eq!(
            a,
            CvtCacheStats { lockfree_hits: 7, locked_hits: 3, misses: 10, torn_retries: 3 }
        );
        assert_eq!(a.hits(), 10);
        assert_eq!(a.lookups(), 20);
        assert!((a.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_a_combined_runs_counters() {
        // Two caches process two workload halves; merging their stats must
        // equal the counters of one cache that processed both halves (cache
        // *state* is disjoint per client, so only counters aggregate).
        let run = |cache: &mut CvtCache, base: u64, rounds: usize| {
            for _ in 0..rounds {
                for idx in 0..4usize {
                    if cache.lookup(ClientId(0), idx).is_none() {
                        cache.fill(ClientId(0), idx, entry_for(base + idx as u64));
                    }
                }
            }
        };
        let mut first = CvtCache::new(8);
        run(&mut first, 0, 3);
        let mut second = CvtCache::new(8);
        run(&mut second, 100, 5);

        let mut combined = CvtCache::new(8);
        run(&mut combined, 0, 3);
        // A fresh client's lookups miss cold again, like `second` did.
        combined.invalidate_client(ClientId(0));
        run(&mut combined, 100, 5);

        let mut merged = first.stats();
        merged.merge(&second.stats());
        assert_eq!(merged, combined.stats());
        assert!(merged.lockfree_hits == 0, "plain caches never hit lock-free");
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut cache = CvtCache::new(8);
        assert!(cache.lookup(ClientId(0), 3).is_none());
        cache.fill(ClientId(0), 3, entry_for(7));
        let hit = cache.lookup(ClientId(0), 3).unwrap();
        assert_eq!(hit.vbuid().vbid(), 7);
        assert_eq!(
            cache.stats(),
            CvtCacheStats { locked_hits: 1, misses: 1, ..Default::default() }
        );
    }

    #[test]
    fn direct_mapping_conflicts_evict() {
        let mut cache = CvtCache::new(8);
        cache.fill(ClientId(0), 1, entry_for(1));
        cache.fill(ClientId(0), 9, entry_for(9)); // 9 % 8 == 1, conflicts
        assert!(cache.lookup(ClientId(0), 1).is_none());
        assert!(cache.lookup(ClientId(0), 9).is_some());
    }

    #[test]
    fn client_tag_prevents_cross_client_hits() {
        let mut cache = CvtCache::new(8);
        cache.fill(ClientId(0), 2, entry_for(2));
        assert!(cache.lookup(ClientId(1), 2).is_none());
        assert!(cache.lookup(ClientId(0), 2).is_some());
    }

    #[test]
    fn invalidation() {
        let mut cache = CvtCache::new(8);
        cache.fill(ClientId(0), 2, entry_for(2));
        cache.invalidate(ClientId(0), 2);
        assert!(cache.lookup(ClientId(0), 2).is_none());

        cache.fill(ClientId(3), 1, entry_for(1));
        cache.fill(ClientId(3), 2, entry_for(2));
        cache.fill(ClientId(4), 3, entry_for(3));
        cache.invalidate_client(ClientId(3));
        assert!(cache.lookup(ClientId(3), 1).is_none());
        assert!(cache.lookup(ClientId(3), 2).is_none());
        assert!(cache.lookup(ClientId(4), 3).is_some());
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let mut cache = CvtCache::new(64);
        // A program touching 48 VBs round-robin fits entirely (§4.3).
        for round in 0..100 {
            for idx in 0..48 {
                if cache.lookup(ClientId(0), idx).is_none() {
                    assert_eq!(round, 0, "only cold misses expected");
                    cache.fill(ClientId(0), idx, entry_for(idx as u64));
                }
            }
        }
        assert!(cache.stats().hit_rate() > 0.98);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_panics() {
        let _ = CvtCache::new(0);
    }

    // --- SeqCvtCache ---------------------------------------------------------

    #[test]
    fn seq_cache_matches_plain_cache_hit_miss_sequence() {
        // The same lookup/fill/invalidate sequence produces the same
        // hit/miss totals on both implementations — the property that keeps
        // the service observably identical to System.
        let mut plain = CvtCache::new(8);
        let mut seq = SeqCvtCache::new(8);
        let client = ClientId(0);
        let drive = |cache: &mut dyn ClientCvtCache| {
            let mut outcomes = Vec::new();
            for round in 0..3 {
                for idx in [0usize, 3, 9, 1, 3, 9] {
                    // 9 aliases 1 (mod 8)
                    match cache.lookup(client, idx) {
                        Some(_) => outcomes.push((round, idx, true)),
                        None => {
                            cache.fill(client, idx, entry_for(idx as u64));
                            outcomes.push((round, idx, false));
                        }
                    }
                }
                cache.invalidate(client, 3);
            }
            outcomes
        };
        assert_eq!(drive(&mut plain), drive(&mut seq));
        let (p, s) = (plain.stats(), seq.stats());
        assert_eq!(p.hits(), s.hits());
        assert_eq!(p.misses, s.misses);
    }

    #[test]
    fn seq_cache_lockfree_path_hits_after_fill() {
        let mut cache = SeqCvtCache::new(8);
        assert!(cache.lookup_lockfree(2).is_none(), "cold");
        cache.fill(ClientId(0), 2, entry_for(5));
        let entry = cache.lookup_lockfree(2).expect("published");
        assert_eq!(entry.vbuid().vbid(), 5);
        assert!(entry.is_valid());
        assert_eq!(entry.permissions(), Rwx::READ);
        cache.invalidate(ClientId(0), 2);
        assert!(cache.lookup_lockfree(2).is_none(), "invalidated");
        let stats = cache.stats();
        assert_eq!(stats.lockfree_hits, 1);
        assert_eq!(stats.torn_retries, 0, "no writer raced this test");
    }

    #[test]
    fn seq_cache_peek_is_stat_free() {
        let mut cache = SeqCvtCache::new(8);
        cache.fill(ClientId(0), 1, entry_for(4));
        assert_eq!(cache.peek(1).unwrap().vbuid().vbid(), 4);
        assert!(cache.peek(2).is_none());
        assert_eq!(cache.stats(), CvtCacheStats::default());
    }

    #[test]
    fn seq_cache_readers_share_the_published_image() {
        let mut write_side = SeqCvtCache::new(8);
        let read_side = write_side.clone();
        write_side.fill(ClientId(0), 6, entry_for(11));
        assert_eq!(read_side.lookup_lockfree(6).unwrap().vbuid().vbid(), 11);
        // Stats are shared too: the hit above is visible on both handles.
        assert_eq!(write_side.stats().lockfree_hits, 1);
    }

    #[test]
    fn seq_cache_reset_for_reuse_wipes_image_and_stats() {
        let mut cache = SeqCvtCache::new(8);
        cache.fill(ClientId(0), 1, entry_for(4));
        cache.fill(ClientId(0), 5, entry_for(9));
        assert!(cache.lookup_lockfree(1).is_some());
        cache.reset_for_reuse();
        assert!(cache.lookup_lockfree(1).is_none());
        assert!(cache.peek(5).is_none());
        // Stats were reset *after* the wipe, so the post-reset miss above is
        // the only trace; the pre-reset hit is gone.
        assert_eq!(cache.stats().lockfree_hits, 0);
        // The shared image survives: a pre-reset reader handle sees the wipe.
        let reader = cache.clone();
        cache.fill(ClientId(0), 1, entry_for(2));
        assert_eq!(reader.peek(1).unwrap().vbuid().vbid(), 2);
    }

    #[test]
    fn packed_entries_roundtrip() {
        for vbid in [0u64, 1, 42, 1 << 10] {
            for sc in [SizeClass::Kib4, SizeClass::Gib4, SizeClass::Tib128] {
                let mut cvt = Cvt::new(ClientId(0), 4);
                let i = cvt.attach(Vbuid::new(sc, vbid % sc.vb_count()), Rwx::READ_WRITE).unwrap();
                let entry = *cvt.entry(i).unwrap();
                let back = CvtEntry::from_bits(entry.to_bits());
                assert_eq!(back, entry);
            }
        }
    }
}
