//! Per-VB address translation structures (§4.5.2, §5.2).
//!
//! Unlike conventional systems, where one page-table format is shared by the
//! OS and hardware, the MTL owns translation outright and picks a structure
//! per VB:
//!
//! * **Direct** — the whole VB maps to one contiguous physical region; a
//!   single MTL-TLB entry covers the entire VB and walks cost zero memory
//!   accesses. Used for 4 KiB VBs and for VBs whose early reservation
//!   succeeded.
//! * **Single-level** — one flat table of per-4 KiB-page entries; every walk
//!   costs exactly one memory access. Used for 128 KiB and 4 MiB VBs.
//! * **Multi-level** — a radix tree with 512-way (9-bit) fanout like x86-64,
//!   but only as deep as the VB's size requires, so smaller VBs take fewer
//!   accesses per walk than a fixed four-level table.
//!
//! Leaf entries can be *unmapped* (no physical backing yet — delayed
//! allocation returns zero lines for these), *mapped* (optionally
//! copy-on-write after `clone_vb`), or *swapped* to a backing-store slot.

use crate::addr::SizeClass;
use crate::buddy::{BuddyAllocator, Order};
use crate::error::{Result, VbiError};
use crate::phys::{Frame, PhysAddr, FRAME_SHIFT};

/// Fanout bits per multi-level table node (512 eight-byte entries per 4 KiB
/// node, like x86-64).
pub const LEVEL_BITS: u32 = 9;

/// A backing-store slot index for swapped-out pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwapSlot(pub u64);

/// The state of one 4 KiB page of a VB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageEntry {
    /// No physical memory is backing the page; reads observe zero.
    Unmapped,
    /// The page maps to `frame`; `cow` marks copy-on-write sharing created by
    /// `clone_vb`.
    Mapped {
        /// Backing frame.
        frame: Frame,
        /// Whether the frame is shared copy-on-write.
        cow: bool,
    },
    /// The page's contents live in the backing store.
    Swapped(SwapSlot),
}

/// The structure type recorded in the VB's VIT entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TranslationKind {
    /// Whole-VB contiguous mapping.
    Direct,
    /// One flat table; one access per walk.
    SingleLevel,
    /// Radix tree of the given depth; `depth` accesses per walk.
    MultiLevel {
        /// Number of table levels.
        depth: u32,
    },
}

impl TranslationKind {
    /// The static structure-selection policy evaluated in the paper (§5.2):
    /// 4 KiB VBs are direct-mapped, 128 KiB and 4 MiB VBs use a single-level
    /// table, and larger VBs use a multi-level table just deep enough to map
    /// the VB with 4 KiB pages.
    pub fn static_policy(size_class: SizeClass) -> TranslationKind {
        match size_class {
            SizeClass::Kib4 => TranslationKind::Direct,
            SizeClass::Kib128 | SizeClass::Mib4 => TranslationKind::SingleLevel,
            sc => TranslationKind::MultiLevel { depth: multi_level_depth(sc) },
        }
    }

    /// Worst-case number of table memory accesses per walk.
    pub fn walk_accesses(self) -> u32 {
        match self {
            TranslationKind::Direct => 0,
            TranslationKind::SingleLevel => 1,
            TranslationKind::MultiLevel { depth } => depth,
        }
    }
}

/// Number of radix levels needed to map a VB of `size_class` with 4 KiB
/// pages and 9-bit fanout.
pub fn multi_level_depth(size_class: SizeClass) -> u32 {
    let page_bits = size_class.offset_bits() - FRAME_SHIFT;
    page_bits.div_ceil(LEVEL_BITS).max(1)
}

/// What a walk found for the requested page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkOutcome {
    /// Translation succeeded; the byte lives at the returned frame.
    Mapped {
        /// Backing frame.
        frame: Frame,
        /// Copy-on-write marking.
        cow: bool,
    },
    /// No physical memory backs the page yet.
    Unmapped,
    /// The page is swapped out to the returned slot.
    Swapped(SwapSlot),
}

/// Result of walking a translation structure: the outcome plus the physical
/// addresses of every table entry the walker had to read (the
/// translation-related memory accesses the evaluation counts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkResult {
    /// What the walk found.
    pub outcome: WalkOutcome,
    /// Table-entry addresses read, in order.
    pub table_accesses: Vec<PhysAddr>,
}

/// An interior or leaf node of a multi-level structure. Opaque outside the
/// crate; exposed only because enum variant fields are public.
#[doc(hidden)]
#[derive(Debug, Clone)]
pub struct Node {
    frame: Frame,
    children: Vec<Option<Box<Node>>>,
    leaves: Vec<PageEntry>,
    is_leaf_level: bool,
}

impl Node {
    fn new(frame: Frame, fanout: usize, is_leaf_level: bool) -> Self {
        if is_leaf_level {
            Self {
                frame,
                children: Vec::new(),
                leaves: vec![PageEntry::Unmapped; fanout],
                is_leaf_level,
            }
        } else {
            Self {
                frame,
                children: (0..fanout).map(|_| None).collect(),
                leaves: Vec::new(),
                is_leaf_level,
            }
        }
    }

    fn entry_addr(&self, index: usize) -> PhysAddr {
        self.frame.base().offset((index * 8) as u64)
    }
}

/// A per-VB translation structure.
#[derive(Debug, Clone)]
pub enum TranslationStructure {
    /// Whole-VB contiguous mapping at 4 KiB granularity within one reserved
    /// region. `base` is `None` until the first allocation materialises the
    /// region; `present` tracks which pages have been allocated so far.
    Direct {
        /// First frame of the contiguous region (set on first allocation).
        base: Option<Frame>,
        /// Per-page allocated bit.
        present: Vec<bool>,
        /// Per-page copy-on-write marking (COW resolution of one page must
        /// not disturb the sharing state of its neighbours).
        cow: Vec<bool>,
    },
    /// One flat array of page entries stored in `table_frames`.
    SingleLevel {
        /// Frames holding the table itself (for walk timing and freeing).
        table_frames: Vec<Frame>,
        /// Per-page entries.
        entries: Vec<PageEntry>,
    },
    /// Radix tree; interior nodes allocated lazily.
    MultiLevel {
        /// Tree depth (levels of table accesses per walk).
        depth: u32,
        /// Total pages mapped by the structure.
        pages: u64,
        /// Root node (always materialised).
        root: Box<Node>,
    },
}

impl TranslationStructure {
    /// Creates a direct-mapped structure for a VB of `size_class`. No
    /// physical memory is consumed until the region is materialised.
    pub fn direct(size_class: SizeClass) -> Self {
        let pages = size_class.pages() as usize;
        TranslationStructure::Direct {
            base: None,
            present: vec![false; pages],
            cow: vec![false; pages],
        }
    }

    /// Creates a single-level structure, allocating its table frames.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::OutOfPhysicalMemory`] if the table cannot be
    /// allocated.
    pub fn single_level(size_class: SizeClass, buddy: &mut BuddyAllocator) -> Result<Self> {
        let pages = size_class.pages();
        let table_bytes = pages * 8;
        let table_frame_count = table_bytes.div_ceil(1 << FRAME_SHIFT).max(1);
        let order = table_frame_count.next_power_of_two().trailing_zeros() as Order;
        let base = buddy.allocate(order).ok_or(VbiError::OutOfPhysicalMemory)?;
        let table_frames = (0..table_frame_count).map(|i| base.offset(i)).collect();
        Ok(TranslationStructure::SingleLevel {
            table_frames,
            entries: vec![PageEntry::Unmapped; pages as usize],
        })
    }

    /// Creates a multi-level structure of the depth required by
    /// `size_class`, allocating only the root node.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::OutOfPhysicalMemory`] if the root cannot be
    /// allocated.
    pub fn multi_level(size_class: SizeClass, buddy: &mut BuddyAllocator) -> Result<Self> {
        let depth = multi_level_depth(size_class);
        let pages = size_class.pages();
        let root_frame = buddy.allocate(0).ok_or(VbiError::OutOfPhysicalMemory)?;
        let fanout = Self::fanout_at(depth, 0, pages);
        Ok(TranslationStructure::MultiLevel {
            depth,
            pages,
            root: Box::new(Node::new(root_frame, fanout, depth == 1)),
        })
    }

    /// Creates the structure chosen by the static policy for `size_class`.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::OutOfPhysicalMemory`] if table allocation fails.
    pub fn for_size_class(size_class: SizeClass, buddy: &mut BuddyAllocator) -> Result<Self> {
        match TranslationKind::static_policy(size_class) {
            TranslationKind::Direct => Ok(Self::direct(size_class)),
            TranslationKind::SingleLevel => Self::single_level(size_class, buddy),
            TranslationKind::MultiLevel { .. } => Self::multi_level(size_class, buddy),
        }
    }

    fn fanout_at(depth: u32, level: u32, pages: u64) -> usize {
        // The top level may be narrower than 512 when the VB's page count
        // does not fill a full level; lower levels are full width.
        if level == 0 {
            let below_bits = LEVEL_BITS * (depth - 1);
            let top_entries = (pages >> below_bits).max(1);
            top_entries.min(1 << LEVEL_BITS) as usize
        } else {
            1 << LEVEL_BITS
        }
    }

    /// The structure's kind, as recorded in the VIT.
    pub fn kind(&self) -> TranslationKind {
        match self {
            TranslationStructure::Direct { .. } => TranslationKind::Direct,
            TranslationStructure::SingleLevel { .. } => TranslationKind::SingleLevel,
            TranslationStructure::MultiLevel { depth, .. } => {
                TranslationKind::MultiLevel { depth: *depth }
            }
        }
    }

    /// Total pages the structure can map.
    pub fn pages(&self) -> u64 {
        match self {
            TranslationStructure::Direct { present, .. } => present.len() as u64,
            TranslationStructure::SingleLevel { entries, .. } => entries.len() as u64,
            TranslationStructure::MultiLevel { pages, .. } => *pages,
        }
    }

    /// Whether a direct structure has been materialised (has a base frame).
    pub fn direct_base(&self) -> Option<Frame> {
        match self {
            TranslationStructure::Direct { base, .. } => *base,
            _ => None,
        }
    }

    /// Sets the contiguous base region of a direct structure (early
    /// reservation success).
    ///
    /// # Panics
    ///
    /// Panics if called on a non-direct structure or one already based.
    pub fn set_direct_base(&mut self, frame: Frame) {
        match self {
            TranslationStructure::Direct { base: base @ None, .. } => *base = Some(frame),
            TranslationStructure::Direct { .. } => panic!("direct base already set"),
            _ => panic!("set_direct_base on a table-based structure"),
        }
    }

    /// Walks the structure for `page`, returning the outcome and the table
    /// accesses performed.
    ///
    /// # Panics
    ///
    /// Panics if `page` is beyond the VB (the CVT bounds check runs first, so
    /// an out-of-range page here is an MTL bug).
    pub fn walk(&self, page: u64) -> WalkResult {
        assert!(page < self.pages(), "walk of page {page} beyond VB");
        match self {
            TranslationStructure::Direct { base, present, cow } => {
                let outcome = match base {
                    Some(b) if present[page as usize] => {
                        WalkOutcome::Mapped { frame: b.offset(page), cow: cow[page as usize] }
                    }
                    _ => WalkOutcome::Unmapped,
                };
                WalkResult { outcome, table_accesses: Vec::new() }
            }
            TranslationStructure::SingleLevel { table_frames, entries } => {
                let byte = page * 8;
                let table_frame = table_frames[(byte >> FRAME_SHIFT) as usize];
                let addr = table_frame.base().offset(byte & ((1 << FRAME_SHIFT) - 1));
                WalkResult {
                    outcome: entry_outcome(entries[page as usize]),
                    table_accesses: vec![addr],
                }
            }
            TranslationStructure::MultiLevel { depth, root, .. } => {
                let mut accesses = Vec::with_capacity(*depth as usize);
                let mut node = root.as_ref();
                for level in 0..*depth {
                    let shift = LEVEL_BITS * (*depth - 1 - level);
                    let index = ((page >> shift) & ((1 << LEVEL_BITS) - 1)) as usize;
                    if node.is_leaf_level {
                        accesses.push(node.entry_addr(index));
                        return WalkResult {
                            outcome: entry_outcome(node.leaves[index]),
                            table_accesses: accesses,
                        };
                    }
                    accesses.push(node.entry_addr(index));
                    match node.children.get(index).and_then(|c| c.as_ref()) {
                        Some(child) => node = child,
                        None => {
                            return WalkResult {
                                outcome: WalkOutcome::Unmapped,
                                table_accesses: accesses,
                            }
                        }
                    }
                }
                unreachable!("leaf level is reached within depth iterations")
            }
        }
    }

    /// Reads a page's entry without recording accesses.
    pub fn entry(&self, page: u64) -> PageEntry {
        match self.walk(page).outcome {
            WalkOutcome::Mapped { frame, cow } => PageEntry::Mapped { frame, cow },
            WalkOutcome::Unmapped => PageEntry::Unmapped,
            WalkOutcome::Swapped(slot) => PageEntry::Swapped(slot),
        }
    }

    /// Sets a page's entry, allocating interior table nodes on demand.
    ///
    /// For direct structures the entry must agree with the contiguous layout
    /// (`frame == base + page`); the MTL guarantees this by construction.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::OutOfPhysicalMemory`] if an interior node cannot
    /// be allocated.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range pages or a direct-mapping violation.
    pub fn set_entry(
        &mut self,
        page: u64,
        entry: PageEntry,
        buddy: &mut BuddyAllocator,
    ) -> Result<()> {
        assert!(page < self.pages(), "set_entry of page {page} beyond VB");
        match self {
            TranslationStructure::Direct { base, present, cow } => match entry {
                PageEntry::Mapped { frame, cow: entry_cow } => {
                    let b = base.expect("direct structure must be based before mapping");
                    assert_eq!(frame, b.offset(page), "direct structures only map contiguously");
                    present[page as usize] = true;
                    cow[page as usize] = entry_cow;
                    Ok(())
                }
                PageEntry::Unmapped => {
                    present[page as usize] = false;
                    cow[page as usize] = false;
                    Ok(())
                }
                PageEntry::Swapped(_) => {
                    panic!("direct structures swap wholesale, not per page")
                }
            },
            TranslationStructure::SingleLevel { entries, .. } => {
                entries[page as usize] = entry;
                Ok(())
            }
            TranslationStructure::MultiLevel { depth, root, .. } => {
                let depth = *depth;
                let mut node = root.as_mut();
                for level in 0..depth {
                    let shift = LEVEL_BITS * (depth - 1 - level);
                    let index = ((page >> shift) & ((1 << LEVEL_BITS) - 1)) as usize;
                    if node.is_leaf_level {
                        node.leaves[index] = entry;
                        return Ok(());
                    }
                    if node.children[index].is_none() {
                        let frame = buddy.allocate(0).ok_or(VbiError::OutOfPhysicalMemory)?;
                        let child_is_leaf = level + 2 == depth;
                        node.children[index] =
                            Some(Box::new(Node::new(frame, 1 << LEVEL_BITS, child_is_leaf)));
                    }
                    node = node.children[index].as_mut().expect("just ensured");
                }
                unreachable!("leaf level is reached within depth iterations")
            }
        }
    }

    /// Marks every mapped page copy-on-write (the `clone_vb` fast path).
    pub fn mark_all_cow(&mut self) {
        match self {
            TranslationStructure::Direct { present, cow, .. } => {
                for (c, &p) in cow.iter_mut().zip(present.iter()) {
                    *c |= p;
                }
            }
            TranslationStructure::SingleLevel { entries, .. } => {
                for e in entries {
                    if let PageEntry::Mapped { cow, .. } = e {
                        *cow = true;
                    }
                }
            }
            TranslationStructure::MultiLevel { root, .. } => mark_cow_rec(root),
        }
    }

    /// Iterates `(page, frame, cow)` over all mapped pages.
    pub fn mapped_pages(&self) -> Vec<(u64, Frame, bool)> {
        let mut out = Vec::new();
        match self {
            TranslationStructure::Direct { base, present, cow } => {
                if let Some(b) = base {
                    for (i, &p) in present.iter().enumerate() {
                        if p {
                            out.push((i as u64, b.offset(i as u64), cow[i]));
                        }
                    }
                }
            }
            TranslationStructure::SingleLevel { entries, .. } => {
                for (i, e) in entries.iter().enumerate() {
                    if let PageEntry::Mapped { frame, cow } = e {
                        out.push((i as u64, *frame, *cow));
                    }
                }
            }
            TranslationStructure::MultiLevel { depth, root, .. } => {
                collect_mapped_rec(root, 0, *depth, 0, &mut out);
            }
        }
        out
    }

    /// Iterates `(page, slot)` over all swapped pages.
    pub fn swapped_pages(&self) -> Vec<(u64, SwapSlot)> {
        let mut out = Vec::new();
        match self {
            TranslationStructure::Direct { .. } => {}
            TranslationStructure::SingleLevel { entries, .. } => {
                for (i, e) in entries.iter().enumerate() {
                    if let PageEntry::Swapped(slot) = e {
                        out.push((i as u64, *slot));
                    }
                }
            }
            TranslationStructure::MultiLevel { depth, root, .. } => {
                collect_swapped_rec(root, 0, *depth, 0, &mut out);
            }
        }
        out
    }

    /// Frames occupied by the structure's own tables.
    pub fn table_frames(&self) -> Vec<Frame> {
        match self {
            TranslationStructure::Direct { .. } => Vec::new(),
            TranslationStructure::SingleLevel { table_frames, .. } => table_frames.clone(),
            TranslationStructure::MultiLevel { root, .. } => {
                let mut out = Vec::new();
                collect_frames_rec(root, &mut out);
                out
            }
        }
    }

    /// Releases the structure's table frames back to the allocator. Data
    /// frames are the MTL's responsibility (it must unmap or free them based
    /// on COW sharing).
    pub fn release_tables(self, buddy: &mut BuddyAllocator) {
        match self {
            TranslationStructure::Direct { .. } => {}
            TranslationStructure::SingleLevel { table_frames, .. } => {
                let order =
                    (table_frames.len() as u64).next_power_of_two().trailing_zeros() as Order;
                buddy.free(table_frames[0], order);
            }
            TranslationStructure::MultiLevel { root, .. } => {
                release_nodes_rec(*root, buddy);
            }
        }
    }
}

fn entry_outcome(entry: PageEntry) -> WalkOutcome {
    match entry {
        PageEntry::Unmapped => WalkOutcome::Unmapped,
        PageEntry::Mapped { frame, cow } => WalkOutcome::Mapped { frame, cow },
        PageEntry::Swapped(slot) => WalkOutcome::Swapped(slot),
    }
}

fn mark_cow_rec(node: &mut Node) {
    if node.is_leaf_level {
        for e in &mut node.leaves {
            if let PageEntry::Mapped { cow, .. } = e {
                *cow = true;
            }
        }
    } else {
        for child in node.children.iter_mut().flatten() {
            mark_cow_rec(child);
        }
    }
}

fn collect_mapped_rec(
    node: &Node,
    level: u32,
    depth: u32,
    base_page: u64,
    out: &mut Vec<(u64, Frame, bool)>,
) {
    let shift = LEVEL_BITS * (depth - 1 - level);
    if node.is_leaf_level {
        for (i, e) in node.leaves.iter().enumerate() {
            if let PageEntry::Mapped { frame, cow } = e {
                out.push((base_page + ((i as u64) << shift), *frame, *cow));
            }
        }
    } else {
        for (i, child) in node.children.iter().enumerate() {
            if let Some(child) = child {
                collect_mapped_rec(child, level + 1, depth, base_page + ((i as u64) << shift), out);
            }
        }
    }
}

fn collect_swapped_rec(
    node: &Node,
    level: u32,
    depth: u32,
    base_page: u64,
    out: &mut Vec<(u64, SwapSlot)>,
) {
    let shift = LEVEL_BITS * (depth - 1 - level);
    if node.is_leaf_level {
        for (i, e) in node.leaves.iter().enumerate() {
            if let PageEntry::Swapped(slot) = e {
                out.push((base_page + ((i as u64) << shift), *slot));
            }
        }
    } else {
        for (i, child) in node.children.iter().enumerate() {
            if let Some(child) = child {
                collect_swapped_rec(
                    child,
                    level + 1,
                    depth,
                    base_page + ((i as u64) << shift),
                    out,
                );
            }
        }
    }
}

fn collect_frames_rec(node: &Node, out: &mut Vec<Frame>) {
    out.push(node.frame);
    for child in node.children.iter().flatten() {
        collect_frames_rec(child, out);
    }
}

fn release_nodes_rec(node: Node, buddy: &mut BuddyAllocator) {
    buddy.free(node.frame, 0);
    for child in node.children.into_iter().flatten() {
        release_nodes_rec(*child, buddy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buddy() -> BuddyAllocator {
        BuddyAllocator::new(1 << 16) // 256 MiB of frames
    }

    #[test]
    fn static_policy_matches_the_paper() {
        assert_eq!(TranslationKind::static_policy(SizeClass::Kib4), TranslationKind::Direct);
        assert_eq!(TranslationKind::static_policy(SizeClass::Kib128), TranslationKind::SingleLevel);
        assert_eq!(TranslationKind::static_policy(SizeClass::Mib4), TranslationKind::SingleLevel);
        assert_eq!(
            TranslationKind::static_policy(SizeClass::Mib128),
            TranslationKind::MultiLevel { depth: 2 }
        );
        assert_eq!(
            TranslationKind::static_policy(SizeClass::Gib4),
            TranslationKind::MultiLevel { depth: 3 }
        );
        assert_eq!(
            TranslationKind::static_policy(SizeClass::Tib128),
            TranslationKind::MultiLevel { depth: 4 }
        );
    }

    #[test]
    fn depths_shrink_with_vb_size() {
        // §4.5.2: smaller VBs require fewer accesses to serve a TLB miss.
        let mut last = u32::MAX;
        for sc in SizeClass::ALL.into_iter().rev() {
            let d = TranslationKind::static_policy(sc).walk_accesses();
            assert!(d <= last);
            last = d;
        }
        assert_eq!(TranslationKind::static_policy(SizeClass::Kib4).walk_accesses(), 0);
    }

    #[test]
    fn direct_structure_maps_contiguously() {
        let mut b = buddy();
        let mut ts = TranslationStructure::direct(SizeClass::Kib4);
        assert_eq!(ts.walk(0).outcome, WalkOutcome::Unmapped);
        ts.set_direct_base(Frame(100));
        ts.set_entry(0, PageEntry::Mapped { frame: Frame(100), cow: false }, &mut b).unwrap();
        match ts.walk(0).outcome {
            WalkOutcome::Mapped { frame, .. } => assert_eq!(frame, Frame(100)),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(ts.walk(0).table_accesses.is_empty(), "direct walks touch no tables");
    }

    #[test]
    #[should_panic(expected = "only map contiguously")]
    fn direct_structure_rejects_non_contiguous_mapping() {
        let mut b = buddy();
        let mut ts = TranslationStructure::direct(SizeClass::Kib128);
        ts.set_direct_base(Frame(100));
        ts.set_entry(3, PageEntry::Mapped { frame: Frame(999), cow: false }, &mut b).unwrap();
    }

    #[test]
    fn single_level_walks_cost_one_access() {
        let mut b = buddy();
        let mut ts = TranslationStructure::single_level(SizeClass::Mib4, &mut b).unwrap();
        assert_eq!(ts.pages(), 1024);
        ts.set_entry(1023, PageEntry::Mapped { frame: Frame(7), cow: false }, &mut b).unwrap();
        let walk = ts.walk(1023);
        assert_eq!(walk.table_accesses.len(), 1);
        assert_eq!(walk.outcome, WalkOutcome::Mapped { frame: Frame(7), cow: false });
        // 1024 entries * 8 B = 2 frames of table.
        assert_eq!(ts.table_frames().len(), 2);
        // Entry 1023 lives in the second table frame.
        let addr = walk.table_accesses[0];
        assert_eq!(Frame::containing(addr), ts.table_frames()[1]);
    }

    #[test]
    fn multi_level_walks_report_each_level() {
        let mut b = buddy();
        // 4 GiB VB: 2^20 pages, depth 3.
        let mut ts = TranslationStructure::multi_level(SizeClass::Gib4, &mut b).unwrap();
        assert_eq!(ts.kind(), TranslationKind::MultiLevel { depth: 3 });
        ts.set_entry(0xabcde, PageEntry::Mapped { frame: Frame(42), cow: false }, &mut b).unwrap();
        let walk = ts.walk(0xabcde);
        assert_eq!(walk.table_accesses.len(), 3);
        assert_eq!(walk.outcome, WalkOutcome::Mapped { frame: Frame(42), cow: false });
        // A walk of an unmapped region stops at the missing interior node.
        let missing = ts.walk(0);
        assert_eq!(missing.outcome, WalkOutcome::Unmapped);
        assert!(missing.table_accesses.len() <= 3);
    }

    #[test]
    fn multi_level_allocates_interior_nodes_lazily() {
        let mut b = buddy();
        let free_before = b.free_frames();
        let mut ts = TranslationStructure::multi_level(SizeClass::Gib4, &mut b).unwrap();
        let after_root = b.free_frames();
        assert_eq!(free_before - after_root, 1, "only the root is allocated eagerly");
        ts.set_entry(0, PageEntry::Mapped { frame: Frame(1), cow: false }, &mut b).unwrap();
        // Mapping one page created the level-1 and leaf nodes.
        assert_eq!(after_root - b.free_frames(), 2);
        assert_eq!(ts.table_frames().len(), 3);
    }

    #[test]
    fn swapped_entries_roundtrip() {
        let mut b = buddy();
        let mut ts = TranslationStructure::single_level(SizeClass::Kib128, &mut b).unwrap();
        ts.set_entry(5, PageEntry::Swapped(SwapSlot(99)), &mut b).unwrap();
        assert_eq!(ts.walk(5).outcome, WalkOutcome::Swapped(SwapSlot(99)));
        assert_eq!(ts.swapped_pages(), vec![(5, SwapSlot(99))]);
    }

    #[test]
    fn mark_all_cow_covers_every_mapped_page() {
        let mut b = buddy();
        let mut ts = TranslationStructure::multi_level(SizeClass::Mib128, &mut b).unwrap();
        for page in [0u64, 511, 512, 32767] {
            ts.set_entry(page, PageEntry::Mapped { frame: Frame(page + 1), cow: false }, &mut b)
                .unwrap();
        }
        ts.mark_all_cow();
        let mapped = ts.mapped_pages();
        assert_eq!(mapped.len(), 4);
        assert!(mapped.iter().all(|(_, _, cow)| *cow));
    }

    #[test]
    fn mapped_pages_reports_correct_page_numbers() {
        let mut b = buddy();
        let mut ts = TranslationStructure::multi_level(SizeClass::Gib4, &mut b).unwrap();
        let pages = [0u64, 1, 511, 512, 262144, 1048575];
        for &p in &pages {
            ts.set_entry(p, PageEntry::Mapped { frame: Frame(p), cow: false }, &mut b).unwrap();
        }
        let mut got: Vec<u64> = ts.mapped_pages().into_iter().map(|(p, _, _)| p).collect();
        got.sort_unstable();
        assert_eq!(got, pages);
    }

    #[test]
    fn release_tables_returns_all_frames() {
        let mut b = buddy();
        let before = b.free_frames();
        let mut ts = TranslationStructure::multi_level(SizeClass::Gib4, &mut b).unwrap();
        for p in 0..2048 {
            ts.set_entry(p, PageEntry::Mapped { frame: Frame(p), cow: false }, &mut b).unwrap();
        }
        ts.release_tables(&mut b);
        assert_eq!(b.free_frames(), before);

        let before = b.free_frames();
        let ts = TranslationStructure::single_level(SizeClass::Mib4, &mut b).unwrap();
        ts.release_tables(&mut b);
        assert_eq!(b.free_frames(), before);
    }

    #[test]
    fn walk_accesses_match_kind() {
        let mut b = buddy();
        for sc in [SizeClass::Mib128, SizeClass::Gib4, SizeClass::Tib4] {
            let mut ts = TranslationStructure::multi_level(sc, &mut b).unwrap();
            ts.set_entry(0, PageEntry::Mapped { frame: Frame(1), cow: false }, &mut b).unwrap();
            assert_eq!(ts.walk(0).table_accesses.len() as u32, ts.kind().walk_accesses(), "{sc}");
        }
    }
}
