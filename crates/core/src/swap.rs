//! Backing store for swapped-out VB data (§3.4, "Physical Memory Capacity
//! Management").
//!
//! When the MTL runs out of physical memory it moves page-sized regions of
//! VBs to the backing store and records the slot in the VB's translation
//! structure. The same mechanism backs memory-mapped files: a file is a set
//! of pre-populated slots associated with a VB.
//!
//! The store behind a shard is pluggable: [`PressureBackend`] abstracts the
//! slot operations the MTL needs, so the default in-memory [`BackingStore`]
//! can be swapped for a capacity-bounded or slow-tier model (see
//! `vbi-hetero`'s `SlowTierBackend`) without the MTL noticing.

use std::collections::{HashMap, HashSet};

use crate::error::Result;
use crate::phys::FRAME_BYTES;
use crate::translate::SwapSlot;

/// One page-sized payload as stored by a backend.
pub type PageData = Box<[u8; FRAME_BYTES as usize]>;

/// The slot operations a shard's MTL needs from its backing store.
///
/// Implementations model the swap device / slow memory tier behind a shard.
/// Zero pages are first-class: they occupy a slot (so translation
/// bookkeeping is uniform) but carry no payload, and implementations report
/// them separately from payload-bearing slots.
///
/// `try_store` hands the page back on failure instead of dropping it, so a
/// capacity-bounded backend never loses data: the MTL returns the page to
/// its frame and surfaces [`crate::VbiError::BackingStoreFull`].
pub trait PressureBackend: std::fmt::Debug + Send + Sync {
    /// Stores a page, returning its slot — or the page itself when the
    /// backend is out of capacity.
    fn try_store(&mut self, data: PageData) -> core::result::Result<SwapSlot, PageData>;

    /// Stores a logically zero page (no payload). `None` when the backend
    /// is out of capacity.
    fn try_store_zero(&mut self) -> Option<SwapSlot>;

    /// Removes and returns a slot's data. `None` means the slot held a
    /// logically zero page (or was never stored).
    fn load(&mut self, slot: SwapSlot) -> Option<PageData>;

    /// Reads a slot without consuming it (copy-on-write cloning of swapped
    /// pages; file-backed VBs that keep the file authoritative).
    fn peek(&self, slot: SwapSlot) -> Option<&PageData>;

    /// Duplicates a slot's contents into a fresh slot (cloning a VB with
    /// swapped-out pages).
    fn duplicate(&mut self, slot: SwapSlot) -> Result<SwapSlot>;

    /// Discards a slot (VB disabled while pages were swapped out).
    fn discard(&mut self, slot: SwapSlot);

    /// Live slots, payload-bearing and zero alike.
    fn len(&self) -> usize;

    /// Whether no slots are live.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live slots holding a logically zero page.
    fn zero_len(&self) -> usize;

    /// Payload bytes held (zero slots contribute nothing).
    fn stored_bytes(&self) -> u64;

    /// Capacity in pages, `None` when unbounded.
    fn capacity_pages(&self) -> Option<u64> {
        None
    }

    /// Simulated cycles spent accessing the tier backing this store.
    /// Latency-modelling backends (the hetero slow tier) override this;
    /// the in-memory store is free.
    fn tier_cycles(&self) -> u64 {
        0
    }
}

/// An in-memory stand-in for the swap device / file system.
///
/// # Examples
///
/// ```
/// use vbi_core::swap::BackingStore;
///
/// let mut store = BackingStore::new();
/// let slot = store.store(Box::new([7u8; 4096]));
/// let data = store.load(slot).expect("slot exists");
/// assert_eq!(data[0], 7);
/// ```
///
/// Occupancy accounting distinguishes payload-bearing slots from zero
/// pages, which are tracked but cost no bytes:
///
/// ```
/// use vbi_core::swap::BackingStore;
///
/// let mut store = BackingStore::new();
/// store.store(Box::new([1u8; 4096]));
/// store.store_zero();
/// assert_eq!(store.len(), 2);
/// assert_eq!(store.zero_len(), 1);
/// assert_eq!(store.stored_bytes(), 4096);
/// ```
#[derive(Debug, Default)]
pub struct BackingStore {
    slots: HashMap<u64, PageData>,
    zero_slots: HashSet<u64>,
    next_slot: u64,
}

impl BackingStore {
    /// Creates an empty backing store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a page, returning its slot.
    pub fn store(&mut self, data: PageData) -> SwapSlot {
        let slot = SwapSlot(self.next_slot);
        self.next_slot += 1;
        self.slots.insert(slot.0, data);
        slot
    }

    /// Stores a logically zero page (no payload needed).
    pub fn store_zero(&mut self) -> SwapSlot {
        let slot = SwapSlot(self.next_slot);
        self.next_slot += 1;
        self.zero_slots.insert(slot.0);
        slot
    }

    /// Removes and returns a slot's data. `None` means the slot held a
    /// logically zero page (or was never stored).
    pub fn load(&mut self, slot: SwapSlot) -> Option<PageData> {
        self.zero_slots.remove(&slot.0);
        self.slots.remove(&slot.0)
    }

    /// Reads a slot without consuming it (used by copy-on-write cloning of
    /// swapped pages and by file-backed VBs that keep the file authoritative).
    pub fn peek(&self, slot: SwapSlot) -> Option<&PageData> {
        self.slots.get(&slot.0)
    }

    /// Duplicates a slot's contents into a fresh slot (cloning a VB with
    /// swapped-out pages).
    pub fn duplicate(&mut self, slot: SwapSlot) -> SwapSlot {
        match self.slots.get(&slot.0).cloned() {
            Some(data) => self.store(data),
            None => self.store_zero(),
        }
    }

    /// Discards a slot (VB disabled while pages were swapped out).
    pub fn discard(&mut self, slot: SwapSlot) {
        self.zero_slots.remove(&slot.0);
        self.slots.remove(&slot.0);
    }

    /// Number of slots currently holding data.
    pub fn occupied(&self) -> usize {
        self.slots.len()
    }

    /// Live slots, payload-bearing and zero alike.
    ///
    /// ```
    /// use vbi_core::swap::BackingStore;
    ///
    /// let mut store = BackingStore::new();
    /// let data = store.store(Box::new([3u8; 4096]));
    /// let zero = store.store_zero();
    /// assert_eq!(store.len(), 2);
    /// store.discard(zero);
    /// store.discard(data);
    /// assert!(store.is_empty());
    /// ```
    pub fn len(&self) -> usize {
        self.slots.len() + self.zero_slots.len()
    }

    /// Whether no slots are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live slots holding a logically zero page.
    pub fn zero_len(&self) -> usize {
        self.zero_slots.len()
    }

    /// Payload bytes held; zero pages are tracked but cost nothing.
    ///
    /// ```
    /// use vbi_core::swap::BackingStore;
    ///
    /// let mut store = BackingStore::new();
    /// assert_eq!(store.stored_bytes(), 0);
    /// let slot = store.store(Box::new([8u8; 4096]));
    /// assert_eq!(store.stored_bytes(), 4096);
    /// store.load(slot);
    /// assert_eq!(store.stored_bytes(), 0);
    /// ```
    pub fn stored_bytes(&self) -> u64 {
        self.slots.len() as u64 * FRAME_BYTES
    }
}

impl PressureBackend for BackingStore {
    fn try_store(&mut self, data: PageData) -> core::result::Result<SwapSlot, PageData> {
        Ok(self.store(data))
    }

    fn try_store_zero(&mut self) -> Option<SwapSlot> {
        Some(self.store_zero())
    }

    fn load(&mut self, slot: SwapSlot) -> Option<PageData> {
        BackingStore::load(self, slot)
    }

    fn peek(&self, slot: SwapSlot) -> Option<&PageData> {
        BackingStore::peek(self, slot)
    }

    fn duplicate(&mut self, slot: SwapSlot) -> Result<SwapSlot> {
        Ok(BackingStore::duplicate(self, slot))
    }

    fn discard(&mut self, slot: SwapSlot) {
        BackingStore::discard(self, slot);
    }

    fn len(&self) -> usize {
        BackingStore::len(self)
    }

    fn zero_len(&self) -> usize {
        BackingStore::zero_len(self)
    }

    fn stored_bytes(&self) -> u64 {
        BackingStore::stored_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_roundtrip() {
        let mut s = BackingStore::new();
        let mut page = Box::new([0u8; 4096]);
        page[100] = 42;
        let slot = s.store(page);
        let back = s.load(slot).unwrap();
        assert_eq!(back[100], 42);
        assert!(s.load(slot).is_none(), "load consumes the slot");
    }

    #[test]
    fn zero_slots_have_no_payload() {
        let mut s = BackingStore::new();
        let slot = s.store_zero();
        assert!(s.peek(slot).is_none());
        assert_eq!(s.len(), 1, "the zero slot is live until loaded");
        assert!(s.load(slot).is_none());
        assert_eq!(s.occupied(), 0);
        assert_eq!(s.len(), 0, "load consumed the zero slot");
    }

    #[test]
    fn duplicate_copies_contents() {
        let mut s = BackingStore::new();
        let slot = s.store(Box::new([9u8; 4096]));
        let dup = s.duplicate(slot);
        assert_ne!(slot, dup);
        assert_eq!(s.peek(slot).unwrap()[0], 9);
        assert_eq!(s.peek(dup).unwrap()[0], 9);
    }

    #[test]
    fn slots_are_never_reused() {
        let mut s = BackingStore::new();
        let a = s.store_zero();
        s.discard(a);
        let b = s.store_zero();
        assert_ne!(a, b);
    }

    #[test]
    fn accounting_tracks_payload_and_zero_slots_separately() {
        let mut s = BackingStore::new();
        let d0 = s.store(Box::new([1u8; 4096]));
        let _d1 = s.store(Box::new([2u8; 4096]));
        let z = s.store_zero();
        assert_eq!(s.len(), 3);
        assert_eq!(s.zero_len(), 1);
        assert_eq!(s.occupied(), 2);
        assert_eq!(s.stored_bytes(), 2 * FRAME_BYTES);

        s.discard(z);
        assert_eq!(s.len(), 2);
        assert_eq!(s.zero_len(), 0);
        assert_eq!(s.stored_bytes(), 2 * FRAME_BYTES);

        s.load(d0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.stored_bytes(), FRAME_BYTES);
    }

    #[test]
    fn duplicating_a_zero_slot_stays_zero() {
        let mut s = BackingStore::new();
        let z = s.store_zero();
        let dup = s.duplicate(z);
        assert!(s.peek(dup).is_none());
        assert_eq!(s.zero_len(), 2);
        assert_eq!(s.stored_bytes(), 0);
    }

    #[test]
    fn trait_object_store_is_infallible_for_the_in_memory_model() {
        let mut s: Box<dyn PressureBackend> = Box::new(BackingStore::new());
        let slot = s.try_store(Box::new([5u8; 4096])).expect("unbounded");
        assert_eq!(s.peek(slot).unwrap()[0], 5);
        assert_eq!(s.capacity_pages(), None);
        assert_eq!(s.tier_cycles(), 0);
        assert!(!s.is_empty());
        let dup = s.duplicate(slot).expect("unbounded");
        s.discard(dup);
        assert_eq!(s.load(slot).unwrap()[0], 5);
        assert!(s.try_store_zero().is_some());
    }
}
