//! Backing store for swapped-out VB data (§3.4, "Physical Memory Capacity
//! Management").
//!
//! When the MTL runs out of physical memory it moves page-sized regions of
//! VBs to the backing store and records the slot in the VB's translation
//! structure. The same mechanism backs memory-mapped files: a file is a set
//! of pre-populated slots associated with a VB.

use std::collections::HashMap;

use crate::phys::FRAME_BYTES;
use crate::translate::SwapSlot;

type PageData = Box<[u8; FRAME_BYTES as usize]>;

/// An in-memory stand-in for the swap device / file system.
///
/// # Examples
///
/// ```
/// use vbi_core::swap::BackingStore;
///
/// let mut store = BackingStore::new();
/// let slot = store.store(Box::new([7u8; 4096]));
/// let data = store.load(slot).expect("slot exists");
/// assert_eq!(data[0], 7);
/// ```
#[derive(Debug, Default)]
pub struct BackingStore {
    slots: HashMap<u64, PageData>,
    next_slot: u64,
}

impl BackingStore {
    /// Creates an empty backing store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a page, returning its slot.
    pub fn store(&mut self, data: PageData) -> SwapSlot {
        let slot = SwapSlot(self.next_slot);
        self.next_slot += 1;
        self.slots.insert(slot.0, data);
        slot
    }

    /// Stores a logically zero page (no payload needed).
    pub fn store_zero(&mut self) -> SwapSlot {
        let slot = SwapSlot(self.next_slot);
        self.next_slot += 1;
        slot
    }

    /// Removes and returns a slot's data. `None` means the slot held a
    /// logically zero page (or was never stored).
    pub fn load(&mut self, slot: SwapSlot) -> Option<PageData> {
        self.slots.remove(&slot.0)
    }

    /// Reads a slot without consuming it (used by copy-on-write cloning of
    /// swapped pages and by file-backed VBs that keep the file authoritative).
    pub fn peek(&self, slot: SwapSlot) -> Option<&PageData> {
        self.slots.get(&slot.0)
    }

    /// Duplicates a slot's contents into a fresh slot (cloning a VB with
    /// swapped-out pages).
    pub fn duplicate(&mut self, slot: SwapSlot) -> SwapSlot {
        match self.slots.get(&slot.0).cloned() {
            Some(data) => self.store(data),
            None => self.store_zero(),
        }
    }

    /// Discards a slot (VB disabled while pages were swapped out).
    pub fn discard(&mut self, slot: SwapSlot) {
        self.slots.remove(&slot.0);
    }

    /// Number of slots currently holding data.
    pub fn occupied(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_roundtrip() {
        let mut s = BackingStore::new();
        let mut page = Box::new([0u8; 4096]);
        page[100] = 42;
        let slot = s.store(page);
        let back = s.load(slot).unwrap();
        assert_eq!(back[100], 42);
        assert!(s.load(slot).is_none(), "load consumes the slot");
    }

    #[test]
    fn zero_slots_have_no_payload() {
        let mut s = BackingStore::new();
        let slot = s.store_zero();
        assert!(s.peek(slot).is_none());
        assert!(s.load(slot).is_none());
        assert_eq!(s.occupied(), 0);
    }

    #[test]
    fn duplicate_copies_contents() {
        let mut s = BackingStore::new();
        let slot = s.store(Box::new([9u8; 4096]));
        let dup = s.duplicate(slot);
        assert_ne!(slot, dup);
        assert_eq!(s.peek(slot).unwrap()[0], 9);
        assert_eq!(s.peek(dup).unwrap()[0], 9);
    }

    #[test]
    fn slots_are_never_reused() {
        let mut s = BackingStore::new();
        let a = s.store_zero();
        s.discard(a);
        let b = s.store_zero();
        assert_ne!(a, b);
    }
}
