//! The single op-execution engine behind every request path.
//!
//! The paper's MTL (§4) is one agent serving the same operations to every
//! client, however those requests arrive — synchronously from a core, or
//! queued through a submission ring. This module is that agent in code:
//! [`Op`] names every operation of the VBI request surface (control plane
//! *and* data plane), and the engine functions — one per op, dispatched by
//! [`execute`] — own all permission checks, CVT-cache lookups, rollback
//! protocol, and stat accounting exactly once.
//!
//! Front ends differ only in *where the state lives*, which the [`OpEnv`]
//! trait abstracts:
//!
//! * [`crate::System`] implements it with plain single-owner fields (one
//!   MTL, `HashMap`s of CVTs) — the synchronous adapter;
//! * `vbi_service::VbiService` implements it with `Mutex<Mtl>` shards and
//!   lock-protected client state — the concurrent sharding adapter, which
//!   also batches (`VbiService::submit`) and queues (`VbiQueue`) the same
//!   [`Op`]s.
//!
//! Because both adapters route every op through this engine, a 1-shard
//! service driven sequentially is *observably identical* to a `System` by
//! construction: same responses, same [`crate::MtlStats`] (proven
//! property-based in `tests/service_equivalence.rs`).
//!
//! ## Locking contract
//!
//! The engine asks the environment for at most one *kind* of resource at a
//! time: every [`OpEnv`] callback (`with_client`, `with_client_read`,
//! `with_home_mtl`, `place_vb`, `redirect_clients`) is entered and exited
//! before the next one starts, so lock-based environments never hold a
//! client lock and a shard lock simultaneously on the engine's behalf. The
//! one deliberate exception is the remap family's [`OpEnv::with_mtl_pair`],
//! which holds the source *and* destination home MTLs of a migration at
//! once — environments acquire the two shard locks in shard-index order,
//! keeping deadlock impossible by construction.
//!
//! Client state additionally splits into a read and a write side:
//! [`OpEnv::with_client_read`] is the engine's declaration that an op never
//! mutates client state, which lets the concurrent service answer CVT-cache
//! hits from a seqlock-published snapshot with **zero** client-lock
//! acquisitions, falling back to the locked [`cvt_lookup`] path on a miss
//! or torn read. Control-plane ops always take the write side.

use crate::addr::{SizeClass, VbiAddress, Vbuid};
use crate::client::{ClientId, Cvt, CvtEntry, VirtualAddress};
use crate::config::VbiConfig;
use crate::cvt_cache::ClientCvtCache;
use crate::error::{Result, VbiError};
use crate::mtl::Mtl;
use crate::perm::{AccessKind, Rwx};
use crate::swap::PressureBackend;
use crate::telemetry::{OpKind, OpSample, Telemetry, TraceEvent};
use crate::vb::VbProperties;

/// A program's handle on an attached VB: the CVT index returned by
/// `request_vb` plus (for convenience and introspection) the VBUID behind it.
///
/// Programs only ever need `cvt_index`; keeping the VBUID on the handle makes
/// tests and examples more legible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VbHandle {
    /// Index of the CVT entry pointing at the VB — the program's pointer.
    pub cvt_index: usize,
    /// The VB behind the entry (may change under promotion/migration).
    pub vbuid: Vbuid,
}

impl VbHandle {
    /// The virtual address `offset` bytes into the VB.
    pub const fn at(&self, offset: u64) -> VirtualAddress {
        VirtualAddress::new(self.cvt_index, offset)
    }
}

/// The outcome of a protection-checked access, with its timing-relevant
/// events (consumed by the timing simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckedAccess {
    /// The VBI address the access maps to (used to index all caches).
    pub address: VbiAddress,
    /// Whether the CVT cache supplied the entry (a miss costs one memory
    /// read of the in-memory CVT).
    pub cvt_cache_hit: bool,
}

/// One operation of the VBI request surface.
///
/// Control-plane ops manage clients and VB attachments; data-plane ops are
/// protection-checked memory accesses. Every front end — [`crate::System`],
/// `VbiService::submit`, `VbiQueue` — speaks this enum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Register a new memory client (process, OS, or VM guest).
    CreateClient,
    /// Register a client with a caller-chosen ID (§6.1 VM partitioning).
    CreateClientWithId {
        /// The ID to claim.
        id: ClientId,
    },
    /// Destroy a client, detaching every VB in its CVT.
    DestroyClient {
        /// Client to destroy.
        client: ClientId,
    },
    /// The `request_vb` system call (§4.2): allocate and attach the
    /// smallest free VB that fits `bytes`.
    RequestVb {
        /// Requesting client.
        client: ClientId,
        /// Requested capacity in bytes.
        bytes: u64,
        /// Property bitvector for the new VB.
        props: VbProperties,
        /// Permissions granted to the requester.
        perms: Rwx,
    },
    /// The `attach` instruction: grant `client` access to `vbuid`.
    Attach {
        /// Client being granted access.
        client: ClientId,
        /// Target VB.
        vbuid: Vbuid,
        /// Granted permissions.
        perms: Rwx,
    },
    /// `attach` at a specific CVT index (fork and shared-library layout).
    AttachAt {
        /// Client being granted access.
        client: ClientId,
        /// CVT index to claim.
        index: usize,
        /// Target VB.
        vbuid: Vbuid,
        /// Granted permissions.
        perms: Rwx,
    },
    /// The `detach` instruction: revoke `client`'s access to `vbuid`.
    Detach {
        /// Client losing access.
        client: ClientId,
        /// Target VB.
        vbuid: Vbuid,
    },
    /// Detach the VB behind a CVT index and disable it at zero references —
    /// the common "free this data structure" path.
    ReleaseVb {
        /// Releasing client.
        client: ClientId,
        /// CVT index of the attachment.
        index: usize,
    },
    /// The CPU-side protection check of §4.2.3, without touching memory.
    Access {
        /// Accessing client.
        client: ClientId,
        /// `{CVT index, offset}` to check.
        va: VirtualAddress,
        /// Kind of access to check for.
        kind: AccessKind,
    },
    /// Protection-checked instruction fetch (returns the byte; fetch width
    /// is immaterial to the model).
    Fetch {
        /// Fetching client.
        client: ClientId,
        /// `{CVT index, offset}` to fetch.
        va: VirtualAddress,
    },
    /// Protection-checked functional load of a `u64`.
    LoadU64 {
        /// Requesting client.
        client: ClientId,
        /// `{CVT index, offset}` to read.
        va: VirtualAddress,
    },
    /// Protection-checked functional store of a `u64`.
    StoreU64 {
        /// Requesting client.
        client: ClientId,
        /// `{CVT index, offset}` to write.
        va: VirtualAddress,
        /// Value to store.
        value: u64,
    },
    /// Protection-checked functional load of one byte.
    LoadU8 {
        /// Requesting client.
        client: ClientId,
        /// `{CVT index, offset}` to read.
        va: VirtualAddress,
    },
    /// Protection-checked functional store of one byte.
    StoreU8 {
        /// Requesting client.
        client: ClientId,
        /// `{CVT index, offset}` to write.
        va: VirtualAddress,
        /// Value to store.
        value: u8,
    },
    /// Protection-checked load of `len` bytes (one check for the span).
    LoadBytes {
        /// Requesting client.
        client: ClientId,
        /// `{CVT index, offset}` of the span's base.
        va: VirtualAddress,
        /// Bytes to read.
        len: usize,
    },
    /// Protection-checked store of a byte span (one check for the span).
    StoreBytes {
        /// Requesting client.
        client: ClientId,
        /// `{CVT index, offset}` of the span's base.
        va: VirtualAddress,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// VB promotion (§4.4): move the VB behind `client`'s CVT `index` into
    /// a freshly enabled VB of the next larger size class on the same home
    /// shard, redirect every attached client's CVT entry (§4.2.2 — the
    /// program's pointers stay valid), and disable the drained source.
    Promote {
        /// Client whose handle names the VB (every sharer is redirected).
        client: ClientId,
        /// CVT index of the VB to promote.
        index: usize,
    },
    /// `clone_vb` behind a handle (§4.4): enable a same-class VB on the
    /// source's home shard, make it a copy-on-write clone, and attach it to
    /// `client` with the source entry's permissions.
    CloneVb {
        /// Client receiving the clone.
        client: ClientId,
        /// CVT index of the VB to clone.
        index: usize,
    },
    /// Cross-shard VB migration (§4.2.2, §6.2): copy the VB behind
    /// `client`'s CVT `index` into a fresh VB homed on `to_shard`, redirect
    /// every attached client's CVT entry, and disable the source — the OS
    /// "seamlessly migrates VBs by just updating the VBUID of the
    /// corresponding CVT entry".
    Migrate {
        /// Client whose handle names the VB (every sharer is redirected).
        client: ClientId,
        /// CVT index of the VB to migrate.
        index: usize,
        /// Destination shard (0 on a single-shard machine).
        to_shard: usize,
    },
}

impl Op {
    /// For data-plane ops that touch memory: the `(client, va, kind)`
    /// triple of the CPU-side protection check that precedes the MTL
    /// access. `None` for control-plane ops, for [`Op::Access`] (which
    /// performs no MTL access), and for empty byte spans (which complete
    /// without any check, like the typed bulk helpers).
    ///
    /// Batching front ends use this to split an op into its check phase
    /// (client locks only) and its MTL phase (home-shard lock only).
    pub fn checked_access(&self) -> Option<(ClientId, VirtualAddress, AccessKind)> {
        match *self {
            Op::Fetch { client, va } => Some((client, va, AccessKind::Execute)),
            Op::LoadU64 { client, va } | Op::LoadU8 { client, va } => {
                Some((client, va, AccessKind::Read))
            }
            Op::LoadBytes { client, va, len } if len > 0 => Some((client, va, AccessKind::Read)),
            Op::StoreU64 { client, va, .. } | Op::StoreU8 { client, va, .. } => {
                Some((client, va, AccessKind::Write))
            }
            Op::StoreBytes { client, va, ref data } if !data.is_empty() => {
                Some((client, va, AccessKind::Write))
            }
            _ => None,
        }
    }

    /// For the VB-remap family (promote/clone/migrate): the `(client, CVT
    /// index)` naming the *source* VB. Queued front ends use this to route a
    /// remap to its source shard's worker, which engages the destination
    /// shard through the environment's ordered two-MTL capability.
    pub fn remap_source(&self) -> Option<(ClientId, usize)> {
        match *self {
            Op::Promote { client, index }
            | Op::CloneVb { client, index }
            | Op::Migrate { client, index, .. } => Some((client, index)),
            _ => None,
        }
    }

    /// The client the op runs for ([`Op::CreateClient`] alone has none;
    /// [`Op::CreateClientWithId`] names the client being created).
    pub fn client(&self) -> Option<ClientId> {
        match *self {
            Op::CreateClient => None,
            Op::CreateClientWithId { id } => Some(id),
            Op::DestroyClient { client }
            | Op::RequestVb { client, .. }
            | Op::Attach { client, .. }
            | Op::AttachAt { client, .. }
            | Op::Detach { client, .. }
            | Op::ReleaseVb { client, .. }
            | Op::Access { client, .. }
            | Op::Fetch { client, .. }
            | Op::LoadU64 { client, .. }
            | Op::StoreU64 { client, .. }
            | Op::LoadU8 { client, .. }
            | Op::StoreU8 { client, .. }
            | Op::LoadBytes { client, .. }
            | Op::StoreBytes { client, .. }
            | Op::Promote { client, .. }
            | Op::CloneVb { client, .. }
            | Op::Migrate { client, .. } => Some(client),
        }
    }

    /// The VB the op names *directly* (attach/detach carry a VBUID in the
    /// op itself; data-plane and index-based ops resolve theirs through the
    /// CVT during execution).
    pub fn vbuid(&self) -> Option<Vbuid> {
        match *self {
            Op::Attach { vbuid, .. } | Op::AttachAt { vbuid, .. } | Op::Detach { vbuid, .. } => {
                Some(vbuid)
            }
            _ => None,
        }
    }
}

/// The successful outcome of an [`Op`], typed per operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutput {
    /// A created client ([`Op::CreateClient`] / [`Op::CreateClientWithId`]).
    Client(ClientId),
    /// The handle of a freshly requested VB ([`Op::RequestVb`]).
    Handle(VbHandle),
    /// The CVT index returned by [`Op::Attach`].
    CvtIndex(usize),
    /// The post-detach reference count returned by [`Op::Detach`].
    RefCount(u32),
    /// The outcome of a pure protection check ([`Op::Access`]).
    Checked(CheckedAccess),
    /// A loaded `u64` ([`Op::LoadU64`]).
    U64(u64),
    /// A loaded byte ([`Op::LoadU8`] / [`Op::Fetch`]).
    U8(u8),
    /// A loaded span ([`Op::LoadBytes`]).
    Bytes(Vec<u8>),
    /// No architecturally visible result (stores, detach-like ops).
    Unit,
}

impl OpOutput {
    /// The loaded `u64`, if this is a [`OpOutput::U64`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            OpOutput::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The loaded byte, if this is a [`OpOutput::U8`].
    pub fn as_u8(&self) -> Option<u8> {
        match self {
            OpOutput::U8(v) => Some(*v),
            _ => None,
        }
    }

    /// The VB handle, if this is a [`OpOutput::Handle`].
    pub fn as_handle(&self) -> Option<VbHandle> {
        match self {
            OpOutput::Handle(h) => Some(*h),
            _ => None,
        }
    }

    /// The created client, if this is a [`OpOutput::Client`].
    pub fn as_client(&self) -> Option<ClientId> {
        match self {
            OpOutput::Client(c) => Some(*c),
            _ => None,
        }
    }

    /// The CVT index, if this is a [`OpOutput::CvtIndex`].
    pub fn as_cvt_index(&self) -> Option<usize> {
        match self {
            OpOutput::CvtIndex(i) => Some(*i),
            _ => None,
        }
    }

    /// The loaded bytes, if this is a [`OpOutput::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            OpOutput::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

/// The outcome of one [`Op`]: its typed output, or the VBI error the
/// engine's checks produced.
pub type OpResult = Result<OpOutput>;

/// State access an op-execution environment must provide.
///
/// Implementations differ only in ownership: `System` hands out its plain
/// fields, the sharded service locks the matching shard or client. Each
/// method is a single self-contained acquisition — see the [module
/// docs](self) for the locking contract.
pub trait OpEnv {
    /// The machine configuration (CVT capacity, cache slots, ...).
    fn config(&self) -> &VbiConfig;

    /// Allocates a fresh client ID.
    ///
    /// # Errors
    ///
    /// [`VbiError::OutOfClients`] when all 2^16 IDs are live.
    fn alloc_client_id(&mut self) -> Result<ClientId>;

    /// Returns a destroyed client's ID to the allocator.
    fn release_client_id(&mut self, id: ClientId);

    /// Inserts fresh client state for `id` unless `id` is already live,
    /// pairing the CVT with whichever [`ClientCvtCache`] implementation the
    /// environment uses. Returns whether the insert happened. Must be atomic
    /// with respect to concurrent inserts of the same ID.
    fn try_insert_client(&mut self, id: ClientId, cvt: Cvt) -> bool;

    /// Removes the client's state, returning the VBUIDs its CVT held (so
    /// the engine can release the references).
    ///
    /// # Errors
    ///
    /// [`VbiError::InvalidClient`] for unknown clients.
    fn take_client_vbuids(&mut self, id: ClientId) -> Result<Vec<Vbuid>>;

    /// Runs `f` with exclusive access to the client's CVT and CVT cache —
    /// the write side of client state, taken by every control-plane op.
    ///
    /// # Errors
    ///
    /// [`VbiError::InvalidClient`] for unknown clients.
    fn with_client<R>(
        &mut self,
        id: ClientId,
        f: impl FnOnce(&mut Cvt, &mut dyn ClientCvtCache) -> R,
    ) -> Result<R>;

    /// The read-side capability: looks up the client's CVT entry for
    /// `index` through its CVT cache, returning the entry plus whether the
    /// cache supplied it. This is the engine's single way of saying *"this
    /// op never mutates client state (beyond cache bookkeeping)"* —
    /// environments may serve cache hits without any exclusive client lock
    /// (the service's seqlock fast path) and fall back to the locked
    /// [`cvt_lookup`] on a miss or torn read.
    ///
    /// # Errors
    ///
    /// [`VbiError::InvalidClient`] for unknown clients, or
    /// [`VbiError::InvalidCvtIndex`] for an unattached index.
    fn with_client_read(&mut self, id: ClientId, index: usize) -> Result<(CvtEntry, bool)>;

    /// Runs `f` with exclusive access to the MTL that homes `vbuid`.
    fn with_home_mtl<R>(&mut self, vbuid: Vbuid, f: impl FnOnce(&mut Mtl) -> R) -> R;

    /// Finds a free VB of `size_class` and enables it with `props` — the
    /// placement policy (which MTL shard a new VB lands on) lives here.
    ///
    /// # Errors
    ///
    /// [`VbiError::OutOfVirtualBlocks`] when every eligible MTL slice of
    /// the class is exhausted.
    fn place_vb(&mut self, size_class: SizeClass, props: VbProperties) -> Result<Vbuid>;

    /// Number of MTL shards the environment routes VBs across (1 for the
    /// single-owner `System`). `Mtl::shard_of(vbuid, shard_count)` names a
    /// VB's home shard.
    fn shard_count(&self) -> usize {
        1
    }

    /// Finds a free VB of `size_class` homed on the given `shard` and
    /// enables it with `props` — the *targeted* placement the remap family
    /// uses: promotion and cloning stay on the source's shard (their frames
    /// are shared or moved, never copied), migration names its destination.
    ///
    /// # Errors
    ///
    /// [`VbiError::InvalidShard`] for a shard the machine does not have, or
    /// [`VbiError::OutOfVirtualBlocks`] when the shard's slice of the class
    /// is exhausted.
    fn place_vb_on(
        &mut self,
        shard: usize,
        size_class: SizeClass,
        props: VbProperties,
    ) -> Result<Vbuid>;

    /// Runs `f` with `src`'s home MTL and, when `dst` is homed on a
    /// *different* shard, the destination's home MTL as well (`None` means
    /// both VBs share one MTL). This is the engine's only two-resource
    /// acquisition: lock-based environments take the two shard locks in
    /// shard-index order, so concurrent remaps can never deadlock.
    fn with_mtl_pair<R>(
        &mut self,
        src: Vbuid,
        dst: Vbuid,
        f: impl FnOnce(&mut Mtl, Option<&mut Mtl>) -> R,
    ) -> R;

    /// Rewrites every live client's CVT entries naming `old` to name `new`
    /// ([`crate::client::Cvt::redirect_all`] per client — the §4.2.2
    /// remap), invalidating each affected CVT-cache slot so stale
    /// translations cannot be served (the concurrent service bumps the
    /// seqlock epoch, forcing lock-free readers onto the authoritative
    /// path). Returns the number of entries rewritten, i.e. the reference
    /// count to move from `old` to `new`.
    fn redirect_clients(&mut self, old: Vbuid, new: Vbuid) -> usize;

    /// Runs `f` with the backing store of the MTL homing `vbuid` — the
    /// engine's single way to reach a shard's swap device for occupancy
    /// reporting and backend administration (§3.4).
    fn with_backing<R>(
        &mut self,
        vbuid: Vbuid,
        f: impl FnOnce(&mut dyn PressureBackend) -> R,
    ) -> R {
        self.with_home_mtl(vbuid, |mtl| f(mtl.backing_mut()))
    }

    /// Policy-evicts up to `count` resident pages from the shard homing
    /// `vbuid` (no VB excluded) — the ballooning / quota hook. Returns how
    /// many pages were evicted.
    fn reclaim_frames(&mut self, vbuid: Vbuid, count: usize) -> usize {
        self.with_home_mtl(vbuid, |mtl| mtl.reclaim_frames(count))
    }

    /// Transfers up to `count` frames of free capacity from sibling shards
    /// to the shard homing `vbuid`, returning how many frames actually
    /// moved. The engine calls this only after the home shard failed an op
    /// with [`VbiError::OutOfPhysicalMemory`] *and* its own eviction policy
    /// could not fund the allocation (a shard whose frames all hold
    /// translation structures has nothing reclaimable) — the last resort
    /// before surfacing the error. Called with no shard lock held, so
    /// sharded environments are free to visit siblings one at a time.
    /// Single-shard environments have no siblings: the default moves
    /// nothing, keeping them byte-identical to the pre-borrowing engine.
    fn borrow_frames(&mut self, vbuid: Vbuid, count: usize) -> usize {
        let _ = (vbuid, count);
        0
    }

    /// Tells the environment that serving a data-plane op faulted pages in
    /// from the backing store (the accessed page changed frames).
    /// Environments that publish translation state to lock-free readers
    /// must invalidate what they published for (`client`, `index`) — the
    /// service bumps the slot's seqlock epoch. Called *after* the shard
    /// lock is released; single-owner environments need nothing.
    fn note_fault_in(&mut self, client: ClientId, index: usize) {
        let _ = (client, index);
    }

    /// The environment's telemetry plane, if it has one. When present (and
    /// armed), [`execute`] records one [`OpSample`] — count, latency
    /// histogram, optional trace event — per op at its boundaries; `None`
    /// (the default) costs nothing.
    fn telemetry(&self) -> Option<&Telemetry> {
        None
    }
}

// --- control plane ----------------------------------------------------------

/// Registers a new memory client.
///
/// # Errors
///
/// Returns [`VbiError::OutOfClients`] when all 2^16 IDs are live.
pub fn create_client<E: OpEnv>(env: &mut E) -> Result<ClientId> {
    loop {
        let id = env.alloc_client_id()?;
        let cvt = Cvt::new(id, env.config().cvt_capacity);
        // The allocator does not know about IDs claimed through
        // `create_client_with_id` (§6.1 VM partitioning), so skip any ID
        // that is already live instead of clobbering its state.
        if env.try_insert_client(id, cvt) {
            return Ok(id);
        }
    }
}

/// Registers a client with a caller-chosen ID (§6.1 VM partitioning).
///
/// # Errors
///
/// Returns [`VbiError::InvalidClient`] if the ID is already live.
pub fn create_client_with_id<E: OpEnv>(env: &mut E, id: ClientId) -> Result<ClientId> {
    let cvt = Cvt::new(id, env.config().cvt_capacity);
    if env.try_insert_client(id, cvt) {
        Ok(id)
    } else {
        Err(VbiError::InvalidClient(id))
    }
}

/// Destroys a client: detaches every VB in its CVT, disables VBs whose
/// reference count drops to zero (§4.2.4), and recycles the client ID.
///
/// # Errors
///
/// Returns [`VbiError::InvalidClient`] for unknown clients.
pub fn destroy_client<E: OpEnv>(env: &mut E, client: ClientId) -> Result<()> {
    let vbuids = env.take_client_vbuids(client)?;
    for vbuid in vbuids {
        env.with_home_mtl(vbuid, |mtl| -> Result<()> {
            if mtl.remove_ref(vbuid)? == 0 {
                mtl.disable_vb(vbuid)?;
            }
            Ok(())
        })?;
    }
    env.release_client_id(client);
    Ok(())
}

/// The `request_vb` system call (§4.2): places the smallest free VB that
/// fits `bytes`, enables it with `props`, attaches the caller with `perms`,
/// and returns the CVT index as the program's handle.
///
/// # Errors
///
/// [`VbiError::RequestTooLarge`] for requests beyond 128 TiB,
/// [`VbiError::InvalidClient`], [`VbiError::CvtFull`], or VB exhaustion.
pub fn request_vb<E: OpEnv>(
    env: &mut E,
    client: ClientId,
    bytes: u64,
    props: VbProperties,
    perms: Rwx,
) -> Result<VbHandle> {
    let size_class =
        SizeClass::smallest_fitting(bytes).ok_or(VbiError::RequestTooLarge { requested: bytes })?;
    let vbuid = env.place_vb(size_class, props)?;
    match attach(env, client, vbuid, perms) {
        Ok(index) => Ok(VbHandle { cvt_index: index, vbuid }),
        Err(e) => {
            // Roll back the enable so the VB is not leaked.
            env.with_home_mtl(vbuid, |mtl| {
                let _ = mtl.disable_vb(vbuid);
            });
            Err(e)
        }
    }
}

/// The `attach` instruction: adds a CVT entry for `vbuid` with `perms` and
/// increments the VB's reference count. Returns the CVT index.
///
/// # Errors
///
/// [`VbiError::InvalidClient`], [`VbiError::VbNotEnabled`], or
/// [`VbiError::CvtFull`].
pub fn attach<E: OpEnv>(env: &mut E, client: ClientId, vbuid: Vbuid, perms: Rwx) -> Result<usize> {
    env.with_home_mtl(vbuid, |mtl| mtl.add_ref(vbuid))?;
    let attached = env.with_client(client, |cvt, _| cvt.attach(vbuid, perms));
    match attached {
        Ok(Ok(index)) => Ok(index),
        Ok(Err(e)) | Err(e) => {
            env.with_home_mtl(vbuid, |mtl| {
                let _ = mtl.remove_ref(vbuid);
            });
            Err(e)
        }
    }
}

/// `attach` at a specific CVT index (fork and shared-library layout).
///
/// # Errors
///
/// Same as [`attach`], plus [`VbiError::InvalidCvtIndex`] for an occupied
/// or out-of-range index.
pub fn attach_at<E: OpEnv>(
    env: &mut E,
    client: ClientId,
    index: usize,
    vbuid: Vbuid,
    perms: Rwx,
) -> Result<()> {
    env.with_home_mtl(vbuid, |mtl| mtl.add_ref(vbuid))?;
    let attached = env.with_client(client, |cvt, cache| {
        cvt.attach_at(index, vbuid, perms).map(|()| cache.invalidate(client, index))
    });
    match attached {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) | Err(e) => {
            env.with_home_mtl(vbuid, |mtl| {
                let _ = mtl.remove_ref(vbuid);
            });
            Err(e)
        }
    }
}

/// The `detach` instruction: invalidates the client's CVT entry for
/// `vbuid` and decrements the reference count. Returns the new count so
/// callers can `disable_vb` at zero.
///
/// # Errors
///
/// [`VbiError::InvalidClient`] or [`VbiError::VbNotEnabled`].
pub fn detach<E: OpEnv>(env: &mut E, client: ClientId, vbuid: Vbuid) -> Result<u32> {
    env.with_client(client, |cvt, cache| {
        cvt.detach(vbuid).map(|index| cache.invalidate(client, index))
    })??;
    env.with_home_mtl(vbuid, |mtl| mtl.remove_ref(vbuid))
}

/// Detaches the VB behind a CVT index and disables it if this was the last
/// reference — the common "free this data structure" path.
///
/// # Errors
///
/// [`VbiError::InvalidClient`], [`VbiError::InvalidCvtIndex`], or
/// [`VbiError::VbNotEnabled`].
pub fn release_vb<E: OpEnv>(env: &mut E, client: ClientId, index: usize) -> Result<()> {
    let vbuid = env.with_client(client, |cvt, cache| {
        cvt.detach_index(index).inspect(|_| cache.invalidate(client, index))
    })??;
    env.with_home_mtl(vbuid, |mtl| -> Result<()> {
        if mtl.remove_ref(vbuid)? == 0 {
            mtl.disable_vb(vbuid)?;
        }
        Ok(())
    })
}

// --- VB remap (promote / clone / migrate) -----------------------------------
//
// Concurrency contract: a remap is an *OS operation* (§4.2.2 — the OS
// updates the VBUID of the CVT entries), and like the paper's OS it must be
// serialized against *mutation* of the VB being remapped. Concurrent
// readers never observe a torn CVT entry — entries are seqlock-published
// whole words, the copy completes before any entry is redirected, and
// every rewrite bumps the owning client's CVT-cache epoch, so the next
// check re-resolves the new VB. A read whose protection check *already*
// resolved the pre-remap entry, however, races the handover like an
// in-flight access races the CVT rewrite in hardware: it touches the
// drained source's afterlife — usually a clean `VbNotEnabled` in the
// disable window, or stale bytes if the freed VBUID has since been
// re-placed — and converges on retry once it re-resolves the entry
// (exactly what the remap stress suites and `migration_run` assert). A
// concurrent *writer* can likewise land a store on the source between the
// copy and the redirect, and that store dies with the source; concurrent
// attach/detach churn on the same VB races the reference-count handover.
// Callers that mutate a VB while remapping it get the same guarantees the
// paper's OS would give them: none.

/// Reads the CVT entry behind `client`'s `index` under the write side of
/// client state (remaps are control-plane: no lock-free shortcut).
fn remap_source_entry<E: OpEnv>(env: &mut E, client: ClientId, index: usize) -> Result<CvtEntry> {
    env.with_client(client, |cvt, _| cvt.entry(index).copied())?
}

/// The shared §4.2.2 remap tail: every CVT entry in the system naming `old`
/// is rewritten to `new` (invalidating the cached copies), the matching
/// reference counts move with them, and the drained source VB is disabled
/// — freeing its frames on the source shard.
///
/// The destination's references are charged *before* the redirect (from
/// the source's current count) so a client releasing an already-redirected
/// entry can never underflow the new VB's count mid-remap; any drift from
/// the actual redirect tally is reconciled after. If the redirect moved
/// nothing — a concurrent remap of the same VB won the race — the
/// unreferenced destination is rolled back rather than leaked.
fn finish_remap<E: OpEnv>(env: &mut E, old: Vbuid, new: Vbuid) -> Result<()> {
    let expected = env
        .with_home_mtl(old, |mtl| mtl.ref_count(old))
        .map_err(|e| unplace_vb(env, new, e))? as usize;
    env.with_home_mtl(new, |mtl| -> Result<()> {
        for _ in 0..expected {
            mtl.add_ref(new)?;
        }
        Ok(())
    })
    .map_err(|e| unplace_vb(env, new, e))?;
    let moved = env.redirect_clients(old, new);
    // With the control plane quiesced (see the module docs) the redirect
    // moves exactly `expected` entries; reconcile either direction anyway.
    env.with_home_mtl(new, |mtl| -> Result<()> {
        for _ in moved..expected {
            mtl.remove_ref(new)?;
        }
        for _ in expected..moved {
            mtl.add_ref(new)?;
        }
        Ok(())
    })?;
    if moved == 0 {
        // No entry named the source — a racing remap of the same VB won
        // (sequentially impossible: the caller's own entry always
        // redirects). This remap did not happen: best-effort-drain the
        // orphaned source, roll the unreferenced destination back instead
        // of leaking its copied frames, and report the source gone.
        env.with_home_mtl(old, |mtl| {
            let _ = mtl.disable_vb(old);
        });
        return Err(unplace_vb(env, new, VbiError::VbNotEnabled(old)));
    }
    env.with_home_mtl(old, |mtl| -> Result<()> {
        for _ in 0..moved {
            mtl.remove_ref(old)?;
        }
        mtl.disable_vb(old)?;
        Ok(())
    })
}

/// Disables a freshly placed VB again — the rollback when the remap's data
/// movement or attach fails after placement succeeded.
fn unplace_vb<E: OpEnv>(env: &mut E, vbuid: Vbuid, err: VbiError) -> VbiError {
    env.with_home_mtl(vbuid, |mtl| {
        let _ = mtl.disable_vb(vbuid);
    });
    err
}

/// Promotes the VB behind `client`'s CVT `index` to the next larger size
/// class (§4.4): enables a larger VB on the *same* home shard (promotion
/// moves frames, which never leave their MTL), executes `promote_vb`,
/// redirects every CVT entry in the system that referenced the old VB, and
/// disables the old VB. Returns the new handle — same CVT index, so the
/// program's pointers stay valid (§4.2.2).
///
/// # Errors
///
/// [`VbiError::RequestTooLarge`] at the largest class, plus any
/// enable/translation error.
pub fn promote<E: OpEnv>(env: &mut E, client: ClientId, index: usize) -> Result<VbHandle> {
    let old = remap_source_entry(env, client, index)?.vbuid();
    let next = old
        .size_class()
        .next_larger()
        .ok_or(VbiError::RequestTooLarge { requested: old.bytes() + 1 })?;
    let props = env.with_home_mtl(old, |mtl| mtl.props(old))?;
    let home = Mtl::shard_of(old, env.shard_count());
    let new = env.place_vb_on(home, next, props)?;
    env.with_mtl_pair(old, new, |mtl, pair| {
        debug_assert!(pair.is_none(), "promotion never leaves the home shard");
        mtl.promote_vb(old, new)
    })
    .map_err(|e| unplace_vb(env, new, e))?;
    finish_remap(env, old, new)?;
    Ok(VbHandle { cvt_index: index, vbuid: new })
}

/// Clones the VB behind `client`'s CVT `index` (§4.4 `clone_vb`): enables a
/// same-class VB on the source's home shard (clones *share* frames
/// copy-on-write, so both must live on one MTL), clones the translation
/// state, and attaches the clone to `client` with the source entry's
/// permissions. Returns the clone's handle. The source VB and every other
/// sharer are untouched.
///
/// # Errors
///
/// VB exhaustion on the home shard, [`VbiError::CvtFull`], or any
/// translation error.
pub fn clone_vb<E: OpEnv>(env: &mut E, client: ClientId, index: usize) -> Result<VbHandle> {
    let entry = remap_source_entry(env, client, index)?;
    let src = entry.vbuid();
    let props = env.with_home_mtl(src, |mtl| mtl.props(src))?;
    let home = Mtl::shard_of(src, env.shard_count());
    let dst = env.place_vb_on(home, src.size_class(), props)?;
    env.with_mtl_pair(src, dst, |mtl, pair| {
        debug_assert!(pair.is_none(), "clones share frames: one home shard");
        mtl.clone_vb(src, dst)
    })
    .map_err(|e| unplace_vb(env, dst, e))?;
    let cvt_index =
        attach(env, client, dst, entry.permissions()).map_err(|e| unplace_vb(env, dst, e))?;
    Ok(VbHandle { cvt_index, vbuid: dst })
}

/// Migrates the VB behind `client`'s CVT `index` to a fresh VB homed on
/// `to_shard` (§6.2, the OS's phase-change move): enables a same-class VB
/// on the destination shard, copies the resident contents under *both*
/// home MTLs ([`Mtl::migrate_contents`] — taken in shard-index order by the
/// environment), redirects every CVT entry in the system, and disables the
/// source, freeing its frames. Returns the new handle — same CVT index,
/// new home shard.
///
/// # Errors
///
/// [`VbiError::InvalidShard`] for an out-of-range destination, VB
/// exhaustion on the destination shard, or any translation error.
pub fn migrate<E: OpEnv>(
    env: &mut E,
    client: ClientId,
    index: usize,
    to_shard: usize,
) -> Result<VbHandle> {
    let shards = env.shard_count();
    if to_shard >= shards {
        return Err(VbiError::InvalidShard { shard: to_shard, shards });
    }
    let old = remap_source_entry(env, client, index)?.vbuid();
    let props = env.with_home_mtl(old, |mtl| mtl.props(old))?;
    let new = env.place_vb_on(to_shard, old.size_class(), props)?;
    env.with_mtl_pair(old, new, |src, dst| Mtl::migrate_contents(src, dst, old, new))
        .map_err(|e| unplace_vb(env, new, e))?;
    finish_remap(env, old, new)?;
    Ok(VbHandle { cvt_index: index, vbuid: new })
}

// --- data plane -------------------------------------------------------------

/// The locked-path CVT-entry lookup through the client's cache: consult the
/// cache, and on a miss read the in-memory CVT and fill. The single
/// definition every environment's slow path (and every write-kind check)
/// uses, so hit/miss sequences are identical across front ends.
///
/// # Errors
///
/// [`VbiError::InvalidCvtIndex`] for an unattached index.
pub fn cvt_lookup(
    cvt: &Cvt,
    cache: &mut dyn ClientCvtCache,
    client: ClientId,
    index: usize,
) -> Result<(CvtEntry, bool)> {
    match cache.lookup(client, index) {
        Some(entry) => Ok((entry, true)),
        None => {
            // Miss: read the in-memory CVT and fill the cache.
            let entry = *cvt.entry(index)?;
            cache.fill(client, index, entry);
            Ok((entry, false))
        }
    }
}

/// Performs the CPU-side access check of §4.2.3 through the client's CVT
/// cache: index bounds, RWX permission, and offset bounds. On success
/// returns the VBI address plus cache-hit information.
///
/// Read-kind checks (loads, fetches, read permission probes) go through the
/// environment's read capability ([`OpEnv::with_client_read`]), which may
/// answer a cache hit without taking any client lock; write-kind checks
/// take the exclusive side.
///
/// # Errors
///
/// [`VbiError::InvalidClient`], [`VbiError::InvalidCvtIndex`],
/// [`VbiError::PermissionDenied`], or [`VbiError::OffsetOutOfRange`].
pub fn access<E: OpEnv>(
    env: &mut E,
    client: ClientId,
    va: VirtualAddress,
    kind: AccessKind,
) -> Result<CheckedAccess> {
    let (entry, cvt_cache_hit) = if kind.is_write() {
        env.with_client(client, |cvt, cache| cvt_lookup(cvt, cache, client, va.cvt_index()))??
    } else {
        env.with_client_read(client, va.cvt_index())?
    };
    let required = kind.required();
    if !entry.permissions().allows(required) {
        return Err(VbiError::PermissionDenied {
            client,
            vbuid: entry.vbuid(),
            required,
            granted: entry.permissions(),
        });
    }
    let address = entry.vbuid().address(va.offset())?;
    Ok(CheckedAccess { address, cvt_cache_hit })
}

/// Writes a byte span at `address` — the one place span-store semantics
/// live (bytes before a mid-span fault stay written).
fn write_span(mtl: &mut Mtl, address: VbiAddress, data: &[u8]) -> Result<()> {
    for (i, b) in data.iter().enumerate() {
        address.offset_by(i as u64).and_then(|a| mtl.write_u8(a, *b))?;
    }
    Ok(())
}

/// Reads a `len`-byte span at `address` — the one place span-load
/// semantics live.
fn read_span(mtl: &mut Mtl, address: VbiAddress, len: usize) -> Result<Vec<u8>> {
    (0..len).map(|i| address.offset_by(i as u64).and_then(|a| mtl.read_u8(a))).collect()
}

/// Runs the MTL half of a checked data-plane op at `address` (the caller
/// has already performed the protection check that produced the address
/// and holds the home MTL). This is the single definition of what each
/// data-plane op does to memory; batching front ends that group checked
/// ops by home shard call it directly under one shard lock.
///
/// # Errors
///
/// Any translation error.
///
/// # Panics
///
/// Panics if `op` is not a data-plane op (nothing outside
/// [`Op::checked_access`]'s domain has an MTL half).
pub fn run_checked(mtl: &mut Mtl, op: &Op, address: VbiAddress) -> OpResult {
    match op {
        Op::LoadU64 { .. } => mtl.read_u64(address).map(OpOutput::U64),
        Op::StoreU64 { value, .. } => mtl.write_u64(address, *value).map(|()| OpOutput::Unit),
        Op::LoadU8 { .. } | Op::Fetch { .. } => mtl.read_u8(address).map(OpOutput::U8),
        Op::StoreU8 { value, .. } => mtl.write_u8(address, *value).map(|()| OpOutput::Unit),
        Op::LoadBytes { len, .. } => read_span(mtl, address, *len).map(OpOutput::Bytes),
        Op::StoreBytes { data, .. } => write_span(mtl, address, data).map(|()| OpOutput::Unit),
        _ => unreachable!("{op:?} has no MTL half"),
    }
}

/// Runs a fallible MTL action at `address` with the engine's pressure
/// path wrapped around it: when the action fails for lack of physical
/// memory, the shard's eviction policy reclaims a batch of resident pages
/// (write-back to the backing store) — protecting only the page being
/// accessed, so a VB larger than physical memory can still make progress
/// by self-eviction — and the action retries once. Reclaim and retry
/// happen under the *same* MTL acquisition as the first attempt, so no
/// concurrent allocator can steal the freed frames in between.
///
/// Returns the action's result plus whether serving it faulted pages in
/// from the backing store (the caller may need to republish translation
/// state it exposed to lock-free readers).
pub fn with_pressure<R>(
    mtl: &mut Mtl,
    address: VbiAddress,
    f: impl Fn(&mut Mtl) -> Result<R>,
) -> (Result<R>, bool) {
    let faults_before = mtl.stats().faults_in;
    let mut result = f(mtl);
    if matches!(result, Err(VbiError::OutOfPhysicalMemory)) {
        let batch = mtl.config().pressure_reclaim_batch.max(1);
        if mtl.reclaim_for(address.vbuid(), address.page_index(), batch) > 0 {
            result = f(mtl);
        }
    }
    (result, mtl.stats().faults_in > faults_before)
}

/// [`run_checked`] with the engine's pressure path: evict-on-allocation-
/// failure with write-back, then one retry, all under the caller's single
/// shard-lock hold (see [`with_pressure`]). Batching front ends call this
/// instead of [`run_checked`] so oversubscribed batches behave exactly
/// like the synchronous path.
pub fn run_checked_pressured(mtl: &mut Mtl, op: &Op, address: VbiAddress) -> (OpResult, bool) {
    with_pressure(mtl, address, |mtl| run_checked(mtl, op, address))
}

/// Stack-local scratch the engine fills while an op runs so the telemetry
/// plane can label the op's trace event after the fact: which VB it
/// resolved to, and its outcome flags. Costs a few stack stores; nothing
/// when the caller discards it.
#[derive(Debug, Default)]
struct TraceScratch {
    /// The VB the op resolved to (data plane: from the protection check).
    vbuid: Option<Vbuid>,
    /// [`TraceEvent`] flag bits accumulated so far.
    flags: u8,
    /// Whether to measure the eviction delta (only worth an extra stats
    /// read when tracing is on).
    trace_evictions: bool,
}

/// Runs the MTL half of a checked data-plane op under one home-MTL
/// acquisition, with the pressure path wrapped around it. Returns the
/// result plus whether the attempt faulted pages in and (when measured)
/// evicted any.
fn mtl_half<E: OpEnv>(
    env: &mut E,
    op: &Op,
    address: VbiAddress,
    want_evictions: bool,
) -> (OpResult, bool, bool) {
    env.with_home_mtl(address.vbuid(), |mtl| {
        let evictions_before = if want_evictions { mtl.stats().evictions } else { 0 };
        let (result, faulted) = run_checked_pressured(mtl, op, address);
        let evicted = want_evictions && mtl.stats().evictions > evictions_before;
        (result, faulted, evicted)
    })
}

/// Executes a data-plane op end to end: protection check, then the MTL
/// half ([`run_checked`]) under the home MTL — with the pressure path
/// wrapped around it, and the environment notified afterwards when pages
/// faulted in. When the home shard is out of memory even after its own
/// eviction sweep, the environment may borrow free capacity from sibling
/// shards ([`OpEnv::borrow_frames`], taken with no lock held) and the op
/// retries once. Empty byte spans complete without any check, like the
/// typed bulk helpers.
fn data_plane<E: OpEnv>(env: &mut E, op: &Op, scratch: &mut TraceScratch) -> OpResult {
    match op.checked_access() {
        Some((client, va, kind)) => {
            let checked = access(env, client, va, kind)?;
            scratch.vbuid = Some(checked.address.vbuid());
            if !checked.cvt_cache_hit {
                scratch.flags |= TraceEvent::FLAG_CVT_FALLBACK;
            }
            let want_evictions = scratch.trace_evictions;
            let (mut result, mut faulted, mut evicted) =
                mtl_half(env, op, checked.address, want_evictions);
            if matches!(result, Err(VbiError::OutOfPhysicalMemory)) {
                let batch = env.config().pressure_reclaim_batch.max(1);
                if env.borrow_frames(checked.address.vbuid(), batch) > 0 {
                    let (r, f, e) = mtl_half(env, op, checked.address, want_evictions);
                    result = r;
                    faulted |= f;
                    evicted |= e;
                }
            }
            if faulted {
                scratch.flags |= TraceEvent::FLAG_FAULT_IN;
                env.note_fault_in(client, va.cvt_index());
            }
            if evicted {
                scratch.flags |= TraceEvent::FLAG_EVICT;
            }
            result
        }
        None => match op {
            Op::LoadBytes { .. } => Ok(OpOutput::Bytes(Vec::new())),
            Op::StoreBytes { .. } => Ok(OpOutput::Unit),
            _ => unreachable!("{op:?} is not a data-plane op"),
        },
    }
}

/// Protection-checked functional load of a `u64`.
///
/// # Errors
///
/// Any protection or translation error.
pub fn load_u64<E: OpEnv>(env: &mut E, client: ClientId, va: VirtualAddress) -> Result<u64> {
    match data_plane(env, &Op::LoadU64 { client, va }, &mut TraceScratch::default())? {
        OpOutput::U64(v) => Ok(v),
        _ => unreachable!("load returns a u64"),
    }
}

/// Protection-checked functional store of a `u64`.
///
/// # Errors
///
/// Any protection or translation error.
pub fn store_u64<E: OpEnv>(
    env: &mut E,
    client: ClientId,
    va: VirtualAddress,
    value: u64,
) -> Result<()> {
    data_plane(env, &Op::StoreU64 { client, va, value }, &mut TraceScratch::default()).map(|_| ())
}

/// Protection-checked functional load of one byte.
///
/// # Errors
///
/// Any protection or translation error.
pub fn load_u8<E: OpEnv>(env: &mut E, client: ClientId, va: VirtualAddress) -> Result<u8> {
    match data_plane(env, &Op::LoadU8 { client, va }, &mut TraceScratch::default())? {
        OpOutput::U8(v) => Ok(v),
        _ => unreachable!("load returns a byte"),
    }
}

/// Protection-checked functional store of one byte.
///
/// # Errors
///
/// Any protection or translation error.
pub fn store_u8<E: OpEnv>(
    env: &mut E,
    client: ClientId,
    va: VirtualAddress,
    value: u8,
) -> Result<()> {
    data_plane(env, &Op::StoreU8 { client, va, value }, &mut TraceScratch::default()).map(|_| ())
}

/// Protection-checked instruction fetch (returns the byte; fetch width is
/// immaterial to the model).
///
/// # Errors
///
/// Any protection or translation error.
pub fn fetch<E: OpEnv>(env: &mut E, client: ClientId, va: VirtualAddress) -> Result<u8> {
    match data_plane(env, &Op::Fetch { client, va }, &mut TraceScratch::default())? {
        OpOutput::U8(v) => Ok(v),
        _ => unreachable!("fetch returns a byte"),
    }
}

/// Copies `data` into a VB through the checked store path. The span lives
/// in one VB, so the protection check runs once and the home MTL is
/// visited once for the whole copy.
///
/// # Errors
///
/// Any protection or translation error, including running off the end of
/// the VB mid-copy (bytes before the fault are written).
pub fn store_bytes<E: OpEnv>(
    env: &mut E,
    client: ClientId,
    va: VirtualAddress,
    data: &[u8],
) -> Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    // This is the one op-shaped path that bypasses `execute` (to spare the
    // caller's slice a clone), so it carries the same telemetry boundary.
    let armed = env.telemetry().is_some_and(Telemetry::armed);
    let mut scratch = TraceScratch {
        trace_evictions: armed && env.telemetry().is_some_and(Telemetry::tracing_enabled),
        ..TraceScratch::default()
    };
    let timed = armed && env.telemetry().is_some_and(Telemetry::should_time);
    let start = timed.then(std::time::Instant::now);
    let result = store_bytes_inner(env, client, va, data, &mut scratch);
    if armed {
        if result.is_err() {
            scratch.flags |= TraceEvent::FLAG_ERROR;
        }
        record_sample(env, OpKind::StoreBytes, Some(client), &scratch, start);
    }
    result
}

fn store_bytes_inner<E: OpEnv>(
    env: &mut E,
    client: ClientId,
    va: VirtualAddress,
    data: &[u8],
    scratch: &mut TraceScratch,
) -> Result<()> {
    // Not routed through an `Op` to spare the caller's slice a clone; the
    // span semantics still live once, in `write_span`.
    let checked = access(env, client, va, AccessKind::Write)?;
    scratch.vbuid = Some(checked.address.vbuid());
    if !checked.cvt_cache_hit {
        scratch.flags |= TraceEvent::FLAG_CVT_FALLBACK;
    }
    let attempt = |env: &mut E| {
        env.with_home_mtl(checked.address.vbuid(), |mtl| {
            with_pressure(mtl, checked.address, |mtl| write_span(mtl, checked.address, data))
        })
    };
    let (mut result, mut faulted) = attempt(env);
    if matches!(result, Err(VbiError::OutOfPhysicalMemory)) {
        let batch = env.config().pressure_reclaim_batch.max(1);
        if env.borrow_frames(checked.address.vbuid(), batch) > 0 {
            let (r, f) = attempt(env);
            result = r;
            faulted |= f;
        }
    }
    if faulted {
        scratch.flags |= TraceEvent::FLAG_FAULT_IN;
        env.note_fault_in(client, va.cvt_index());
    }
    result
}

/// Reads `len` bytes from a VB through the checked load path — one
/// protection check and one home-MTL visit for the whole span.
///
/// # Errors
///
/// Any protection or translation error.
pub fn load_bytes<E: OpEnv>(
    env: &mut E,
    client: ClientId,
    va: VirtualAddress,
    len: usize,
) -> Result<Vec<u8>> {
    match data_plane(env, &Op::LoadBytes { client, va, len }, &mut TraceScratch::default())? {
        OpOutput::Bytes(bytes) => Ok(bytes),
        _ => unreachable!("load returns bytes"),
    }
}

// --- capacity management ----------------------------------------------------

/// Occupancy of the backing store behind one shard, as reported by
/// [`backing_report`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackingReport {
    /// Live slots, payload-bearing and zero alike.
    pub slots: usize,
    /// Live slots holding a logically zero page.
    pub zero_slots: usize,
    /// Payload bytes held by the store.
    pub stored_bytes: u64,
    /// Simulated cycles spent accessing the backing tier (0 for the free
    /// in-memory model).
    pub tier_cycles: u64,
}

/// Policy-evicts up to `count` resident pages from the shard homing the VB
/// at `client`'s CVT slot `index` — the engine's ballooning / quota hook
/// (§3.4): the environment's reclaim capability does the eviction, so every
/// front end shrinks residency the same way. Returns pages evicted.
///
/// # Errors
///
/// [`VbiError::InvalidClient`] or [`VbiError::InvalidCvtIndex`].
pub fn reclaim_vb_frames<E: OpEnv>(
    env: &mut E,
    client: ClientId,
    index: usize,
    count: usize,
) -> Result<usize> {
    let (entry, _) = env.with_client_read(client, index)?;
    Ok(env.reclaim_frames(entry.vbuid(), count))
}

/// Reports the backing-store occupancy of the shard homing the VB at
/// `client`'s CVT slot `index`.
///
/// # Errors
///
/// [`VbiError::InvalidClient`] or [`VbiError::InvalidCvtIndex`].
pub fn backing_report<E: OpEnv>(
    env: &mut E,
    client: ClientId,
    index: usize,
) -> Result<BackingReport> {
    let (entry, _) = env.with_client_read(client, index)?;
    Ok(env.with_backing(entry.vbuid(), |b| BackingReport {
        slots: b.len(),
        zero_slots: b.zero_len(),
        stored_bytes: b.stored_bytes(),
        tier_cycles: b.tier_cycles(),
    }))
}

// --- dispatcher -------------------------------------------------------------

/// Records one finished op into the environment's telemetry plane: the
/// engine-side half of the [`OpEnv::telemetry`] capability. `start` is
/// `Some` only for ops [`Telemetry::should_time`] elected to clock; untimed
/// ops still land in the exact per-op counters but skip the clock reads and
/// the histogram (see the sampling note on [`Telemetry`]).
fn record_sample<E: OpEnv>(
    env: &E,
    kind: OpKind,
    client: Option<ClientId>,
    scratch: &TraceScratch,
    start: Option<std::time::Instant>,
) {
    let duration_ns = start.map_or(0, |s| s.elapsed().as_nanos() as u64);
    let shards = env.shard_count();
    if let Some(telemetry) = env.telemetry() {
        let start_ns =
            if start.is_some() { telemetry.now_ns().saturating_sub(duration_ns) } else { 0 };
        telemetry.record(OpSample {
            kind,
            client: client.map_or(u32::MAX, |c| u32::from(c.0)),
            vbid: scratch.vbuid.map_or(0, |v| v.vbid()),
            shard: scratch.vbuid.map_or(0, |v| Mtl::shard_of(v, shards) as u16),
            start_ns,
            duration_ns,
            flags: scratch.flags,
            timed: start.is_some(),
        });
    }
}

/// Executes one [`Op`] against an environment — the single entry point
/// every front end (synchronous, batched, queued) funnels through.
///
/// When the environment exposes an armed [`Telemetry`] plane, the op's
/// kind, latency, and outcome are recorded here, at the one boundary every
/// front end shares; with telemetry off (or absent) the only cost is one
/// relaxed atomic load.
pub fn execute<E: OpEnv>(env: &mut E, op: Op) -> OpResult {
    if env.telemetry().is_some_and(Telemetry::armed) {
        execute_recorded(env, op)
    } else {
        dispatch(env, op, &mut TraceScratch::default())
    }
}

fn execute_recorded<E: OpEnv>(env: &mut E, op: Op) -> OpResult {
    let kind = OpKind::of(&op);
    let client = op.client();
    let mut scratch = TraceScratch {
        vbuid: op.vbuid(),
        trace_evictions: env.telemetry().is_some_and(Telemetry::tracing_enabled),
        ..TraceScratch::default()
    };
    let timed = env.telemetry().is_some_and(Telemetry::should_time);
    let start = timed.then(std::time::Instant::now);
    let result = dispatch(env, op, &mut scratch);
    // Remaps and requests name their VB in the result, not the op.
    if let Ok(OpOutput::Handle(handle)) = &result {
        scratch.vbuid = Some(handle.vbuid);
    }
    if result.is_err() {
        scratch.flags |= TraceEvent::FLAG_ERROR;
    }
    record_sample(env, kind, client, &scratch, start);
    result
}

fn dispatch<E: OpEnv>(env: &mut E, op: Op, scratch: &mut TraceScratch) -> OpResult {
    match op {
        Op::CreateClient => create_client(env).map(OpOutput::Client),
        Op::CreateClientWithId { id } => create_client_with_id(env, id).map(OpOutput::Client),
        Op::DestroyClient { client } => destroy_client(env, client).map(|()| OpOutput::Unit),
        Op::RequestVb { client, bytes, props, perms } => {
            request_vb(env, client, bytes, props, perms).map(OpOutput::Handle)
        }
        Op::Attach { client, vbuid, perms } => {
            attach(env, client, vbuid, perms).map(OpOutput::CvtIndex)
        }
        Op::AttachAt { client, index, vbuid, perms } => {
            attach_at(env, client, index, vbuid, perms).map(|()| OpOutput::Unit)
        }
        Op::Detach { client, vbuid } => detach(env, client, vbuid).map(OpOutput::RefCount),
        Op::ReleaseVb { client, index } => release_vb(env, client, index).map(|()| OpOutput::Unit),
        Op::Promote { client, index } => promote(env, client, index).map(OpOutput::Handle),
        Op::CloneVb { client, index } => clone_vb(env, client, index).map(OpOutput::Handle),
        Op::Migrate { client, index, to_shard } => {
            migrate(env, client, index, to_shard).map(OpOutput::Handle)
        }
        Op::Access { client, va, kind } => access(env, client, va, kind).map(OpOutput::Checked),
        Op::Fetch { .. }
        | Op::LoadU64 { .. }
        | Op::StoreU64 { .. }
        | Op::LoadU8 { .. }
        | Op::StoreU8 { .. }
        | Op::LoadBytes { .. }
        | Op::StoreBytes { .. } => data_plane(env, &op, scratch),
    }
}
