//! Generic set-associative TLB with true-LRU replacement.
//!
//! Used in two places: the MTL's translation lookaside buffers (§4.2.3, one
//! per mapping granularity, §5.2) and — via `vbi-baselines` — the
//! conventional L1/L2 TLB hierarchy of the comparison systems. The TLB is
//! generic over its key so the same structure serves `(VBUID, page)` keys in
//! VBI, `(ASID, VPN)` keys in x86-64 baselines, and whole-VB keys for
//! direct-mapped VBs.

use core::fmt::Debug;
use core::hash::Hash;
use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;

/// Statistics for a TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by fills.
    pub evictions: u64,
}

impl TlbStats {
    /// Accumulates another TLB's counters into this one (per-shard TLB
    /// stats aggregate into one report in sharded deployments).
    pub fn merge(&mut self, other: &TlbStats) {
        let TlbStats { hits, misses, evictions } = other;
        self.hits += hits;
        self.misses += misses;
        self.evictions += evictions;
    }

    /// Miss rate in `[0, 1]`; 0.0 for an untouched TLB.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Way<K, V> {
    key: K,
    value: V,
    /// Higher = more recently used.
    lru: u64,
}

/// A set-associative TLB mapping keys `K` to values `V` with LRU replacement.
///
/// `ways == capacity` gives a fully associative structure (used for the
/// paper's fully associative L1 TLBs and page-walk caches).
///
/// # Examples
///
/// ```
/// use vbi_core::tlb::Tlb;
///
/// let mut tlb: Tlb<u64, u64> = Tlb::new(64, 4);
/// assert_eq!(tlb.lookup(&0x1000), None);
/// tlb.insert(0x1000, 0xabc);
/// assert_eq!(tlb.lookup(&0x1000), Some(0xabc));
/// assert_eq!(tlb.stats().misses, 1);
/// assert_eq!(tlb.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb<K, V> {
    sets: Vec<Vec<Way<K, V>>>,
    ways: usize,
    tick: u64,
    stats: TlbStats,
}

impl<K: Eq + Hash + Clone + Debug, V: Clone> Tlb<K, V> {
    /// Creates a TLB with `capacity` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, `ways` is zero, or `ways` does not
    /// divide `capacity`.
    pub fn new(capacity: usize, ways: usize) -> Self {
        assert!(capacity > 0 && ways > 0, "TLB needs capacity and ways");
        assert!(capacity.is_multiple_of(ways), "ways must divide capacity");
        let set_count = capacity / ways;
        Self {
            sets: (0..set_count).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Creates a fully associative TLB with `capacity` entries.
    pub fn fully_associative(capacity: usize) -> Self {
        Self::new(capacity, capacity)
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    fn set_index(&self, key: &K) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.sets.len()
    }

    /// Looks up `key`, recording a hit or miss and refreshing LRU state.
    pub fn lookup(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(key);
        match self.sets[set].iter_mut().find(|w| &w.key == key) {
            Some(way) => {
                way.lru = tick;
                self.stats.hits += 1;
                Some(way.value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Checks for `key` without touching statistics or LRU state (used by
    /// invariants and tests).
    pub fn peek(&self, key: &K) -> Option<&V> {
        let set = self.set_index(key);
        self.sets[set].iter().find(|w| &w.key == key).map(|w| &w.value)
    }

    /// Inserts (or updates) a translation, evicting the set's LRU entry when
    /// full. Returns the evicted `(key, value)` pair, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let set_idx = self.set_index(&key);
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.key == key) {
            way.value = value;
            way.lru = tick;
            return None;
        }
        if set.len() < ways {
            set.push(Way { key, value, lru: tick });
            return None;
        }
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.lru)
            .map(|(i, _)| i)
            .expect("full set has a victim");
        let old = core::mem::replace(&mut set[victim], Way { key, value, lru: tick });
        self.stats.evictions += 1;
        Some((old.key, old.value))
    }

    /// Removes a translation, returning its value if present.
    pub fn invalidate(&mut self, key: &K) -> Option<V> {
        let set = self.set_index(key);
        let pos = self.sets[set].iter().position(|w| &w.key == key)?;
        Some(self.sets[set].swap_remove(pos).value)
    }

    /// Removes every translation for which `predicate` holds (e.g. all pages
    /// of a disabled VB).
    pub fn invalidate_matching(&mut self, mut predicate: impl FnMut(&K) -> bool) -> usize {
        let mut removed = 0;
        for set in &mut self.sets {
            let before = set.len();
            set.retain(|w| !predicate(&w.key));
            removed += before - set.len();
        }
        removed
    }

    /// Removes all translations.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets statistics (e.g. after warm-up) without flushing entries.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_miss_then_fill_then_hit() {
        let mut tlb: Tlb<u64, u64> = Tlb::new(16, 4);
        assert_eq!(tlb.lookup(&5), None);
        tlb.insert(5, 500);
        assert_eq!(tlb.lookup(&5), Some(500));
        assert_eq!(tlb.stats(), TlbStats { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn stats_merge_sums_counters() {
        let mut a = TlbStats { hits: 1, misses: 2, evictions: 3 };
        a.merge(&TlbStats { hits: 10, misses: 20, evictions: 30 });
        assert_eq!(a, TlbStats { hits: 11, misses: 22, evictions: 33 });
    }

    #[test]
    fn insert_updates_in_place() {
        let mut tlb: Tlb<u64, u64> = Tlb::new(4, 4);
        tlb.insert(1, 10);
        tlb.insert(1, 11);
        assert_eq!(tlb.len(), 1);
        assert_eq!(tlb.lookup(&1), Some(11));
    }

    #[test]
    fn lru_evicts_the_oldest() {
        let mut tlb: Tlb<u64, u64> = Tlb::fully_associative(2);
        tlb.insert(1, 10);
        tlb.insert(2, 20);
        tlb.lookup(&1); // 2 becomes LRU
        let evicted = tlb.insert(3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert!(tlb.peek(&1).is_some());
        assert!(tlb.peek(&3).is_some());
    }

    #[test]
    fn sets_partition_the_key_space() {
        let mut tlb: Tlb<u64, u64> = Tlb::new(8, 2);
        for k in 0..64 {
            tlb.insert(k, k);
        }
        assert!(tlb.len() <= 8);
        for set in &tlb.sets {
            assert!(set.len() <= 2);
        }
    }

    #[test]
    fn invalidate_and_flush() {
        let mut tlb: Tlb<u64, u64> = Tlb::new(8, 2);
        tlb.insert(1, 10);
        tlb.insert(2, 20);
        assert_eq!(tlb.invalidate(&1), Some(10));
        assert_eq!(tlb.invalidate(&1), None);
        tlb.flush();
        assert!(tlb.is_empty());
    }

    #[test]
    fn invalidate_matching_removes_a_vb() {
        let mut tlb: Tlb<(u64, u64), u64> = Tlb::new(16, 4);
        for page in 0..4 {
            tlb.insert((7, page), page);
            tlb.insert((8, page), page);
        }
        let removed = tlb.invalidate_matching(|(vb, _)| *vb == 7);
        assert_eq!(removed, 4);
        assert!(tlb.peek(&(7, 0)).is_none());
        assert!(tlb.peek(&(8, 0)).is_some());
    }

    #[test]
    fn peek_does_not_perturb_stats_or_lru() {
        let mut tlb: Tlb<u64, u64> = Tlb::fully_associative(2);
        tlb.insert(1, 10);
        tlb.insert(2, 20);
        let _ = tlb.peek(&1);
        // 1 is still LRU (insert order), so it is the victim.
        let evicted = tlb.insert(3, 30);
        assert_eq!(evicted, Some((1, 10)));
        assert_eq!(tlb.stats().hits, 0);
    }

    #[test]
    fn miss_rate() {
        let mut tlb: Tlb<u64, u64> = Tlb::new(4, 4);
        assert_eq!(tlb.stats().miss_rate(), 0.0);
        tlb.lookup(&1);
        tlb.insert(1, 1);
        tlb.lookup(&1);
        assert!((tlb.stats().miss_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ways must divide capacity")]
    fn bad_geometry_panics() {
        let _: Tlb<u64, u64> = Tlb::new(10, 4);
    }
}
