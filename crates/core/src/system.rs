//! Processor-side glue: the synchronous adapter over the op engine.
//!
//! [`System`] models everything between a program's `{CVT index, offset}`
//! virtual address and physical memory: the per-client Client-VB Tables, the
//! per-core CVT caches, and the Memory Translation Layer. It exposes the
//! operations of §4.2 — `request_vb`, `attach`/`detach`, loads and stores
//! with protection checks, VB promotion — as a safe API that the OS model
//! (`crate::os`) and the simulators build on.
//!
//! All request logic — permission checks, CVT-cache fills, rollback,
//! stat accounting — lives in [`crate::ops`]; `System` merely implements
//! [`OpEnv`] with plain single-owner fields and delegates. The concurrent
//! front ends (`vbi_service::VbiService`, `vbi_service::VbiQueue`) route
//! through the *same* engine, which is what makes them observably
//! identical to a `System` under sequential driving.

use std::collections::HashMap;

use crate::addr::{SizeClass, VbiAddress, Vbuid};
use crate::client::{ClientId, ClientIdAllocator, Cvt, VirtualAddress};
use crate::config::VbiConfig;
use crate::cvt_cache::{CvtCache, CvtCacheStats};
use crate::error::{Result, VbiError};
use crate::mtl::{Mtl, MtlAccess, TranslateResult};
use crate::ops::{self, Op, OpEnv, OpResult};
use crate::perm::{AccessKind, Rwx};
use crate::vb::VbProperties;

pub use crate::ops::{CheckedAccess, VbHandle};

/// A full VBI machine: MTL + clients + CVTs + CVT caches.
///
/// See the [crate-level documentation](crate) for a quick-start example.
#[derive(Debug)]
pub struct System {
    mtl: Mtl,
    cvts: HashMap<ClientId, Cvt>,
    cvt_caches: HashMap<ClientId, CvtCache>,
    client_ids: ClientIdAllocator,
    config: VbiConfig,
}

impl OpEnv for System {
    fn config(&self) -> &VbiConfig {
        &self.config
    }

    fn alloc_client_id(&mut self) -> Result<ClientId> {
        self.client_ids.allocate()
    }

    fn release_client_id(&mut self, id: ClientId) {
        self.client_ids.release(id);
    }

    fn try_insert_client(&mut self, id: ClientId, cvt: Cvt, cache: CvtCache) -> bool {
        if self.cvts.contains_key(&id) {
            return false;
        }
        self.cvts.insert(id, cvt);
        self.cvt_caches.insert(id, cache);
        true
    }

    fn take_client_vbuids(&mut self, id: ClientId) -> Result<Vec<Vbuid>> {
        let cvt = self.cvts.remove(&id).ok_or(VbiError::InvalidClient(id))?;
        self.cvt_caches.remove(&id);
        Ok(cvt.iter().map(|(_, entry)| entry.vbuid()).collect())
    }

    fn with_client<R>(
        &mut self,
        id: ClientId,
        f: impl FnOnce(&mut Cvt, &mut CvtCache) -> R,
    ) -> Result<R> {
        let cvt = self.cvts.get_mut(&id).ok_or(VbiError::InvalidClient(id))?;
        let cache = self.cvt_caches.get_mut(&id).expect("cache exists with cvt");
        Ok(f(cvt, cache))
    }

    fn with_home_mtl<R>(&mut self, _vbuid: Vbuid, f: impl FnOnce(&mut Mtl) -> R) -> R {
        // A System is a one-MTL machine: every VB is homed on it.
        f(&mut self.mtl)
    }

    fn place_vb(&mut self, size_class: SizeClass, props: VbProperties) -> Result<Vbuid> {
        let vbuid = self.mtl.find_free_vb(size_class)?;
        self.mtl.enable_vb(vbuid, props)?;
        Ok(vbuid)
    }
}

impl System {
    /// Creates a system with the given configuration.
    pub fn new(config: VbiConfig) -> Self {
        Self {
            mtl: Mtl::new(config.clone()),
            cvts: HashMap::new(),
            cvt_caches: HashMap::new(),
            client_ids: ClientIdAllocator::new(),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &VbiConfig {
        &self.config
    }

    /// Read access to the MTL (stats, structure inspection).
    pub fn mtl(&self) -> &Mtl {
        &self.mtl
    }

    /// Mutable access to the MTL (used by simulators driving translation
    /// directly and by the OS model for swapping/mmap).
    pub fn mtl_mut(&mut self) -> &mut Mtl {
        &mut self.mtl
    }

    /// Executes one [`Op`] through the shared engine — the same dispatch
    /// the batched and queued front ends use.
    pub fn execute(&mut self, op: Op) -> OpResult {
        ops::execute(self, op)
    }

    // --- clients ------------------------------------------------------------

    /// Registers a new memory client (process, OS, or VM guest).
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::OutOfClients`] when all 2^16 IDs are live.
    pub fn create_client(&mut self) -> Result<ClientId> {
        ops::create_client(self)
    }

    /// Registers a client with a caller-chosen ID (used by the VM layer,
    /// which partitions the client-ID space among virtual machines, §6.1).
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::InvalidClient`] if the ID is already live.
    pub fn create_client_with_id(&mut self, id: ClientId) -> Result<ClientId> {
        ops::create_client_with_id(self, id)
    }

    /// Destroys a client: detaches every VB in its CVT, disables VBs whose
    /// reference count drops to zero (§4.2.4), and recycles the client ID.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::InvalidClient`] for unknown clients.
    pub fn destroy_client(&mut self, client: ClientId) -> Result<()> {
        ops::destroy_client(self, client)
    }

    /// Whether `client` is live.
    pub fn client_exists(&self, client: ClientId) -> bool {
        self.cvts.contains_key(&client)
    }

    /// The client's CVT (for inspection).
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::InvalidClient`] for unknown clients.
    pub fn cvt(&self, client: ClientId) -> Result<&Cvt> {
        self.cvts.get(&client).ok_or(VbiError::InvalidClient(client))
    }

    /// The client's CVT-cache statistics.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::InvalidClient`] for unknown clients.
    pub fn cvt_cache_stats(&self, client: ClientId) -> Result<CvtCacheStats> {
        self.cvt_caches.get(&client).map(CvtCache::stats).ok_or(VbiError::InvalidClient(client))
    }

    // --- VB management --------------------------------------------------------

    /// The `request_vb` system call (§4.2): finds the smallest free VB that
    /// fits `bytes`, enables it with `props`, attaches the caller with
    /// `perms`, and returns the CVT index as the program's handle.
    ///
    /// # Errors
    ///
    /// [`VbiError::RequestTooLarge`] for requests beyond 128 TiB,
    /// [`VbiError::InvalidClient`], [`VbiError::CvtFull`], or VB exhaustion.
    pub fn request_vb(
        &mut self,
        client: ClientId,
        bytes: u64,
        props: VbProperties,
        perms: Rwx,
    ) -> Result<VbHandle> {
        ops::request_vb(self, client, bytes, props, perms)
    }

    /// The `attach` instruction: adds a CVT entry for `vbuid` with `perms`
    /// and increments the VB's reference count. Returns the CVT index.
    ///
    /// # Errors
    ///
    /// [`VbiError::InvalidClient`], [`VbiError::VbNotEnabled`], or
    /// [`VbiError::CvtFull`].
    pub fn attach(&mut self, client: ClientId, vbuid: Vbuid, perms: Rwx) -> Result<usize> {
        ops::attach(self, client, vbuid, perms)
    }

    /// `attach` at a specific CVT index (fork and shared-library layout).
    ///
    /// # Errors
    ///
    /// Same as [`System::attach`].
    pub fn attach_at(
        &mut self,
        client: ClientId,
        index: usize,
        vbuid: Vbuid,
        perms: Rwx,
    ) -> Result<()> {
        ops::attach_at(self, client, index, vbuid, perms)
    }

    /// The `detach` instruction: invalidates the client's CVT entry for
    /// `vbuid` and decrements the reference count. Returns the new count so
    /// callers can `disable_vb` at zero.
    ///
    /// # Errors
    ///
    /// [`VbiError::InvalidClient`] or [`VbiError::VbNotEnabled`].
    pub fn detach(&mut self, client: ClientId, vbuid: Vbuid) -> Result<u32> {
        ops::detach(self, client, vbuid)
    }

    /// Detaches the VB behind a handle and disables it if this was the last
    /// reference — the common "free this data structure" path.
    ///
    /// # Errors
    ///
    /// [`VbiError::InvalidClient`], [`VbiError::InvalidCvtIndex`], or
    /// [`VbiError::VbNotEnabled`].
    pub fn release_vb(&mut self, client: ClientId, index: usize) -> Result<()> {
        ops::release_vb(self, client, index)
    }

    /// Promotes the VB behind `index` to the next larger size class (§4.4):
    /// enables a larger VB, executes `promote_vb`, redirects every CVT entry
    /// in the system that referenced the old VB, and disables the old VB.
    /// Returns the new handle.
    ///
    /// Promotion is the one operation that touches *every* client's CVT at
    /// once, so it stays on the single-owner adapter rather than in the
    /// engine (the sharded service will grow it as cross-shard migration).
    ///
    /// # Errors
    ///
    /// [`VbiError::RequestTooLarge`] at the largest class, plus any
    /// attach/enable error.
    pub fn promote(&mut self, client: ClientId, index: usize) -> Result<VbHandle> {
        let old = self.cvt(client)?.entry(index)?.vbuid();
        let next = old
            .size_class()
            .next_larger()
            .ok_or(VbiError::RequestTooLarge { requested: old.bytes() + 1 })?;
        let props = self.mtl.props(old)?;
        let new = self.mtl.find_free_vb(next)?;
        self.mtl.enable_vb(new, props)?;
        if let Err(e) = self.mtl.promote_vb(old, new) {
            let _ = self.mtl.disable_vb(new);
            return Err(e);
        }
        // Redirect every CVT entry in the system pointing at the old VB and
        // move its reference counts to the new VB.
        let mut moved = 0;
        for (cid, cvt) in self.cvts.iter_mut() {
            let indices: Vec<usize> =
                cvt.iter().filter(|(_, e)| e.vbuid() == old).map(|(i, _)| i).collect();
            for i in indices {
                cvt.redirect(i, new)?;
                self.cvt_caches.get_mut(cid).expect("cache exists with cvt").invalidate(*cid, i);
                moved += 1;
            }
        }
        for _ in 0..moved {
            self.mtl.remove_ref(old)?;
            self.mtl.add_ref(new)?;
        }
        self.mtl.disable_vb(old)?;
        Ok(VbHandle { cvt_index: index, vbuid: new })
    }

    // --- protection-checked access ---------------------------------------------

    /// Performs the CPU-side access check of §4.2.3 through the client's CVT
    /// cache: index bounds, RWX permission, and offset bounds. On success
    /// returns the VBI address plus cache-hit information.
    ///
    /// # Errors
    ///
    /// [`VbiError::InvalidClient`], [`VbiError::InvalidCvtIndex`],
    /// [`VbiError::PermissionDenied`], or [`VbiError::OffsetOutOfRange`].
    pub fn access(
        &mut self,
        client: ClientId,
        va: VirtualAddress,
        kind: AccessKind,
    ) -> Result<CheckedAccess> {
        ops::access(self, client, va, kind)
    }

    // --- functional loads and stores ----------------------------------------------

    /// Protection-checked functional load of a `u64`.
    ///
    /// # Errors
    ///
    /// Any protection or translation error.
    pub fn load_u64(&mut self, client: ClientId, va: VirtualAddress) -> Result<u64> {
        ops::load_u64(self, client, va)
    }

    /// Protection-checked functional store of a `u64`.
    ///
    /// # Errors
    ///
    /// Any protection or translation error.
    pub fn store_u64(&mut self, client: ClientId, va: VirtualAddress, value: u64) -> Result<()> {
        ops::store_u64(self, client, va, value)
    }

    /// Protection-checked functional load of one byte.
    ///
    /// # Errors
    ///
    /// Any protection or translation error.
    pub fn load_u8(&mut self, client: ClientId, va: VirtualAddress) -> Result<u8> {
        ops::load_u8(self, client, va)
    }

    /// Protection-checked functional store of one byte.
    ///
    /// # Errors
    ///
    /// Any protection or translation error.
    pub fn store_u8(&mut self, client: ClientId, va: VirtualAddress, value: u8) -> Result<()> {
        ops::store_u8(self, client, va, value)
    }

    /// Protection-checked instruction fetch (returns the byte; fetch width
    /// is immaterial to the model).
    ///
    /// # Errors
    ///
    /// Any protection or translation error.
    pub fn fetch(&mut self, client: ClientId, va: VirtualAddress) -> Result<u8> {
        ops::fetch(self, client, va)
    }

    /// Copies `data` into a VB through a checked store path (bulk helper for
    /// loaders and tests): one protection check and one MTL visit for the
    /// whole span.
    ///
    /// # Errors
    ///
    /// Any protection or translation error.
    pub fn store_bytes(&mut self, client: ClientId, va: VirtualAddress, data: &[u8]) -> Result<()> {
        ops::store_bytes(self, client, va, data)
    }

    /// Reads `len` bytes from a VB through a checked load path.
    ///
    /// # Errors
    ///
    /// Any protection or translation error.
    pub fn load_bytes(
        &mut self,
        client: ClientId,
        va: VirtualAddress,
        len: usize,
    ) -> Result<Vec<u8>> {
        ops::load_bytes(self, client, va, len)
    }

    /// Direct (unchecked) MTL translation — the path taken after the cache
    /// hierarchy misses, used by the timing simulator.
    ///
    /// # Errors
    ///
    /// Any translation error.
    pub fn mtl_translate(
        &mut self,
        address: VbiAddress,
        access: MtlAccess,
    ) -> Result<crate::mtl::Translation> {
        self.mtl.translate(address, access)
    }

    /// Convenience: whether an address's data is currently backed by
    /// physical memory (false = zero-line territory).
    pub fn is_backed(&mut self, address: VbiAddress) -> bool {
        matches!(
            self.mtl.translate(address, MtlAccess::Read).map(|t| t.result),
            Ok(TranslateResult::Mapped(_))
        )
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> System {
        System::new(VbiConfig { phys_frames: 4096, ..VbiConfig::vbi_full() })
    }

    #[test]
    fn request_vb_picks_the_smallest_fitting_class() {
        let mut s = system();
        let c = s.create_client().unwrap();
        let small = s.request_vb(c, 100, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        assert_eq!(small.vbuid.size_class(), SizeClass::Kib4);
        let big = s.request_vb(c, 200 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        assert_eq!(big.vbuid.size_class(), SizeClass::Mib4);
    }

    #[test]
    fn store_and_load_roundtrip() {
        let mut s = system();
        let c = s.create_client().unwrap();
        let vb = s.request_vb(c, 64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        s.store_u64(c, vb.at(8), 0xabcd).unwrap();
        assert_eq!(s.load_u64(c, vb.at(8)).unwrap(), 0xabcd);
        assert_eq!(s.load_u64(c, vb.at(16)).unwrap(), 0, "untouched memory reads zero");
    }

    #[test]
    fn permissions_are_enforced_per_client() {
        let mut s = system();
        let owner = s.create_client().unwrap();
        let reader = s.create_client().unwrap();
        let vb = s.request_vb(owner, 4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        s.store_u64(owner, vb.at(0), 7).unwrap();

        // True sharing (§3.4): attach the second client read-only.
        let idx = s.attach(reader, vb.vbuid, Rwx::READ).unwrap();
        let ro = VirtualAddress::new(idx, 0);
        assert_eq!(s.load_u64(reader, ro).unwrap(), 7);
        assert!(matches!(s.store_u64(reader, ro, 8), Err(VbiError::PermissionDenied { .. })));
    }

    #[test]
    fn true_sharing_is_coherent() {
        let mut s = system();
        let a = s.create_client().unwrap();
        let b = s.create_client().unwrap();
        let vb = s.request_vb(a, 4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        let idx_b = s.attach(b, vb.vbuid, Rwx::READ_WRITE).unwrap();
        s.store_u64(a, vb.at(0), 1).unwrap();
        assert_eq!(s.load_u64(b, VirtualAddress::new(idx_b, 0)).unwrap(), 1);
        s.store_u64(b, VirtualAddress::new(idx_b, 0), 2).unwrap();
        assert_eq!(s.load_u64(a, vb.at(0)).unwrap(), 2);
    }

    #[test]
    fn unattached_clients_cannot_touch_a_vb() {
        let mut s = system();
        let owner = s.create_client().unwrap();
        let stranger = s.create_client().unwrap();
        let vb = s.request_vb(owner, 4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        // The stranger's CVT has no entry: the index is invalid for them.
        assert!(matches!(s.load_u64(stranger, vb.at(0)), Err(VbiError::InvalidCvtIndex { .. })));
    }

    #[test]
    fn release_vb_disables_at_zero_refs() {
        let mut s = system();
        let c = s.create_client().unwrap();
        let free0 = s.mtl().free_frames();
        let vb = s.request_vb(c, 64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        s.store_u64(c, vb.at(0), 9).unwrap();
        s.release_vb(c, vb.cvt_index).unwrap();
        assert_eq!(s.mtl().free_frames(), free0);
        assert!(matches!(s.load_u64(c, vb.at(0)), Err(VbiError::InvalidCvtIndex { .. })));
    }

    #[test]
    fn shared_vb_survives_one_detach() {
        let mut s = system();
        let a = s.create_client().unwrap();
        let b = s.create_client().unwrap();
        let vb = s.request_vb(a, 4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        let idx_b = s.attach(b, vb.vbuid, Rwx::READ).unwrap();
        s.store_u64(a, vb.at(0), 3).unwrap();
        s.release_vb(a, vb.cvt_index).unwrap();
        // B still reads the data: the VB had refcount 2.
        assert_eq!(s.load_u64(b, VirtualAddress::new(idx_b, 0)).unwrap(), 3);
    }

    #[test]
    fn destroy_client_releases_everything() {
        let mut s = system();
        let free0 = s.mtl().free_frames();
        let c = s.create_client().unwrap();
        for i in 0..4 {
            let vb = s.request_vb(c, 64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
            s.store_u64(c, vb.at(0), i).unwrap();
        }
        s.destroy_client(c).unwrap();
        assert_eq!(s.mtl().free_frames(), free0);
        assert!(!s.client_exists(c));
    }

    #[test]
    fn promotion_keeps_the_pointer_valid() {
        let mut s = system();
        let c = s.create_client().unwrap();
        let vb = s.request_vb(c, 4 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        s.store_u64(c, vb.at(64), 31337).unwrap();
        let promoted = s.promote(c, vb.cvt_index).unwrap();
        // Same CVT index — the program's pointers still work (§4.2.2) —
        // but more space.
        assert_eq!(promoted.cvt_index, vb.cvt_index);
        assert_eq!(promoted.vbuid.size_class(), SizeClass::Kib128);
        assert_eq!(s.load_u64(c, vb.at(64)).unwrap(), 31337);
        s.store_u64(c, vb.at(100 << 10), 1).unwrap();
        assert_eq!(s.load_u64(c, vb.at(100 << 10)).unwrap(), 1);
    }

    #[test]
    fn promotion_redirects_all_sharers() {
        let mut s = system();
        let a = s.create_client().unwrap();
        let b = s.create_client().unwrap();
        let vb = s.request_vb(a, 4 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        let idx_b = s.attach(b, vb.vbuid, Rwx::READ_WRITE).unwrap();
        s.store_u64(a, vb.at(0), 5).unwrap();
        s.promote(a, vb.cvt_index).unwrap();
        assert_eq!(s.load_u64(b, VirtualAddress::new(idx_b, 0)).unwrap(), 5);
    }

    #[test]
    fn cvt_cache_gets_hot() {
        let mut s = system();
        let c = s.create_client().unwrap();
        let vb = s.request_vb(c, 4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        for _ in 0..100 {
            s.load_u64(c, vb.at(0)).unwrap();
        }
        let stats = s.cvt_cache_stats(c).unwrap();
        assert!(stats.hit_rate() > 0.95, "hit rate {}", stats.hit_rate());
    }

    #[test]
    fn oversized_requests_are_rejected() {
        let mut s = system();
        let c = s.create_client().unwrap();
        assert!(matches!(
            s.request_vb(c, u64::MAX, VbProperties::NONE, Rwx::READ),
            Err(VbiError::RequestTooLarge { .. })
        ));
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let mut s = system();
        let c = s.create_client().unwrap();
        let vb = s.request_vb(c, 64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        let data: Vec<u8> = (0..=255).collect();
        s.store_bytes(c, vb.at(4000), &data).unwrap(); // straddles a page
        assert_eq!(s.load_bytes(c, vb.at(4000), 256).unwrap(), data);
    }
}
