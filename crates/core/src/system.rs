//! Processor-side glue: the synchronous adapter over the op engine.
//!
//! [`System`] models everything between a program's `{CVT index, offset}`
//! virtual address and physical memory: the per-client Client-VB Tables, the
//! per-core CVT caches, and the Memory Translation Layer. Programs obtain a
//! [`ClientSession`] from [`System::create_client`] and issue the operations
//! of §4.2 — `request_vb`, `attach`/`detach`, loads and stores with
//! protection checks, VB promotion — through it; the OS model (`crate::os`)
//! and the simulators build on the same sessions.
//!
//! All request logic — permission checks, CVT-cache fills, rollback,
//! stat accounting — lives in [`crate::ops`]; `System` merely implements
//! [`OpEnv`] with plain single-owner fields behind one handle lock and
//! delegates. The concurrent front ends (`vbi_service::VbiService`,
//! `vbi_service::VbiQueue`) route through the *same* engine, which is what
//! makes them observably identical to a `System` under sequential driving.
//!
//! The handle is cheap to clone (`Arc` inside) and `Send + Sync`; each
//! method takes the one inner lock for its duration, so a `System` stays a
//! strictly serialized single-owner machine — the concurrency story
//! (sharding, the lock-free read path) belongs to `vbi_service`.

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::addr::{SizeClass, VbiAddress, Vbuid};
use crate::client::{ClientId, ClientIdAllocator, Cvt, CvtEntry};
use crate::config::VbiConfig;
use crate::cvt_cache::{ClientCvtCache, CvtCache, CvtCacheStats};
use crate::error::{Result, VbiError};
use crate::mtl::{Mtl, MtlAccess, TranslateResult};
use crate::ops::{self, Op, OpEnv, OpResult};
use crate::session::{ClientSession, SessionHost};
use crate::sync::unpoison;
use crate::telemetry::{ClientMapStats, ShardActivity, Snapshot, Telemetry};
use crate::vb::VbProperties;

pub use crate::ops::{CheckedAccess, VbHandle};

/// A synchronous session over a [`System`].
pub type SystemSession = ClientSession<System>;

#[derive(Debug)]
struct SystemInner {
    mtl: Mtl,
    cvts: HashMap<ClientId, Cvt>,
    cvt_caches: HashMap<ClientId, CvtCache>,
    client_ids: ClientIdAllocator,
    config: VbiConfig,
    telemetry: Arc<Telemetry>,
}

impl OpEnv for SystemInner {
    fn config(&self) -> &VbiConfig {
        &self.config
    }

    fn alloc_client_id(&mut self) -> Result<ClientId> {
        self.client_ids.allocate()
    }

    fn release_client_id(&mut self, id: ClientId) {
        self.client_ids.release(id);
    }

    fn try_insert_client(&mut self, id: ClientId, cvt: Cvt) -> bool {
        if self.cvts.contains_key(&id) {
            return false;
        }
        self.cvts.insert(id, cvt);
        self.cvt_caches.insert(id, CvtCache::new(self.config.cvt_cache_slots));
        true
    }

    fn take_client_vbuids(&mut self, id: ClientId) -> Result<Vec<Vbuid>> {
        let cvt = self.cvts.remove(&id).ok_or(VbiError::InvalidClient(id))?;
        self.cvt_caches.remove(&id);
        Ok(cvt.iter().map(|(_, entry)| entry.vbuid()).collect())
    }

    fn with_client<R>(
        &mut self,
        id: ClientId,
        f: impl FnOnce(&mut Cvt, &mut dyn ClientCvtCache) -> R,
    ) -> Result<R> {
        let cvt = self.cvts.get_mut(&id).ok_or(VbiError::InvalidClient(id))?;
        let cache = self.cvt_caches.get_mut(&id).expect("cache exists with cvt");
        Ok(f(cvt, cache))
    }

    fn with_client_read(&mut self, id: ClientId, index: usize) -> Result<(CvtEntry, bool)> {
        // A System is single-owner: the read side is the locked path.
        let cvt = self.cvts.get(&id).ok_or(VbiError::InvalidClient(id))?;
        let cache = self.cvt_caches.get_mut(&id).expect("cache exists with cvt");
        ops::cvt_lookup(cvt, cache, id, index)
    }

    fn with_home_mtl<R>(&mut self, _vbuid: Vbuid, f: impl FnOnce(&mut Mtl) -> R) -> R {
        // A System is a one-MTL machine: every VB is homed on it.
        f(&mut self.mtl)
    }

    fn place_vb(&mut self, size_class: SizeClass, props: VbProperties) -> Result<Vbuid> {
        let vbuid = self.mtl.find_free_vb(size_class)?;
        self.mtl.enable_vb(vbuid, props)?;
        Ok(vbuid)
    }

    fn place_vb_on(
        &mut self,
        shard: usize,
        size_class: SizeClass,
        props: VbProperties,
    ) -> Result<Vbuid> {
        // A System is a one-MTL machine: shard 0 is the whole space.
        if shard != 0 {
            return Err(VbiError::InvalidShard { shard, shards: 1 });
        }
        self.place_vb(size_class, props)
    }

    fn with_mtl_pair<R>(
        &mut self,
        _src: Vbuid,
        _dst: Vbuid,
        f: impl FnOnce(&mut Mtl, Option<&mut Mtl>) -> R,
    ) -> R {
        // One MTL homes everything: source and destination always coincide.
        f(&mut self.mtl, None)
    }

    fn redirect_clients(&mut self, old: Vbuid, new: Vbuid) -> usize {
        let mut moved = 0;
        for (client, cvt) in self.cvts.iter_mut() {
            let cache = self.cvt_caches.get_mut(client).expect("cache exists with cvt");
            for index in cvt.redirect_all(old, new) {
                cache.invalidate(*client, index);
                moved += 1;
            }
        }
        moved
    }

    fn telemetry(&self) -> Option<&Telemetry> {
        Some(&self.telemetry)
    }
}

/// A full VBI machine: MTL + clients + CVTs + CVT caches, behind a
/// cheap-to-clone handle.
///
/// See the [crate-level documentation](crate) for a quick-start example.
#[derive(Debug, Clone)]
pub struct System {
    inner: Arc<Mutex<SystemInner>>,
    /// The (immutable) configuration, readable without the inner lock.
    config: Arc<VbiConfig>,
    /// The telemetry plane, shared with the engine; readable without the
    /// inner lock (all-atomic).
    telemetry: Arc<Telemetry>,
}

/// A guard giving read access to a [`System`]'s MTL; dereferences to
/// [`Mtl`]. Holds the system's inner lock — drop it before calling any
/// other `System` or session method, or that call deadlocks.
pub struct MtlRef<'a>(MutexGuard<'a, SystemInner>);

impl Deref for MtlRef<'_> {
    type Target = Mtl;
    fn deref(&self) -> &Mtl {
        &self.0.mtl
    }
}

/// A guard giving exclusive access to a [`System`]'s MTL; dereferences
/// mutably to [`Mtl`]. Same lock discipline as [`MtlRef`].
pub struct MtlRefMut<'a>(MutexGuard<'a, SystemInner>);

impl Deref for MtlRefMut<'_> {
    type Target = Mtl;
    fn deref(&self) -> &Mtl {
        &self.0.mtl
    }
}

impl DerefMut for MtlRefMut<'_> {
    fn deref_mut(&mut self) -> &mut Mtl {
        &mut self.0.mtl
    }
}

/// A guard giving read access to one client's CVT; dereferences to
/// [`Cvt`]. Holds the system's inner lock — drop it before calling any
/// other `System` or session method.
pub struct CvtRef<'a> {
    guard: MutexGuard<'a, SystemInner>,
    client: ClientId,
}

impl Deref for CvtRef<'_> {
    type Target = Cvt;
    fn deref(&self) -> &Cvt {
        // Existence was checked at construction and the lock is held.
        self.guard.cvts.get(&self.client).expect("checked at construction")
    }
}

impl System {
    /// Creates a system with the given configuration.
    pub fn new(config: VbiConfig) -> Self {
        let telemetry = Arc::new(Telemetry::new(
            1,
            config.trace_capacity,
            config.telemetry_metrics,
            config.telemetry_tracing,
        ));
        Self {
            inner: Arc::new(Mutex::new(SystemInner {
                mtl: Mtl::new(config.clone()),
                cvts: HashMap::new(),
                cvt_caches: HashMap::new(),
                client_ids: ClientIdAllocator::new(),
                config: config.clone(),
                telemetry: Arc::clone(&telemetry),
            })),
            config: Arc::new(config),
            telemetry,
        }
    }

    fn lock(&self) -> MutexGuard<'_, SystemInner> {
        unpoison(self.inner.lock())
    }

    /// The active configuration.
    pub fn config(&self) -> &VbiConfig {
        &self.config
    }

    /// Read access to the MTL (stats, structure inspection). The guard
    /// holds the system lock; drop it before the next `System` call.
    pub fn mtl(&self) -> MtlRef<'_> {
        MtlRef(self.lock())
    }

    /// Mutable access to the MTL (used by simulators driving translation
    /// directly and by the OS model for swapping/mmap).
    pub fn mtl_mut(&self) -> MtlRefMut<'_> {
        MtlRefMut(self.lock())
    }

    /// Executes one [`Op`] through the shared engine — the same dispatch
    /// the batched and queued front ends use, and the plumbing every
    /// [`ClientSession`] method funnels through.
    pub fn execute(&self, op: Op) -> OpResult {
        ops::execute(&mut *self.lock(), op)
    }

    // --- clients ------------------------------------------------------------

    /// Registers a new memory client (process, OS, or VM guest) and returns
    /// the session handle that owns its API surface.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::OutOfClients`] when all 2^16 IDs are live.
    pub fn create_client(&self) -> Result<ClientSession<System>> {
        let id = ops::create_client(&mut *self.lock())?;
        Ok(ClientSession::bind(self.clone(), id))
    }

    /// Registers a client with a caller-chosen ID (used by the VM layer,
    /// which partitions the client-ID space among virtual machines, §6.1).
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::InvalidClient`] if the ID is already live.
    pub fn create_client_with_id(&self, id: ClientId) -> Result<ClientSession<System>> {
        let id = ops::create_client_with_id(&mut *self.lock(), id)?;
        Ok(ClientSession::bind(self.clone(), id))
    }

    /// Whether `client` is live.
    pub fn client_exists(&self, client: ClientId) -> bool {
        self.lock().cvts.contains_key(&client)
    }

    /// The client's CVT (kernel-level inspection; the OS model uses this
    /// for fork). The guard holds the system lock.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::InvalidClient`] for unknown clients.
    pub fn cvt(&self, client: ClientId) -> Result<CvtRef<'_>> {
        let guard = self.lock();
        if !guard.cvts.contains_key(&client) {
            return Err(VbiError::InvalidClient(client));
        }
        Ok(CvtRef { guard, client })
    }

    // --- direct MTL access ---------------------------------------------------

    /// Direct (unchecked) MTL translation — the path taken after the cache
    /// hierarchy misses, used by the timing simulator.
    ///
    /// # Errors
    ///
    /// Any translation error.
    pub fn mtl_translate(
        &self,
        address: VbiAddress,
        access: MtlAccess,
    ) -> Result<crate::mtl::Translation> {
        self.lock().mtl.translate(address, access)
    }

    /// Convenience: whether an address's data is currently backed by
    /// physical memory (false = zero-line territory).
    pub fn is_backed(&self, address: VbiAddress) -> bool {
        matches!(
            self.lock().mtl.translate(address, MtlAccess::Read).map(|t| t.result),
            Ok(TranslateResult::Mapped(_))
        )
    }

    // --- capacity management ----------------------------------------------------

    /// Reclaims up to `count` resident frames from the VB behind
    /// (`client`, `index`) — the ballooning primitive of §3.4's capacity
    /// management, shared with the service front end.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::InvalidClient`] / an invalid-CVT error when the
    /// handle does not resolve.
    pub fn reclaim_vb_frames(&self, client: ClientId, index: usize, count: usize) -> Result<usize> {
        ops::reclaim_vb_frames(&mut *self.lock(), client, index, count)
    }

    /// Occupancy of the backing store serving the VB behind
    /// (`client`, `index`).
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::InvalidClient`] / an invalid-CVT error when the
    /// handle does not resolve.
    pub fn backing_report(&self, client: ClientId, index: usize) -> Result<ops::BackingReport> {
        ops::backing_report(&mut *self.lock(), client, index)
    }

    // --- observability -------------------------------------------------------

    /// The machine's telemetry plane: per-op counters, latency histograms,
    /// and the trace ring. Toggle recording at runtime with
    /// [`Telemetry::set_metrics`] / [`Telemetry::set_tracing`]; drain
    /// traces with [`Telemetry::drain_trace`]. Lock-free to read.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// One unified, serializable view of the machine: MTL/TLB/CVT-cache
    /// counters, pressure counters, and the per-op metrics registry — the
    /// same [`Snapshot`] shape the service and queue front ends produce.
    pub fn snapshot(&self) -> Snapshot {
        let guard = self.lock();
        let mtl_stats = guard.mtl.stats();
        let mut cvt_cache = CvtCacheStats::default();
        for cache in guard.cvt_caches.values() {
            cvt_cache.merge(&cache.stats());
        }
        Snapshot {
            front_end: "system",
            shards: 1,
            mtl: mtl_stats,
            per_shard_mtl: vec![mtl_stats],
            tlb: guard.mtl.tlb_stats(),
            cvt_cache,
            // No client map either: state is reached through one lock.
            client_map: ClientMapStats::default(),
            // A System takes no shard locks; its one "shard" just reports
            // the ops the engine ran.
            shard_activity: vec![ShardActivity {
                acquisitions: 0,
                contended: 0,
                ops_executed: self.telemetry.total_ops(),
            }],
            per_shard_fragmentation: vec![guard.mtl.fragmentation(Snapshot::FRAGMENTATION_ORDER)],
            ops: self.telemetry.op_latencies(),
            ops_per_stripe: self.telemetry.ops_per_stripe(),
            free_frames: guard.mtl.free_frames(),
            swap_occupancy: guard.mtl.swap_occupancy() as u64,
            queue: None,
        }
    }
}

impl SessionHost for System {
    fn run_op(&self, op: Op) -> OpResult {
        self.execute(op)
    }

    fn client_cvt_cache_stats(&self, client: ClientId) -> Result<CvtCacheStats> {
        self.lock()
            .cvt_caches
            .get(&client)
            .map(CvtCache::stats)
            .ok_or(VbiError::InvalidClient(client))
    }

    fn store_bytes_for(
        &self,
        client: ClientId,
        va: crate::client::VirtualAddress,
        data: &[u8],
    ) -> Result<()> {
        ops::store_bytes(&mut *self.lock(), client, va, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::VirtualAddress;
    use crate::perm::Rwx;

    fn system() -> System {
        System::new(VbiConfig { phys_frames: 4096, ..VbiConfig::vbi_full() })
    }

    #[test]
    fn request_vb_picks_the_smallest_fitting_class() {
        let s = system();
        let c = s.create_client().unwrap();
        let small = c.request_vb(100, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        assert_eq!(small.vbuid.size_class(), SizeClass::Kib4);
        let big = c.request_vb(200 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        assert_eq!(big.vbuid.size_class(), SizeClass::Mib4);
    }

    #[test]
    fn store_and_load_roundtrip() {
        let s = system();
        let c = s.create_client().unwrap();
        let vb = c.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        c.store_u64(vb.at(8), 0xabcd).unwrap();
        assert_eq!(c.load_u64(vb.at(8)).unwrap(), 0xabcd);
        assert_eq!(c.load_u64(vb.at(16)).unwrap(), 0, "untouched memory reads zero");
    }

    #[test]
    fn permissions_are_enforced_per_client() {
        let s = system();
        let owner = s.create_client().unwrap();
        let reader = s.create_client().unwrap();
        let vb = owner.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        owner.store_u64(vb.at(0), 7).unwrap();

        // True sharing (§3.4): attach the second client read-only.
        let idx = reader.attach(vb.vbuid, Rwx::READ).unwrap();
        let ro = VirtualAddress::new(idx, 0);
        assert_eq!(reader.load_u64(ro).unwrap(), 7);
        assert!(matches!(reader.store_u64(ro, 8), Err(VbiError::PermissionDenied { .. })));
    }

    #[test]
    fn true_sharing_is_coherent() {
        let s = system();
        let a = s.create_client().unwrap();
        let b = s.create_client().unwrap();
        let vb = a.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        let idx_b = b.attach(vb.vbuid, Rwx::READ_WRITE).unwrap();
        a.store_u64(vb.at(0), 1).unwrap();
        assert_eq!(b.load_u64(VirtualAddress::new(idx_b, 0)).unwrap(), 1);
        b.store_u64(VirtualAddress::new(idx_b, 0), 2).unwrap();
        assert_eq!(a.load_u64(vb.at(0)).unwrap(), 2);
    }

    #[test]
    fn unattached_clients_cannot_touch_a_vb() {
        let s = system();
        let owner = s.create_client().unwrap();
        let stranger = s.create_client().unwrap();
        let vb = owner.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        // The stranger's CVT has no entry: the index is invalid for them.
        assert!(matches!(stranger.load_u64(vb.at(0)), Err(VbiError::InvalidCvtIndex { .. })));
    }

    #[test]
    fn release_vb_disables_at_zero_refs() {
        let s = system();
        let c = s.create_client().unwrap();
        let free0 = s.mtl().free_frames();
        let vb = c.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        c.store_u64(vb.at(0), 9).unwrap();
        c.release_vb(vb.cvt_index).unwrap();
        assert_eq!(s.mtl().free_frames(), free0);
        assert!(matches!(c.load_u64(vb.at(0)), Err(VbiError::InvalidCvtIndex { .. })));
    }

    #[test]
    fn shared_vb_survives_one_detach() {
        let s = system();
        let a = s.create_client().unwrap();
        let b = s.create_client().unwrap();
        let vb = a.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        let idx_b = b.attach(vb.vbuid, Rwx::READ).unwrap();
        a.store_u64(vb.at(0), 3).unwrap();
        a.release_vb(vb.cvt_index).unwrap();
        // B still reads the data: the VB had refcount 2.
        assert_eq!(b.load_u64(VirtualAddress::new(idx_b, 0)).unwrap(), 3);
    }

    #[test]
    fn destroy_client_releases_everything() {
        let s = system();
        let free0 = s.mtl().free_frames();
        let c = s.create_client().unwrap();
        let id = c.id();
        for i in 0..4 {
            let vb = c.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
            c.store_u64(vb.at(0), i).unwrap();
        }
        c.destroy().unwrap();
        assert_eq!(s.mtl().free_frames(), free0);
        assert!(!s.client_exists(id));
    }

    #[test]
    fn destroyed_sessions_error_on_surviving_clones() {
        let s = system();
        let c = s.create_client().unwrap();
        let clone = c.clone();
        let vb = c.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        c.destroy().unwrap();
        assert!(matches!(clone.load_u64(vb.at(0)), Err(VbiError::InvalidClient(_))));
    }

    #[test]
    fn promotion_keeps_the_pointer_valid() {
        let s = system();
        let c = s.create_client().unwrap();
        let vb = c.request_vb(4 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        c.store_u64(vb.at(64), 31337).unwrap();
        let promoted = c.promote(vb.cvt_index).unwrap();
        // Same CVT index — the program's pointers still work (§4.2.2) —
        // but more space.
        assert_eq!(promoted.cvt_index, vb.cvt_index);
        assert_eq!(promoted.vbuid.size_class(), SizeClass::Kib128);
        assert_eq!(c.load_u64(vb.at(64)).unwrap(), 31337);
        c.store_u64(vb.at(100 << 10), 1).unwrap();
        assert_eq!(c.load_u64(vb.at(100 << 10)).unwrap(), 1);
    }

    #[test]
    fn promotion_redirects_all_sharers() {
        let s = system();
        let a = s.create_client().unwrap();
        let b = s.create_client().unwrap();
        let vb = a.request_vb(4 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        let idx_b = b.attach(vb.vbuid, Rwx::READ_WRITE).unwrap();
        a.store_u64(vb.at(0), 5).unwrap();
        a.promote(vb.cvt_index).unwrap();
        assert_eq!(b.load_u64(VirtualAddress::new(idx_b, 0)).unwrap(), 5);
    }

    #[test]
    fn cvt_cache_gets_hot() {
        let s = system();
        let c = s.create_client().unwrap();
        let vb = c.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        for _ in 0..100 {
            c.load_u64(vb.at(0)).unwrap();
        }
        let stats = c.cvt_cache_stats().unwrap();
        assert!(stats.hit_rate() > 0.95, "hit rate {}", stats.hit_rate());
        // A single-owner System has no lock-free path: all hits are locked.
        assert_eq!(stats.lockfree_hits, 0);
        assert_eq!(stats.torn_retries, 0);
    }

    #[test]
    fn oversized_requests_are_rejected() {
        let s = system();
        let c = s.create_client().unwrap();
        assert!(matches!(
            c.request_vb(u64::MAX, VbProperties::NONE, Rwx::READ),
            Err(VbiError::RequestTooLarge { .. })
        ));
    }

    #[test]
    fn snapshot_unifies_counters_and_op_metrics() {
        use crate::telemetry::OpKind;
        let s = system();
        let c = s.create_client().unwrap();
        let vb = c.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        for i in 0..10 {
            c.store_u64(vb.at(8 * i), i).unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.front_end, "system");
        assert_eq!(snap.shards, 1);
        assert_eq!(snap.mtl, s.mtl().stats(), "snapshot mirrors MtlStats");
        assert_eq!(snap.op(OpKind::StoreU64).unwrap().count, 10);
        assert_eq!(snap.op(OpKind::RequestVb).unwrap().count, 1);
        assert_eq!(
            snap.ops_per_stripe.iter().sum::<u64>(),
            snap.total_ops(),
            "stripe counts sum to the total"
        );
        assert!(snap.to_json().contains("\"front_end\":\"system\""));
        assert!(snap.to_prometheus().contains("vbi_op_count"));
    }

    #[test]
    fn telemetry_toggles_off_at_runtime() {
        let s = system();
        let c = s.create_client().unwrap();
        let vb = c.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        s.telemetry().set_metrics(false);
        c.store_u64(vb.at(0), 1).unwrap();
        assert_eq!(s.snapshot().total_ops(), 1, "only the request_vb was recorded");
        s.telemetry().set_metrics(true);
        c.store_u64(vb.at(0), 2).unwrap();
        assert_eq!(s.snapshot().total_ops(), 2);
    }

    #[test]
    fn tracing_captures_data_plane_events() {
        let s = System::new(VbiConfig {
            phys_frames: 4096,
            telemetry_tracing: true,
            trace_capacity: 64,
            ..VbiConfig::vbi_full()
        });
        let c = s.create_client().unwrap();
        let vb = c.request_vb(4096, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        c.store_u64(vb.at(0), 7).unwrap();
        c.load_u64(vb.at(0)).unwrap();
        let events = s.telemetry().drain_trace();
        assert!(events.iter().any(|e| e.kind == crate::telemetry::OpKind::StoreU64));
        let load = events.iter().find(|e| e.kind == crate::telemetry::OpKind::LoadU64).unwrap();
        assert_eq!(load.vbid, vb.vbuid.vbid(), "trace names the VB it touched");
        assert_eq!(load.shard, 0);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let s = system();
        let c = s.create_client().unwrap();
        let vb = c.request_vb(64 << 10, VbProperties::NONE, Rwx::READ_WRITE).unwrap();
        let data: Vec<u8> = (0..=255).collect();
        c.store_bytes(vb.at(4000), &data).unwrap(); // straddles a page
        assert_eq!(c.load_bytes(vb.at(4000), 256).unwrap(), data);
    }
}
