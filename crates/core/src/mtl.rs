//! The Memory Translation Layer (MTL): hardware-managed physical memory
//! allocation and VBI-to-physical address translation (§4.5, §5).
//!
//! The MTL lives in the memory controller. It owns the VB Info Tables, the
//! physical-frame allocator, the per-VB translation structures, the MTL TLBs,
//! and the backing store. The processor side (CVT checks) never consults it;
//! the MTL is invoked only on last-level-cache misses and dirty writebacks,
//! which is precisely what makes VBI's deferred translation possible.
//!
//! Three optimizations from §5 are implemented here and can be toggled via
//! [`VbiConfig`]:
//!
//! 1. **Delayed physical allocation** (§5.1): reads of never-written regions
//!    return a zero line without allocating or accessing DRAM; allocation
//!    happens on the first dirty writeback.
//! 2. **Flexible translation structures** (§5.2): direct, single-level, or
//!    multi-level per VB (see [`crate::translate`]).
//! 3. **Early reservation** (§5.3): on a VB's first allocation the MTL tries
//!    to reserve the whole VB contiguously (direct mapping, one TLB entry);
//!    under pressure, reserved-but-unused frames can be stolen by other VBs,
//!    demoting the owner to a table-based structure if its contiguity breaks.

use std::collections::{HashMap, HashSet};

use crate::addr::{SizeClass, VbiAddress, Vbuid};
use crate::buddy::{BuddyAllocator, Order};
use crate::config::{EvictionPolicy, VbiConfig};
use crate::error::{Result, VbiError};
use crate::frame_cache::FrameCache;
use crate::phys::{Frame, PhysAddr, PhysicalMemory, FRAME_BYTES};
use crate::stats::MtlStats;
use crate::swap::{BackingStore, PressureBackend};
use crate::tlb::Tlb;
use crate::translate::{PageEntry, SwapSlot, TranslationKind, TranslationStructure, WalkOutcome};
use crate::vb::VbProperties;
use crate::vit::VbInfoTables;

/// The kind of request reaching the MTL. Under VBI the memory controller
/// sees only LLC miss fills (`Read`) and dirty-line writebacks (`Writeback`);
/// instruction fetches are `Read`s at this level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MtlAccess {
    /// An LLC miss that must return data.
    Read,
    /// A dirty cache line being written back to memory.
    Writeback,
}

/// Where the requested data is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateResult {
    /// Translation produced a physical address; DRAM must be accessed.
    Mapped(PhysAddr),
    /// The region has no physical backing yet; the MTL returns a zero cache
    /// line and no DRAM access happens (§5.1).
    ZeroLine,
}

/// Timing-relevant events observed while serving one translation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TranslationEvents {
    /// The MTL TLB (page-grain or whole-VB) supplied the mapping.
    pub mtl_tlb_hit: bool,
    /// The VIT cache supplied the translation-structure pointer.
    pub vit_cache_hit: bool,
    /// Memory accesses performed to tables (VIT entry + walk levels).
    pub table_accesses: Vec<PhysAddr>,
    /// A 4 KiB region was allocated while serving this request.
    pub allocated: bool,
    /// A page was brought in from the backing store.
    pub swapped_in: bool,
    /// A copy-on-write copy was resolved.
    pub cow_copy: bool,
}

/// Result of [`Mtl::translate`]: the data location plus timing events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Translation {
    /// Where the data is.
    pub result: TranslateResult,
    /// What it cost.
    pub events: TranslationEvents,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Free, reserved for the owning VB.
    Reserved,
    /// Allocated to the owning VB.
    Used,
    /// Handed to another VB under memory pressure.
    Stolen,
}

#[derive(Debug, Clone)]
struct Extent {
    page_start: u64,
    base: Frame,
    len: u64,
    slots: Vec<SlotState>,
}

impl Extent {
    fn covers(&self, page: u64) -> bool {
        page >= self.page_start && page < self.page_start + self.len
    }

    fn frame_for(&self, page: u64) -> Frame {
        self.base.offset(page - self.page_start)
    }

    fn slot_of_frame(&self, frame: Frame) -> Option<usize> {
        if frame.0 >= self.base.0 && frame.0 < self.base.0 + self.len {
            Some((frame.0 - self.base.0) as usize)
        } else {
            None
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Reservation {
    extents: Vec<Extent>,
    /// Whether the first-allocation reservation attempt already ran.
    attempted: bool,
}

/// Cushion of unreserved free frames the MTL keeps inside the buddy
/// allocator proper. [`Mtl::translate`] replenishes the pool to this level
/// so internal allocations (table nodes, COW copies) never dead-end while
/// reservations hold free memory hostage, and the [`FrameCache`] honours
/// the same level: it never refills below the cushion and routes frees
/// straight to the buddy while the buddy is short, so table-frame
/// allocations that bypass the cache cannot starve behind cached frames.
const FREE_POOL_HEADROOM: u64 = 16;

/// The Memory Translation Layer.
///
/// # Examples
///
/// ```
/// use vbi_core::addr::SizeClass;
/// use vbi_core::config::VbiConfig;
/// use vbi_core::mtl::Mtl;
/// use vbi_core::vb::VbProperties;
///
/// let mut mtl = Mtl::new(VbiConfig::vbi_full());
/// let vb = mtl.find_free_vb(SizeClass::Kib128)?;
/// mtl.enable_vb(vb, VbProperties::NONE)?;
/// mtl.write_u64(vb.address(0x40)?, 99)?;
/// assert_eq!(mtl.read_u64(vb.address(0x40)?)?, 99);
/// # Ok::<(), vbi_core::VbiError>(())
/// ```
#[derive(Debug)]
pub struct Mtl {
    config: VbiConfig,
    buddy: BuddyAllocator,
    /// Magazine-style order-0 cache fronting `buddy` on the data-plane
    /// allocate/free paths (see [`crate::frame_cache`]). Flushed before any
    /// operation that must see exact buddy occupancy.
    frame_cache: FrameCache,
    mem: PhysicalMemory,
    vits: VbInfoTables,
    vit_cache: Tlb<Vbuid, TranslationKind>,
    page_tlb: Tlb<(Vbuid, u64), (Frame, bool)>,
    direct_tlb: Tlb<Vbuid, Frame>,
    reservations: HashMap<Vbuid, Reservation>,
    /// Share counts for live data frames (1 = sole owner; >1 = COW-shared).
    frame_shares: HashMap<u64, u32>,
    /// Reverse map from reserved-region frames to the reservation owner.
    extent_owner: HashMap<u64, Vbuid>,
    swap: Box<dyn PressureBackend>,
    /// Per-page reference bits, set on every translation of a resident page
    /// (the access information only the MTL sees, §2) and consumed by the
    /// clock / second-chance eviction sweep. Functional state, not a
    /// counter: `reset_stats` leaves it alone.
    ref_bits: HashSet<(Vbuid, u64)>,
    /// Where the last eviction sweep stopped; the next sweep resumes after
    /// this page so victims rotate through the resident set.
    clock_hand: Option<(Vbuid, u64)>,
    stats: MtlStats,
    /// Which slice of every size class's VBID space this MTL serves: shard
    /// `shard_index` of `2^shard_bits` (§6.2 partitions VBs among MTLs by
    /// the high-order VBID bits). A standalone MTL is shard 0 of 1.
    shard_index: u64,
    shard_bits: u32,
}

impl Mtl {
    /// Creates an MTL managing `config.phys_frames` frames of memory.
    pub fn new(config: VbiConfig) -> Self {
        Self::for_shard(config, 0, 1)
    }

    /// Creates an MTL owning shard `shard_index` of `shard_count` — the
    /// home-MTL partitioning of §6.2, where the high-order bits of a VBID
    /// name the MTL that manages the VB. [`Mtl::find_free_vb`] only returns
    /// VBs homed on this shard, so a set of `for_shard` MTLs carves the VB
    /// space into disjoint slices (each shard still brings its own
    /// `config.phys_frames` of physical memory).
    ///
    /// `for_shard(config, 0, 1)` is exactly [`Mtl::new`].
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is not a power of two in `[1, 256]` or
    /// `shard_index >= shard_count`.
    pub fn for_shard(config: VbiConfig, shard_index: usize, shard_count: usize) -> Self {
        assert!(
            shard_count.is_power_of_two() && (1..=256).contains(&shard_count),
            "shard count must be a power of two in [1, 256]"
        );
        assert!(shard_index < shard_count, "shard index {shard_index} of {shard_count}");
        Self {
            buddy: BuddyAllocator::new(config.phys_frames),
            frame_cache: FrameCache::new(
                config.frame_cache,
                config.frame_cache_magazine,
                config.frame_cache_refill,
            ),
            mem: PhysicalMemory::new(config.phys_frames),
            vits: VbInfoTables::new(),
            vit_cache: Tlb::fully_associative(config.vit_cache_entries),
            page_tlb: Tlb::new(config.mtl_tlb_entries, config.mtl_tlb_ways),
            direct_tlb: Tlb::fully_associative(config.mtl_direct_tlb_entries),
            reservations: HashMap::new(),
            frame_shares: HashMap::new(),
            extent_owner: HashMap::new(),
            swap: Box::new(BackingStore::new()),
            ref_bits: HashSet::new(),
            clock_hand: None,
            stats: MtlStats::default(),
            shard_index: shard_index as u64,
            shard_bits: shard_count.trailing_zeros(),
            config,
        }
    }

    /// The shard a VBUID is homed on in a `shard_count`-way partition: the
    /// high-order `log2(shard_count)` bits of its VBID. Deterministic — the
    /// same VBUID always routes to the same shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is not a power of two in `[1, 256]`.
    pub fn shard_of(vbuid: Vbuid, shard_count: usize) -> usize {
        assert!(
            shard_count.is_power_of_two() && (1..=256).contains(&shard_count),
            "shard count must be a power of two in [1, 256]"
        );
        let bits = shard_count.trailing_zeros();
        let shift = vbuid.size_class().vbid_bits() - bits;
        (vbuid.vbid() >> shift) as usize
    }

    /// This MTL's `(shard_index, shard_count)`; `(0, 1)` for a standalone
    /// MTL.
    pub fn shard(&self) -> (usize, usize) {
        (self.shard_index as usize, 1usize << self.shard_bits)
    }

    /// Whether `vbuid` is homed on this shard.
    pub fn owns(&self, vbuid: Vbuid) -> bool {
        let shift = vbuid.size_class().vbid_bits() - self.shard_bits;
        (vbuid.vbid() >> shift) == self.shard_index
    }

    /// The active configuration.
    pub fn config(&self) -> &VbiConfig {
        &self.config
    }

    /// Accumulated statistics, with the frame cache's counters folded in.
    pub fn stats(&self) -> MtlStats {
        let mut stats = self.stats;
        let cache = self.frame_cache.stats();
        stats.frame_cache_hits = cache.cache_hits;
        stats.frame_cache_misses = cache.cache_misses;
        stats.frame_cache_refills = cache.refills;
        stats.frame_cache_flushes = cache.flushes;
        stats.frame_cache_batch_frees = cache.batch_frees;
        stats
    }

    /// Translation TLB counters (page-granularity + whole-VB direct TLBs,
    /// merged) — the structure-level view behind [`MtlStats::tlb_hits`].
    pub fn tlb_stats(&self) -> crate::tlb::TlbStats {
        let mut t = self.page_tlb.stats();
        t.merge(&self.direct_tlb.stats());
        t
    }

    /// Clears statistics (simulation warm-up boundary).
    pub fn reset_stats(&mut self) {
        self.stats = MtlStats::default();
        self.frame_cache.reset_stats();
        self.vit_cache.reset_stats();
        self.page_tlb.reset_stats();
        self.direct_tlb.reset_stats();
    }

    /// Frames currently free: the buddy's free pool plus the frames parked
    /// in the magazine cache (cached frames are instantly allocatable, so
    /// the gauge stays exact with the cache on or off).
    pub fn free_frames(&self) -> u64 {
        self.buddy.free_frames() + self.frame_cache.len()
    }

    /// Returns every cached frame to the buddy allocator and reports how
    /// many moved — the hook benches and tests use to compare buddy-level
    /// occupancy with a cache-disabled run.
    pub fn flush_frame_cache(&mut self) -> u64 {
        self.frame_cache.flush(&mut self.buddy)
    }

    /// External fragmentation of the buddy allocator at `order`: the
    /// fraction of its free memory not usable for a contiguous block of
    /// `2^order` frames (see [`BuddyAllocator::fragmentation`]). Cached
    /// frames count as allocated — they are scattered order-0 blocks by
    /// construction, so including them would only restate the cache size.
    pub fn fragmentation(&self, order: Order) -> f64 {
        self.buddy.fragmentation(order)
    }

    /// Number of payload-bearing pages currently in the backing store
    /// (zero pages occupy slots but hold no data).
    pub fn swap_occupancy(&self) -> usize {
        self.swap.len() - self.swap.zero_len()
    }

    /// The backing store behind this MTL (occupancy reporting).
    pub fn backing(&self) -> &dyn PressureBackend {
        self.swap.as_ref()
    }

    /// Mutable access to the backing store (administration; the MTL itself
    /// drives it through the swap paths).
    pub fn backing_mut(&mut self) -> &mut dyn PressureBackend {
        self.swap.as_mut()
    }

    /// Replaces the backing store behind this MTL — how a slow-tier model
    /// (see `vbi-hetero`) is installed. Refused once pages have been
    /// swapped out: live slots would dangle in the old store.
    pub fn set_backing(&mut self, backend: Box<dyn PressureBackend>) -> Result<()> {
        if !self.swap.is_empty() {
            return Err(VbiError::SwapFailure { reason: "backing store has live slots" });
        }
        self.swap = backend;
        Ok(())
    }

    // --- VB lifecycle -------------------------------------------------------

    /// Scans the VITs for a free VB of `size_class` (the OS side of
    /// `request_vb`, §4.2). A sharded MTL ([`Mtl::for_shard`]) only returns
    /// VBs homed on its own VBID slice.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::OutOfVirtualBlocks`] when the class (or this
    /// shard's slice of it) is exhausted.
    pub fn find_free_vb(&self, size_class: SizeClass) -> Result<Vbuid> {
        let slice = size_class.vb_count() >> self.shard_bits;
        let lo = self.shard_index * slice;
        self.vits.find_free_in(size_class, lo, lo + slice)
    }

    /// Executes `enable_vb VBUID, props` (§4.2): marks the VB enabled in its
    /// VIT with the given property bitvector.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::VbAlreadyEnabled`] if the VB is enabled.
    pub fn enable_vb(&mut self, vbuid: Vbuid, props: VbProperties) -> Result<()> {
        self.vits.enable(vbuid, props)
    }

    /// Executes `disable_vb VBUID` (§4.2.4): destroys all state of the VB —
    /// translation structure, physical frames (respecting copy-on-write
    /// sharing), reservation, swap slots, and TLB/VIT-cache entries.
    ///
    /// The caller (OS) is responsible for having invalidated the VB's cache
    /// lines; this function returns the VBUID whose lines must be (lazily)
    /// cleaned, mirroring the paper's background cleanup.
    ///
    /// # Errors
    ///
    /// [`VbiError::VbNotEnabled`] or [`VbiError::VbInUse`].
    pub fn disable_vb(&mut self, vbuid: Vbuid) -> Result<Vbuid> {
        let entry = self.vits.disable(vbuid)?;
        if let Some(structure) = entry.translation {
            for (_, frame, _) in structure.mapped_pages() {
                self.release_data_frame(frame);
            }
            for (_, slot) in structure.swapped_pages() {
                self.swap.discard(slot);
            }
            structure.release_tables(&mut self.buddy);
        }
        self.teardown_reservation(vbuid);
        self.ref_bits.retain(|(vb, _)| *vb != vbuid);
        self.page_tlb.invalidate_matching(|(vb, _)| *vb == vbuid);
        self.direct_tlb.invalidate(&vbuid);
        self.vit_cache.invalidate(&vbuid);
        Ok(vbuid)
    }

    /// Increments the VB's reference count (the MTL side of `attach`).
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::VbNotEnabled`] if the VB is not enabled.
    pub fn add_ref(&mut self, vbuid: Vbuid) -> Result<u32> {
        self.vits.add_ref(vbuid)
    }

    /// Decrements the VB's reference count (the MTL side of `detach`).
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::VbNotEnabled`] if the VB is not enabled.
    pub fn remove_ref(&mut self, vbuid: Vbuid) -> Result<u32> {
        self.vits.remove_ref(vbuid)
    }

    /// The VB's property bitvector.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::VbNotEnabled`] if the VB is not enabled.
    pub fn props(&self, vbuid: Vbuid) -> Result<VbProperties> {
        Ok(self.vits.entry(vbuid)?.props)
    }

    /// The VB's current reference count (number of attached clients).
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::VbNotEnabled`] for disabled VBs.
    pub fn ref_count(&self, vbuid: Vbuid) -> Result<u32> {
        Ok(self.vits.entry(vbuid)?.refcount)
    }

    /// The VB's current translation-structure kind (`None` before first
    /// allocation).
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::VbNotEnabled`] if the VB is not enabled.
    pub fn translation_kind(&self, vbuid: Vbuid) -> Result<Option<TranslationKind>> {
        Ok(self.vits.entry(vbuid)?.translation_kind())
    }

    /// Executes `clone_vb SVBUID, DVBUID` (§4.4): makes `dst` a copy-on-write
    /// clone of `src`. All mapped pages become shared and COW-marked in both
    /// VBs; data is copied lazily on the first write to either side. Pages of
    /// `src` that are swapped out are duplicated in the backing store.
    ///
    /// # Errors
    ///
    /// [`VbiError::VbNotEnabled`] for either VB, or
    /// [`VbiError::CloneSizeMismatch`] when size classes differ.
    pub fn clone_vb(&mut self, src: Vbuid, dst: Vbuid) -> Result<()> {
        if src.size_class() != dst.size_class() {
            return Err(VbiError::CloneSizeMismatch { source: src, destination: dst });
        }
        self.vits.entry(dst)?; // dst must be enabled
                               // A clone allocates table frames in bulk straight from the buddy;
                               // give it every free frame so it cannot starve behind the cache.
        self.frame_cache.flush(&mut self.buddy);

        // Take the source structure, mark it COW, rebuild a structure for dst.
        let Some(mut src_structure) = self.vits.entry_mut(src)?.translation.take() else {
            self.stats.vbs_cloned += 1;
            return Ok(()); // nothing allocated yet; nothing to share
        };
        src_structure.mark_all_cow();

        // A clone shares the source's frames, which are not the clone's own
        // contiguous region, so the clone's structure is table-based from
        // the start. All fallible work happens before any share is
        // accounted, so a failed clone can restore the source untouched
        // (the COW marking only costs a copy on the next write).
        let mut dst_structure = match self.table_structure_for(dst.size_class()) {
            Ok(structure) => structure,
            Err(e) => {
                self.vits.entry_mut(src)?.translation = Some(src_structure);
                return Err(e);
            }
        };
        let mut dup_slots = Vec::new();
        if let Err(e) = self.build_clone_entries(&src_structure, &mut dst_structure, &mut dup_slots)
        {
            // Unwind: nothing is shared yet — drop the duplicated swap
            // slots and the clone's table nodes, put the source back.
            for slot in dup_slots {
                self.swap.discard(slot);
            }
            dst_structure.release_tables(&mut self.buddy);
            self.vits.entry_mut(src)?.translation = Some(src_structure);
            return Err(e);
        }
        // Infallible from here: account the shares, publish both structures.
        for (_, frame, _) in src_structure.mapped_pages() {
            *self.frame_shares.entry(frame.0).or_insert(1) += 1;
        }
        self.vits.entry_mut(src)?.translation = Some(src_structure);
        self.vits.entry_mut(dst)?.translation = Some(dst_structure);
        // COW marking invalidates cached translations of the source.
        self.page_tlb.invalidate_matching(|(vb, _)| *vb == src);
        self.direct_tlb.invalidate(&src);
        self.stats.vbs_cloned += 1;
        Ok(())
    }

    /// The fallible half of [`Mtl::clone_vb`]: fills the clone's structure
    /// with COW-shared mappings and duplicated swap slots, recording each
    /// duplicate so a failed clone can discard it again.
    fn build_clone_entries(
        &mut self,
        src_structure: &TranslationStructure,
        dst_structure: &mut TranslationStructure,
        dup_slots: &mut Vec<SwapSlot>,
    ) -> Result<()> {
        for (page, frame, _) in src_structure.mapped_pages() {
            dst_structure.set_entry(
                page,
                PageEntry::Mapped { frame, cow: true },
                &mut self.buddy,
            )?;
        }
        for (page, slot) in src_structure.swapped_pages() {
            let dup = self.swap.duplicate(slot)?;
            dup_slots.push(dup);
            dst_structure.set_entry(page, PageEntry::Swapped(dup), &mut self.buddy)?;
        }
        Ok(())
    }

    /// Copies the resident contents of `from` (homed on `src`) into the
    /// freshly enabled, same-sized `to` — the data-movement half of §4.2.2's
    /// "seamlessly migrate/copy VBs" and §6.2's cross-MTL migration, shared
    /// by the op engine's `Op::Migrate` and
    /// [`crate::multinode::MultiNodeSystem::migrate_vb`]. `dst` is the
    /// destination's home MTL when it differs from the source's (`None` =
    /// both VBs live on `src`, the 1-node case).
    ///
    /// The copy goes page by page and skips never-allocated pages, so
    /// delayed allocation survives the migration; swapped-out source pages
    /// are faulted back in and copied. The caller redirects CVT entries and
    /// disables `from` afterwards.
    ///
    /// # Errors
    ///
    /// Any translation error on either MTL.
    pub fn migrate_contents(
        src: &mut Mtl,
        mut dst: Option<&mut Mtl>,
        from: Vbuid,
        to: Vbuid,
    ) -> Result<()> {
        if from.size_class() != to.size_class() {
            return Err(VbiError::CloneSizeMismatch { source: from, destination: to });
        }
        for page in 0..from.size_class().pages() {
            let src_addr = from.address(page << 12)?;
            // A read probe swaps the page in if needed; unbacked pages stay
            // unbacked on the destination too.
            let backed = matches!(
                src.translate(src_addr, MtlAccess::Read)?.result,
                TranslateResult::Mapped(_)
            );
            if !backed {
                continue;
            }
            for line in 0..(4096 / 8) {
                let offset = (page << 12) + line * 8;
                let value = src.read_u64(from.address(offset)?)?;
                if value != 0 {
                    let to_addr = to.address(offset)?;
                    match dst.as_deref_mut() {
                        Some(dst) => dst.write_u64(to_addr, value)?,
                        None => src.write_u64(to_addr, value)?,
                    }
                }
            }
        }
        src.stats.vbs_migrated += 1;
        Ok(())
    }

    /// Executes `promote_vb SVBUID, LVBUID` (§4.4): moves all translation
    /// state of the smaller VB `src` into the larger, freshly enabled VB
    /// `dst`, so the early portion of `dst` maps to the same physical memory
    /// as `src`. `src` is left enabled but empty; the OS detaches and
    /// disables it afterwards.
    ///
    /// # Errors
    ///
    /// [`VbiError::VbNotEnabled`] for either VB, or
    /// [`VbiError::PromoteNotLarger`] when `dst` is not a larger class.
    pub fn promote_vb(&mut self, src: Vbuid, dst: Vbuid) -> Result<()> {
        if dst.size_class() <= src.size_class() {
            return Err(VbiError::PromoteNotLarger { source: src, destination: dst });
        }
        self.vits.entry(dst)?;
        // Table frames for the larger VB come straight from the buddy.
        self.frame_cache.flush(&mut self.buddy);
        let Some(src_structure) = self.vits.entry_mut(src)?.translation.take() else {
            self.stats.promotions += 1;
            return Ok(()); // nothing to move
        };
        let (mut dst_structure, dst_was_fresh) = match self.vits.entry_mut(dst)?.translation.take()
        {
            Some(s) => (s, false),
            None => match self.table_structure_for(dst.size_class()) {
                Ok(s) => (s, true),
                Err(e) => {
                    self.vits.entry_mut(src)?.translation = Some(src_structure);
                    return Err(e);
                }
            },
        };
        // Fallible phase: copy every entry into the destination. On failure
        // the source still owns all frames and swap slots, so unwinding is
        // unsetting what was copied and restoring both structures.
        let mut copied = Vec::new();
        let filled = (|| -> Result<()> {
            for (page, frame, cow) in src_structure.mapped_pages() {
                dst_structure.set_entry(page, PageEntry::Mapped { frame, cow }, &mut self.buddy)?;
                copied.push(page);
            }
            for (page, slot) in src_structure.swapped_pages() {
                dst_structure.set_entry(page, PageEntry::Swapped(slot), &mut self.buddy)?;
                copied.push(page);
            }
            Ok(())
        })();
        if let Err(e) = filled {
            if dst_was_fresh {
                dst_structure.release_tables(&mut self.buddy);
            } else {
                for page in copied {
                    // Unsetting a just-set entry walks existing nodes only.
                    let _ = dst_structure.set_entry(page, PageEntry::Unmapped, &mut self.buddy);
                }
                self.vits.entry_mut(dst)?.translation = Some(dst_structure);
            }
            self.vits.entry_mut(src)?.translation = Some(src_structure);
            return Err(e);
        }
        src_structure.release_tables(&mut self.buddy);
        // The source's reservation extents are orphaned: the frames now
        // belong to the destination's pages and are freed through it.
        self.orphan_reservation(src);
        self.vits.entry_mut(dst)?.translation = Some(dst_structure);
        self.page_tlb.invalidate_matching(|(vb, _)| *vb == src);
        self.direct_tlb.invalidate(&src);
        self.vit_cache.invalidate(&src);
        self.stats.promotions += 1;
        Ok(())
    }

    // --- translation --------------------------------------------------------

    /// Translates a VBI address for an LLC miss or writeback — the MTL's
    /// main entry point (§4.2.3 steps 7-9).
    ///
    /// # Errors
    ///
    /// [`VbiError::VbNotEnabled`] for addresses in disabled VBs, or
    /// [`VbiError::OutOfPhysicalMemory`] when allocation is required and
    /// neither free nor reclaimable memory exists.
    pub fn translate(&mut self, addr: VbiAddress, access: MtlAccess) -> Result<Translation> {
        self.stats.translation_requests += 1;
        // Keep a small cushion of unreserved frames so internal allocations
        // (table nodes, COW copies) never dead-end while reservations hold
        // free memory hostage (priority 3 of §5.3 applied to the pool).
        self.replenish_pool(FREE_POOL_HEADROOM);
        let vbuid = addr.vbuid();
        let page = addr.page_index();
        let line_offset = addr.offset() & (FRAME_BYTES - 1);
        let mut events = TranslationEvents::default();

        // 1. MTL TLB lookup (whole-VB entries first, then page-grain).
        if let Some(base) = self.direct_tlb.lookup(&vbuid) {
            // A direct hit still consults the VB's functional state: an
            // unallocated region must yield a zero line (not a stale frame),
            // and a writeback to a copy-on-write region must resolve first.
            let entry = self.vits.entry(vbuid)?;
            let outcome = entry.translation.as_ref().map(|s| s.walk(page).outcome);
            if let Some(WalkOutcome::Mapped { cow, .. }) = outcome {
                let needs_cow = cow && access == MtlAccess::Writeback;
                if !needs_cow {
                    self.stats.tlb_hits += 1;
                    events.mtl_tlb_hit = true;
                    self.ref_bits.insert((vbuid, page));
                    return Ok(Translation {
                        result: TranslateResult::Mapped(
                            base.offset(page).base().offset(line_offset),
                        ),
                        events,
                    });
                }
            }
            // Fall through to the slow path to allocate, zero-fill, or copy.
        } else if let Some((frame, cow)) = self.page_tlb.lookup(&(vbuid, page)) {
            let needs_cow = cow && access == MtlAccess::Writeback;
            if !needs_cow {
                self.stats.tlb_hits += 1;
                events.mtl_tlb_hit = true;
                self.ref_bits.insert((vbuid, page));
                return Ok(Translation {
                    result: TranslateResult::Mapped(frame.base().offset(line_offset)),
                    events,
                });
            }
            // Writeback to a COW page: resolve below via the walk path.
        }

        // 2. VIT cache: locate the translation structure. A miss costs one
        //    memory access to the VB Info Table.
        let entry = self.vits.entry(vbuid)?;
        let kind = entry.translation_kind();
        match (self.vit_cache.lookup(&vbuid), kind) {
            (Some(_), _) => {
                events.vit_cache_hit = true;
                self.stats.vit_cache_hits += 1;
            }
            (None, k) => {
                self.stats.vit_cache_misses += 1;
                events.table_accesses.push(self.vits.entry_addr(vbuid));
                if let Some(k) = k {
                    self.vit_cache.insert(vbuid, k);
                }
            }
        }

        // 3. Walk (or create) the translation structure.
        self.stats.walks += 1;
        let (outcome, walk_accesses) = match &self.vits.entry(vbuid)?.translation {
            Some(structure) => {
                let walk = structure.walk(page);
                (Some(walk.outcome), walk.table_accesses)
            }
            None => (None, Vec::new()),
        };
        self.stats.walk_table_accesses += walk_accesses.len() as u64;
        events.table_accesses.extend(walk_accesses);

        let result = match (outcome, access) {
            // Mapped, read: done. Mapped COW, writeback: copy first.
            (Some(WalkOutcome::Mapped { frame, cow }), access) => {
                let frame = if cow && access == MtlAccess::Writeback {
                    events.cow_copy = true;
                    self.resolve_cow(vbuid, page, frame)?
                } else {
                    frame
                };
                self.fill_tlb(vbuid, page, frame);
                TranslateResult::Mapped(frame.base().offset(line_offset))
            }
            // Swapped: bring the page back (the paper interrupts the OS to
            // copy from storage; we model the copy directly).
            (Some(WalkOutcome::Swapped(slot)), _) => {
                let frame = self.swap_in(vbuid, page, slot)?;
                self.stats.faults_in += 1;
                events.swapped_in = true;
                events.allocated = true;
                self.fill_tlb(vbuid, page, frame);
                TranslateResult::Mapped(frame.base().offset(line_offset))
            }
            // Unmapped read under delayed allocation: zero line, no DRAM
            // access, no allocation (§5.1).
            (None | Some(WalkOutcome::Unmapped), MtlAccess::Read)
                if self.config.delayed_allocation =>
            {
                self.stats.zero_line_returns += 1;
                TranslateResult::ZeroLine
            }
            // Otherwise allocate now (VBI-1 reads, or any writeback).
            (None | Some(WalkOutcome::Unmapped), access) => {
                let frame = self.allocate_and_map(vbuid, page)?;
                events.allocated = true;
                if access == MtlAccess::Writeback {
                    self.stats.delayed_allocations += 1;
                }
                self.fill_tlb(vbuid, page, frame);
                TranslateResult::Mapped(frame.base().offset(line_offset))
            }
        };
        Ok(Translation { result, events })
    }

    fn fill_tlb(&mut self, vbuid: Vbuid, page: u64, frame: Frame) {
        // Every resident translation marks its page referenced: the access
        // bits the eviction policy's second-chance sweep consumes.
        self.ref_bits.insert((vbuid, page));
        // Whole-VB entries for fully direct VBs; page-grain otherwise.
        let entry = self.vits.entry(vbuid).expect("caller verified enabled");
        match entry.translation.as_ref() {
            Some(s) => {
                if let Some(base) = s.direct_base() {
                    self.direct_tlb.insert(vbuid, base);
                } else {
                    let cow = matches!(s.entry(page), PageEntry::Mapped { cow: true, .. });
                    self.page_tlb.insert((vbuid, page), (frame, cow));
                }
            }
            None => {
                self.page_tlb.insert((vbuid, page), (frame, false));
            }
        }
    }

    // --- functional data access ----------------------------------------------

    /// Functional read of a byte. Reads of unallocated regions return zero
    /// (the zero-line path).
    ///
    /// # Errors
    ///
    /// Any translation error.
    pub fn read_u8(&mut self, addr: VbiAddress) -> Result<u8> {
        match self.translate(addr, MtlAccess::Read)?.result {
            TranslateResult::Mapped(pa) => Ok(self.mem.read_u8(pa)),
            TranslateResult::ZeroLine => Ok(0),
        }
    }

    /// Functional write of a byte. Writes allocate (they model the eventual
    /// dirty-line writeback reaching the MTL).
    ///
    /// # Errors
    ///
    /// Any translation error.
    pub fn write_u8(&mut self, addr: VbiAddress, value: u8) -> Result<()> {
        match self.translate(addr, MtlAccess::Writeback)?.result {
            TranslateResult::Mapped(pa) => {
                self.mem.write_u8(pa, value);
                Ok(())
            }
            TranslateResult::ZeroLine => unreachable!("writebacks always allocate"),
        }
    }

    /// Functional read of a little-endian `u64` (handles page straddling).
    ///
    /// # Errors
    ///
    /// Any translation error, including out-of-VB straddles.
    pub fn read_u64(&mut self, addr: VbiAddress) -> Result<u64> {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr.offset_by(i as u64)?)?;
        }
        Ok(u64::from_le_bytes(bytes))
    }

    /// Functional write of a little-endian `u64` (handles page straddling).
    ///
    /// # Errors
    ///
    /// Any translation error, including out-of-VB straddles.
    pub fn write_u64(&mut self, addr: VbiAddress, value: u64) -> Result<()> {
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            self.write_u8(addr.offset_by(i as u64)?, b)?;
        }
        Ok(())
    }

    // --- capacity management --------------------------------------------------

    /// Moves one mapped page of `vbuid` to the backing store, freeing its
    /// frame (the MTL half of the paper's capacity-management system calls).
    ///
    /// # Errors
    ///
    /// [`VbiError::VbNotEnabled`], or [`VbiError::SwapFailure`] if the page
    /// is not currently mapped or belongs to a direct-mapped VB (direct VBs
    /// are demoted before swapping).
    pub fn swap_out_page(&mut self, vbuid: Vbuid, page: u64) -> Result<()> {
        // Direct structures swap per-page only after demotion to tables.
        if let Some(TranslationKind::Direct) = self.vits.entry(vbuid)?.translation_kind() {
            let structure = self.vits.entry_mut(vbuid)?.translation.take().expect("kind known");
            // A failed demotion (no frame anywhere for the table) must put
            // the structure back — dropping it would silently unmap the
            // whole VB. The page simply stays resident.
            match self.demote_with_fallback(vbuid, &structure, None) {
                Ok(demoted) => {
                    self.vits.entry_mut(vbuid)?.translation = Some(demoted);
                    self.direct_tlb.invalidate(&vbuid);
                    self.vit_cache.invalidate(&vbuid);
                }
                Err(VbiError::OutOfPhysicalMemory) => {
                    // Every frame in the machine holds data, so the demotion
                    // table cannot be funded the normal way. Eviction must
                    // still make progress ("need a frame to free a frame"):
                    // swap the victim out first and let its own frame pay
                    // for the table.
                    return self.swap_out_direct_self_funded(vbuid, page, structure);
                }
                Err(e) => {
                    self.vits.entry_mut(vbuid)?.translation = Some(structure);
                    return Err(e);
                }
            }
        }
        let mut structure = self
            .vits
            .entry_mut(vbuid)?
            .translation
            .take()
            .ok_or(VbiError::SwapFailure { reason: "page not mapped" })?;
        let result = (|| {
            let PageEntry::Mapped { frame, cow } = structure.entry(page) else {
                return Err(VbiError::SwapFailure { reason: "page not mapped" });
            };
            if cow && self.frame_shares.get(&frame.0).copied().unwrap_or(1) > 1 {
                return Err(VbiError::SwapFailure { reason: "page is copy-on-write shared" });
            }
            let capacity = self.swap.capacity_pages().unwrap_or(0);
            let slot = match self.mem.take_frame(frame) {
                Some(data) => match self.swap.try_store(data) {
                    Ok(slot) => {
                        self.stats.writebacks += 1;
                        slot
                    }
                    Err(data) => {
                        // The backend handed the page back: restore it to
                        // its frame and leave the mapping untouched.
                        self.mem.put_frame(frame, data);
                        return Err(VbiError::BackingStoreFull { capacity_pages: capacity });
                    }
                },
                None => self
                    .swap
                    .try_store_zero()
                    .ok_or(VbiError::BackingStoreFull { capacity_pages: capacity })?,
            };
            structure.set_entry(page, PageEntry::Swapped(slot), &mut self.buddy)?;
            self.release_data_frame(frame);
            self.page_tlb.invalidate(&(vbuid, page));
            self.ref_bits.remove(&(vbuid, page));
            self.stats.pages_swapped_out += 1;
            Ok(())
        })();
        self.vits.entry_mut(vbuid)?.translation = Some(structure);
        result
    }

    /// Swaps `page` out of a direct-mapped VB when physical memory is so
    /// exhausted that the demotion table cannot be allocated: the victim's
    /// data goes to the backing store first, its frame is released, and the
    /// demotion then funds its table from that very frame, recording the
    /// victim as `Swapped` in the new table. Restricted to size classes
    /// whose single-level table fits one frame, which makes funding — and
    /// therefore the demotion — infallible once the frame is released, so
    /// no rollback of the committed swap store is ever needed.
    ///
    /// The caller has taken `structure` out of the VIT; every exit restores
    /// a structure (the original on error, the demoted table on success).
    fn swap_out_direct_self_funded(
        &mut self,
        vbuid: Vbuid,
        page: u64,
        structure: TranslationStructure,
    ) -> Result<()> {
        let size_class = vbuid.size_class();
        let one_frame_table = !matches!(
            TranslationKind::static_policy(size_class),
            TranslationKind::MultiLevel { .. }
        ) && size_class.pages() * 8 <= FRAME_BYTES;
        if !one_frame_table {
            // A multi-frame demotion could still dead-end after the single
            // freed frame; without a safe rollback the only sound answer is
            // the original error. The page stays resident.
            self.vits.entry_mut(vbuid)?.translation = Some(structure);
            return Err(VbiError::OutOfPhysicalMemory);
        }
        let PageEntry::Mapped { frame, cow } = structure.entry(page) else {
            self.vits.entry_mut(vbuid)?.translation = Some(structure);
            return Err(VbiError::SwapFailure { reason: "page not mapped" });
        };
        if cow && self.frame_shares.get(&frame.0).copied().unwrap_or(1) > 1 {
            self.vits.entry_mut(vbuid)?.translation = Some(structure);
            return Err(VbiError::SwapFailure { reason: "page is copy-on-write shared" });
        }
        let capacity = self.swap.capacity_pages().unwrap_or(0);
        let slot = match self.mem.take_frame(frame) {
            Some(data) => match self.swap.try_store(data) {
                Ok(slot) => {
                    self.stats.writebacks += 1;
                    slot
                }
                Err(data) => {
                    self.mem.put_frame(frame, data);
                    self.vits.entry_mut(vbuid)?.translation = Some(structure);
                    return Err(VbiError::BackingStoreFull { capacity_pages: capacity });
                }
            },
            None => match self.swap.try_store_zero() {
                Some(slot) => slot,
                None => {
                    self.vits.entry_mut(vbuid)?.translation = Some(structure);
                    return Err(VbiError::BackingStoreFull { capacity_pages: capacity });
                }
            },
        };
        // The released frame lands either as a Reserved slot (released to
        // the pool by the demotion's funding loop) or directly in the buddy
        // allocator — either way the one-frame table allocation succeeds.
        self.release_data_frame(frame);
        let demoted = self
            .demote_with_fallback(vbuid, &structure, Some((page, slot)))
            .expect("the victim's own frame funds a one-frame demotion table");
        self.vits.entry_mut(vbuid)?.translation = Some(demoted);
        self.direct_tlb.invalidate(&vbuid);
        self.vit_cache.invalidate(&vbuid);
        self.page_tlb.invalidate(&(vbuid, page));
        self.ref_bits.remove(&(vbuid, page));
        self.stats.pages_swapped_out += 1;
        Ok(())
    }

    /// Reclaims up to `count` pages by swapping out mapped pages of enabled
    /// VBs other than `exclude`, preferring non-pinned VBs. Returns how many
    /// pages were reclaimed.
    pub fn reclaim_pages(&mut self, count: usize, exclude: Vbuid) -> usize {
        self.reclaim_policy(count, Some(exclude), None)
    }

    /// Policy-evicts up to `count` resident pages with no VB excluded — the
    /// ballooning / quota form of §3.4's capacity management. Returns how
    /// many pages were evicted.
    pub fn reclaim_frames(&mut self, count: usize) -> usize {
        self.reclaim_policy(count, None, None)
    }

    /// Policy-evicts up to `count` resident pages while protecting a single
    /// page — the engine's evict-on-allocation-failure path, which must be
    /// free to evict *other* pages of the faulting VB (a VB larger than
    /// physical memory can only make progress by self-eviction) but must
    /// never evict the page being accessed.
    pub fn reclaim_for(&mut self, vbuid: Vbuid, page: u64, count: usize) -> usize {
        self.reclaim_policy(count, None, Some((vbuid, page)))
    }

    /// Donor half of cross-shard frame borrowing: permanently cedes up to
    /// `count` frames of this shard's capacity, evicting resident pages
    /// first if the free pool is short. Returns how many frames were ceded
    /// (the adoptee must [`Mtl::adopt_frames`] exactly that many to conserve
    /// global capacity).
    ///
    /// The ceded frames stay registered inside this shard's buddy allocator
    /// as permanently allocated blocks; frame indices are shard-local, so
    /// capacity moves as a *count*, never as addresses.
    pub fn donate_frames(&mut self, count: usize) -> u64 {
        // Donors hand over *buddy* frames; parked cache frames must be
        // visible to the transfer or capacity would be stranded.
        self.frame_cache.flush(&mut self.buddy);
        let free = self.buddy.free_frames() as usize;
        if free < count {
            self.reclaim_frames(count - free);
        }
        self.buddy.retire_free(count as u64)
    }

    /// Adoptee half of cross-shard frame borrowing: grows this shard's
    /// physical capacity by `count` fresh frames (minted at the end of the
    /// shard-local frame range), all immediately free.
    pub fn adopt_frames(&mut self, count: u64) {
        self.buddy.grow(count);
        self.mem.grow(count);
    }

    /// The eviction sweep behind every reclaim entry point.
    ///
    /// Victim order is deterministic: candidates are the mapped pages of
    /// enabled VBs sorted by `(vbuid, page)` and rotated to resume after
    /// the persistent clock hand, so identically-driven MTLs (the 1-shard
    /// service vs `System` equivalence, split-vs-combined stats runs) pick
    /// identical victims regardless of hash-map iteration order. Under
    /// [`EvictionPolicy::Clock`] a set reference bit buys the page one
    /// sweep of grace (the bit is cleared and the hand moves on); under
    /// [`EvictionPolicy::ScanOrder`] bits are ignored. Unpinned VBs are
    /// always swept before pinned ones.
    fn reclaim_policy(
        &mut self,
        count: usize,
        exclude: Option<Vbuid>,
        protect: Option<(Vbuid, u64)>,
    ) -> usize {
        // Pressure must see every free frame before paying for evictions:
        // return the magazines to the buddy first. (On the engine's
        // allocation-failure path the cache is already empty — a failed
        // cache allocate drains the magazines — so this is free there.)
        self.frame_cache.flush(&mut self.buddy);
        let mut reclaimed = 0;
        // Two passes: first unpinned VBs, then (reluctantly) pinned ones.
        for allow_pinned in [false, true] {
            if reclaimed >= count {
                break;
            }
            let mut candidates: Vec<(Vbuid, u64)> = Vec::new();
            let vbs: Vec<Vbuid> = self
                .vits
                .enabled_vbs()
                .filter(|vb| Some(*vb) != exclude)
                .filter(|vb| {
                    allow_pinned
                        == self
                            .vits
                            .entry(*vb)
                            .map(|e| e.props.contains(VbProperties::PINNED))
                            .unwrap_or(false)
                })
                .collect();
            for vb in vbs {
                if let Some(s) = self.vits.entry(vb).ok().and_then(|e| e.translation.as_ref()) {
                    candidates.extend(s.mapped_pages().into_iter().map(|(p, _, _)| (vb, p)));
                }
            }
            candidates.retain(|c| Some(*c) != protect);
            candidates.sort_unstable();
            if candidates.is_empty() {
                continue;
            }
            // Resume the circular sweep after the hand. Two passes bound
            // the clock: the first clears reference bits, the second can
            // no longer be refused by them.
            let start = match self.clock_hand {
                Some(hand) => candidates.partition_point(|c| *c <= hand),
                None => 0,
            };
            let n = candidates.len();
            let second_chance = self.config.eviction == EvictionPolicy::Clock;
            for step in 0..2 * n {
                if reclaimed >= count {
                    break;
                }
                let (vb, page) = candidates[(start + step) % n];
                self.clock_hand = Some((vb, page));
                if second_chance && self.ref_bits.remove(&(vb, page)) {
                    continue;
                }
                if self.swap_out_page(vb, page).is_ok() {
                    reclaimed += 1;
                    self.stats.evictions += 1;
                }
            }
        }
        reclaimed
    }

    /// Binds file contents to a VB (memory-mapped files, §3.4): each page of
    /// `pages` is stored in the backing store and recorded as swapped-out, so
    /// the first access faults it in like any swapped page.
    ///
    /// # Errors
    ///
    /// [`VbiError::VbNotEnabled`], [`VbiError::OffsetOutOfRange`] for pages
    /// beyond the VB, or allocation failures while building the structure.
    pub fn bind_file(
        &mut self,
        vbuid: Vbuid,
        pages: impl IntoIterator<Item = (u64, Box<[u8; FRAME_BYTES as usize]>)>,
    ) -> Result<()> {
        self.vits.entry(vbuid)?;
        // Binding allocates table frames straight from the buddy.
        self.frame_cache.flush(&mut self.buddy);
        let mut structure = match self.vits.entry_mut(vbuid)?.translation.take() {
            Some(s) => s,
            None => self.table_structure_for(vbuid.size_class())?,
        };
        let result = (|| {
            for (page, data) in pages {
                if page >= structure.pages() {
                    return Err(VbiError::OffsetOutOfRange { vbuid, offset: page * FRAME_BYTES });
                }
                let slot = self.swap.try_store(data).map_err(|_| VbiError::BackingStoreFull {
                    capacity_pages: self.swap.capacity_pages().unwrap_or(0),
                })?;
                structure.set_entry(page, PageEntry::Swapped(slot), &mut self.buddy)?;
            }
            Ok(())
        })();
        self.vits.entry_mut(vbuid)?.translation = Some(structure);
        result
    }

    // --- internals -------------------------------------------------------------

    /// The static-policy structure, but never direct (used when contiguity
    /// is not guaranteed).
    fn table_structure_for(&mut self, size_class: SizeClass) -> Result<TranslationStructure> {
        match TranslationKind::static_policy(size_class) {
            TranslationKind::Direct | TranslationKind::SingleLevel => {
                TranslationStructure::single_level(size_class, &mut self.buddy)
            }
            TranslationKind::MultiLevel { .. } => {
                TranslationStructure::multi_level(size_class, &mut self.buddy)
            }
        }
    }

    /// Builds a table-based replacement for a structure that must give up
    /// direct mapping, preserving all entries. The caller drops the original
    /// (direct structures own no table frames). When `replace` names a page,
    /// that page's entry is written as `Swapped` in the new table instead of
    /// copying its original mapping — the self-funding eviction path swaps
    /// the victim out *before* demoting so its frame can pay for the table.
    fn demote_structure(
        &mut self,
        size_class: SizeClass,
        structure: &TranslationStructure,
        replace: Option<(u64, SwapSlot)>,
    ) -> Result<TranslationStructure> {
        let mut table = self.table_structure_for(size_class)?;
        for (page, frame, cow) in structure.mapped_pages() {
            if replace.is_some_and(|(victim, _)| victim == page) {
                continue;
            }
            if let Err(e) = table.set_entry(page, PageEntry::Mapped { frame, cow }, &mut self.buddy)
            {
                table.release_tables(&mut self.buddy);
                return Err(e);
            }
        }
        for (page, slot) in structure.swapped_pages().into_iter().chain(replace) {
            if let Err(e) = table.set_entry(page, PageEntry::Swapped(slot), &mut self.buddy) {
                table.release_tables(&mut self.buddy);
                return Err(e);
            }
        }
        self.stats.demotions += 1;
        Ok(table)
    }

    /// Ensures the VB has a translation structure, running the
    /// early-reservation attempt on first allocation (§5.3).
    fn ensure_structure(&mut self, vbuid: Vbuid) -> Result<()> {
        if self.vits.entry(vbuid)?.translation.is_some() {
            return Ok(());
        }
        let size_class = vbuid.size_class();
        let pages = size_class.pages();
        let structure = if self.config.early_reservation {
            let order = pages.trailing_zeros() as Order;
            let reservation = self.reservations.entry(vbuid).or_default();
            reservation.attempted = true;
            if pages <= self.buddy.total_frames() {
                // A one-frame reservation is an ordinary order-0 allocation:
                // serve it from the magazine cache (this is the hot path of
                // 4 KiB VB request/release churn). Larger reservations need
                // contiguity the cache's scattered frames can only hurt, so
                // flush them back to the buddy first.
                let grabbed = if order == 0 {
                    self.frame_cache.allocate(&mut self.buddy, FREE_POOL_HEADROOM)
                } else {
                    self.frame_cache.flush(&mut self.buddy);
                    self.buddy.allocate_split(order)
                };
                if let Some(base) = grabbed {
                    // Full contiguous reservation: direct mapping.
                    let extent = Extent {
                        page_start: 0,
                        base,
                        len: pages,
                        slots: vec![SlotState::Reserved; pages as usize],
                    };
                    for i in 0..pages {
                        self.extent_owner.insert(base.0 + i, vbuid);
                    }
                    self.reservations.get_mut(&vbuid).expect("just inserted").extents.push(extent);
                    let mut s = TranslationStructure::direct(size_class);
                    s.set_direct_base(base);
                    self.stats.reservations_full += 1;
                    self.vits.entry_mut(vbuid)?.translation = Some(s);
                    return Ok(());
                }
            }
            self.stats.reservations_partial += 1;
            self.table_structure_for(size_class)?
        } else {
            match TranslationKind::static_policy(size_class) {
                TranslationKind::Direct => {
                    // A 4 KiB VB is a single frame: direct by construction.
                    // The frame is held as a one-slot reservation until
                    // `allocate_page_frame` marks it used, keeping the
                    // accounting uniform with early reservation.
                    let frame = self.allocate_raw_frame(vbuid)?;
                    let mut s = TranslationStructure::direct(size_class);
                    s.set_direct_base(frame);
                    let extent = Extent {
                        page_start: 0,
                        base: frame,
                        len: 1,
                        slots: vec![SlotState::Reserved],
                    };
                    self.extent_owner.insert(frame.0, vbuid);
                    self.reservations.entry(vbuid).or_default().extents.push(extent);
                    self.vits.entry_mut(vbuid)?.translation = Some(s);
                    return Ok(());
                }
                _ => self.table_structure_for(size_class)?,
            }
        };
        self.vits.entry_mut(vbuid)?.translation = Some(structure);
        Ok(())
    }

    /// Allocates one frame honouring the three-level priority of §5.3:
    /// (1) frames reserved for this VB, (2) unreserved free frames,
    /// (3) frames reserved for other VBs (stealing).
    fn allocate_page_frame(&mut self, vbuid: Vbuid, page: u64) -> Result<Frame> {
        // Priority 1: the VB's own reservation.
        if let Some(reservation) = self.reservations.get_mut(&vbuid) {
            for extent in &mut reservation.extents {
                if extent.covers(page) {
                    let slot = (page - extent.page_start) as usize;
                    if extent.slots[slot] == SlotState::Reserved {
                        extent.slots[slot] = SlotState::Used;
                        let frame = extent.frame_for(page);
                        self.frame_shares.insert(frame.0, 1);
                        self.stats.pages_allocated += 1;
                        return Ok(frame);
                    }
                }
            }
        }
        // Priorities 2 and 3.
        let frame = self.allocate_raw_frame(vbuid)?;
        self.frame_shares.insert(frame.0, 1);
        self.stats.pages_allocated += 1;
        Ok(frame)
    }

    /// Priorities 2 (unreserved free frame) and 3 (steal from another VB's
    /// reservation), with a final attempt to reclaim by swapping. The
    /// magazine cache fronts the free pool on both attempts, so the common
    /// allocate/free churn cycle never touches the buddy order lists.
    fn allocate_raw_frame(&mut self, vbuid: Vbuid) -> Result<Frame> {
        if let Some(frame) = self.frame_cache.allocate(&mut self.buddy, FREE_POOL_HEADROOM) {
            return Ok(frame);
        }
        if let Some(frame) = self.steal_reserved_frame(vbuid) {
            return Ok(frame);
        }
        // Last resort: swap something out and retry once.
        if self.reclaim_pages(1, vbuid) > 0 {
            if let Some(frame) = self.frame_cache.allocate(&mut self.buddy, FREE_POOL_HEADROOM) {
                return Ok(frame);
            }
            if let Some(frame) = self.steal_reserved_frame(vbuid) {
                return Ok(frame);
            }
        }
        Err(VbiError::OutOfPhysicalMemory)
    }

    fn steal_reserved_frame(&mut self, thief: Vbuid) -> Option<Frame> {
        let owners: Vec<Vbuid> =
            self.reservations.keys().copied().filter(|vb| *vb != thief).collect();
        for owner in owners {
            let has_reserved = self
                .reservations
                .get(&owner)
                .map(|r| r.extents.iter().any(|e| e.slots.contains(&SlotState::Reserved)))
                .unwrap_or(false);
            if !has_reserved {
                continue;
            }
            // Stealing a reserved-but-unallocated frame does NOT break the
            // owner's direct mapping: "a VB is considered directly mapped as
            // long as all its allocated memory is mapped to a single
            // contiguous region" (§5.3). The owner demotes lazily, only if
            // it later needs the stolen slot (see `allocate_and_map`).
            let reservation = self.reservations.get_mut(&owner).expect("listed");
            for extent in &mut reservation.extents {
                if let Some(slot) = extent.slots.iter().position(|s| *s == SlotState::Reserved) {
                    extent.slots[slot] = SlotState::Stolen;
                    let frame = extent.base.offset(slot as u64);
                    self.extent_owner.remove(&frame.0);
                    self.stats.frames_stolen += 1;
                    return Some(frame);
                }
            }
        }
        None
    }

    /// Tops the unreserved free pool up to `target` frames by releasing
    /// reserved-but-unused frames from any reservation. Owners stay
    /// direct-mapped (their allocated memory is untouched); they demote
    /// lazily if they ever need the released slots.
    fn replenish_pool(&mut self, target: u64) {
        // Cached frames are the cheapest source — return them before
        // raiding anyone's reservation.
        self.frame_cache.drain_to(&mut self.buddy, target);
        while self.buddy.free_frames() < target {
            if !self.release_one_reserved_frame() {
                break;
            }
        }
    }

    /// Releases one reserved frame from any reservation into the buddy pool.
    ///
    /// Frames are taken from the *end* of the largest reservation so that
    /// (1) consecutive releases hand out physically adjacent frames — which
    /// keeps the thief's data row-buffer friendly and lets the buddy merge
    /// them back — and (2) the owner's (front-allocated) pages stay clear of
    /// the stolen zone for as long as possible.
    fn release_one_reserved_frame(&mut self) -> bool {
        let owner = self
            .reservations
            .iter()
            .filter(|(_, r)| r.extents.iter().any(|e| e.slots.contains(&SlotState::Reserved)))
            .max_by_key(|(vb, r)| (r.extents.iter().map(|e| e.len).sum::<u64>(), *vb))
            .map(|(vb, _)| *vb);
        let Some(owner) = owner else { return false };
        let reservation = self.reservations.get_mut(&owner).expect("selected above");
        for extent in reservation.extents.iter_mut().rev() {
            if let Some(i) = extent.slots.iter().rposition(|s| *s == SlotState::Reserved) {
                extent.slots[i] = SlotState::Stolen;
                let frame = extent.base.offset(i as u64);
                self.extent_owner.remove(&frame.0);
                self.buddy.free(frame, 0);
                self.stats.frames_stolen += 1;
                return true;
            }
        }
        false
    }

    /// Returns up to `count` of an owner's reserved frames to the general
    /// pool (marking their slots stolen), e.g. to fund the owner's own
    /// demotion tables under memory pressure.
    fn release_reserved_to_pool(&mut self, owner: Vbuid, count: usize) -> usize {
        let Some(reservation) = self.reservations.get_mut(&owner) else { return 0 };
        let mut freed = Vec::new();
        for extent in &mut reservation.extents {
            for (i, slot) in extent.slots.iter_mut().enumerate() {
                if freed.len() >= count {
                    break;
                }
                if *slot == SlotState::Reserved {
                    *slot = SlotState::Stolen;
                    freed.push(extent.base.offset(i as u64));
                }
            }
        }
        for frame in &freed {
            self.extent_owner.remove(&frame.0);
            self.buddy.free(*frame, 0);
        }
        freed.len()
    }

    /// Demotes a direct structure to tables, funding the table frames from
    /// the VB's own reserved frames when the general pool is empty.
    fn demote_with_fallback(
        &mut self,
        vbuid: Vbuid,
        structure: &TranslationStructure,
        replace: Option<(u64, SwapSlot)>,
    ) -> Result<TranslationStructure> {
        // A demotion of a densely mapped VB may need many table frames (one
        // leaf node per 512 mapped pages); keep funding the attempt from the
        // owner's — or anyone's — reserved frames until it fits or memory is
        // truly exhausted.
        for _ in 0..4096 {
            match self.demote_structure(vbuid.size_class(), structure, replace) {
                Ok(table) => return Ok(table),
                Err(_) => {
                    // Cheapest funding first: frames parked in the magazine
                    // cache, then the owner's (or anyone's) reservation.
                    if self.frame_cache.flush(&mut self.buddy) > 0 {
                        continue;
                    }
                    if self.release_reserved_to_pool(vbuid, 64) > 0 {
                        continue;
                    }
                    let mut released = false;
                    for _ in 0..64 {
                        released |= self.release_one_reserved_frame();
                    }
                    if !released {
                        return Err(VbiError::OutOfPhysicalMemory);
                    }
                }
            }
        }
        Err(VbiError::OutOfPhysicalMemory)
    }

    /// Allocates physical memory for `page` of `vbuid` and maps it.
    fn allocate_and_map(&mut self, vbuid: Vbuid, page: u64) -> Result<Frame> {
        self.ensure_structure(vbuid)?;
        let frame = self.allocate_page_frame(vbuid, page)?;
        let mut structure = self.vits.entry_mut(vbuid)?.translation.take().expect("ensured above");
        // A direct structure can only map its own contiguous region; if the
        // frame came from elsewhere (stolen slot or pressure), demote first.
        // On failure, restore the structure (dropping it would unmap the
        // whole VB) and release the unused frame.
        let expects = structure.direct_base().map(|b| b.offset(page));
        if matches!(structure.kind(), TranslationKind::Direct) && expects != Some(frame) {
            match self.demote_with_fallback(vbuid, &structure, None) {
                Ok(demoted) => {
                    structure = demoted;
                    self.direct_tlb.invalidate(&vbuid);
                    self.vit_cache.invalidate(&vbuid);
                }
                Err(e) => {
                    self.vits.entry_mut(vbuid)?.translation = Some(structure);
                    self.release_data_frame(frame);
                    return Err(e);
                }
            }
        }
        let result =
            structure.set_entry(page, PageEntry::Mapped { frame, cow: false }, &mut self.buddy);
        self.vits.entry_mut(vbuid)?.translation = Some(structure);
        if let Err(e) = result {
            self.release_data_frame(frame);
            return Err(e);
        }
        self.mem.zero_frame(frame);
        Ok(frame)
    }

    fn swap_in(&mut self, vbuid: Vbuid, page: u64, slot: SwapSlot) -> Result<Frame> {
        let frame = self.allocate_page_frame(vbuid, page)?;
        let mut structure = self
            .vits
            .entry_mut(vbuid)?
            .translation
            .take()
            .expect("swapped page implies a structure");
        if matches!(structure.kind(), TranslationKind::Direct) {
            match self.demote_with_fallback(vbuid, &structure, None) {
                Ok(demoted) => {
                    structure = demoted;
                    self.direct_tlb.invalidate(&vbuid);
                    self.vit_cache.invalidate(&vbuid);
                }
                Err(e) => {
                    self.vits.entry_mut(vbuid)?.translation = Some(structure);
                    self.release_data_frame(frame);
                    return Err(e);
                }
            }
        }
        let result =
            structure.set_entry(page, PageEntry::Mapped { frame, cow: false }, &mut self.buddy);
        self.vits.entry_mut(vbuid)?.translation = Some(structure);
        if let Err(e) = result {
            self.release_data_frame(frame);
            return Err(e);
        }
        // Only consume the swap slot once the mapping is committed: a
        // failure above leaves the entry Swapped and the data retrievable.
        if let Some(data) = self.swap.load(slot) {
            self.mem.put_frame(frame, data);
        } else {
            self.mem.zero_frame(frame);
        }
        self.stats.pages_swapped_in += 1;
        Ok(frame)
    }

    fn resolve_cow(&mut self, vbuid: Vbuid, page: u64, frame: Frame) -> Result<Frame> {
        let shares = self.frame_shares.get(&frame.0).copied().unwrap_or(1);
        let mut structure =
            self.vits.entry_mut(vbuid)?.translation.take().expect("mapped page has structure");
        let result = if shares <= 1 {
            // Sole owner again: just clear the COW mark.
            structure
                .set_entry(page, PageEntry::Mapped { frame, cow: false }, &mut self.buddy)
                .map(|()| frame)
        } else {
            // Copying breaks a direct VB's contiguity; demote before
            // touching any shared state so failures leave the VB intact.
            let demoted = if matches!(structure.kind(), TranslationKind::Direct) {
                match self.demote_structure(vbuid.size_class(), &structure, None) {
                    Ok(table) => {
                        structure = table;
                        self.direct_tlb.invalidate(&vbuid);
                        self.vit_cache.invalidate(&vbuid);
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            } else {
                Ok(())
            };
            demoted.and_then(|()| self.allocate_page_frame(vbuid, page)).and_then(|new_frame| {
                self.mem.copy_frame(frame, new_frame);
                *self.frame_shares.get_mut(&frame.0).expect("shared frame is tracked") -= 1;
                self.stats.cow_copies += 1;
                structure
                    .set_entry(
                        page,
                        PageEntry::Mapped { frame: new_frame, cow: false },
                        &mut self.buddy,
                    )
                    .map(|()| new_frame)
            })
        };
        self.vits.entry_mut(vbuid)?.translation = Some(structure);
        self.page_tlb.invalidate(&(vbuid, page));
        result
    }

    /// Drops one reference to a data frame, freeing it when unshared. Frames
    /// inside a live reservation return to `Reserved`; others go back to the
    /// buddy allocator.
    fn release_data_frame(&mut self, frame: Frame) {
        let shares = self.frame_shares.get_mut(&frame.0).expect("live data frame is tracked");
        *shares -= 1;
        if *shares > 0 {
            return;
        }
        self.frame_shares.remove(&frame.0);
        self.mem.zero_frame(frame);
        if let Some(owner) = self.extent_owner.get(&frame.0).copied() {
            if let Some(reservation) = self.reservations.get_mut(&owner) {
                for extent in &mut reservation.extents {
                    if let Some(slot) = extent.slot_of_frame(frame) {
                        extent.slots[slot] = SlotState::Reserved;
                        return;
                    }
                }
            }
            self.extent_owner.remove(&frame.0);
        }
        self.frame_cache.free(&mut self.buddy, frame, FREE_POOL_HEADROOM);
    }

    /// Frees all still-reserved frames of a VB's reservation and orphans the
    /// rest (used frames are freed through their pages; stolen frames through
    /// their thieves).
    fn teardown_reservation(&mut self, vbuid: Vbuid) {
        let Some(reservation) = self.reservations.remove(&vbuid) else { return };
        for extent in reservation.extents {
            for (i, slot) in extent.slots.iter().enumerate() {
                let frame = extent.base.offset(i as u64);
                match slot {
                    SlotState::Reserved => {
                        self.extent_owner.remove(&frame.0);
                        // Through the cache: the request/release churn of a
                        // one-frame direct VB frees its frame right here.
                        self.frame_cache.free(&mut self.buddy, frame, FREE_POOL_HEADROOM);
                    }
                    SlotState::Used | SlotState::Stolen => {
                        // Orphan: freed via frame_shares when its VB lets go.
                        self.extent_owner.remove(&frame.0);
                    }
                }
            }
        }
    }

    /// Orphans a reservation without freeing anything (promotion transferred
    /// the frames to another VB).
    fn orphan_reservation(&mut self, vbuid: Vbuid) {
        let Some(reservation) = self.reservations.remove(&vbuid) else { return };
        for extent in reservation.extents {
            for (i, slot) in extent.slots.iter().enumerate() {
                let frame = extent.base.offset(i as u64);
                match slot {
                    SlotState::Reserved => {
                        self.extent_owner.remove(&frame.0);
                        self.frame_cache.free(&mut self.buddy, frame, FREE_POOL_HEADROOM);
                    }
                    SlotState::Used | SlotState::Stolen => {
                        self.extent_owner.remove(&frame.0);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(variant: fn() -> VbiConfig) -> VbiConfig {
        VbiConfig { phys_frames: 4096, ..variant() } // 16 MiB
    }

    fn mtl(variant: fn() -> VbiConfig) -> Mtl {
        Mtl::new(small_config(variant))
    }

    fn enabled_vb(mtl: &mut Mtl, sc: SizeClass) -> Vbuid {
        let vb = mtl.find_free_vb(sc).unwrap();
        mtl.enable_vb(vb, VbProperties::NONE).unwrap();
        vb
    }

    #[test]
    fn write_then_read_roundtrips() {
        for variant in [VbiConfig::vbi_1, VbiConfig::vbi_2, VbiConfig::vbi_full] {
            let mut m = mtl(variant);
            let vb = enabled_vb(&mut m, SizeClass::Kib128);
            let addr = vb.address(0x4008).unwrap();
            m.write_u64(addr, 0xfeed_f00d).unwrap();
            assert_eq!(m.read_u64(addr).unwrap(), 0xfeed_f00d);
        }
    }

    #[test]
    fn reads_of_untouched_regions_are_zero() {
        let mut m = mtl(VbiConfig::vbi_full);
        let vb = enabled_vb(&mut m, SizeClass::Mib4);
        assert_eq!(m.read_u64(vb.address(123_456).unwrap()).unwrap(), 0);
    }

    #[test]
    fn donate_and_adopt_transfer_capacity_between_mtls() {
        let mut donor = mtl(VbiConfig::vbi_1);
        let mut adoptee = mtl(VbiConfig::vbi_1);
        let total_before = donor.free_frames() + adoptee.free_frames();

        let moved = donor.donate_frames(64);
        assert_eq!(moved, 64);
        adoptee.adopt_frames(moved);
        assert_eq!(donor.free_frames() + adoptee.free_frames(), total_before);

        // The adopted capacity is genuinely usable for data.
        let vb = enabled_vb(&mut adoptee, SizeClass::Kib128);
        let addr = vb.address(0).unwrap();
        adoptee.write_u64(addr, 0xabc).unwrap();
        assert_eq!(adoptee.read_u64(addr).unwrap(), 0xabc);
    }

    #[test]
    fn donation_reclaims_resident_pages_when_the_free_pool_is_short() {
        let mut donor = Mtl::new(VbiConfig { phys_frames: 16, ..VbiConfig::vbi_1() });
        let vb = enabled_vb(&mut donor, SizeClass::Kib128);
        // Fill most of the pool with mapped data pages.
        for page in 0..12u64 {
            donor.write_u64(vb.address(page * 4096).unwrap(), page).unwrap();
        }
        let free = donor.free_frames();
        let want = free as usize + 4; // more than is free: forces eviction
        let moved = donor.donate_frames(want);
        assert_eq!(moved, want as u64, "eviction funds the shortfall");
        assert!(donor.stats().evictions >= 4);
        // Evicted payloads went to the backing store, not into the void.
        assert!(donor.swap_occupancy() >= 3);
    }

    #[test]
    fn delayed_allocation_defers_until_writeback() {
        let mut m = mtl(VbiConfig::vbi_2);
        let vb = enabled_vb(&mut m, SizeClass::Kib128);
        let free_before = m.free_frames();
        // Reads allocate nothing under VBI-2.
        for page in 0..8 {
            let t = m.translate(vb.address(page * 4096).unwrap(), MtlAccess::Read).unwrap();
            assert_eq!(t.result, TranslateResult::ZeroLine);
        }
        assert_eq!(m.free_frames(), free_before);
        assert_eq!(m.stats().zero_line_returns, 8);
        // The first writeback allocates exactly the 4 KiB region (plus the
        // VB's single-level table on first touch).
        let t = m.translate(vb.address(0).unwrap(), MtlAccess::Writeback).unwrap();
        assert!(matches!(t.result, TranslateResult::Mapped(_)));
        assert!(t.events.allocated);
        assert_eq!(m.stats().delayed_allocations, 1);
        assert_eq!(free_before - m.free_frames(), 2, "one data frame + one table frame");
    }

    #[test]
    fn vbi_1_allocates_on_read() {
        let mut m = mtl(VbiConfig::vbi_1);
        let vb = enabled_vb(&mut m, SizeClass::Kib128);
        let t = m.translate(vb.address(0).unwrap(), MtlAccess::Read).unwrap();
        assert!(matches!(t.result, TranslateResult::Mapped(_)));
        assert!(t.events.allocated);
        assert_eq!(m.stats().zero_line_returns, 0);
    }

    #[test]
    fn early_reservation_direct_maps_whole_vbs() {
        let mut m = mtl(VbiConfig::vbi_full);
        let vb = enabled_vb(&mut m, SizeClass::Mib4); // 1024 pages, fits in 4096
        m.write_u64(vb.address(0).unwrap(), 1).unwrap();
        assert_eq!(m.translation_kind(vb).unwrap(), Some(TranslationKind::Direct));
        assert_eq!(m.stats().reservations_full, 1);
        // Pages of a direct VB are physically contiguous.
        let t0 = m.translate(vb.address(0).unwrap(), MtlAccess::Read).unwrap();
        m.write_u64(vb.address(5 * 4096).unwrap(), 2).unwrap();
        let t5 = m.translate(vb.address(5 * 4096).unwrap(), MtlAccess::Read).unwrap();
        let (TranslateResult::Mapped(p0), TranslateResult::Mapped(p5)) = (t0.result, t5.result)
        else {
            panic!("expected mapped");
        };
        assert_eq!(p5.to_bits() - p0.to_bits(), 5 * 4096);
    }

    #[test]
    fn early_reservation_falls_back_when_too_big() {
        let mut m = mtl(VbiConfig::vbi_full);
        // A 128 MiB VB (32768 pages) cannot fit in 4096 frames.
        let vb = enabled_vb(&mut m, SizeClass::Mib128);
        m.write_u64(vb.address(0).unwrap(), 1).unwrap();
        assert!(matches!(
            m.translation_kind(vb).unwrap(),
            Some(TranslationKind::MultiLevel { depth: 2 })
        ));
        assert_eq!(m.stats().reservations_partial, 1);
    }

    #[test]
    fn direct_vbs_hit_the_whole_vb_tlb() {
        let mut m = mtl(VbiConfig::vbi_full);
        let vb = enabled_vb(&mut m, SizeClass::Mib4);
        m.write_u64(vb.address(0).unwrap(), 1).unwrap();
        m.write_u64(vb.address(100 * 4096).unwrap(), 2).unwrap();
        m.reset_stats();
        // Different pages of the same VB hit the single whole-VB entry.
        for page in [0u64, 7, 100, 1023] {
            let t = m.translate(vb.address(page * 4096).unwrap(), MtlAccess::Read).unwrap();
            if page == 0 || page == 100 {
                assert!(t.events.mtl_tlb_hit, "page {page}");
            }
        }
        assert!(m.stats().tlb_hits >= 2);
    }

    #[test]
    fn walks_count_table_accesses() {
        let mut m = mtl(VbiConfig::vbi_1);
        let vb = enabled_vb(&mut m, SizeClass::Mib128); // depth-2 multi-level
        let addr = vb.address(12345 * 4096).unwrap();
        m.write_u64(addr, 3).unwrap();
        m.reset_stats();
        m.page_tlb.flush();
        m.vit_cache.flush();
        let t = m.translate(addr, MtlAccess::Read).unwrap();
        assert!(!t.events.mtl_tlb_hit);
        // 1 VIT access (cache miss) + 2 levels of walk.
        assert_eq!(t.events.table_accesses.len(), 3);
        // A second access hits the MTL TLB: zero table accesses.
        let t2 = m.translate(addr, MtlAccess::Read).unwrap();
        assert!(t2.events.mtl_tlb_hit);
        assert!(t2.events.table_accesses.is_empty());
    }

    #[test]
    fn disable_returns_all_memory() {
        for variant in [VbiConfig::vbi_1, VbiConfig::vbi_2, VbiConfig::vbi_full] {
            let mut m = mtl(variant);
            let free0 = m.free_frames();
            let vb = enabled_vb(&mut m, SizeClass::Mib4);
            for page in (0..1024).step_by(37) {
                m.write_u64(vb.address(page * 4096).unwrap(), page).unwrap();
            }
            assert!(m.free_frames() < free0);
            m.disable_vb(vb).unwrap();
            assert_eq!(m.free_frames(), free0, "variant leaked frames");
        }
    }

    #[test]
    fn disable_requires_detached() {
        let mut m = mtl(VbiConfig::vbi_full);
        let vb = enabled_vb(&mut m, SizeClass::Kib4);
        m.add_ref(vb).unwrap();
        assert!(matches!(m.disable_vb(vb), Err(VbiError::VbInUse { .. })));
        m.remove_ref(vb).unwrap();
        m.disable_vb(vb).unwrap();
        assert!(matches!(
            m.translate(vb.address(0).unwrap(), MtlAccess::Read),
            Err(VbiError::VbNotEnabled(_))
        ));
    }

    #[test]
    fn clone_shares_then_copies_on_write() {
        let mut m = mtl(VbiConfig::vbi_full);
        let src = enabled_vb(&mut m, SizeClass::Kib128);
        let dst = enabled_vb(&mut m, SizeClass::Kib128);
        m.write_u64(src.address(0).unwrap(), 111).unwrap();
        m.write_u64(src.address(8 * 4096).unwrap(), 222).unwrap();
        let free_before_clone = m.free_frames();
        m.clone_vb(src, dst).unwrap();
        // Cloning costs table frames only, no data copies.
        assert!(free_before_clone - m.free_frames() <= 1);
        assert_eq!(m.read_u64(dst.address(0).unwrap()).unwrap(), 111);
        assert_eq!(m.read_u64(dst.address(8 * 4096).unwrap()).unwrap(), 222);
        // Writing the clone leaves the source untouched.
        m.write_u64(dst.address(0).unwrap(), 999).unwrap();
        assert_eq!(m.stats().cow_copies, 1);
        assert_eq!(m.read_u64(dst.address(0).unwrap()).unwrap(), 999);
        assert_eq!(m.read_u64(src.address(0).unwrap()).unwrap(), 111);
        // Writing the source also copies (it was marked COW too).
        m.write_u64(src.address(8 * 4096).unwrap(), 333).unwrap();
        assert_eq!(m.read_u64(dst.address(8 * 4096).unwrap()).unwrap(), 222);
    }

    #[test]
    fn clone_size_mismatch_is_rejected() {
        let mut m = mtl(VbiConfig::vbi_full);
        let a = enabled_vb(&mut m, SizeClass::Kib4);
        let b = enabled_vb(&mut m, SizeClass::Kib128);
        assert!(matches!(m.clone_vb(a, b), Err(VbiError::CloneSizeMismatch { .. })));
    }

    #[test]
    fn clone_then_disable_both_frees_everything() {
        let mut m = mtl(VbiConfig::vbi_full);
        let free0 = m.free_frames();
        let src = enabled_vb(&mut m, SizeClass::Kib128);
        let dst = enabled_vb(&mut m, SizeClass::Kib128);
        m.write_u64(src.address(0).unwrap(), 1).unwrap();
        m.clone_vb(src, dst).unwrap();
        m.write_u64(dst.address(0).unwrap(), 2).unwrap(); // COW copy
        m.disable_vb(src).unwrap();
        m.disable_vb(dst).unwrap();
        assert_eq!(m.free_frames(), free0);
    }

    #[test]
    fn promote_preserves_data_and_grows_the_vb() {
        let mut m = mtl(VbiConfig::vbi_full);
        let small = enabled_vb(&mut m, SizeClass::Kib128);
        m.write_u64(small.address(16).unwrap(), 77).unwrap();
        let large = enabled_vb(&mut m, SizeClass::Mib4);
        m.promote_vb(small, large).unwrap();
        assert_eq!(m.read_u64(large.address(16).unwrap()).unwrap(), 77);
        // The region beyond the old VB is usable.
        m.write_u64(large.address(2 << 20).unwrap(), 88).unwrap();
        assert_eq!(m.read_u64(large.address(2 << 20).unwrap()).unwrap(), 88);
        assert_eq!(m.stats().promotions, 1);
        // The small VB can now be disabled without disturbing the large one.
        m.disable_vb(small).unwrap();
        assert_eq!(m.read_u64(large.address(16).unwrap()).unwrap(), 77);
    }

    #[test]
    fn promote_requires_larger_class() {
        let mut m = mtl(VbiConfig::vbi_full);
        let a = enabled_vb(&mut m, SizeClass::Mib4);
        let b = enabled_vb(&mut m, SizeClass::Mib4);
        assert!(matches!(m.promote_vb(a, b), Err(VbiError::PromoteNotLarger { .. })));
    }

    #[test]
    fn swap_out_and_back_in_preserves_data() {
        let mut m = mtl(VbiConfig::vbi_full);
        let vb = enabled_vb(&mut m, SizeClass::Kib128);
        let addr = vb.address(3 * 4096).unwrap();
        m.write_u64(addr, 4242).unwrap();
        m.swap_out_page(vb, 3).unwrap();
        assert_eq!(m.swap_occupancy(), 1);
        assert_eq!(m.read_u64(addr).unwrap(), 4242);
        assert_eq!(m.swap_occupancy(), 0);
        assert_eq!(m.stats().pages_swapped_out, 1);
        assert_eq!(m.stats().pages_swapped_in, 1);
    }

    #[test]
    fn memory_pressure_triggers_reclaim() {
        // 48 frames of memory; two 32-page VBs want more than that together.
        let config = VbiConfig { phys_frames: 48, ..VbiConfig::vbi_2() };
        let mut m = Mtl::new(config);
        let a = enabled_vb(&mut m, SizeClass::Kib128); // 32 pages
        let b = enabled_vb(&mut m, SizeClass::Kib128);
        for page in 0..32 {
            m.write_u64(a.address(page * 4096).unwrap(), page).unwrap();
        }
        for page in 0..32 {
            m.write_u64(b.address(page * 4096).unwrap(), 1000 + page).unwrap();
        }
        assert!(m.stats().pages_swapped_out > 0, "pressure must swap");
        // All data survives the shuffle.
        for page in 0..32 {
            assert_eq!(m.read_u64(a.address(page * 4096).unwrap()).unwrap(), page);
            assert_eq!(m.read_u64(b.address(page * 4096).unwrap()).unwrap(), 1000 + page);
        }
    }

    #[test]
    fn stealing_demotes_the_reservation_owner() {
        // Memory fits one full 4 MiB reservation (1024 pages) plus a bit.
        let config = VbiConfig { phys_frames: 1100, ..VbiConfig::vbi_full() };
        let mut m = Mtl::new(config);
        let owner = enabled_vb(&mut m, SizeClass::Mib4);
        m.write_u64(owner.address(0).unwrap(), 1).unwrap();
        assert_eq!(m.translation_kind(owner).unwrap(), Some(TranslationKind::Direct));
        // A second VB needs more than the unreserved remainder.
        let thief = enabled_vb(&mut m, SizeClass::Kib128);
        for page in 0..32 {
            m.write_u64(thief.address(page * 4096).unwrap(), page).unwrap();
        }
        // Fill more of the thief's demand to force stealing.
        let thief2 = enabled_vb(&mut m, SizeClass::Mib4);
        for page in 0..128 {
            m.write_u64(thief2.address(page * 4096).unwrap(), page).unwrap();
        }
        assert!(m.stats().frames_stolen > 0, "reserved frames must be stolen");
        // Stealing unallocated frames does not break the owner's direct
        // mapping (§5.3): all its *allocated* memory is still contiguous.
        assert_eq!(m.translation_kind(owner).unwrap(), Some(TranslationKind::Direct));
        // But when the owner touches a page whose reserved slot was stolen,
        // it must take a non-contiguous frame and demote to a table.
        let mut page = 1u64;
        while m.translation_kind(owner).unwrap() == Some(TranslationKind::Direct) && page < 1024 {
            m.write_u64(owner.address(page * 4096).unwrap(), page).unwrap();
            page += 1;
        }
        assert!(m.stats().demotions > 0, "owner demotes on first stolen-slot touch");
        assert_ne!(m.translation_kind(owner).unwrap(), Some(TranslationKind::Direct));
        // Owner's data is intact.
        assert_eq!(m.read_u64(owner.address(0).unwrap()).unwrap(), 1);
        for p in 1..page {
            assert_eq!(m.read_u64(owner.address(p * 4096).unwrap()).unwrap(), p);
        }
    }

    #[test]
    fn file_backed_vbs_fault_in_from_the_store() {
        let mut m = mtl(VbiConfig::vbi_full);
        let vb = enabled_vb(&mut m, SizeClass::Kib128);
        let mut page0 = Box::new([0u8; FRAME_BYTES as usize]);
        page0[0] = 0xaa;
        let mut page5 = Box::new([0u8; FRAME_BYTES as usize]);
        page5[8] = 0xbb;
        m.bind_file(vb, vec![(0, page0), (5, page5)]).unwrap();
        let t = m.translate(vb.address(0).unwrap(), MtlAccess::Read).unwrap();
        assert!(t.events.swapped_in, "first touch faults the file page in");
        assert_eq!(m.read_u8(vb.address(0).unwrap()).unwrap(), 0xaa);
        assert_eq!(m.read_u8(vb.address(5 * 4096 + 8).unwrap()).unwrap(), 0xbb);
        // Unbound pages read zero.
        assert_eq!(m.read_u8(vb.address(4096).unwrap()).unwrap(), 0);
    }

    #[test]
    fn vit_cache_filters_vit_accesses() {
        let mut m = mtl(VbiConfig::vbi_1);
        let vb = enabled_vb(&mut m, SizeClass::Kib128);
        m.write_u64(vb.address(0).unwrap(), 1).unwrap();
        m.reset_stats();
        m.page_tlb.flush();
        for _ in 0..10 {
            m.page_tlb.flush(); // force walks, keep VIT cache warm
            m.translate(vb.address(0).unwrap(), MtlAccess::Read).unwrap();
        }
        let s = m.stats();
        assert!(s.vit_cache_hits >= 9);
        assert!(s.vit_cache_misses <= 1);
    }

    #[test]
    fn out_of_memory_is_reported_when_swap_cannot_help() {
        // One VB wants more than everything and there is nothing to reclaim
        // (reclaim excludes the requester).
        let config = VbiConfig { phys_frames: 16, ..VbiConfig::vbi_2() };
        let mut m = Mtl::new(config);
        let vb = enabled_vb(&mut m, SizeClass::Kib128); // 32 pages > 16 frames
        let mut saw_oom = false;
        for page in 0..32 {
            match m.write_u64(vb.address(page * 4096).unwrap(), page) {
                Ok(()) => {}
                Err(VbiError::OutOfPhysicalMemory) => {
                    saw_oom = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(saw_oom);
    }

    #[test]
    fn failed_clone_restores_the_source() {
        // vbi_2: no early reservation, so memory really runs dry.
        let config = VbiConfig { phys_frames: 16, ..VbiConfig::vbi_2() };
        let mut m = Mtl::new(config);
        let src = enabled_vb(&mut m, SizeClass::Kib128);
        m.write_u64(src.address(0).unwrap(), 7777).unwrap();
        // Exhaust physical memory so the clone's table allocation must fail.
        let hog = enabled_vb(&mut m, SizeClass::Kib128);
        for page in 0..32u64 {
            if m.write_u64(hog.address(page << 12).unwrap(), 1).is_err() {
                break;
            }
        }
        let free_before = m.free_frames();
        let dst = m.find_free_vb(SizeClass::Kib128).unwrap();
        m.enable_vb(dst, VbProperties::NONE).unwrap();
        assert!(matches!(m.clone_vb(src, dst), Err(VbiError::OutOfPhysicalMemory)));
        // The aborted clone changed nothing: the source still reads its
        // data (its taken structure was restored), no frames moved, no
        // clone was counted.
        assert_eq!(m.read_u64(src.address(0).unwrap()).unwrap(), 7777);
        assert_eq!(m.free_frames(), free_before);
        assert_eq!(m.stats().vbs_cloned, 0);
    }

    #[test]
    fn failed_promote_restores_the_source() {
        let config = VbiConfig { phys_frames: 16, ..VbiConfig::vbi_2() };
        let mut m = Mtl::new(config);
        let src = enabled_vb(&mut m, SizeClass::Kib128);
        m.write_u64(src.address(8).unwrap(), 31337).unwrap();
        let hog = enabled_vb(&mut m, SizeClass::Kib128);
        for page in 0..32u64 {
            if m.write_u64(hog.address(page << 12).unwrap(), 1).is_err() {
                break;
            }
        }
        let free_before = m.free_frames();
        // A 4 MiB destination needs a single-level table — an allocation
        // that must fail on the exhausted machine.
        let dst = m.find_free_vb(SizeClass::Mib4).unwrap();
        m.enable_vb(dst, VbProperties::NONE).unwrap();
        assert!(matches!(m.promote_vb(src, dst), Err(VbiError::OutOfPhysicalMemory)));
        assert_eq!(m.read_u64(src.address(8).unwrap()).unwrap(), 31337);
        assert_eq!(m.free_frames(), free_before);
        assert_eq!(m.stats().promotions, 0);
    }

    #[test]
    fn translation_is_stable_across_tlb_flushes() {
        let mut m = mtl(VbiConfig::vbi_full);
        let vb = enabled_vb(&mut m, SizeClass::Mib4);
        let addr = vb.address(77 * 4096 + 128).unwrap();
        m.write_u64(addr, 5).unwrap();
        let t1 = m.translate(addr, MtlAccess::Read).unwrap();
        m.page_tlb.flush();
        m.direct_tlb.flush();
        m.vit_cache.flush();
        let t2 = m.translate(addr, MtlAccess::Read).unwrap();
        assert_eq!(t1.result, t2.result, "flushes never change the mapping");
    }

    #[test]
    fn sharded_mtls_carve_disjoint_vbid_slices() {
        let config = small_config(VbiConfig::vbi_full);
        let shards = 4;
        let mut mtls: Vec<Mtl> =
            (0..shards).map(|i| Mtl::for_shard(config.clone(), i, shards)).collect();
        for sc in [SizeClass::Kib4, SizeClass::Kib128, SizeClass::Tib128] {
            let slice = sc.vb_count() / shards as u64;
            let mut seen = Vec::new();
            for (i, m) in mtls.iter_mut().enumerate() {
                let vb = m.find_free_vb(sc).unwrap();
                m.enable_vb(vb, VbProperties::NONE).unwrap();
                assert_eq!(Mtl::shard_of(vb, shards), i, "{vb}");
                assert!(m.owns(vb));
                assert_eq!(vb.vbid() / slice, i as u64, "slice by high VBID bits");
                seen.push(vb);
            }
            seen.dedup();
            assert_eq!(seen.len(), shards, "no VBUID collisions across shards");
        }
    }

    #[test]
    fn shard_zero_of_one_behaves_like_a_standalone_mtl() {
        let mut a = Mtl::new(small_config(VbiConfig::vbi_full));
        let mut b = Mtl::for_shard(small_config(VbiConfig::vbi_full), 0, 1);
        for _ in 0..3 {
            let va = a.find_free_vb(SizeClass::Kib128).unwrap();
            let vb = b.find_free_vb(SizeClass::Kib128).unwrap();
            assert_eq!(va, vb);
            a.enable_vb(va, VbProperties::NONE).unwrap();
            b.enable_vb(vb, VbProperties::NONE).unwrap();
            a.write_u64(va.address(8).unwrap(), 1).unwrap();
            b.write_u64(vb.address(8).unwrap(), 1).unwrap();
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(b.shard(), (0, 1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_shard_counts_panic() {
        let _ = Mtl::for_shard(VbiConfig::vbi_full(), 0, 3);
    }
}
