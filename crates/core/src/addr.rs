//! The VBI address space: size classes, virtual-block IDs, and VBI addresses.
//!
//! The VBI address space is a single, globally visible 64-bit address space
//! consisting of a finite set of *virtual blocks* (VBs). Every VB belongs to
//! one of eight *size classes* (4 KiB, 128 KiB, 4 MiB, ..., 128 TiB; each
//! class is 32x the previous one). A VBI address is laid out as
//!
//! ```text
//!  63      61 60                    offset_bits  offset_bits-1        0
//! +----------+--------------------------------+------------------------+
//! |  SizeID  |              VBID              |         offset         |
//! +----------+--------------------------------+------------------------+
//!  \________________ VBUID __________________/
//! ```
//!
//! mirroring Figure 3 of the paper: the three high-order bits select the size
//! class, the size class determines how many low-order bits form the offset,
//! and the bits in between identify the VB within its class (VBID). The
//! concatenation of SizeID and VBID is the system-wide unique VB ID (VBUID).

use core::fmt;

use crate::error::{Result, VbiError};

/// Number of bits in a VBI address (the processor's address bus width).
pub const ADDRESS_BITS: u32 = 64;

/// Number of high-order bits used to encode the size class.
pub const SIZE_ID_BITS: u32 = 3;

/// Number of supported size classes.
pub const SIZE_CLASS_COUNT: usize = 8;

/// The eight VB size classes supported by the reference implementation.
///
/// Classes grow by a factor of 32 (5 address bits) per step, so the offset
/// width is `12 + 5 * SizeID` bits.
///
/// # Examples
///
/// ```
/// use vbi_core::addr::SizeClass;
///
/// assert_eq!(SizeClass::Kib4.bytes(), 4 << 10);
/// assert_eq!(SizeClass::Tib128.bytes(), 128u64 << 40);
/// assert_eq!(SizeClass::smallest_fitting(5 << 10), Some(SizeClass::Kib128));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SizeClass {
    /// 4 KiB (2^12 bytes) — direct-mapped, needs no translation table.
    Kib4 = 0,
    /// 128 KiB (2^17 bytes).
    Kib128 = 1,
    /// 4 MiB (2^22 bytes).
    Mib4 = 2,
    /// 128 MiB (2^27 bytes).
    Mib128 = 3,
    /// 4 GiB (2^32 bytes).
    Gib4 = 4,
    /// 128 GiB (2^37 bytes).
    Gib128 = 5,
    /// 4 TiB (2^42 bytes).
    Tib4 = 6,
    /// 128 TiB (2^47 bytes).
    Tib128 = 7,
}

impl SizeClass {
    /// All size classes, smallest to largest.
    pub const ALL: [SizeClass; SIZE_CLASS_COUNT] = [
        SizeClass::Kib4,
        SizeClass::Kib128,
        SizeClass::Mib4,
        SizeClass::Mib128,
        SizeClass::Gib4,
        SizeClass::Gib128,
        SizeClass::Tib4,
        SizeClass::Tib128,
    ];

    /// Numeric SizeID (0..8) encoded in the top three address bits.
    #[inline]
    pub const fn id(self) -> u8 {
        self as u8
    }

    /// Size class for a SizeID, or `None` when `id >= 8`.
    #[inline]
    pub const fn from_id(id: u8) -> Option<SizeClass> {
        match id {
            0 => Some(SizeClass::Kib4),
            1 => Some(SizeClass::Kib128),
            2 => Some(SizeClass::Mib4),
            3 => Some(SizeClass::Mib128),
            4 => Some(SizeClass::Gib4),
            5 => Some(SizeClass::Gib128),
            6 => Some(SizeClass::Tib4),
            7 => Some(SizeClass::Tib128),
            _ => None,
        }
    }

    /// Number of low-order address bits forming the intra-VB offset.
    #[inline]
    pub const fn offset_bits(self) -> u32 {
        12 + 5 * (self as u32)
    }

    /// Size of a VB of this class in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        1u64 << self.offset_bits()
    }

    /// Number of bits available for the VBID within this class.
    #[inline]
    pub const fn vbid_bits(self) -> u32 {
        ADDRESS_BITS - SIZE_ID_BITS - self.offset_bits()
    }

    /// Number of distinct VBs in this class (2^vbid_bits).
    #[inline]
    pub const fn vb_count(self) -> u64 {
        1u64 << self.vbid_bits()
    }

    /// Number of 4 KiB pages spanned by a VB of this class.
    #[inline]
    pub const fn pages(self) -> u64 {
        self.bytes() >> 12
    }

    /// The smallest class whose VBs hold at least `bytes` bytes.
    ///
    /// Returns `None` when `bytes` exceeds 128 TiB. Zero-byte requests get the
    /// smallest class, matching the OS's "smallest free VB that can
    /// accommodate the data structure" scan.
    pub fn smallest_fitting(bytes: u64) -> Option<SizeClass> {
        Self::ALL.into_iter().find(|sc| sc.bytes() >= bytes)
    }

    /// The next larger size class, used by `promote_vb`.
    pub fn next_larger(self) -> Option<SizeClass> {
        SizeClass::from_id(self.id() + 1)
    }
}

impl fmt::Display for SizeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SizeClass::Kib4 => "4KB",
            SizeClass::Kib128 => "128KB",
            SizeClass::Mib4 => "4MB",
            SizeClass::Mib128 => "128MB",
            SizeClass::Gib4 => "4GB",
            SizeClass::Gib128 => "128GB",
            SizeClass::Tib4 => "4TB",
            SizeClass::Tib128 => "128TB",
        };
        f.write_str(name)
    }
}

/// System-wide unique virtual-block ID: the concatenation of SizeID and VBID.
///
/// # Examples
///
/// ```
/// use vbi_core::addr::{SizeClass, Vbuid};
///
/// let vb = Vbuid::new(SizeClass::Mib4, 42);
/// assert_eq!(vb.size_class(), SizeClass::Mib4);
/// assert_eq!(vb.vbid(), 42);
/// let packed = vb.to_bits();
/// assert_eq!(Vbuid::from_bits(packed), Some(vb));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vbuid {
    size_class: SizeClass,
    vbid: u64,
}

impl Vbuid {
    /// Creates a VBUID from a size class and a VBID within the class.
    ///
    /// # Panics
    ///
    /// Panics if `vbid` does not fit in the class's VBID field; VBIDs are
    /// architectural identifiers, so an oversized one is a programming error.
    #[inline]
    pub fn new(size_class: SizeClass, vbid: u64) -> Self {
        assert!(
            vbid < size_class.vb_count(),
            "VBID {vbid} out of range for size class {size_class}"
        );
        Self { size_class, vbid }
    }

    /// The size class encoded in this VBUID.
    #[inline]
    pub const fn size_class(self) -> SizeClass {
        self.size_class
    }

    /// The VBID within the size class.
    #[inline]
    pub const fn vbid(self) -> u64 {
        self.vbid
    }

    /// Size of this VB in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        self.size_class.bytes()
    }

    /// Packs the VBUID into the upper bits of a `u64` exactly as it appears
    /// at the top of a VBI address (offset bits are zero).
    #[inline]
    pub const fn to_bits(self) -> u64 {
        ((self.size_class as u64) << (ADDRESS_BITS - SIZE_ID_BITS))
            | (self.vbid << self.size_class.offset_bits())
    }

    /// Unpacks a VBUID from a `u64` produced by [`Vbuid::to_bits`] (or from a
    /// VBI address; offset bits are ignored). Returns `None` if the size-ID
    /// field is not a valid class — impossible for 3 bits and 8 classes, so
    /// in this configuration every bit pattern decodes.
    #[inline]
    pub fn from_bits(bits: u64) -> Option<Self> {
        let size_class = SizeClass::from_id((bits >> (ADDRESS_BITS - SIZE_ID_BITS)) as u8)?;
        let vbid = (bits << SIZE_ID_BITS) >> (SIZE_ID_BITS + size_class.offset_bits());
        Some(Self { size_class, vbid })
    }

    /// The VBI address of the first byte of this VB.
    #[inline]
    pub fn base_address(self) -> VbiAddress {
        VbiAddress(self.to_bits())
    }

    /// The VBI address `offset` bytes into this VB.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::OffsetOutOfRange`] when `offset >= self.bytes()`.
    #[inline]
    pub fn address(self, offset: u64) -> Result<VbiAddress> {
        if offset >= self.bytes() {
            return Err(VbiError::OffsetOutOfRange { vbuid: self, offset });
        }
        Ok(VbiAddress(self.to_bits() | offset))
    }
}

impl fmt::Display for Vbuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VB[{}:{}]", self.size_class, self.vbid)
    }
}

/// A 64-bit VBI address: `SizeID ‖ VBID ‖ offset`.
///
/// VBI addresses are system-wide unique (like physical addresses in a
/// conventional machine) and are used directly — untranslated — to index and
/// tag all on-chip caches.
///
/// # Examples
///
/// ```
/// use vbi_core::addr::{SizeClass, VbiAddress, Vbuid};
///
/// let vb = Vbuid::new(SizeClass::Kib128, 7);
/// let addr = vb.address(0x2040)?;
/// assert_eq!(addr.vbuid(), vb);
/// assert_eq!(addr.offset(), 0x2040);
/// assert_eq!(addr.page_index(), 2); // 4 KiB pages within the VB
/// # Ok::<(), vbi_core::VbiError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VbiAddress(pub u64);

impl VbiAddress {
    /// The raw 64-bit value.
    #[inline]
    pub const fn to_bits(self) -> u64 {
        self.0
    }

    /// Decodes the VBUID portion of the address.
    #[inline]
    pub fn vbuid(self) -> Vbuid {
        // Three bits always decode to one of the eight classes.
        Vbuid::from_bits(self.0).expect("3-bit size IDs always decode")
    }

    /// Decodes the size class directly from the top three bits.
    #[inline]
    pub fn size_class(self) -> SizeClass {
        SizeClass::from_id((self.0 >> (ADDRESS_BITS - SIZE_ID_BITS)) as u8)
            .expect("3-bit size IDs always decode")
    }

    /// Offset of the addressed byte within its VB.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 & (self.size_class().bytes() - 1)
    }

    /// Index of the 4 KiB page (the base allocation granularity) within the
    /// VB that contains this address.
    #[inline]
    pub fn page_index(self) -> u64 {
        self.offset() >> 12
    }

    /// The address rounded down to its 4 KiB page boundary.
    #[inline]
    pub fn page_base(self) -> VbiAddress {
        VbiAddress(self.0 & !0xfff)
    }

    /// The address rounded down to its 64-byte cache-line boundary.
    #[inline]
    pub fn line_base(self) -> VbiAddress {
        VbiAddress(self.0 & !0x3f)
    }

    /// Adds `delta` bytes, failing if the result leaves the VB.
    ///
    /// # Errors
    ///
    /// Returns [`VbiError::OffsetOutOfRange`] when the sum exceeds the VB.
    pub fn offset_by(self, delta: u64) -> Result<VbiAddress> {
        let vb = self.vbuid();
        let new_offset =
            self.offset().checked_add(delta).ok_or(VbiError::MalformedAddress(self.0))?;
        vb.address(new_offset)
    }
}

impl fmt::Display for VbiAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl fmt::LowerHex for VbiAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for VbiAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<Vbuid> for VbiAddress {
    fn from(vbuid: Vbuid) -> Self {
        vbuid.base_address()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_match_the_paper() {
        // §4.1.1: 4 KB, 128 KB, 4 MB, 128 MB, 4 GB, 128 GB, 4 TB, 128 TB.
        let expected = [
            4u64 << 10,
            128 << 10,
            4 << 20,
            128 << 20,
            4 << 30,
            128 << 30,
            4u64 << 40,
            128u64 << 40,
        ];
        for (sc, want) in SizeClass::ALL.into_iter().zip(expected) {
            assert_eq!(sc.bytes(), want, "{sc}");
        }
    }

    #[test]
    fn vbid_widths_match_the_papers_examples() {
        // §4.1.1: the 4 KB class has 49 VBID bits (2^49 VBs); the 128 TB
        // class has 14 VBID bits (2^14 VBs).
        assert_eq!(SizeClass::Kib4.vbid_bits(), 49);
        assert_eq!(SizeClass::Kib4.offset_bits(), 12);
        assert_eq!(SizeClass::Tib128.vbid_bits(), 14);
        assert_eq!(SizeClass::Tib128.offset_bits(), 47);
    }

    #[test]
    fn size_id_roundtrips() {
        for sc in SizeClass::ALL {
            assert_eq!(SizeClass::from_id(sc.id()), Some(sc));
        }
        assert_eq!(SizeClass::from_id(8), None);
        assert_eq!(SizeClass::from_id(255), None);
    }

    #[test]
    fn smallest_fitting_picks_the_tightest_class() {
        assert_eq!(SizeClass::smallest_fitting(0), Some(SizeClass::Kib4));
        assert_eq!(SizeClass::smallest_fitting(1), Some(SizeClass::Kib4));
        assert_eq!(SizeClass::smallest_fitting(4 << 10), Some(SizeClass::Kib4));
        assert_eq!(SizeClass::smallest_fitting((4 << 10) + 1), Some(SizeClass::Kib128));
        assert_eq!(SizeClass::smallest_fitting(128u64 << 40), Some(SizeClass::Tib128));
        assert_eq!(SizeClass::smallest_fitting((128u64 << 40) + 1), None);
    }

    #[test]
    fn next_larger_walks_the_ladder() {
        assert_eq!(SizeClass::Kib4.next_larger(), Some(SizeClass::Kib128));
        assert_eq!(SizeClass::Tib4.next_larger(), Some(SizeClass::Tib128));
        assert_eq!(SizeClass::Tib128.next_larger(), None);
    }

    #[test]
    fn vbuid_packs_into_the_address_layout() {
        let vb = Vbuid::new(SizeClass::Kib4, 3);
        // SizeID 0 in the top bits, VBID 3 starting at bit 12.
        assert_eq!(vb.to_bits(), 3 << 12);

        let vb = Vbuid::new(SizeClass::Tib128, 5);
        assert_eq!(vb.to_bits(), (7u64 << 61) | (5u64 << 47));
    }

    #[test]
    fn vbuid_roundtrips_through_bits() {
        for sc in SizeClass::ALL {
            for vbid in [0, 1, sc.vb_count() / 2, sc.vb_count() - 1] {
                let vb = Vbuid::new(sc, vbid);
                assert_eq!(Vbuid::from_bits(vb.to_bits()), Some(vb));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_vbid_panics() {
        let _ = Vbuid::new(SizeClass::Tib128, SizeClass::Tib128.vb_count());
    }

    #[test]
    fn address_encodes_vbuid_and_offset() {
        let vb = Vbuid::new(SizeClass::Mib4, 9);
        let addr = vb.address(0x1234).unwrap();
        assert_eq!(addr.vbuid(), vb);
        assert_eq!(addr.offset(), 0x1234);
        assert_eq!(addr.page_index(), 1);
        assert_eq!(addr.page_base().offset(), 0x1000);
        assert_eq!(addr.line_base().offset(), 0x1200);
    }

    #[test]
    fn address_rejects_out_of_range_offsets() {
        let vb = Vbuid::new(SizeClass::Kib4, 0);
        assert!(vb.address(4095).is_ok());
        assert_eq!(vb.address(4096), Err(VbiError::OffsetOutOfRange { vbuid: vb, offset: 4096 }));
    }

    #[test]
    fn offset_by_stays_within_the_vb() {
        let vb = Vbuid::new(SizeClass::Kib128, 2);
        let addr = vb.address(0).unwrap();
        let moved = addr.offset_by(0x1_0000).unwrap();
        assert_eq!(moved.offset(), 0x1_0000);
        assert!(moved.offset_by(vb.bytes()).is_err());
    }

    #[test]
    fn addresses_of_distinct_vbs_never_collide() {
        // VBs do not overlap: VBI addresses are unique system-wide, which is
        // what makes synonym/homonym-free VIVT caches possible (§3.5).
        let a = Vbuid::new(SizeClass::Kib4, 1).address(0).unwrap();
        let b = Vbuid::new(SizeClass::Kib128, 0).address(0x1000).unwrap();
        assert_ne!(a, b);
        assert_ne!(a.vbuid(), b.vbuid());
    }

    #[test]
    fn display_formats() {
        let vb = Vbuid::new(SizeClass::Gib4, 11);
        assert_eq!(vb.to_string(), "VB[4GB:11]");
        let addr = vb.address(0x40).unwrap();
        assert!(addr.to_string().starts_with("0x"));
        assert_eq!(SizeClass::Mib128.to_string(), "128MB");
    }
}
