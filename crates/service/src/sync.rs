//! Shared lock plumbing for the service crate: poisoning recovery and
//! counted lock acquisition, defined once for the map, shard, and client
//! locks of [`crate::VbiService`] and the rings of [`crate::VbiQueue`].

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, TryLockError};

pub(crate) use vbi_core::sync::unpoison;

thread_local! {
    /// Shared-lock acquisitions made *by this thread* through
    /// [`lock_counted`] — every map-shard, client-state, MTL-shard, and
    /// allocator mutex in the service funnels through that one function,
    /// so this counter is a per-thread census of the service's entire
    /// shared-lock surface. The stress suite snapshots it around a run of
    /// CVT-cache-hit reads to prove the read path takes exactly zero
    /// shared locks end to end.
    static SHARED_LOCK_ACQUISITIONS: Cell<u64> = const { Cell::new(0) };
}

/// Shared-lock acquisitions the calling thread has made through the
/// service's counted locks since it started. Monotonic per thread; take a
/// before/after delta around the region of interest.
pub fn thread_shared_lock_acquisitions() -> u64 {
    SHARED_LOCK_ACQUISITIONS.with(Cell::get)
}

/// Locks `mutex`, incrementing `acquisitions` always and `contended` when
/// the lock was held and the caller had to block — the instrumented
/// acquisition every counted lock in the service goes through. Also bumps
/// the calling thread's [`thread_shared_lock_acquisitions`] census.
pub(crate) fn lock_counted<'a, T>(
    mutex: &'a Mutex<T>,
    acquisitions: &AtomicU64,
    contended: &AtomicU64,
) -> MutexGuard<'a, T> {
    SHARED_LOCK_ACQUISITIONS.with(|c| c.set(c.get() + 1));
    acquisitions.fetch_add(1, Ordering::Relaxed);
    match mutex.try_lock() {
        Ok(guard) => guard,
        Err(TryLockError::WouldBlock) => {
            contended.fetch_add(1, Ordering::Relaxed);
            unpoison(mutex.lock())
        }
        Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
    }
}
