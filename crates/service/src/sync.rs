//! Shared lock plumbing for the service crate: poisoning recovery and
//! counted lock acquisition, defined once for the shard and client locks of
//! [`crate::VbiService`] and the rings of [`crate::VbiQueue`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, TryLockError};

pub(crate) use vbi_core::sync::unpoison;

/// Locks `mutex`, incrementing `acquisitions` always and `contended` when
/// the lock was held and the caller had to block — the instrumented
/// acquisition every counted lock in the service goes through.
pub(crate) fn lock_counted<'a, T>(
    mutex: &'a Mutex<T>,
    acquisitions: &AtomicU64,
    contended: &AtomicU64,
) -> MutexGuard<'a, T> {
    acquisitions.fetch_add(1, Ordering::Relaxed);
    match mutex.try_lock() {
        Ok(guard) => guard,
        Err(TryLockError::WouldBlock) => {
            contended.fetch_add(1, Ordering::Relaxed);
            unpoison(mutex.lock())
        }
        Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
    }
}
